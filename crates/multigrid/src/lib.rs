//! Geometric multigrid for the 2D Poisson model problem (§4.1 / Figure 6).
//!
//! The paper tests Distributed Southwell as a multigrid smoother: V-cycles
//! on the unit square with centered finite differences, grid dimensions
//! 15×15 … 255×255, one pre- and one post-smoothing step, coarsened down
//! to a 3×3 grid that is solved exactly. The headline result is that the
//! Distributed Southwell smoother gives grid-size-independent convergence
//! and is more efficient per relaxation than Gauss–Seidel — even when
//! budgeted at *half* a sweep.
//!
//! Grid hierarchy: dimensions follow `d → (d−1)/2`, so admissible sizes are
//! `2^k − 1` (15, 31, 63, …). Transfer operators are bilinear interpolation
//! `P` and its adjoint for restriction (which equals 4× full weighting, the
//! correct scaling when every level is re-discretized with the unit-`h`
//! 5-point stencil).

pub mod smoother;
pub mod transfer;

pub use smoother::Smoother;

use dsw_sparse::dense::Cholesky;
use dsw_sparse::gen::grid2d_poisson;
use dsw_sparse::{vecops, CsrMatrix};

/// Multigrid cycle shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CycleType {
    /// One coarse-grid visit per level (the paper's setting).
    #[default]
    V,
    /// Two coarse-grid visits per level: more robust per cycle,
    /// more expensive.
    W,
}

/// One level of the grid hierarchy.
pub struct Level {
    /// Interior grid dimension (the grid is `dim × dim`).
    pub dim: usize,
    /// The 5-point operator at this level (diag 4, off-diag −1).
    pub a: CsrMatrix,
    /// Scratch: right-hand side at this level.
    rhs: Vec<f64>,
    /// Scratch: iterate at this level.
    sol: Vec<f64>,
}

/// A geometric multigrid solver for the 2D Poisson problem.
pub struct Multigrid {
    /// Levels, finest first.
    pub levels: Vec<Level>,
    coarse_solver: Cholesky,
    smoother: Smoother,
    cycle_type: CycleType,
}

impl Multigrid {
    /// Builds a hierarchy for a `dim × dim` interior grid; `dim` must be of
    /// the form `2^k − 1` with `dim ≥ 3`. The coarsest level is 3×3 (or
    /// `dim` itself if `dim == 3`), solved exactly.
    pub fn new(dim: usize, smoother: Smoother) -> Self {
        assert!(dim >= 3, "need at least a 3x3 grid");
        assert!(
            (dim + 1).is_power_of_two(),
            "grid dimension must be 2^k - 1, got {dim}"
        );
        let mut levels = Vec::new();
        let mut d = dim;
        loop {
            levels.push(Level {
                dim: d,
                a: grid2d_poisson(d, d),
                rhs: vec![0.0; d * d],
                sol: vec![0.0; d * d],
            });
            if d == 3 {
                break;
            }
            d = (d - 1) / 2;
        }
        let coarse_solver =
            Cholesky::factor_csr(&levels.last().unwrap().a).expect("coarse operator is SPD");
        Multigrid {
            levels,
            coarse_solver,
            smoother,
            cycle_type: CycleType::V,
        }
    }

    /// Switches the cycle shape (V by default).
    pub fn with_cycle_type(mut self, cycle_type: CycleType) -> Self {
        self.cycle_type = cycle_type;
        self
    }

    /// Number of levels.
    pub fn nlevels(&self) -> usize {
        self.levels.len()
    }

    /// One V(1,1)-cycle for `A x = b` on the finest level, updating `x`.
    /// Returns the relative residual norm `‖b − Ax‖ / ‖b‖` afterwards.
    pub fn vcycle(&mut self, b: &[f64], x: &mut [f64]) -> f64 {
        let n = self.levels[0].dim * self.levels[0].dim;
        assert_eq!(b.len(), n);
        assert_eq!(x.len(), n);
        self.levels[0].rhs.copy_from_slice(b);
        self.levels[0].sol.copy_from_slice(x);
        self.cycle(0);
        x.copy_from_slice(&self.levels[0].sol);
        let bnorm = vecops::norm2(b).max(1e-300);
        vecops::norm2(&self.levels[0].a.residual(b, x)) / bnorm
    }

    fn cycle(&mut self, l: usize) {
        if l == self.levels.len() - 1 {
            // Exact coarse solve.
            let lev = &mut self.levels[l];
            let r = lev.a.residual(&lev.rhs, &lev.sol);
            let e = self.coarse_solver.solve(&r);
            for (s, ei) in lev.sol.iter_mut().zip(&e) {
                *s += ei;
            }
            return;
        }
        // Pre-smooth.
        {
            let lev = &mut self.levels[l];
            self.smoother
                .smooth(&lev.a, &lev.rhs, &mut lev.sol, l as u64);
        }
        // Restrict the residual.
        let (fine_dim, coarse_dim) = (self.levels[l].dim, self.levels[l + 1].dim);
        let r = {
            let lev = &self.levels[l];
            lev.a.residual(&lev.rhs, &lev.sol)
        };
        let rc = transfer::restrict(&r, fine_dim, coarse_dim);
        {
            let coarse = &mut self.levels[l + 1];
            coarse.rhs.copy_from_slice(&rc);
            coarse.sol.iter_mut().for_each(|v| *v = 0.0);
        }
        // Recurse (twice for W-cycles, unless the child is the coarsest).
        self.cycle(l + 1);
        if self.cycle_type == CycleType::W && l + 2 < self.levels.len() {
            self.cycle(l + 1);
        }
        // Prolong and correct.
        let e = transfer::prolong(&self.levels[l + 1].sol, coarse_dim, fine_dim);
        {
            let lev = &mut self.levels[l];
            for (s, ei) in lev.sol.iter_mut().zip(&e) {
                *s += ei;
            }
            // Post-smooth.
            self.smoother
                .smooth(&lev.a, &lev.rhs, &mut lev.sol, 1_000_000 + l as u64);
        }
    }

    /// Runs `cycles` V-cycles from a zero initial guess; returns the
    /// relative residual norm after each cycle (the quantity Figure 6
    /// reports after 9 cycles).
    pub fn solve(&mut self, b: &[f64], cycles: usize) -> (Vec<f64>, Vec<f64>) {
        let n = self.levels[0].dim * self.levels[0].dim;
        let mut x = vec![0.0; n];
        let mut history = Vec::with_capacity(cycles);
        for _ in 0..cycles {
            history.push(self.vcycle(b, &mut x));
        }
        (x, history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsw_sparse::gen;

    #[test]
    fn hierarchy_dimensions() {
        let mg = Multigrid::new(15, Smoother::gauss_seidel(1.0));
        let dims: Vec<usize> = mg.levels.iter().map(|l| l.dim).collect();
        assert_eq!(dims, vec![15, 7, 3]);
        let mg = Multigrid::new(63, Smoother::gauss_seidel(1.0));
        assert_eq!(mg.nlevels(), 5);
    }

    #[test]
    #[should_panic(expected = "2^k - 1")]
    fn rejects_bad_dimension() {
        Multigrid::new(16, Smoother::gauss_seidel(1.0));
    }

    #[test]
    fn vcycle_converges_fast_gs() {
        let dim = 31;
        let n = dim * dim;
        let b = gen::random_rhs(n, 3);
        let mut mg = Multigrid::new(dim, Smoother::gauss_seidel(1.0));
        let (_, hist) = mg.solve(&b, 9);
        assert!(
            hist[8] < 1e-6,
            "9 V-cycles should reduce the residual far below 1e-6, got {}",
            hist[8]
        );
        // Roughly geometric decay.
        assert!(hist[1] < 0.5 * hist[0]);
    }

    #[test]
    fn gs_convergence_is_grid_independent() {
        let mut finals = Vec::new();
        for dim in [15, 31, 63] {
            let n = dim * dim;
            let b = gen::random_rhs(n, 4);
            let mut mg = Multigrid::new(dim, Smoother::gauss_seidel(1.0));
            let (_, hist) = mg.solve(&b, 9);
            finals.push(hist[8]);
        }
        let max = finals.iter().cloned().fold(0.0f64, f64::max);
        let min = finals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min < 50.0,
            "grid-independent convergence expected, got {finals:?}"
        );
    }

    #[test]
    fn ds_smoother_grid_independent_even_half_sweep() {
        // Figure 6: Distributed Southwell at half a sweep still gives
        // grid-independent convergence.
        let mut finals = Vec::new();
        for dim in [15, 31, 63] {
            let n = dim * dim;
            let b = gen::random_rhs(n, 4);
            let mut mg = Multigrid::new(dim, Smoother::distributed_southwell(0.5, 7));
            let (_, hist) = mg.solve(&b, 9);
            finals.push(hist[8]);
        }
        assert!(
            finals.iter().all(|&f| f < 1e-4),
            "DS half-sweep smoother should converge well: {finals:?}"
        );
        let max = finals.iter().cloned().fold(0.0f64, f64::max);
        let min = finals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 100.0, "grid independence violated: {finals:?}");
    }

    #[test]
    fn ds_full_sweep_beats_gs_per_relaxation() {
        // Figure 6's second claim: DS with the same relaxation budget as GS
        // gives better multigrid convergence.
        let dim = 63;
        let n = dim * dim;
        let b = gen::random_rhs(n, 5);
        let (_, gs_hist) = Multigrid::new(dim, Smoother::gauss_seidel(1.0)).solve(&b, 9);
        let (_, ds_hist) =
            Multigrid::new(dim, Smoother::distributed_southwell(1.0, 7)).solve(&b, 9);
        assert!(
            ds_hist[8] < gs_hist[8],
            "DS {} should beat GS {}",
            ds_hist[8],
            gs_hist[8]
        );
    }

    #[test]
    fn wcycle_converges_at_least_as_fast_as_vcycle() {
        let dim = 31;
        let n = dim * dim;
        let b = gen::random_rhs(n, 8);
        let (_, v_hist) = Multigrid::new(dim, Smoother::gauss_seidel(1.0)).solve(&b, 6);
        let (_, w_hist) = Multigrid::new(dim, Smoother::gauss_seidel(1.0))
            .with_cycle_type(CycleType::W)
            .solve(&b, 6);
        assert!(
            w_hist[5] <= v_hist[5] * 1.5,
            "W-cycle {} should be at least as good as V-cycle {}",
            w_hist[5],
            v_hist[5]
        );
        assert!(w_hist[5] < 1e-5);
    }

    #[test]
    fn solution_matches_direct_solver() {
        let dim = 15;
        let n = dim * dim;
        let a = grid2d_poisson(dim, dim);
        let b = gen::random_rhs(n, 6);
        let mut mg = Multigrid::new(dim, Smoother::gauss_seidel(1.0));
        let (x, _) = mg.solve(&b, 30);
        let x_true = Cholesky::factor_csr(&a).unwrap().solve(&b);
        let err: f64 = x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-8, "error {err}");
    }
}
