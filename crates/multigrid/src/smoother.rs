//! Multigrid smoothers: Gauss–Seidel and Distributed Southwell.

use dsw_core::scalar::{distributed_southwell_scalar, gauss_seidel, ScalarOptions};
use dsw_sparse::CsrMatrix;

/// A smoother with an exact relaxation budget, as in §4.1: "we use a number
/// of relaxations corresponding to exactly the number of relaxations as
/// Gauss–Seidel".
#[derive(Debug, Clone, Copy)]
pub enum Smoother {
    /// Plain lexicographic Gauss–Seidel, `sweeps × n` relaxations.
    GaussSeidel {
        /// Number of sweeps per smoothing application (may be fractional).
        sweeps: f64,
    },
    /// Scalar Distributed Southwell with an exact relaxation budget of
    /// `sweeps × n`; if the final parallel step selects more rows than the
    /// remaining budget, a random subset is relaxed.
    DistributedSouthwell {
        /// Relaxation budget in sweeps (1.0 = "1 sweep", 0.5 = "1/2 sweep").
        sweeps: f64,
        /// Seed for the final-step subset choice.
        seed: u64,
    },
}

impl Smoother {
    /// Gauss–Seidel with the given sweep budget.
    pub fn gauss_seidel(sweeps: f64) -> Self {
        Smoother::GaussSeidel { sweeps }
    }

    /// Distributed Southwell with the given sweep budget.
    pub fn distributed_southwell(sweeps: f64, seed: u64) -> Self {
        Smoother::DistributedSouthwell { sweeps, seed }
    }

    /// Relaxation budget for an `n`-unknown level.
    pub fn budget(&self, n: usize) -> u64 {
        let sweeps = match self {
            Smoother::GaussSeidel { sweeps } => *sweeps,
            Smoother::DistributedSouthwell { sweeps, .. } => *sweeps,
        };
        ((n as f64) * sweeps).round() as u64
    }

    /// Applies one smoothing pass to `A x = b`, updating `x` in place.
    /// `salt` decorrelates the randomized subset choice between
    /// applications (level index, pre/post).
    pub fn smooth(&self, a: &CsrMatrix, b: &[f64], x: &mut [f64], salt: u64) {
        let n = a.nrows();
        let budget = self.budget(n);
        if budget == 0 {
            return;
        }
        match self {
            Smoother::GaussSeidel { .. } => {
                let opts = ScalarOptions {
                    max_relaxations: budget,
                    target_residual: None,
                    record_stride: u64::MAX,
                    seed: 0,
                };
                let (xs, _) = gauss_seidel(a, b, x, &opts);
                x.copy_from_slice(&xs);
            }
            Smoother::DistributedSouthwell { seed, .. } => {
                let opts = ScalarOptions {
                    max_relaxations: budget,
                    target_residual: None,
                    record_stride: u64::MAX,
                    seed: seed ^ salt.wrapping_mul(0x9e3779b97f4a7c15),
                };
                let rep = distributed_southwell_scalar(a, b, x, &opts);
                x.copy_from_slice(&rep.x);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsw_sparse::gen;

    #[test]
    fn budgets() {
        let gs = Smoother::gauss_seidel(1.0);
        assert_eq!(gs.budget(100), 100);
        let ds = Smoother::distributed_southwell(0.5, 1);
        assert_eq!(ds.budget(101), 51); // rounds
    }

    #[test]
    fn smoothing_reduces_residual() {
        let a = gen::grid2d_poisson(15, 15);
        let n = a.nrows();
        let b = gen::random_rhs(n, 1);
        for sm in [
            Smoother::gauss_seidel(1.0),
            Smoother::distributed_southwell(1.0, 2),
            Smoother::distributed_southwell(0.5, 2),
        ] {
            let mut x = vec![0.0; n];
            let before = dsw_sparse::vecops::norm2(&a.residual(&b, &x));
            sm.smooth(&a, &b, &mut x, 0);
            let after = dsw_sparse::vecops::norm2(&a.residual(&b, &x));
            assert!(after < before, "{sm:?}: {after} !< {before}");
        }
    }

    #[test]
    fn ds_smoother_attacks_largest_residuals_first() {
        // Make one spot of the RHS huge; a quarter-sweep of DS must reduce
        // the residual there much more than GS's lexicographic quarter-sweep
        // (which never reaches the far corner).
        let a = gen::grid2d_poisson(17, 17);
        let n = a.nrows();
        let mut b = vec![0.0; n];
        let hot = n - 2; // near the end, untouched by a partial GS sweep
        b[hot] = 10.0;
        let budget = Smoother::distributed_southwell(0.25, 3);
        let mut x_ds = vec![0.0; n];
        budget.smooth(&a, &b, &mut x_ds, 0);
        let r_ds = a.residual(&b, &x_ds)[hot].abs();

        let gs = Smoother::gauss_seidel(0.25);
        let mut x_gs = vec![0.0; n];
        gs.smooth(&a, &b, &mut x_gs, 0);
        let r_gs = a.residual(&b, &x_gs)[hot].abs();
        assert!(
            r_ds < 0.5 * r_gs,
            "DS should hit the hot spot: ds={r_ds} gs={r_gs}"
        );
    }

    #[test]
    fn zero_budget_is_identity() {
        let a = gen::grid2d_poisson(5, 5);
        let b = gen::random_rhs(25, 1);
        let mut x = vec![0.0; 25];
        Smoother::gauss_seidel(0.0).smooth(&a, &b, &mut x, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }
}
