//! Grid transfer operators: bilinear prolongation and its adjoint.
//!
//! Vertex layout: a level with interior dimension `d` has unknowns at
//! `(i, j)`, `0 ≤ i, j < d`, with the Dirichlet boundary one step outside.
//! Coarse point `(ic, jc)` coincides with fine point `(2·ic + 1, 2·jc + 1)`.

/// Bilinear prolongation `e_f = P e_c` from a `cd × cd` coarse grid to the
/// `fd × fd` fine grid (`fd = 2·cd + 1`). Fine points coinciding with
/// coarse points copy the value; edge midpoints average two coarse
/// neighbors; cell centers average four. Boundary (Dirichlet zero)
/// neighbors contribute zero.
pub fn prolong(coarse: &[f64], cd: usize, fd: usize) -> Vec<f64> {
    assert_eq!(fd, 2 * cd + 1, "incompatible grid dimensions");
    assert_eq!(coarse.len(), cd * cd);
    let cval = |ic: isize, jc: isize| -> f64 {
        if ic < 0 || jc < 0 || ic >= cd as isize || jc >= cd as isize {
            0.0
        } else {
            coarse[jc as usize * cd + ic as usize]
        }
    };
    let mut fine = vec![0.0; fd * fd];
    for j in 0..fd {
        for i in 0..fd {
            let (ic, irem) = (((i as isize) - 1).div_euclid(2), (i + 1) % 2);
            let (jc, jrem) = (((j as isize) - 1).div_euclid(2), (j + 1) % 2);
            // irem == 0 means i is odd (coincides with a coarse column).
            let v = match (irem, jrem) {
                (0, 0) => cval(ic, jc),
                (1, 0) => 0.5 * (cval(ic, jc) + cval(ic + 1, jc)),
                (0, 1) => 0.5 * (cval(ic, jc) + cval(ic, jc + 1)),
                (1, 1) => {
                    0.25 * (cval(ic, jc)
                        + cval(ic + 1, jc)
                        + cval(ic, jc + 1)
                        + cval(ic + 1, jc + 1))
                }
                _ => unreachable!(),
            };
            fine[j * fd + i] = v;
        }
    }
    fine
}

/// Residual restriction `r_c = Pᵀ r_f` (the adjoint of [`prolong`]).
/// For the unit-`h`-scaled 5-point rediscretization this equals 4× full
/// weighting, which is the scaling that preserves two-grid convergence.
pub fn restrict(fine: &[f64], fd: usize, cd: usize) -> Vec<f64> {
    assert_eq!(fd, 2 * cd + 1, "incompatible grid dimensions");
    assert_eq!(fine.len(), fd * fd);
    let fval = |i: isize, j: isize| -> f64 {
        if i < 0 || j < 0 || i >= fd as isize || j >= fd as isize {
            0.0
        } else {
            fine[j as usize * fd + i as usize]
        }
    };
    let mut coarse = vec![0.0; cd * cd];
    for jc in 0..cd {
        for ic in 0..cd {
            let fi = 2 * ic as isize + 1;
            let fj = 2 * jc as isize + 1;
            // Adjoint weights: 1 at the center, 1/2 at edge neighbors,
            // 1/4 at corners — the full-weighting stencil times 4.
            let v = fval(fi, fj)
                + 0.5 * (fval(fi - 1, fj) + fval(fi + 1, fj) + fval(fi, fj - 1) + fval(fi, fj + 1))
                + 0.25
                    * (fval(fi - 1, fj - 1)
                        + fval(fi + 1, fj - 1)
                        + fval(fi - 1, fj + 1)
                        + fval(fi + 1, fj + 1));
            coarse[jc * cd + ic] = v;
        }
    }
    coarse
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prolong_constant_is_constant_in_the_interior() {
        // Away from the boundary, interpolating the constant 1 gives 1.
        let cd = 3;
        let fd = 7;
        let coarse = vec![1.0; cd * cd];
        let fine = prolong(&coarse, cd, fd);
        // Center fine point (3,3) coincides with coarse (1,1).
        assert_eq!(fine[3 * fd + 3], 1.0);
        // Edge midpoint between two interior coarse points.
        assert_eq!(fine[3 * fd + 2], 1.0);
        // Near-boundary points see Dirichlet zeros.
        assert_eq!(fine[0], 0.25);
    }

    #[test]
    fn coarse_points_are_injected() {
        let cd = 3;
        let fd = 7;
        let mut coarse = vec![0.0; 9];
        coarse[3 + 2] = 5.0; // coarse (2,1) -> fine (5,3)
        let fine = prolong(&coarse, cd, fd);
        assert_eq!(fine[3 * fd + 5], 5.0);
    }

    #[test]
    fn restrict_is_adjoint_of_prolong() {
        // <P e_c, r_f> == <e_c, R r_f> for arbitrary vectors.
        let cd = 3;
        let fd = 7;
        let ec: Vec<f64> = (0..cd * cd).map(|k| (k as f64 * 0.37).sin()).collect();
        let rf: Vec<f64> = (0..fd * fd).map(|k| (k as f64 * 0.11).cos()).collect();
        let pec = prolong(&ec, cd, fd);
        let rrf = restrict(&rf, fd, cd);
        let lhs: f64 = pec.iter().zip(&rf).map(|(a, b)| a * b).sum();
        let rhs: f64 = ec.iter().zip(&rrf).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-12, "{lhs} vs {rhs}");
    }

    #[test]
    fn restriction_weights_sum_to_four() {
        // Restricting the constant-1 fine function at an interior coarse
        // point gives 4 (1 + 4*1/2 + 4*1/4).
        let fd = 7;
        let cd = 3;
        let fine = vec![1.0; fd * fd];
        let coarse = restrict(&fine, fd, cd);
        assert_eq!(coarse[cd + 1], 4.0);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn dimension_mismatch_panics() {
        prolong(&[0.0; 9], 3, 8);
    }
}
