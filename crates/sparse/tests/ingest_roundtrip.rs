//! Ingest-path coverage for the SuiteSparse readers: a checked-in
//! miniature Matrix Market fixture driven through [`SuiteEntry::load_real`]
//! (including the binary-cache conversion), plus proptest round-trips for
//! the `io_bin` / `io` readers — with u64-offset shapes a u32-indexed
//! reader would corrupt — and clean rejection of >4Gi-entry headers.

use dsw_sparse::suite::by_name;
use dsw_sparse::{gen, io, io_bin, CooBuilder, CsrMatrix, SparseError};
use proptest::prelude::*;

fn fixture_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn fixture_ingests_through_suite_loader_and_caches_binary() {
    // Copy the fixture into a scratch dir so the cache write is observable
    // (and so repeated test runs start clean).
    let tmp = std::env::temp_dir().join(format!("dsw_ingest_{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();
    std::fs::copy(
        fixture_dir().join("af_5_k101.mtx"),
        tmp.join("af_5_k101.mtx"),
    )
    .unwrap();

    let entry = by_name("af_5_k101").unwrap();
    let a = entry.load_real(&tmp).unwrap();
    assert_eq!(a.nrows(), 6);
    assert_eq!(a.nnz(), 16); // symmetric expansion of 11 file entries
    assert!(a.is_symmetric(1e-12));
    for i in 0..a.nrows() {
        assert!((a.get(i, i) - 1.0).abs() < 1e-12, "unit diagonal at {i}");
    }

    // First load converts the .mtx to a DSWB binary cache; the second load
    // must take that path and agree bit-for-bit.
    assert!(tmp.join("af_5_k101.mtx.bin").is_file());
    std::fs::remove_file(tmp.join("af_5_k101.mtx")).unwrap();
    let b = entry.load_real(&tmp).unwrap();
    assert_eq!(a, b);

    // A directory without the matrix gives a clear error, not a panic.
    let missing = by_name("Flan_1565").unwrap().load_real(&tmp);
    assert!(matches!(missing, Err(SparseError::Io(_))));

    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn u64_offsets_roundtrip_through_binary_format() {
    // Column indices beyond u32::MAX: a reader truncating offsets to u32
    // would corrupt these. Kept tiny in nnz, huge in coordinate space.
    let big = 1usize << 33; // = the reader's LIMIT; stay just under it
    let a = CsrMatrix::from_parts(
        2,
        big - 1,
        vec![0, 2, 3],
        vec![7, big - 2, big - 3],
        vec![1.5, -2.5, 4.25],
    )
    .unwrap();
    let mut buf = Vec::new();
    io_bin::write_bin(&a, &mut buf).unwrap();
    let b = io_bin::read_bin(&buf[..]).unwrap();
    assert_eq!(a, b);
}

#[test]
fn over_limit_headers_are_rejected_not_allocated() {
    // Craft a DSWB header claiming > 4Gi nonzeros on a tiny stream; the
    // reader must reject it at header validation (no payload allocation).
    let mut buf = Vec::new();
    buf.extend_from_slice(b"DSWB");
    buf.extend_from_slice(&1u32.to_le_bytes());
    buf.extend_from_slice(&4u64.to_le_bytes());
    buf.extend_from_slice(&4u64.to_le_bytes());
    buf.extend_from_slice(&(u64::MAX / 2).to_le_bytes());
    assert!(matches!(
        io_bin::read_bin(&buf[..]),
        Err(SparseError::Parse(_))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random sparse matrices survive the binary and the Matrix Market
    /// round trip bit-for-bit (builder sums duplicate pushes, so the
    /// reference matrix is canonical by construction).
    #[test]
    fn random_matrices_roundtrip_both_formats(
        nrows in 1usize..40,
        ncols in 1usize..40,
        entries in proptest::collection::vec(
            (0usize..40, 0usize..40, -1.0e3f64..1.0e3), 0..120),
    ) {
        let mut b = CooBuilder::new(nrows, ncols);
        for &(i, j, v) in &entries {
            b.push(i % nrows, j % ncols, v);
        }
        let a = b.build().unwrap();

        let mut bin = Vec::new();
        io_bin::write_bin(&a, &mut bin).unwrap();
        prop_assert_eq!(&io_bin::read_bin(&bin[..]).unwrap(), &a);

        let mut mtx = Vec::new();
        io::write_matrix_market(&a, &mut mtx).unwrap();
        prop_assert_eq!(&io::read_matrix_market(&mtx[..]).unwrap(), &a);
    }

    /// Structured grids (the paper's §4.2 shape) also round trip exactly
    /// through the chunked binary reader at sizes spanning chunk
    /// boundaries.
    #[test]
    fn poisson_grids_roundtrip_binary(nx in 1usize..24, ny in 1usize..24) {
        let a = gen::grid2d_poisson(nx, ny);
        let mut bin = Vec::new();
        io_bin::write_bin(&a, &mut bin).unwrap();
        prop_assert_eq!(&io_bin::read_bin(&bin[..]).unwrap(), &a);
    }
}
