//! Small dense matrices with a Cholesky factorization.
//!
//! Used for exact coarse-grid solves in the multigrid hierarchy and as the
//! reference solver the test suite validates iterative methods against.

use crate::{CsrMatrix, Result, SparseError};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// An `nrows × ncols` zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Builds from a row-major buffer.
    pub fn from_row_major(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(SparseError::Shape(format!(
                "dense buffer length {} != {}x{}",
                data.len(),
                nrows,
                ncols
            )));
        }
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// Densifies a sparse matrix.
    pub fn from_csr(a: &CsrMatrix) -> Self {
        DenseMatrix {
            nrows: a.nrows(),
            ncols: a.ncols(),
            data: a.to_dense(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.ncols + j]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.ncols + j] = v;
    }

    /// Dense matrix–vector product.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols);
        let mut y = vec![0.0; self.nrows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.ncols..(i + 1) * self.ncols];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }
}

/// A Cholesky factorization `A = L Lᵀ` of a symmetric positive definite
/// matrix, stored as the lower triangle `L`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    n: usize,
    /// Lower triangle, row-major over the full `n × n` layout.
    l: Vec<f64>,
}

impl Cholesky {
    /// Factors a dense SPD matrix. Fails if a pivot is not strictly positive
    /// (i.e. the matrix is not numerically positive definite).
    pub fn factor(a: &DenseMatrix) -> Result<Self> {
        if a.nrows != a.ncols {
            return Err(SparseError::Shape("Cholesky of non-square matrix".into()));
        }
        let n = a.nrows;
        let mut l = a.data.clone();
        for j in 0..n {
            // Diagonal pivot.
            let mut d = l[j * n + j];
            for k in 0..j {
                d -= l[j * n + k] * l[j * n + k];
            }
            if d <= 0.0 {
                return Err(SparseError::Numeric(format!(
                    "non-positive pivot {d} at column {j}: matrix not SPD"
                )));
            }
            let d = d.sqrt();
            l[j * n + j] = d;
            for i in (j + 1)..n {
                let mut s = l[i * n + j];
                for k in 0..j {
                    s -= l[i * n + k] * l[j * n + k];
                }
                l[i * n + j] = s / d;
            }
        }
        // Zero the strict upper triangle so the factor is unambiguous.
        for i in 0..n {
            for j in (i + 1)..n {
                l[i * n + j] = 0.0;
            }
        }
        Ok(Cholesky { n, l })
    }

    /// Factors a sparse SPD matrix by densifying (small systems only).
    pub fn factor_csr(a: &CsrMatrix) -> Result<Self> {
        Self::factor(&DenseMatrix::from_csr(a))
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` in place using forward then backward substitution.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        // Forward: L y = b.
        for i in 0..n {
            let mut s = b[i];
            for (k, bk) in b.iter().enumerate().take(i) {
                s -= self.l[i * n + k] * bk;
            }
            b[i] = s / self.l[i * n + i];
        }
        // Backward: Lᵀ x = y.
        for i in (0..n).rev() {
            let mut s = b[i];
            for (k, bk) in b.iter().enumerate().take(n).skip(i + 1) {
                s -= self.l[k * n + i] * bk;
            }
            b[i] = s / self.l[i * n + i];
        }
    }

    /// Allocating solve.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooBuilder;

    fn spd3() -> DenseMatrix {
        DenseMatrix::from_row_major(3, 3, vec![4.0, -1.0, 0.0, -1.0, 4.0, -1.0, 0.0, -1.0, 4.0])
            .unwrap()
    }

    #[test]
    fn cholesky_solves_spd() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.mul_vec(&x_true);
        let x = ch.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DenseMatrix::from_row_major(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(matches!(Cholesky::factor(&a), Err(SparseError::Numeric(_))));
    }

    #[test]
    fn cholesky_rejects_non_square() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(Cholesky::factor(&a), Err(SparseError::Shape(_))));
    }

    #[test]
    fn factor_csr_matches_dense_path() {
        let mut b = CooBuilder::new(3, 3);
        for i in 0..3 {
            b.push(i, i, 4.0);
        }
        b.push_sym(0, 1, -1.0);
        b.push_sym(1, 2, -1.0);
        let a = b.build().unwrap();
        let ch = Cholesky::factor_csr(&a).unwrap();
        let x_true = vec![0.25, 1.0, -1.5];
        let bvec = a.mul_vec(&x_true);
        let x = ch.solve(&bvec);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn dense_from_buffer_validates_shape() {
        assert!(DenseMatrix::from_row_major(2, 2, vec![0.0; 3]).is_err());
    }

    #[test]
    fn dense_mul_vec() {
        let a = spd3();
        let y = a.mul_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![3.0, 2.0, 3.0]);
    }
}
