//! P1 finite-element Poisson matrix on an irregular triangulation.
//!
//! Reproduces the setting of the paper's Figures 2 and 5: "a finite element
//! discretization of the Poisson equation on a square domain. Irregularly
//! structured linear triangular elements are used." We build the
//! irregularity by jittering the interior vertices of a structured grid and
//! flipping each cell's diagonal pseudo-randomly, which yields an
//! unstructured-looking conforming triangulation without needing a Delaunay
//! code. With `nx = 80, ny = 40` the matrix has exactly `79 × 39 = 3081`
//! rows, the size quoted in the paper.

use crate::{CooBuilder, CsrMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for the jittered triangulation.
#[derive(Debug, Clone, Copy)]
pub struct FeMeshOptions {
    /// Cells in x (vertices `nx + 1`; interior unknowns `nx − 1` per line).
    pub nx: usize,
    /// Cells in y.
    pub ny: usize,
    /// Vertex jitter as a fraction of the cell size, in `[0, 0.45)`.
    /// 0 gives a structured mesh; ~0.25 gives a convincingly irregular one.
    pub jitter: f64,
    /// RNG seed (jitter values and diagonal flips).
    pub seed: u64,
}

impl Default for FeMeshOptions {
    fn default() -> Self {
        FeMeshOptions {
            nx: 80,
            ny: 40,
            jitter: 0.25,
            seed: 1,
        }
    }
}

/// A triangulated mesh of the unit square (vertices, triangles, and the
/// map from vertices to unknown indices).
#[derive(Debug, Clone)]
pub struct TriMesh {
    /// Vertex coordinates `(x, y)`.
    pub vertices: Vec<(f64, f64)>,
    /// Triangles as vertex-index triples, counter-clockwise.
    pub triangles: Vec<[usize; 3]>,
    /// For each vertex, `Some(unknown index)` if interior, `None` on the
    /// Dirichlet boundary.
    pub unknown_of_vertex: Vec<Option<usize>>,
    /// Number of interior unknowns.
    pub n_unknowns: usize,
}

/// Builds the jittered, randomly-flipped triangulation.
pub fn build_mesh(opts: FeMeshOptions) -> TriMesh {
    let FeMeshOptions {
        nx,
        ny,
        jitter,
        seed,
    } = opts;
    assert!(nx >= 2 && ny >= 2, "mesh needs at least 2x2 cells");
    assert!((0.0..0.45).contains(&jitter), "jitter must be in [0, 0.45)");
    let mut rng = StdRng::seed_from_u64(seed);
    let hx = 1.0 / nx as f64;
    let hy = 1.0 / ny as f64;
    let vid = |i: usize, j: usize| j * (nx + 1) + i;

    let mut vertices = Vec::with_capacity((nx + 1) * (ny + 1));
    for j in 0..=ny {
        for i in 0..=nx {
            let interior = i > 0 && i < nx && j > 0 && j < ny;
            let (dx, dy) = if interior && jitter > 0.0 {
                (
                    rng.gen_range(-jitter..=jitter) * hx,
                    rng.gen_range(-jitter..=jitter) * hy,
                )
            } else {
                (0.0, 0.0)
            };
            vertices.push((i as f64 * hx + dx, j as f64 * hy + dy));
        }
    }

    let mut triangles = Vec::with_capacity(2 * nx * ny);
    for j in 0..ny {
        for i in 0..nx {
            let v00 = vid(i, j);
            let v10 = vid(i + 1, j);
            let v01 = vid(i, j + 1);
            let v11 = vid(i + 1, j + 1);
            if rng.gen_bool(0.5) {
                // Diagonal from v00 to v11.
                triangles.push([v00, v10, v11]);
                triangles.push([v00, v11, v01]);
            } else {
                // Diagonal from v10 to v01.
                triangles.push([v00, v10, v01]);
                triangles.push([v10, v11, v01]);
            }
        }
    }

    let mut unknown_of_vertex = vec![None; vertices.len()];
    let mut n_unknowns = 0;
    for j in 1..ny {
        for i in 1..nx {
            unknown_of_vertex[vid(i, j)] = Some(n_unknowns);
            n_unknowns += 1;
        }
    }

    TriMesh {
        vertices,
        triangles,
        unknown_of_vertex,
        n_unknowns,
    }
}

/// The 3×3 P1 stiffness matrix of a triangle, by the standard gradient
/// (cotangent) formula, together with twice the signed area.
fn element_stiffness(p: [(f64, f64); 3]) -> ([[f64; 3]; 3], f64) {
    let (x0, y0) = p[0];
    let (x1, y1) = p[1];
    let (x2, y2) = p[2];
    let two_area = (x1 - x0) * (y2 - y0) - (x2 - x0) * (y1 - y0);
    // Gradient coefficients of the barycentric basis functions.
    let b = [y1 - y2, y2 - y0, y0 - y1];
    let c = [x2 - x1, x0 - x2, x1 - x0];
    let mut k = [[0.0; 3]; 3];
    let scale = 1.0 / (2.0 * two_area.abs());
    for i in 0..3 {
        for j in 0..3 {
            k[i][j] = (b[i] * b[j] + c[i] * c[j]) * scale;
        }
    }
    (k, two_area)
}

/// Assembles the P1 Poisson stiffness matrix on the mesh, eliminating the
/// Dirichlet boundary (interior unknowns only). The result is SPD.
pub fn assemble_stiffness(mesh: &TriMesh) -> CsrMatrix {
    let n = mesh.n_unknowns;
    let mut builder = CooBuilder::with_capacity(n, n, 9 * mesh.triangles.len());
    for tri in &mesh.triangles {
        let pts = [
            mesh.vertices[tri[0]],
            mesh.vertices[tri[1]],
            mesh.vertices[tri[2]],
        ];
        let (k, two_area) = element_stiffness(pts);
        assert!(
            two_area.abs() > 1e-12,
            "degenerate triangle in mesh (jitter too large?)"
        );
        for a in 0..3 {
            if let Some(ia) = mesh.unknown_of_vertex[tri[a]] {
                for b in 0..3 {
                    if let Some(ib) = mesh.unknown_of_vertex[tri[b]] {
                        builder.push(ia, ib, k[a][b]);
                    }
                }
            }
        }
    }
    builder.build().expect("FE assembly produces valid CSR")
}

/// One-call generator: jittered triangulation P1 Poisson stiffness matrix.
///
/// With the default options this is the 3081-row problem of Figures 2 and 5.
pub fn fe_poisson(opts: FeMeshOptions) -> CsrMatrix {
    assemble_stiffness(&build_mesh(opts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Cholesky;

    #[test]
    fn default_mesh_has_paper_size() {
        let a = fe_poisson(FeMeshOptions::default());
        assert_eq!(a.nrows(), 3081);
    }

    #[test]
    fn structured_small_matches_fd_scaling() {
        // On an unjittered right-triangle mesh the P1 stiffness matrix is the
        // classic 5-point stencil (diag 4, off-diag -1) up to the diagonal
        // couplings cancelling — verify diagonal value and symmetry.
        let a = fe_poisson(FeMeshOptions {
            nx: 4,
            ny: 4,
            jitter: 0.0,
            seed: 0,
        });
        assert_eq!(a.nrows(), 9);
        assert!(a.is_symmetric(1e-12));
        // Row sums of an interior row not touching the boundary are >= 0
        // and the diagonal is positive.
        assert!(a.get(4, 4) > 0.0);
    }

    #[test]
    fn jittered_matrix_is_spd() {
        let a = fe_poisson(FeMeshOptions {
            nx: 8,
            ny: 8,
            jitter: 0.3,
            seed: 42,
        });
        assert_eq!(a.nrows(), 49);
        assert!(a.is_symmetric(1e-12));
        assert!(Cholesky::factor_csr(&a).is_ok());
    }

    #[test]
    fn element_stiffness_rows_sum_to_zero() {
        // Constants are in the kernel of the element stiffness matrix.
        let (k, _) = element_stiffness([(0.1, 0.2), (0.9, 0.3), (0.4, 0.8)]);
        for row in &k {
            let s: f64 = row.iter().sum();
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn element_stiffness_is_symmetric_psd() {
        let (k, two_area) = element_stiffness([(0.0, 0.0), (1.0, 0.0), (0.3, 0.7)]);
        assert!(two_area > 0.0);
        for (i, row) in k.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert!((v - k[j][i]).abs() < 1e-14);
            }
            assert!(row[i] >= 0.0);
        }
    }

    #[test]
    fn mesh_is_deterministic_per_seed() {
        let o = FeMeshOptions {
            nx: 6,
            ny: 6,
            jitter: 0.2,
            seed: 9,
        };
        let m1 = build_mesh(o);
        let m2 = build_mesh(o);
        assert_eq!(m1.vertices, m2.vertices);
        assert_eq!(m1.triangles, m2.triangles);
    }

    #[test]
    fn mesh_counts() {
        let m = build_mesh(FeMeshOptions {
            nx: 5,
            ny: 3,
            jitter: 0.1,
            seed: 2,
        });
        assert_eq!(m.vertices.len(), 6 * 4);
        assert_eq!(m.triangles.len(), 2 * 5 * 3);
        assert_eq!(m.n_unknowns, 4 * 2);
    }
}
