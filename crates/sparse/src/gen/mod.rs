//! Matrix and workload generators.
//!
//! Three families cover everything the paper's experiments need:
//!
//! * [`grid`] — finite-difference Poisson matrices (5-point 2D, 7-point 3D,
//!   anisotropic 2D). These are the multigrid model problem of §4.1 and the
//!   "Jacobi-friendly" end of the test suite.
//! * [`fe`] — a P1 finite-element Poisson matrix on an irregular (jittered,
//!   randomly-flipped) triangulation of the unit square: the "small finite
//!   element problem" of Figures 2 and 5.
//! * [`clique`] — FE-style clique-assembled SPD matrices with a tunable
//!   positive off-diagonal coupling `c`. For a `k`-clique element the matrix
//!   is `w·(I + c(J − I))`, SPD for `-1/(k-1) < c < 1`; the assembled,
//!   unit-diagonal-scaled matrix makes (Block) Jacobi diverge once `c`
//!   crosses a threshold that depends on the block size, which is exactly
//!   the knob needed to reproduce the paper's three Block Jacobi regimes
//!   (always converges / reaches 0.1 then diverges / diverges early).
//!
//! All generators are deterministic given their seed.

pub mod clique;
pub mod fe;
pub mod grid;

pub use clique::{clique_grid2d, clique_grid3d, fe_clique, CliqueOptions};
pub use fe::{fe_poisson, FeMeshOptions};
pub use grid::{anisotropic2d, grid2d_poisson, grid3d_poisson};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A right-hand side with entries sampled uniformly from `[-1, 1]`,
/// scaled so that `‖b‖₂ = 1` (the setup used for Figures 2 and 5).
pub fn random_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..=1.0)).collect();
    crate::vecops::normalize(&mut b);
    b
}

/// A random initial guess with entries uniform in `[-1, 1]` (unscaled).
/// The experiment harness rescales it so the *initial residual* has unit
/// norm, matching §4.2 ("scaled all initial guesses such that ‖r⁰‖₂ = 1").
pub fn random_guess(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..=1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_rhs_is_unit_norm_and_deterministic() {
        let b1 = random_rhs(100, 7);
        let b2 = random_rhs(100, 7);
        assert_eq!(b1, b2);
        assert!((crate::vecops::norm2(&b1) - 1.0).abs() < 1e-12);
        let b3 = random_rhs(100, 8);
        assert_ne!(b1, b3);
    }

    #[test]
    fn random_guess_in_range() {
        let x = random_guess(1000, 3);
        assert!(x.iter().all(|v| (-1.0..=1.0).contains(v)));
    }
}
