//! FE-style clique-assembled SPD matrices with a tunable coupling dial.
//!
//! Each *element* is a clique of `k` vertices with element matrix
//! `w · (I_k + c (J_k − I_k))`, which is SPD for `−1/(k−1) < c < 1`
//! (eigenvalues `w(1−c)` and `w(1+(k−1)c)`). Sums of such elements over a
//! covering set of cliques are SPD. After the paper's symmetric
//! unit-diagonal scaling, the off-diagonal mass grows with `c`, and
//! `2·blockdiag(A) − A` loses positive definiteness once `c` exceeds a
//! block-size-dependent threshold — at which point Block Jacobi diverges
//! while Gauss–Seidel and the Southwell family (which relax independent
//! sets) still converge. This is the mechanism behind the paper's
//! observation that Block Jacobi fails on most matrices at high process
//! counts: smaller blocks ⇒ lower threshold.
//!
//! Three structural variants are provided:
//! * [`clique_grid2d`] — elements are the 4-cliques of grid cells
//!   (quadrilateral "membrane" character, ≤ 9 nonzeros per row),
//! * [`clique_grid3d`] — elements are the 8-cliques of hexahedral cells
//!   (≤ 27 nonzeros per row; the character of the paper's 3D mechanical
//!   matrices such as Flan_1565, audikw_1, Serena),
//! * [`fe_clique`] — elements are the triangles of the jittered
//!   triangulation from [`super::fe`] (unstructured character).

use super::fe::{build_mesh, FeMeshOptions};
use crate::{CooBuilder, CsrMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options shared by the clique generators.
#[derive(Debug, Clone, Copy)]
pub struct CliqueOptions {
    /// Off-diagonal coupling `c` of every element, in `(−1/(k−1), 1)`.
    pub coupling: f64,
    /// Half-width of the per-element weight jitter: weights are drawn
    /// uniformly from `[1 − jump, 1 + jump]`. Models coefficient jumps.
    /// Must be in `[0, 1)`.
    pub weight_jump: f64,
    /// Fraction (per axis) of the grid forming a corner "hot region" whose
    /// elements use [`CliqueOptions::hot_coupling`] instead of `coupling`.
    /// Models the localized stiff inclusions of the paper's geomechanics
    /// matrices (Geo_1438, Hook_1498): (block) Jacobi's divergent modes
    /// live in the small hot region, so the global residual first drops
    /// below the target before the local growth takes over — the
    /// "converges then diverges" behaviour of Figure 7. Zero disables.
    pub hot_fraction: f64,
    /// Coupling of the hot-region elements.
    pub hot_coupling: f64,
    /// RNG seed for the weights.
    pub seed: u64,
}

impl Default for CliqueOptions {
    fn default() -> Self {
        CliqueOptions {
            coupling: 0.5,
            weight_jump: 0.0,
            hot_fraction: 0.0,
            hot_coupling: 0.0,
            seed: 1,
        }
    }
}

fn validate(opts: &CliqueOptions, k: usize) {
    let lo = -1.0 / (k as f64 - 1.0);
    assert!(
        opts.coupling > lo && opts.coupling < 1.0,
        "coupling {} outside SPD range ({lo}, 1) for {k}-cliques",
        opts.coupling
    );
    assert!(
        (0.0..1.0).contains(&opts.weight_jump),
        "weight_jump must be in [0, 1)"
    );
    assert!(
        (0.0..=1.0).contains(&opts.hot_fraction),
        "hot_fraction must be in [0, 1]"
    );
    if opts.hot_fraction > 0.0 {
        assert!(
            opts.hot_coupling > lo && opts.hot_coupling < 1.0,
            "hot_coupling {} outside SPD range ({lo}, 1) for {k}-cliques",
            opts.hot_coupling
        );
    }
}

/// Assembles `Σ_e w_e (I + c_e (J − I))` over the given cliques, where
/// `c_e` is the hot coupling for cliques flagged hot.
fn assemble_cliques(
    n: usize,
    cliques: impl Iterator<Item = (Vec<usize>, bool)>,
    opts: CliqueOptions,
    nnz_hint: usize,
) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut b = CooBuilder::with_capacity(n, n, nnz_hint);
    for (clique, hot) in cliques {
        let w = if opts.weight_jump > 0.0 {
            rng.gen_range(1.0 - opts.weight_jump..=1.0 + opts.weight_jump)
        } else {
            1.0
        };
        let c = if hot {
            opts.hot_coupling
        } else {
            opts.coupling
        };
        let off = w * c;
        for (a, &ia) in clique.iter().enumerate() {
            b.push(ia, ia, w);
            for &ib in &clique[a + 1..] {
                b.push_sym(ia, ib, off);
            }
        }
    }
    b.build().expect("clique assembly produces valid CSR")
}

/// Clique-assembled matrix on an `nx × ny` vertex grid: one 4-clique per
/// cell. `n = nx·ny` rows.
pub fn clique_grid2d(nx: usize, ny: usize, opts: CliqueOptions) -> CsrMatrix {
    assert!(nx >= 2 && ny >= 2, "need at least one cell");
    validate(&opts, 4);
    let n = nx * ny;
    let vid = move |i: usize, j: usize| j * nx + i;
    let hx = ((nx - 1) as f64 * opts.hot_fraction) as usize;
    let hy = ((ny - 1) as f64 * opts.hot_fraction) as usize;
    let cells = (0..ny - 1).flat_map(move |j| {
        (0..nx - 1).map(move |i| {
            (
                vec![vid(i, j), vid(i + 1, j), vid(i, j + 1), vid(i + 1, j + 1)],
                i < hx && j < hy,
            )
        })
    });
    assemble_cliques(n, cells, opts, 16 * (nx - 1) * (ny - 1))
}

/// Clique-assembled matrix on an `nx × ny × nz` vertex grid: one 8-clique
/// per hexahedral cell. `n = nx·ny·nz` rows, ≤ 27 nonzeros per row.
pub fn clique_grid3d(nx: usize, ny: usize, nz: usize, opts: CliqueOptions) -> CsrMatrix {
    assert!(nx >= 2 && ny >= 2 && nz >= 2, "need at least one cell");
    validate(&opts, 8);
    let n = nx * ny * nz;
    let vid = move |i: usize, j: usize, k: usize| (k * ny + j) * nx + i;
    let hx = ((nx - 1) as f64 * opts.hot_fraction) as usize;
    let hy = ((ny - 1) as f64 * opts.hot_fraction) as usize;
    let hz = ((nz - 1) as f64 * opts.hot_fraction) as usize;
    let cells = (0..nz - 1).flat_map(move |k| {
        (0..ny - 1).flat_map(move |j| {
            (0..nx - 1).map(move |i| {
                (
                    vec![
                        vid(i, j, k),
                        vid(i + 1, j, k),
                        vid(i, j + 1, k),
                        vid(i + 1, j + 1, k),
                        vid(i, j, k + 1),
                        vid(i + 1, j, k + 1),
                        vid(i, j + 1, k + 1),
                        vid(i + 1, j + 1, k + 1),
                    ],
                    i < hx && j < hy && k < hz,
                )
            })
        })
    });
    assemble_cliques(n, cells, opts, 64 * (nx - 1) * (ny - 1) * (nz - 1))
}

/// Clique-assembled matrix whose elements are the triangles of the
/// jittered triangulation (unstructured sparsity pattern). All vertices —
/// including boundary ones — are unknowns here, since the element matrices
/// are already SPD without boundary elimination. The hot region is the
/// lower-left corner of the unit square.
pub fn fe_clique(mesh_opts: FeMeshOptions, opts: CliqueOptions) -> CsrMatrix {
    validate(&opts, 3);
    let mesh = build_mesh(mesh_opts);
    let n = mesh.vertices.len();
    let hf = opts.hot_fraction;
    let tris = mesh.triangles.iter().map(|t| {
        let hot = hf > 0.0
            && t.iter().all(|&v| {
                let (x, y) = mesh.vertices[v];
                x < hf && y < hf
            });
        (t.to_vec(), hot)
    });
    assemble_cliques(n, tris, opts, 9 * mesh.triangles.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Cholesky;

    #[test]
    fn clique2d_is_spd_and_symmetric() {
        let a = clique_grid2d(
            6,
            5,
            CliqueOptions {
                coupling: 0.6,
                weight_jump: 0.4,
                seed: 3,
                hot_fraction: 0.0,
                hot_coupling: 0.0,
            },
        );
        assert_eq!(a.nrows(), 30);
        assert!(a.is_symmetric(1e-12));
        assert!(Cholesky::factor_csr(&a).is_ok());
    }

    #[test]
    fn clique2d_stencil_widths() {
        let a = clique_grid2d(4, 4, CliqueOptions::default());
        // Interior vertex touches 4 cells => 8 neighbors + itself.
        let interior = 4 + 1;
        assert_eq!(a.row_cols(interior).len(), 9);
        // Corner vertex touches 1 cell => 3 neighbors + itself.
        assert_eq!(a.row_cols(0).len(), 4);
    }

    #[test]
    fn clique3d_is_spd() {
        let a = clique_grid3d(
            3,
            3,
            3,
            CliqueOptions {
                coupling: 0.7,
                weight_jump: 0.2,
                seed: 5,
                hot_fraction: 0.0,
                hot_coupling: 0.0,
            },
        );
        assert_eq!(a.nrows(), 27);
        assert!(a.is_symmetric(1e-12));
        assert!(Cholesky::factor_csr(&a).is_ok());
        // Center vertex of a 3^3 grid touches all 8 cells => full 27-point row.
        let center = (3 + 1) * 3 + 1;
        assert_eq!(a.row_cols(center).len(), 27);
    }

    #[test]
    fn fe_clique_is_spd() {
        let a = fe_clique(
            FeMeshOptions {
                nx: 6,
                ny: 6,
                jitter: 0.2,
                seed: 7,
            },
            CliqueOptions {
                coupling: 0.8,
                weight_jump: 0.3,
                seed: 11,
                hot_fraction: 0.0,
                hot_coupling: 0.0,
            },
        );
        assert_eq!(a.nrows(), 49);
        assert!(a.is_symmetric(1e-12));
        assert!(Cholesky::factor_csr(&a).is_ok());
    }

    #[test]
    #[should_panic(expected = "outside SPD range")]
    fn coupling_out_of_range_panics() {
        clique_grid2d(
            3,
            3,
            CliqueOptions {
                coupling: 1.0,
                weight_jump: 0.0,
                seed: 0,
                hot_fraction: 0.0,
                hot_coupling: 0.0,
            },
        );
    }

    #[test]
    fn scalar_jacobi_divergence_threshold() {
        // After unit-diagonal scaling, the Jacobi iteration matrix of a
        // high-coupling clique matrix has spectral radius > 1: verify via
        // power iteration that ‖G^k v‖ grows for c = 0.8 and shrinks for
        // c = 0.1 (on a grid where the theory predicts exactly that).
        for (c, expect_diverge) in [(0.8, true), (0.1, false)] {
            let mut a = clique_grid2d(
                12,
                12,
                CliqueOptions {
                    coupling: c,
                    weight_jump: 0.0,
                    seed: 0,
                    hot_fraction: 0.0,
                    hot_coupling: 0.0,
                },
            );
            a.scale_unit_diagonal().unwrap();
            let n = a.nrows();
            // Jacobi iteration: x <- x - r where r = Ax (b = 0); i.e.
            // e <- (I - A) e with unit diagonal.
            let mut e: Vec<f64> = (0..n)
                .map(|i| ((i * 2654435761) % 97) as f64 / 97.0 - 0.5)
                .collect();
            crate::vecops::normalize(&mut e);
            for _ in 0..200 {
                let ae = a.mul_vec(&e);
                for i in 0..n {
                    e[i] -= ae[i];
                }
            }
            let growth = crate::vecops::norm2(&e);
            if expect_diverge {
                assert!(growth > 1e3, "expected divergence, growth = {growth}");
            } else {
                assert!(growth < 1.0, "expected convergence, growth = {growth}");
            }
        }
    }
}
