//! Finite-difference Poisson matrices on regular grids.

use crate::{CooBuilder, CsrMatrix};

/// 5-point centered-difference discretization of `-Δu = f` on an
/// `nx × ny` grid of *interior* unknowns (homogeneous Dirichlet boundary),
/// lexicographic ordering. Diagonal 4, off-diagonals −1.
///
/// This is the multigrid model problem of §4.1 and the default problem of
/// the paper's artifact.
pub fn grid2d_poisson(nx: usize, ny: usize) -> CsrMatrix {
    anisotropic2d(nx, ny, 1.0)
}

/// Anisotropic 5-point operator: coupling −1 in x and −eps in y,
/// diagonal `2 + 2·eps`. `eps = 1` recovers [`grid2d_poisson`].
pub fn anisotropic2d(nx: usize, ny: usize, eps: f64) -> CsrMatrix {
    assert!(nx > 0 && ny > 0, "empty grid");
    let n = nx * ny;
    let idx = |i: usize, j: usize| j * nx + i;
    let mut b = CooBuilder::with_capacity(n, n, 5 * n);
    for j in 0..ny {
        for i in 0..nx {
            let me = idx(i, j);
            b.push(me, me, 2.0 + 2.0 * eps);
            if i + 1 < nx {
                b.push_sym(me, idx(i + 1, j), -1.0);
            }
            if j + 1 < ny {
                b.push_sym(me, idx(i, j + 1), -eps);
            }
        }
    }
    b.build().expect("grid generator produces valid CSR")
}

/// 7-point discretization of the 3D Poisson equation on an
/// `nx × ny × nz` grid of interior unknowns. Diagonal 6, off-diagonals −1.
pub fn grid3d_poisson(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
    assert!(nx > 0 && ny > 0 && nz > 0, "empty grid");
    let n = nx * ny * nz;
    let idx = |i: usize, j: usize, k: usize| (k * ny + j) * nx + i;
    let mut b = CooBuilder::with_capacity(n, n, 7 * n);
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                let me = idx(i, j, k);
                b.push(me, me, 6.0);
                if i + 1 < nx {
                    b.push_sym(me, idx(i + 1, j, k), -1.0);
                }
                if j + 1 < ny {
                    b.push_sym(me, idx(i, j + 1, k), -1.0);
                }
                if k + 1 < nz {
                    b.push_sym(me, idx(i, j, k + 1), -1.0);
                }
            }
        }
    }
    b.build().expect("grid generator produces valid CSR")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Cholesky;

    #[test]
    fn poisson2d_structure() {
        let a = grid2d_poisson(3, 3);
        assert_eq!(a.nrows(), 9);
        // Interior point (1,1) = row 4 has 5 nonzeros.
        assert_eq!(a.row_cols(4).len(), 5);
        assert_eq!(a.get(4, 4), 4.0);
        assert_eq!(a.get(4, 3), -1.0);
        assert_eq!(a.get(4, 1), -1.0);
        // Corner has 3.
        assert_eq!(a.row_cols(0).len(), 3);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn poisson2d_is_spd() {
        let a = grid2d_poisson(5, 4);
        assert!(Cholesky::factor_csr(&a).is_ok());
    }

    #[test]
    fn poisson3d_structure() {
        let a = grid3d_poisson(3, 3, 3);
        assert_eq!(a.nrows(), 27);
        // Center point has 7 nonzeros.
        let center = (3 + 1) * 3 + 1;
        assert_eq!(a.row_cols(center).len(), 7);
        assert_eq!(a.get(center, center), 6.0);
        assert!(a.is_symmetric(0.0));
        assert!(Cholesky::factor_csr(&a).is_ok());
    }

    #[test]
    fn anisotropic_coupling() {
        let a = anisotropic2d(3, 3, 0.1);
        assert!((a.get(4, 4) - 2.2).abs() < 1e-15);
        assert_eq!(a.get(4, 3), -1.0); // x neighbor
        assert!((a.get(4, 1) + 0.1).abs() < 1e-15); // y neighbor
        assert!(Cholesky::factor_csr(&a).is_ok());
    }

    #[test]
    fn no_wraparound_coupling() {
        // Row at the right edge of one grid line must not couple to the
        // leftmost point of the next line.
        let a = grid2d_poisson(4, 2);
        assert_eq!(a.get(3, 4), 0.0);
        assert_eq!(a.get(4, 3), 0.0);
    }
}
