//! Dense-vector kernels used throughout the solvers.
//!
//! The hot kernels walk explicit 4-lane chunks with scalar tails so the
//! compiler can keep the loads and multiplies in vector registers without
//! per-element bounds checks. Reductions (`dot`, `gather_dot`) fold the
//! lane products back into the accumulator in the original left-to-right
//! order, so every result stays bit-identical to the naive scalar loop —
//! the layout is allowed to change, the arithmetic is not. Order-free
//! elementwise maps (`axpy`, `scale`) additionally have true `std::simd`
//! bodies behind the opt-in, nightly-only `nightly-simd` feature.

/// Lanes per chunk in the unrolled kernels (one AVX2-width f64 vector).
const LANES: usize = 4;

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Squared Euclidean norm.
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// Maximum absolute entry `‖x‖_∞`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

/// Inner product, accumulated in index order (bit-identical to the
/// scalar loop).
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut xc = x.chunks_exact(LANES);
    let mut yc = y.chunks_exact(LANES);
    let mut acc = 0.0;
    for (a, b) in (&mut xc).zip(&mut yc) {
        let p0 = a[0] * b[0];
        let p1 = a[1] * b[1];
        let p2 = a[2] * b[2];
        let p3 = a[3] * b[3];
        acc = (((acc + p0) + p1) + p2) + p3;
    }
    for (a, b) in xc.remainder().iter().zip(yc.remainder()) {
        acc += a * b;
    }
    acc
}

/// `Σ vals[k] · x[idx[k]]` — the CSR row-times-dense-vector kernel, with
/// the gathered products folded in index order (bit-identical to the
/// scalar loop).
#[inline]
pub fn gather_dot(vals: &[f64], idx: &[usize], x: &[f64]) -> f64 {
    debug_assert_eq!(vals.len(), idx.len());
    let mut vc = vals.chunks_exact(LANES);
    let mut ic = idx.chunks_exact(LANES);
    let mut acc = 0.0;
    for (v, c) in (&mut vc).zip(&mut ic) {
        let p0 = v[0] * x[c[0]];
        let p1 = v[1] * x[c[1]];
        let p2 = v[2] * x[c[2]];
        let p3 = v[3] * x[c[3]];
        acc = (((acc + p0) + p1) + p2) + p3;
    }
    for (v, c) in vc.remainder().iter().zip(ic.remainder()) {
        acc += v * x[*c];
    }
    acc
}

/// `y ← y + alpha · x`. Elementwise and order-free, so the lanes are
/// genuinely independent.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(feature = "nightly-simd")]
    {
        simd::axpy(alpha, x, y)
    }
    #[cfg(not(feature = "nightly-simd"))]
    {
        let mut yc = y.chunks_exact_mut(LANES);
        let mut xc = x.chunks_exact(LANES);
        for (b, a) in (&mut yc).zip(&mut xc) {
            b[0] += alpha * a[0];
            b[1] += alpha * a[1];
            b[2] += alpha * a[2];
            b[3] += alpha * a[3];
        }
        for (yi, xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
            *yi += alpha * xi;
        }
    }
}

/// `x ← alpha · x`. Elementwise and order-free.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    #[cfg(feature = "nightly-simd")]
    {
        simd::scale(alpha, x)
    }
    #[cfg(not(feature = "nightly-simd"))]
    {
        let mut xc = x.chunks_exact_mut(LANES);
        for a in &mut xc {
            a[0] *= alpha;
            a[1] *= alpha;
            a[2] *= alpha;
            a[3] *= alpha;
        }
        for xi in xc.into_remainder() {
            *xi *= alpha;
        }
    }
}

/// True `std::simd` bodies for the order-free elementwise kernels.
///
/// Only maps live here: a lane-parallel reduction would reorder floating
/// additions and break the repo's bit-identity contract, so `dot` and
/// friends keep the sequential-fold form above in every configuration.
/// Nightly only (`portable_simd`); enable with `--features nightly-simd`.
#[cfg(feature = "nightly-simd")]
mod simd {
    use std::simd::f64x4;

    pub(super) fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        let a = f64x4::splat(alpha);
        let mut yc = y.chunks_exact_mut(4);
        let mut xc = x.chunks_exact(4);
        for (yv, xv) in (&mut yc).zip(&mut xc) {
            let r = f64x4::from_slice(yv) + a * f64x4::from_slice(xv);
            yv.copy_from_slice(r.as_array());
        }
        for (yi, xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
            *yi += alpha * xi;
        }
    }

    pub(super) fn scale(alpha: f64, x: &mut [f64]) {
        let a = f64x4::splat(alpha);
        let mut xc = x.chunks_exact_mut(4);
        for xv in &mut xc {
            let r = a * f64x4::from_slice(xv);
            xv.copy_from_slice(r.as_array());
        }
        for xi in xc.into_remainder() {
            *xi *= alpha;
        }
    }
}

/// Scales `x` so that `‖x‖₂ = 1`; returns the original norm.
/// A zero vector is left unchanged (returns 0).
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Index and value of the entry with the largest magnitude.
/// Ties are broken toward the smallest index. Empty slices return `None`.
pub fn argmax_abs(x: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        let a = v.abs();
        match best {
            Some((_, m)) if a <= m => {}
            _ => best = Some((i, a)),
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms() {
        let x = [3.0, -4.0];
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm2_sq(&x), 25.0);
        assert_eq!(norm_inf(&x), 4.0);
    }

    #[test]
    fn dot_and_axpy() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [1.0, 1.0, 1.0];
        assert_eq!(dot(&x, &y), 6.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
    }

    #[test]
    fn chunked_kernels_are_bit_identical_to_scalar() {
        // Lengths straddling the 4-lane boundary, with values whose
        // products genuinely depend on accumulation order in f64.
        for n in 0..=13usize {
            let x: Vec<f64> = (0..n).map(|i| 0.1 * (i as f64 + 1.0) * 1.7).collect();
            let y: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 3.0)).collect();
            let scalar_dot = x.iter().zip(&y).map(|(a, b)| a * b).sum::<f64>();
            assert_eq!(dot(&x, &y), scalar_dot, "dot at n = {n}");

            let idx: Vec<usize> = (0..n).map(|i| (i * 7 + 3) % n.max(1)).collect();
            let scalar_gather: f64 = x.iter().zip(&idx).map(|(v, &j)| v * y[j]).sum();
            assert_eq!(gather_dot(&x, &idx, &y), scalar_gather, "gather at n = {n}");

            let mut ya = y.clone();
            let mut yb = y.clone();
            axpy(0.37, &x, &mut ya);
            for (yi, xi) in yb.iter_mut().zip(&x) {
                *yi += 0.37 * xi;
            }
            assert_eq!(ya, yb, "axpy at n = {n}");

            let mut xa = x.clone();
            let mut xb = x.clone();
            scale(0.77, &mut xa);
            for v in xb.iter_mut() {
                *v *= 0.77;
            }
            assert_eq!(xa, xb, "scale at n = {n}");
        }
    }

    #[test]
    fn normalize_unit_and_zero() {
        let mut x = vec![0.0, 3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);
        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn argmax_abs_breaks_ties_low() {
        assert_eq!(argmax_abs(&[1.0, -3.0, 3.0]), Some((1, 3.0)));
        assert_eq!(argmax_abs(&[]), None);
        assert_eq!(argmax_abs(&[0.0]), Some((0, 0.0)));
    }
}
