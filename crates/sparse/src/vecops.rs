//! Dense-vector kernels used throughout the solvers.

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Squared Euclidean norm.
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// Maximum absolute entry `‖x‖_∞`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

/// Inner product.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y ← y + alpha · x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← alpha · x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Scales `x` so that `‖x‖₂ = 1`; returns the original norm.
/// A zero vector is left unchanged (returns 0).
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Index and value of the entry with the largest magnitude.
/// Ties are broken toward the smallest index. Empty slices return `None`.
pub fn argmax_abs(x: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        let a = v.abs();
        match best {
            Some((_, m)) if a <= m => {}
            _ => best = Some((i, a)),
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms() {
        let x = [3.0, -4.0];
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm2_sq(&x), 25.0);
        assert_eq!(norm_inf(&x), 4.0);
    }

    #[test]
    fn dot_and_axpy() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [1.0, 1.0, 1.0];
        assert_eq!(dot(&x, &y), 6.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
    }

    #[test]
    fn normalize_unit_and_zero() {
        let mut x = vec![0.0, 3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);
        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn argmax_abs_breaks_ties_low() {
        assert_eq!(argmax_abs(&[1.0, -3.0, 3.0]), Some((1, 3.0)));
        assert_eq!(argmax_abs(&[]), None);
        assert_eq!(argmax_abs(&[0.0]), Some((0, 0.0)));
    }
}
