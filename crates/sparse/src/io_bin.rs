//! Binary CSR serialization — the `.mtx.bin` format of the paper's
//! artifact ("binary files containing SuiteSparse matrices"), so large
//! inputs load without ASCII parsing.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic  b"DSWB"            4 bytes
//! version u32               (currently 1)
//! nrows  u64
//! ncols  u64
//! nnz    u64
//! row_ptr (nrows + 1) × u64
//! col_idx nnz × u64
//! values  nnz × f64
//! ```

use crate::{CsrMatrix, Result, SparseError};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"DSWB";
const VERSION: u32 = 1;

fn write_u64<W: Write>(w: &mut W, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes a matrix in the binary format.
pub fn write_bin<W: Write>(a: &CsrMatrix, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    write_u64(&mut w, a.nrows() as u64)?;
    write_u64(&mut w, a.ncols() as u64)?;
    write_u64(&mut w, a.nnz() as u64)?;
    for &p in a.row_ptr() {
        write_u64(&mut w, p as u64)?;
    }
    for &c in a.col_idx() {
        write_u64(&mut w, c as u64)?;
    }
    for &v in a.values() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a matrix in the binary format, validating the header and the CSR
/// invariants.
pub fn read_bin<R: Read>(reader: R) -> Result<CsrMatrix> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SparseError::Parse("not a DSWB binary matrix".into()));
    }
    let mut vbuf = [0u8; 4];
    r.read_exact(&mut vbuf)?;
    let version = u32::from_le_bytes(vbuf);
    if version != VERSION {
        return Err(SparseError::Parse(format!(
            "unsupported DSWB version {version}"
        )));
    }
    let nrows = read_u64(&mut r)? as usize;
    let ncols = read_u64(&mut r)? as usize;
    let nnz = read_u64(&mut r)? as usize;
    // Guard against absurd headers before allocating.
    const LIMIT: usize = 1 << 33;
    if nrows >= LIMIT || ncols >= LIMIT || nnz >= LIMIT {
        return Err(SparseError::Parse(
            "header dimensions implausibly large".into(),
        ));
    }
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    for _ in 0..=nrows {
        row_ptr.push(read_u64(&mut r)? as usize);
    }
    let mut col_idx = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        col_idx.push(read_u64(&mut r)? as usize);
    }
    let mut values = Vec::with_capacity(nnz);
    let mut fbuf = [0u8; 8];
    for _ in 0..nnz {
        r.read_exact(&mut fbuf)?;
        values.push(f64::from_le_bytes(fbuf));
    }
    CsrMatrix::from_parts(nrows, ncols, row_ptr, col_idx, values)
}

/// Writes the binary format to a file.
pub fn write_bin_file<P: AsRef<Path>>(a: &CsrMatrix, path: P) -> Result<()> {
    write_bin(a, std::fs::File::create(path)?)
}

/// Reads the binary format from a file.
pub fn read_bin_file<P: AsRef<Path>>(path: P) -> Result<CsrMatrix> {
    read_bin(std::fs::File::open(path)?)
}

/// Loads a matrix by extension: `.bin` / `.mtx.bin` binary, anything else
/// Matrix Market (the artifact's loading rule).
pub fn read_matrix_auto<P: AsRef<Path>>(path: P) -> Result<CsrMatrix> {
    let p = path.as_ref();
    if p.extension().and_then(|e| e.to_str()) == Some("bin") {
        read_bin_file(p)
    } else {
        crate::io::read_matrix_market_file(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn binary_roundtrip() {
        let a = gen::grid2d_poisson(7, 5);
        let mut buf = Vec::new();
        write_bin(&a, &mut buf).unwrap();
        let b = read_bin(&buf[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(matches!(
            read_bin(&b"XXXX"[..]),
            Err(SparseError::Parse(_)) | Err(SparseError::Io(_))
        ));
        let mut buf = Vec::new();
        write_bin(&gen::grid2d_poisson(2, 2), &mut buf).unwrap();
        buf[4] = 9; // version
        assert!(matches!(read_bin(&buf[..]), Err(SparseError::Parse(_))));
    }

    #[test]
    fn rejects_truncated_payload() {
        let mut buf = Vec::new();
        write_bin(&gen::grid2d_poisson(4, 4), &mut buf).unwrap();
        buf.truncate(buf.len() - 9);
        assert!(read_bin(&buf[..]).is_err());
    }

    #[test]
    fn auto_loader_dispatches_on_extension() {
        let a = gen::grid2d_poisson(3, 3);
        let dir = std::env::temp_dir();
        let binp = dir.join("dsw_auto_test.mtx.bin");
        let mtxp = dir.join("dsw_auto_test.mtx");
        write_bin_file(&a, &binp).unwrap();
        crate::io::write_matrix_market_file(&a, &mtxp).unwrap();
        assert_eq!(read_matrix_auto(&binp).unwrap(), a);
        assert_eq!(read_matrix_auto(&mtxp).unwrap(), a);
        let _ = std::fs::remove_file(binp);
        let _ = std::fs::remove_file(mtxp);
    }
}
