//! Binary CSR serialization — the `.mtx.bin` format of the paper's
//! artifact ("binary files containing SuiteSparse matrices"), so large
//! inputs load without ASCII parsing.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic  b"DSWB"            4 bytes
//! version u32               (currently 1)
//! nrows  u64
//! ncols  u64
//! nnz    u64
//! row_ptr (nrows + 1) × u64
//! col_idx nnz × u64
//! values  nnz × f64
//! ```

use crate::{CsrMatrix, Result, SparseError};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"DSWB";
const VERSION: u32 = 1;

fn write_u64<W: Write>(w: &mut W, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Words per bulk-transfer chunk (512 KiB of bytes). Bounded so a lying
/// header can never force a huge up-front allocation: output vectors grow
/// only as payload bytes actually arrive from the stream.
const CHUNK_WORDS: usize = 1 << 16;

/// Reads `n` little-endian u64 words as `usize`, in bulk chunks.
fn read_u64_vec<R: Read>(r: &mut R, n: usize) -> Result<Vec<usize>> {
    let mut out = Vec::with_capacity(n.min(CHUNK_WORDS));
    let mut buf = vec![0u8; n.min(CHUNK_WORDS) * 8];
    let mut left = n;
    while left > 0 {
        let take = left.min(CHUNK_WORDS);
        let bytes = &mut buf[..take * 8];
        r.read_exact(bytes)?;
        out.reserve(take);
        for w in bytes.chunks_exact(8) {
            out.push(u64::from_le_bytes(w.try_into().expect("8-byte chunk")) as usize);
        }
        left -= take;
    }
    Ok(out)
}

/// Reads `n` little-endian f64 values, in bulk chunks.
fn read_f64_vec<R: Read>(r: &mut R, n: usize) -> Result<Vec<f64>> {
    let mut out = Vec::with_capacity(n.min(CHUNK_WORDS));
    let mut buf = vec![0u8; n.min(CHUNK_WORDS) * 8];
    let mut left = n;
    while left > 0 {
        let take = left.min(CHUNK_WORDS);
        let bytes = &mut buf[..take * 8];
        r.read_exact(bytes)?;
        out.reserve(take);
        for w in bytes.chunks_exact(8) {
            out.push(f64::from_le_bytes(w.try_into().expect("8-byte chunk")));
        }
        left -= take;
    }
    Ok(out)
}

/// Serializes `usize` words to little-endian u64 bytes in bulk chunks.
fn write_u64_slice<W: Write>(w: &mut W, vals: &[usize]) -> Result<()> {
    let mut buf = vec![0u8; vals.len().min(CHUNK_WORDS) * 8];
    for chunk in vals.chunks(CHUNK_WORDS) {
        let bytes = &mut buf[..chunk.len() * 8];
        for (b, &v) in bytes.chunks_exact_mut(8).zip(chunk) {
            b.copy_from_slice(&(v as u64).to_le_bytes());
        }
        w.write_all(bytes)?;
    }
    Ok(())
}

/// Serializes f64 values to little-endian bytes in bulk chunks.
fn write_f64_slice<W: Write>(w: &mut W, vals: &[f64]) -> Result<()> {
    let mut buf = vec![0u8; vals.len().min(CHUNK_WORDS) * 8];
    for chunk in vals.chunks(CHUNK_WORDS) {
        let bytes = &mut buf[..chunk.len() * 8];
        for (b, &v) in bytes.chunks_exact_mut(8).zip(chunk) {
            b.copy_from_slice(&v.to_le_bytes());
        }
        w.write_all(bytes)?;
    }
    Ok(())
}

/// Writes a matrix in the binary format.
pub fn write_bin<W: Write>(a: &CsrMatrix, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    write_u64(&mut w, a.nrows() as u64)?;
    write_u64(&mut w, a.ncols() as u64)?;
    write_u64(&mut w, a.nnz() as u64)?;
    write_u64_slice(&mut w, a.row_ptr())?;
    write_u64_slice(&mut w, a.col_idx())?;
    write_f64_slice(&mut w, a.values())?;
    w.flush()?;
    Ok(())
}

/// Reads a matrix in the binary format, validating the header and the CSR
/// invariants.
///
/// Header fields are u64 on disk and are validated *before* any cast or
/// payload allocation, so a lying header (say a >4Gi-entry `nnz` on a
/// 100-byte file) fails with a clean error instead of attempting a
/// multi-gigabyte allocation; payload vectors then grow chunk by chunk,
/// only as bytes actually arrive.
pub fn read_bin<R: Read>(reader: R) -> Result<CsrMatrix> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SparseError::Parse("not a DSWB binary matrix".into()));
    }
    let mut vbuf = [0u8; 4];
    r.read_exact(&mut vbuf)?;
    let version = u32::from_le_bytes(vbuf);
    if version != VERSION {
        return Err(SparseError::Parse(format!(
            "unsupported DSWB version {version}"
        )));
    }
    let nrows64 = read_u64(&mut r)?;
    let ncols64 = read_u64(&mut r)?;
    let nnz64 = read_u64(&mut r)?;
    // Guard against absurd headers before casting or allocating.
    const LIMIT: u64 = 1 << 33;
    if nrows64 >= LIMIT || ncols64 >= LIMIT || nnz64 >= LIMIT {
        return Err(SparseError::Parse(format!(
            "header dimensions implausibly large \
             (nrows = {nrows64}, ncols = {ncols64}, nnz = {nnz64})"
        )));
    }
    let (nrows, ncols, nnz) = (nrows64 as usize, ncols64 as usize, nnz64 as usize);
    let row_ptr = read_u64_vec(&mut r, nrows + 1)?;
    let col_idx = read_u64_vec(&mut r, nnz)?;
    let values = read_f64_vec(&mut r, nnz)?;
    CsrMatrix::from_parts(nrows, ncols, row_ptr, col_idx, values)
}

/// Writes the binary format to a file.
pub fn write_bin_file<P: AsRef<Path>>(a: &CsrMatrix, path: P) -> Result<()> {
    write_bin(a, std::fs::File::create(path)?)
}

/// Reads the binary format from a file.
pub fn read_bin_file<P: AsRef<Path>>(path: P) -> Result<CsrMatrix> {
    read_bin(std::fs::File::open(path)?)
}

/// Loads a matrix by extension: `.bin` / `.mtx.bin` binary, anything else
/// Matrix Market (the artifact's loading rule).
pub fn read_matrix_auto<P: AsRef<Path>>(path: P) -> Result<CsrMatrix> {
    let p = path.as_ref();
    if p.extension().and_then(|e| e.to_str()) == Some("bin") {
        read_bin_file(p)
    } else {
        crate::io::read_matrix_market_file(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn binary_roundtrip() {
        let a = gen::grid2d_poisson(7, 5);
        let mut buf = Vec::new();
        write_bin(&a, &mut buf).unwrap();
        let b = read_bin(&buf[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(matches!(
            read_bin(&b"XXXX"[..]),
            Err(SparseError::Parse(_)) | Err(SparseError::Io(_))
        ));
        let mut buf = Vec::new();
        write_bin(&gen::grid2d_poisson(2, 2), &mut buf).unwrap();
        buf[4] = 9; // version
        assert!(matches!(read_bin(&buf[..]), Err(SparseError::Parse(_))));
    }

    #[test]
    fn rejects_truncated_payload() {
        let mut buf = Vec::new();
        write_bin(&gen::grid2d_poisson(4, 4), &mut buf).unwrap();
        buf.truncate(buf.len() - 9);
        assert!(read_bin(&buf[..]).is_err());
    }

    #[test]
    fn lying_headers_err_cleanly_without_allocating() {
        // A >4Gi-entry nnz field on a near-empty stream must be rejected
        // at header validation, long before any payload allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&2u64.to_le_bytes()); // nrows
        buf.extend_from_slice(&2u64.to_le_bytes()); // ncols
        buf.extend_from_slice(&(1u64 << 33).to_le_bytes()); // nnz at LIMIT
        assert!(matches!(read_bin(&buf[..]), Err(SparseError::Parse(_))));
        // u64::MAX fields must not wrap or cast badly either.
        let at = buf.len() - 8;
        buf[at..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(read_bin(&buf[..]), Err(SparseError::Parse(_))));
        // A large-but-legal nnz on a truncated stream errs on the missing
        // bytes; the chunked reader caps the up-front allocation to one
        // transfer chunk, so this cannot OOM.
        buf[at..].copy_from_slice(&((1u64 << 33) - 1).to_le_bytes());
        assert!(matches!(read_bin(&buf[..]), Err(SparseError::Io(_))));
    }

    #[test]
    fn auto_loader_dispatches_on_extension() {
        let a = gen::grid2d_poisson(3, 3);
        let dir = std::env::temp_dir();
        let binp = dir.join("dsw_auto_test.mtx.bin");
        let mtxp = dir.join("dsw_auto_test.mtx");
        write_bin_file(&a, &binp).unwrap();
        crate::io::write_matrix_market_file(&a, &mtxp).unwrap();
        assert_eq!(read_matrix_auto(&binp).unwrap(), a);
        assert_eq!(read_matrix_auto(&mtxp).unwrap(), a);
        let _ = std::fs::remove_file(binp);
        let _ = std::fs::remove_file(mtxp);
    }
}
