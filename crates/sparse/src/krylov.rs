//! The conjugate gradient method, as a reference Krylov solver.
//!
//! The paper positions the Southwell family as smoothers and
//! preconditioner building blocks; this plain CG gives the workspace a
//! gold-standard SPD solver to validate against, and the
//! `preconditioning` example contrasts stationary-method and Krylov
//! convergence on the same test problems.

use crate::{vecops, CsrMatrix};

/// Options for the CG iteration.
#[derive(Debug, Clone, Copy)]
pub struct CgOptions {
    /// Maximum iterations.
    pub max_iters: usize,
    /// Stop when `‖r‖₂ / ‖b‖₂` falls below this.
    pub rel_tolerance: f64,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            max_iters: 1000,
            rel_tolerance: 1e-10,
        }
    }
}

/// Result of a CG solve.
#[derive(Debug, Clone)]
pub struct CgResult {
    /// The final iterate.
    pub x: Vec<f64>,
    /// Residual norms, one entry per iteration (starting with ‖r⁰‖).
    pub residual_history: Vec<f64>,
    /// Whether the tolerance was met.
    pub converged: bool,
}

/// Conjugate gradients for SPD `A x = b` from initial guess `x0`.
pub fn conjugate_gradient(a: &CsrMatrix, b: &[f64], x0: &[f64], opts: &CgOptions) -> CgResult {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "CG needs a square matrix");
    assert_eq!(b.len(), n);
    assert_eq!(x0.len(), n);

    let mut x = x0.to_vec();
    let mut r = a.residual(b, &x);
    let bnorm = vecops::norm2(b).max(1e-300);
    let mut p = r.clone();
    let mut rs = vecops::norm2_sq(&r);
    let mut history = vec![rs.sqrt()];
    let mut ap = vec![0.0; n];
    let mut converged = history[0] / bnorm <= opts.rel_tolerance;

    for _ in 0..opts.max_iters {
        if converged {
            break;
        }
        a.spmv(&p, &mut ap);
        let pap = vecops::dot(&p, &ap);
        if pap <= 0.0 {
            // Not SPD (or numerical breakdown): stop honestly.
            break;
        }
        let alpha = rs / pap;
        vecops::axpy(alpha, &p, &mut x);
        vecops::axpy(-alpha, &ap, &mut r);
        let rs_new = vecops::norm2_sq(&r);
        history.push(rs_new.sqrt());
        if rs_new.sqrt() / bnorm <= opts.rel_tolerance {
            converged = true;
        }
        let beta = rs_new / rs;
        rs = rs_new;
        for (pi, ri) in p.iter_mut().zip(&r) {
            *pi = ri + beta * *pi;
        }
    }
    CgResult {
        x,
        residual_history: history,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Cholesky;
    use crate::gen;

    #[test]
    fn cg_matches_direct_solve() {
        let a = gen::grid2d_poisson(10, 10);
        let n = a.nrows();
        let b = gen::random_rhs(n, 1);
        let res = conjugate_gradient(&a, &b, &vec![0.0; n], &CgOptions::default());
        assert!(res.converged);
        let x_true = Cholesky::factor_csr(&a).unwrap().solve(&b);
        let err: f64 = res
            .x
            .iter()
            .zip(&x_true)
            .map(|(p, q)| (p - q) * (p - q))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-8, "error {err}");
    }

    #[test]
    fn cg_terminates_in_n_iterations_in_exact_arithmetic() {
        // For a tiny system, CG reaches machine precision within n + a few
        // iterations.
        let a = gen::grid2d_poisson(4, 4);
        let b = gen::random_rhs(16, 2);
        let opts = CgOptions {
            max_iters: 20,
            rel_tolerance: 1e-12,
        };
        let res = conjugate_gradient(&a, &b, &[0.0; 16], &opts);
        assert!(res.converged, "history: {:?}", res.residual_history);
    }

    #[test]
    fn cg_residual_history_is_recorded() {
        let a = gen::grid2d_poisson(6, 6);
        let b = gen::random_rhs(36, 3);
        let res = conjugate_gradient(&a, &b, &vec![0.0; 36], &CgOptions::default());
        assert!(res.residual_history.len() >= 2);
        assert!(res.residual_history.last().unwrap() < &1e-8);
    }

    #[test]
    fn cg_on_clique_matrices() {
        let mut a = gen::clique_grid2d(
            8,
            8,
            gen::CliqueOptions {
                coupling: 0.8,
                ..Default::default()
            },
        );
        a.scale_unit_diagonal().unwrap();
        let n = a.nrows();
        let b = gen::random_rhs(n, 4);
        let res = conjugate_gradient(&a, &b, &vec![0.0; n], &CgOptions::default());
        assert!(res.converged, "CG must handle SPD clique matrices");
    }

    #[test]
    fn cg_detects_indefinite_matrix() {
        use crate::CooBuilder;
        let mut bld = CooBuilder::new(2, 2);
        bld.push(0, 0, 1.0);
        bld.push(1, 1, -1.0);
        let a = bld.build().unwrap();
        let res = conjugate_gradient(&a, &[1.0, 1.0], &[0.0, 0.0], &CgOptions::default());
        assert!(!res.converged);
    }
}
