//! Sparse-matrix substrate for the Distributed Southwell reproduction.
//!
//! This crate provides everything the solvers need from a linear-algebra
//! layer, implemented from scratch:
//!
//! * [`CsrMatrix`] — compressed sparse row storage with a COO builder,
//!   sparse matrix–vector products, transposition, and the symmetric
//!   unit-diagonal scaling the paper applies to every test matrix,
//! * [`dense`] — a small dense matrix type with a Cholesky factorization,
//!   used for exact coarse-grid and reference solves,
//! * [`gen`] — generators for the model problems of the paper (2D/3D
//!   Poisson finite differences, an irregular-triangulation P1 finite
//!   element Poisson matrix, anisotropic grids) and for FE-style
//!   clique-assembled SPD matrices with a tunable coupling strength,
//! * [`suite`] — the synthetic stand-in registry for the paper's 14
//!   SuiteSparse test matrices (Table 1),
//! * [`io`] — Matrix Market (`.mtx`) reading and writing,
//! * [`vecops`] — the handful of dense-vector kernels the solvers use.
#![cfg_attr(feature = "nightly-simd", feature(portable_simd))]

pub mod analysis;
pub mod csr;
pub mod dense;
pub mod gen;
pub mod io;
pub mod io_bin;
pub mod krylov;
pub mod reorder;
pub mod suite;
pub mod vecops;

pub use csr::{CooBuilder, CsrMatrix};
pub use dense::DenseMatrix;

/// Errors produced by the sparse substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// A matrix dimension or index was inconsistent.
    Shape(String),
    /// The matrix was structurally or numerically unsuitable
    /// (e.g. a zero diagonal where a positive one is required).
    Numeric(String),
    /// A Matrix Market file could not be parsed.
    Parse(String),
    /// An I/O error, stringified (keeps the error type `Clone + PartialEq`).
    Io(String),
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::Shape(m) => write!(f, "shape error: {m}"),
            SparseError::Numeric(m) => write!(f, "numeric error: {m}"),
            SparseError::Parse(m) => write!(f, "parse error: {m}"),
            SparseError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SparseError>;
