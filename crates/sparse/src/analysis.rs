//! Matrix analysis: the structural and spectral quantities that predict
//! how the methods in this workspace behave.
//!
//! The headline diagnostic is [`jacobi_spectral_radius`]: for an SPD matrix
//! scaled to unit diagonal, (point) Jacobi converges iff
//! `ρ(I − A) < 1`, and Block Jacobi's behaviour interpolates between that
//! and Gauss–Seidel as the blocks grow — the mechanism behind the paper's
//! Figure 9. The suite generators in [`crate::suite`] are tuned against
//! these numbers.

use crate::{vecops, CsrMatrix};

/// Summary statistics of a (square, structurally symmetric) matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Rows.
    pub n: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Mean nonzeros per row.
    pub avg_row_nnz: f64,
    /// Maximum nonzeros in any row.
    pub max_row_nnz: usize,
    /// Matrix bandwidth.
    pub bandwidth: usize,
    /// Fraction of rows that are strictly diagonally dominant.
    pub diag_dominant_fraction: f64,
    /// Smallest value of `|a_ii| − Σ_{j≠i} |a_ij|` over all rows
    /// (negative when some row is not diagonally dominant).
    pub min_dominance_margin: f64,
    /// Fraction of off-diagonal entries that are positive (clique-assembled
    /// matrices have 1.0; Poisson matrices 0.0).
    pub positive_offdiag_fraction: f64,
}

/// Computes [`MatrixStats`].
pub fn matrix_stats(a: &CsrMatrix) -> MatrixStats {
    let n = a.nrows();
    let mut max_row_nnz = 0;
    let mut dominant = 0usize;
    let mut min_margin = f64::INFINITY;
    let mut pos_off = 0usize;
    let mut off_total = 0usize;
    for i in 0..n {
        let cols = a.row_cols(i);
        let vals = a.row_values(i);
        max_row_nnz = max_row_nnz.max(cols.len());
        let mut diag = 0.0f64;
        let mut off_sum = 0.0f64;
        for (&j, &v) in cols.iter().zip(vals) {
            if j == i {
                diag = v.abs();
            } else {
                off_sum += v.abs();
                off_total += 1;
                if v > 0.0 {
                    pos_off += 1;
                }
            }
        }
        let margin = diag - off_sum;
        min_margin = min_margin.min(margin);
        if margin > 0.0 {
            dominant += 1;
        }
    }
    MatrixStats {
        n,
        nnz: a.nnz(),
        avg_row_nnz: a.nnz() as f64 / n as f64,
        max_row_nnz,
        bandwidth: crate::reorder::bandwidth(a),
        diag_dominant_fraction: dominant as f64 / n as f64,
        min_dominance_margin: min_margin,
        positive_offdiag_fraction: if off_total == 0 {
            0.0
        } else {
            pos_off as f64 / off_total as f64
        },
    }
}

/// Estimates the spectral radius of the point-Jacobi iteration matrix
/// `G = I − D⁻¹A` by power iteration (`iters` steps from a deterministic
/// pseudo-random start). For symmetric unit-diagonal matrices `G` is
/// symmetric, so the power method converges to `ρ(G)`; Jacobi converges
/// iff the result is below 1.
pub fn jacobi_spectral_radius(a: &CsrMatrix, iters: usize) -> f64 {
    let n = a.nrows();
    let diag = a.diagonal().expect("square matrix");
    let mut v: Vec<f64> = (0..n)
        .map(|i| ((i as u64).wrapping_mul(0x9e3779b97f4a7c15) % 1000) as f64 / 1000.0 - 0.5)
        .collect();
    vecops::normalize(&mut v);
    let mut lambda: f64 = 0.0;
    let mut av = vec![0.0; n];
    for _ in 0..iters {
        // w = (I - D^{-1} A) v
        a.spmv(&v, &mut av);
        for i in 0..n {
            av[i] = v[i] - av[i] / diag[i];
        }
        lambda = vecops::norm2(&av);
        if lambda == 0.0 {
            return 0.0;
        }
        for i in 0..n {
            v[i] = av[i] / lambda;
        }
    }
    lambda
}

/// Estimates the largest eigenvalue of a symmetric matrix by power
/// iteration (used in tests to bound condition numbers).
pub fn largest_eigenvalue(a: &CsrMatrix, iters: usize) -> f64 {
    let n = a.nrows();
    let mut v: Vec<f64> = (0..n)
        .map(|i| (((i * 31 + 7) % 101) as f64) / 101.0 - 0.5)
        .collect();
    vecops::normalize(&mut v);
    let mut lambda = 0.0;
    let mut av = vec![0.0; n];
    for _ in 0..iters {
        a.spmv(&v, &mut av);
        lambda = vecops::norm2(&av);
        if lambda == 0.0 {
            return 0.0;
        }
        for i in 0..n {
            v[i] = av[i] / lambda;
        }
    }
    lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stats_of_poisson() {
        let a = gen::grid2d_poisson(6, 6);
        let s = matrix_stats(&a);
        assert_eq!(s.n, 36);
        assert_eq!(s.max_row_nnz, 5);
        assert_eq!(s.positive_offdiag_fraction, 0.0);
        // Boundary rows strictly dominant, interior rows weakly (margin 0).
        assert!(s.diag_dominant_fraction > 0.0);
        assert!(s.min_dominance_margin.abs() < 1e-12);
        assert_eq!(s.bandwidth, 6);
    }

    #[test]
    fn jacobi_radius_predicts_convergence() {
        // Poisson (unit-scaled): radius < 1.
        let mut p = gen::grid2d_poisson(10, 10);
        p.scale_unit_diagonal().unwrap();
        let rp = jacobi_spectral_radius(&p, 200);
        assert!(rp < 1.0, "poisson radius {rp}");
        // Strong clique coupling: radius > 1 (Jacobi diverges).
        let mut c = gen::clique_grid2d(
            10,
            10,
            gen::CliqueOptions {
                coupling: 0.8,
                ..Default::default()
            },
        );
        c.scale_unit_diagonal().unwrap();
        let rc = jacobi_spectral_radius(&c, 200);
        assert!(rc > 1.0, "clique radius {rc}");
        // Weak coupling: radius < 1.
        let mut w = gen::clique_grid2d(
            10,
            10,
            gen::CliqueOptions {
                coupling: 0.1,
                ..Default::default()
            },
        );
        w.scale_unit_diagonal().unwrap();
        let rw = jacobi_spectral_radius(&w, 200);
        assert!(rw < 1.0, "weak clique radius {rw}");
    }

    #[test]
    fn largest_eigenvalue_of_poisson_grid() {
        // 1D chain of length k has eigenvalues 2 - 2cos(pi j/(k+1)); the 2D
        // 6x6 grid's largest is their sum, just below 8.
        let a = gen::grid2d_poisson(6, 6);
        let l = largest_eigenvalue(&a, 500);
        assert!(l < 8.0 && l > 7.0, "lambda_max {l}");
    }

    #[test]
    fn clique_matrices_have_positive_offdiagonals() {
        let a = gen::clique_grid3d(4, 4, 4, Default::default());
        let s = matrix_stats(&a);
        assert_eq!(s.positive_offdiag_fraction, 1.0);
        assert!(s.min_dominance_margin < 0.0, "cliques are not dominant");
    }
}
