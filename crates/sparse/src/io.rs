//! Matrix Market (`.mtx`) reading and writing.
//!
//! Supports the `matrix coordinate real {general|symmetric}` and
//! `matrix coordinate pattern {general|symmetric}` headers, which covers
//! every SuiteSparse SPD matrix the paper uses, so a user with access to the
//! original collection can run the harness on the real inputs.

use crate::{CooBuilder, CsrMatrix, Result, SparseError};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Pattern,
    Integer,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
}

/// Reads a Matrix Market file from a reader.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CsrMatrix> {
    let mut lines = BufReader::new(reader).lines();

    let header = lines
        .next()
        .ok_or_else(|| SparseError::Parse("empty file".into()))?
        .map_err(SparseError::from)?;
    let h: Vec<String> = header
        .split_whitespace()
        .map(|s| s.to_lowercase())
        .collect();
    if h.len() < 5 || h[0] != "%%matrixmarket" || h[1] != "matrix" {
        return Err(SparseError::Parse(format!("bad header: {header}")));
    }
    if h[2] != "coordinate" {
        return Err(SparseError::Parse(
            "only coordinate format supported".into(),
        ));
    }
    let field = match h[3].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return Err(SparseError::Parse(format!("unsupported field: {other}"))),
    };
    let symmetry = match h[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => return Err(SparseError::Parse(format!("unsupported symmetry: {other}"))),
    };

    // Skip comments, read the size line.
    let size_line = loop {
        let line = lines
            .next()
            .ok_or_else(|| SparseError::Parse("missing size line".into()))?
            .map_err(SparseError::from)?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        break t.to_string();
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>()
                .map_err(|e| SparseError::Parse(e.to_string()))
        })
        .collect::<Result<_>>()?;
    if dims.len() != 3 {
        return Err(SparseError::Parse(format!("bad size line: {size_line}")));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut builder = CooBuilder::with_capacity(
        nrows,
        ncols,
        if symmetry == Symmetry::Symmetric {
            2 * nnz
        } else {
            nnz
        },
    );
    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(SparseError::from)?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = it
            .next()
            .ok_or_else(|| SparseError::Parse("missing row index".into()))?
            .parse()
            .map_err(|e: std::num::ParseIntError| SparseError::Parse(e.to_string()))?;
        let j: usize = it
            .next()
            .ok_or_else(|| SparseError::Parse("missing col index".into()))?
            .parse()
            .map_err(|e: std::num::ParseIntError| SparseError::Parse(e.to_string()))?;
        let v = match field {
            Field::Pattern => 1.0,
            Field::Real | Field::Integer => it
                .next()
                .ok_or_else(|| SparseError::Parse("missing value".into()))?
                .parse::<f64>()
                .map_err(|e| SparseError::Parse(e.to_string()))?,
        };
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(SparseError::Parse(format!("index ({i},{j}) out of bounds")));
        }
        // Matrix Market is 1-based.
        let (i, j) = (i - 1, j - 1);
        builder.push(i, j, v);
        if symmetry == Symmetry::Symmetric && i != j {
            builder.push(j, i, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse(format!(
            "expected {nnz} entries, found {seen}"
        )));
    }
    builder.build()
}

/// Reads a Matrix Market file from a path.
pub fn read_matrix_market_file<P: AsRef<Path>>(path: P) -> Result<CsrMatrix> {
    let file = std::fs::File::open(path)?;
    read_matrix_market(file)
}

/// Writes a matrix in `coordinate real general` format.
pub fn write_matrix_market<W: Write>(a: &CsrMatrix, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", a.nrows(), a.ncols(), a.nnz())?;
    for i in 0..a.nrows() {
        for (j, v) in a.row(i) {
            writeln!(w, "{} {} {:.17e}", i + 1, j + 1, v)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Writes a matrix to a file in Matrix Market format.
pub fn write_matrix_market_file<P: AsRef<Path>>(a: &CsrMatrix, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_matrix_market(a, file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::grid2d_poisson;

    #[test]
    fn roundtrip_general() {
        let a = grid2d_poisson(4, 3);
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn reads_symmetric_lower_triangle() {
        let text = "\
%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 4
1 1 2.0
2 1 -1.0
2 2 2.0
3 3 2.0
";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 0), -1.0);
        assert_eq!(a.get(2, 2), 2.0);
        assert_eq!(a.nnz(), 5);
    }

    #[test]
    fn reads_pattern() {
        let text = "\
%%MatrixMarket matrix coordinate pattern general
2 2 2
1 1
2 2
";
        let a = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(1, 1), 1.0);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_matrix_market("garbage\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix array real general\n1 1\n1.0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn rejects_wrong_count_and_bounds() {
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(short.as_bytes()).is_err());
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(oob.as_bytes()).is_err());
        let zero = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(zero.as_bytes()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let a = grid2d_poisson(3, 3);
        let dir = std::env::temp_dir().join("dsw_io_test.mtx");
        write_matrix_market_file(&a, &dir).unwrap();
        let b = read_matrix_market_file(&dir).unwrap();
        assert_eq!(a, b);
        let _ = std::fs::remove_file(&dir);
    }
}
