//! Symmetric permutations and the reverse Cuthill–McKee ordering.
//!
//! Row numbering affects the sequential methods' sweeps (Gauss–Seidel
//! order), the tie-breaking of the Southwell criteria, and cache locality
//! of the kernels; RCM is the classic bandwidth-reducing ordering and is
//! provided both for experimentation and for preprocessing Matrix Market
//! inputs with poor orderings.

use crate::{CooBuilder, CsrMatrix, Result, SparseError};
use std::collections::VecDeque;

/// A permutation `perm` with `perm[new] = old` semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<usize>,
    inv: Vec<usize>,
}

impl Permutation {
    /// Wraps a `new → old` map, validating that it is a permutation.
    pub fn from_new_to_old(perm: Vec<usize>) -> Result<Self> {
        let n = perm.len();
        let mut inv = vec![usize::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            if old >= n || inv[old] != usize::MAX {
                return Err(SparseError::Shape(format!(
                    "not a permutation: duplicate or out-of-range index {old}"
                )));
            }
            inv[old] = new;
        }
        Ok(Permutation { perm, inv })
    }

    /// The identity permutation.
    pub fn identity(n: usize) -> Self {
        Permutation {
            perm: (0..n).collect(),
            inv: (0..n).collect(),
        }
    }

    /// Length.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Old index of new position `new`.
    #[inline]
    pub fn old_of(&self, new: usize) -> usize {
        self.perm[new]
    }

    /// New position of old index `old`.
    #[inline]
    pub fn new_of(&self, old: usize) -> usize {
        self.inv[old]
    }

    /// The reversed permutation (used to turn Cuthill–McKee into RCM).
    pub fn reversed(&self) -> Permutation {
        let mut perm = self.perm.clone();
        perm.reverse();
        Permutation::from_new_to_old(perm).expect("reversal preserves permutation")
    }

    /// Applies the symmetric permutation to a square matrix:
    /// `B[new_i, new_j] = A[old_i, old_j]`.
    pub fn apply_symmetric(&self, a: &CsrMatrix) -> Result<CsrMatrix> {
        if a.nrows() != a.ncols() || a.nrows() != self.len() {
            return Err(SparseError::Shape(
                "permutation/matrix dimension mismatch".into(),
            ));
        }
        let mut b = CooBuilder::with_capacity(a.nrows(), a.ncols(), a.nnz());
        for new_i in 0..a.nrows() {
            let old_i = self.perm[new_i];
            for (old_j, v) in a.row(old_i) {
                b.push(new_i, self.inv[old_j], v);
            }
        }
        b.build()
    }

    /// Permutes a vector from old to new numbering.
    pub fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.len());
        self.perm.iter().map(|&old| x[old]).collect()
    }

    /// Permutes a vector from new back to old numbering.
    pub fn apply_vec_inverse(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.len());
        let mut out = vec![0.0; x.len()];
        for (new, &old) in self.perm.iter().enumerate() {
            out[old] = x[new];
        }
        out
    }
}

/// The reverse Cuthill–McKee ordering of a structurally symmetric matrix:
/// a BFS from a pseudo-peripheral vertex with neighbors visited in
/// increasing-degree order, then reversed.
pub fn reverse_cuthill_mckee(a: &CsrMatrix) -> Permutation {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "RCM needs a square matrix");
    let degree = |v: usize| a.row_cols(v).iter().filter(|&&c| c != v).count();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    let mut scratch: Vec<usize> = Vec::new();

    for component_seed in 0..n {
        if visited[component_seed] {
            continue;
        }
        // Pseudo-peripheral start: two BFS passes from the seed.
        let start = bfs_last(a, component_seed);
        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            scratch.clear();
            scratch.extend(
                a.row_cols(v)
                    .iter()
                    .copied()
                    .filter(|&w| w != v && !visited[w]),
            );
            scratch.sort_by_key(|&w| degree(w));
            for &w in &scratch {
                if !visited[w] {
                    visited[w] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    Permutation::from_new_to_old(order)
        .expect("BFS covers every vertex exactly once")
        .reversed()
}

fn bfs_last(a: &CsrMatrix, start: usize) -> usize {
    let n = a.nrows();
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[start] = true;
    queue.push_back(start);
    let mut last = start;
    while let Some(v) = queue.pop_front() {
        last = v;
        for &w in a.row_cols(v) {
            if !seen[w] {
                seen[w] = true;
                queue.push_back(w);
            }
        }
    }
    last
}

/// Matrix bandwidth: `max |i − j|` over stored entries.
pub fn bandwidth(a: &CsrMatrix) -> usize {
    let mut bw = 0usize;
    for i in 0..a.nrows() {
        for &j in a.row_cols(i) {
            bw = bw.max(i.abs_diff(j));
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn permutation_roundtrips() {
        let p = Permutation::from_new_to_old(vec![2, 0, 1]).unwrap();
        assert_eq!(p.old_of(0), 2);
        assert_eq!(p.new_of(2), 0);
        let x = vec![10.0, 20.0, 30.0];
        let y = p.apply_vec(&x);
        assert_eq!(y, vec![30.0, 10.0, 20.0]);
        assert_eq!(p.apply_vec_inverse(&y), x);
    }

    #[test]
    fn rejects_non_permutation() {
        assert!(Permutation::from_new_to_old(vec![0, 0]).is_err());
        assert!(Permutation::from_new_to_old(vec![0, 5]).is_err());
    }

    #[test]
    fn symmetric_permutation_preserves_spectrum_sample() {
        // Check A and P A P^T agree on x^T A x for permuted vectors.
        let a = gen::grid2d_poisson(5, 4);
        let p = reverse_cuthill_mckee(&a);
        let b = p.apply_symmetric(&a).unwrap();
        assert_eq!(a.nnz(), b.nnz());
        let x = gen::random_guess(a.nrows(), 3);
        let px = p.apply_vec(&x);
        let xtax = crate::vecops::dot(&x, &a.mul_vec(&x));
        let ptbp = crate::vecops::dot(&px, &b.mul_vec(&px));
        assert!((xtax - ptbp).abs() < 1e-12);
        assert!(b.is_symmetric(1e-12));
    }

    #[test]
    fn rcm_reduces_bandwidth_of_shuffled_grid() {
        // Shuffle a grid matrix, then verify RCM recovers a small bandwidth.
        let a = gen::grid2d_poisson(12, 12);
        let n = a.nrows();
        // A deterministic "bad" permutation: bit-reversal-ish stride shuffle.
        let bad: Vec<usize> = (0..n).map(|i| (i * 89) % n).collect();
        let bad = Permutation::from_new_to_old(bad).unwrap();
        let shuffled = bad.apply_symmetric(&a).unwrap();
        let before = bandwidth(&shuffled);
        let rcm = reverse_cuthill_mckee(&shuffled);
        let after = bandwidth(&rcm.apply_symmetric(&shuffled).unwrap());
        assert!(
            after * 3 < before,
            "RCM should cut the bandwidth: {before} -> {after}"
        );
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        let mut b = CooBuilder::new(4, 4);
        for i in 0..4 {
            b.push(i, i, 1.0);
        }
        b.push_sym(0, 1, -1.0);
        // vertices 2,3 isolated from 0,1 (3 connected to 2).
        b.push_sym(2, 3, -1.0);
        let a = b.build().unwrap();
        let p = reverse_cuthill_mckee(&a);
        assert_eq!(p.len(), 4);
        // Every vertex appears exactly once (checked by constructor).
    }
}
