//! Compressed sparse row matrices and a coordinate-format builder.

use crate::{Result, SparseError};

/// A square or rectangular sparse matrix in compressed sparse row format.
///
/// Rows are stored contiguously; within each row, column indices are strictly
/// increasing. All solvers in this workspace assume this invariant, and
/// [`CooBuilder::build`] establishes it (summing duplicates).
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    /// Row pointer array, length `nrows + 1`.
    row_ptr: Vec<usize>,
    /// Column indices, length `nnz`, sorted within each row.
    col_idx: Vec<usize>,
    /// Nonzero values, parallel to `col_idx`.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts, validating the invariants.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.len() != nrows + 1 {
            return Err(SparseError::Shape(format!(
                "row_ptr length {} != nrows+1 = {}",
                row_ptr.len(),
                nrows + 1
            )));
        }
        if row_ptr[0] != 0 || *row_ptr.last().expect("len checked = nrows+1 >= 1") != col_idx.len()
        {
            return Err(SparseError::Shape(
                "row_ptr must start at 0 and end at nnz".into(),
            ));
        }
        if col_idx.len() != values.len() {
            return Err(SparseError::Shape("col_idx/values length mismatch".into()));
        }
        for i in 0..nrows {
            if row_ptr[i] > row_ptr[i + 1] {
                return Err(SparseError::Shape(format!(
                    "row_ptr not monotone at row {i}"
                )));
            }
            let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::Shape(format!(
                        "columns not strictly increasing in row {i}"
                    )));
                }
            }
            if let Some(&c) = row.last() {
                if c >= ncols {
                    return Err(SparseError::Shape(format!(
                        "column index {c} out of bounds in row {i}"
                    )));
                }
            }
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// An `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Row pointer slice (length `nrows + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index slice.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Values slice.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable values slice (pattern is immutable).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The `(col, value)` pairs of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.row_ptr[i]..self.row_ptr[i + 1];
        self.col_idx[range.clone()]
            .iter()
            .copied()
            .zip(self.values[range].iter().copied())
    }

    /// Column indices of row `i`.
    #[inline]
    pub fn row_cols(&self, i: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Values of row `i`.
    #[inline]
    pub fn row_values(&self, i: usize) -> &[f64] {
        &self.values[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Looks up entry `(i, j)` by binary search; zero if not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let cols = self.row_cols(i);
        match cols.binary_search(&j) {
            Ok(k) => self.values[self.row_ptr[i] + k],
            Err(_) => 0.0,
        }
    }

    /// The diagonal as a dense vector (square matrices only).
    pub fn diagonal(&self) -> Result<Vec<f64>> {
        if self.nrows != self.ncols {
            return Err(SparseError::Shape("diagonal of non-square matrix".into()));
        }
        Ok((0..self.nrows).map(|i| self.get(i, i)).collect())
    }

    /// Dense `y = A x`.
    ///
    /// The per-row accumulation walks 4-entry chunks (bounds checks hoisted,
    /// products computed lane-wise) but folds the products into the
    /// accumulator in the original left-to-right order, so the result is
    /// bit-identical to the naive scalar loop.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv: x length mismatch");
        assert_eq!(y.len(), self.nrows, "spmv: y length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            *yi = crate::vecops::gather_dot(&self.values[lo..hi], &self.col_idx[lo..hi], x);
        }
    }

    /// Allocating variant of [`CsrMatrix::spmv`].
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.spmv(x, &mut y);
        y
    }

    /// The residual `r = b - A x`.
    pub fn residual(&self, b: &[f64], x: &[f64]) -> Vec<f64> {
        let mut r = self.mul_vec(x);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        r
    }

    /// Transpose (also used to obtain CSC access to the same matrix).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for j in 0..self.ncols {
            counts[j + 1] += counts[j];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts;
        for i in 0..self.nrows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let c = self.col_idx[k];
                let dst = next[c];
                next[c] += 1;
                col_idx[dst] = i;
                values[dst] = self.values[k];
            }
        }
        // Rows of the transpose are filled in increasing original-row order,
        // so columns are already sorted.
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Returns `true` if the matrix is structurally and numerically symmetric
    /// to within `tol` (absolute).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        if t.row_ptr != self.row_ptr || t.col_idx != self.col_idx {
            return false;
        }
        self.values
            .iter()
            .zip(&t.values)
            .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Symmetrically scales the matrix to unit diagonal:
    /// `A ← D^{-1/2} A D^{-1/2}` with `D = diag(A)`.
    ///
    /// This is the normalization the paper applies to every test matrix
    /// ("symmetrically scaled to have unit diagonal values"). Returns the
    /// scaling vector `d^{-1/2}` so right-hand sides / solutions can be
    /// mapped between the scaled and unscaled systems. Fails if any diagonal
    /// entry is not strictly positive.
    pub fn scale_unit_diagonal(&mut self) -> Result<Vec<f64>> {
        let diag = self.diagonal()?;
        let mut dinv_sqrt = Vec::with_capacity(diag.len());
        for (i, &d) in diag.iter().enumerate() {
            if d <= 0.0 {
                return Err(SparseError::Numeric(format!(
                    "non-positive diagonal {d} at row {i}; cannot unit-scale"
                )));
            }
            dinv_sqrt.push(1.0 / d.sqrt());
        }
        for i in 0..self.nrows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                self.values[k] *= dinv_sqrt[i] * dinv_sqrt[self.col_idx[k]];
            }
        }
        Ok(dinv_sqrt)
    }

    /// Extracts the principal submatrix on `rows` (which must be sorted and
    /// unique), relabelling indices to `0..rows.len()`.
    pub fn principal_submatrix(&self, rows: &[usize]) -> CsrMatrix {
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]));
        let mut global_to_local = vec![usize::MAX; self.ncols];
        for (local, &g) in rows.iter().enumerate() {
            global_to_local[g] = local;
        }
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for &g in rows {
            for k in self.row_ptr[g]..self.row_ptr[g + 1] {
                let lc = global_to_local[self.col_idx[k]];
                if lc != usize::MAX {
                    col_idx.push(lc);
                    values.push(self.values[k]);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            nrows: rows.len(),
            ncols: rows.len(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Converts to a dense row-major buffer (tests and small solves only).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.nrows * self.ncols];
        for i in 0..self.nrows {
            for (j, v) in self.row(i) {
                out[i * self.ncols + j] = v;
            }
        }
        out
    }
}

/// A coordinate-format accumulator used to assemble matrices.
///
/// Duplicate entries are summed on [`CooBuilder::build`], which is exactly
/// the semantics finite-element assembly needs.
#[derive(Debug, Clone, Default)]
pub struct CooBuilder {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooBuilder {
    /// Creates a builder for an `nrows × ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooBuilder {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Creates a builder with a capacity hint.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooBuilder {
            nrows,
            ncols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of accumulated (possibly duplicate) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds `v` to entry `(i, j)`.
    ///
    /// # Panics
    /// If `(i, j)` is out of bounds — in release builds too. A silent
    /// out-of-range entry would otherwise ride along until `build`
    /// (or corrupt assembly logic that reads `entries` back), so the
    /// bounds check is unconditional.
    pub fn push(&mut self, i: usize, j: usize, v: f64) {
        assert!(
            i < self.nrows && j < self.ncols,
            "entry ({i},{j}) out of bounds for {}x{} builder",
            self.nrows,
            self.ncols
        );
        self.entries.push((i, j, v));
    }

    /// Adds `v` at `(i, j)` and `(j, i)` (off-diagonal symmetric pair).
    pub fn push_sym(&mut self, i: usize, j: usize, v: f64) {
        self.push(i, j, v);
        if i != j {
            self.push(j, i, v);
        }
    }

    /// Builds the CSR matrix, sorting entries and summing duplicates.
    /// Entries that sum to exactly zero are kept (pattern-preserving).
    pub fn build(mut self) -> Result<CsrMatrix> {
        self.entries.sort_unstable_by_key(|e| (e.0, e.1));
        let mut row_ptr = vec![0usize; self.nrows + 1];
        let mut col_idx: Vec<usize> = Vec::with_capacity(self.entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.entries.len());
        let mut prev: Option<(usize, usize)> = None;
        for &(i, j, v) in &self.entries {
            if i >= self.nrows || j >= self.ncols {
                return Err(SparseError::Shape(format!("entry ({i},{j}) out of bounds")));
            }
            if prev == Some((i, j)) {
                *values.last_mut().expect("prev set implies a pushed value") += v;
                continue;
            }
            prev = Some((i, j));
            col_idx.push(j);
            values.push(v);
            row_ptr[i + 1] += 1;
        }
        // The per-row counts in row_ptr[1..] become offsets by prefix sum.
        for i in 0..self.nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        CsrMatrix::from_parts(self.nrows, self.ncols, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [ 2 -1  0 ]
        // [-1  2 -1 ]
        // [ 0 -1  2 ]
        let mut b = CooBuilder::new(3, 3);
        for i in 0..3 {
            b.push(i, i, 2.0);
        }
        b.push_sym(0, 1, -1.0);
        b.push_sym(1, 2, -1.0);
        b.build().unwrap()
    }

    #[test]
    fn builder_sorts_and_sums_duplicates() {
        let mut b = CooBuilder::new(2, 2);
        b.push(1, 0, 1.0);
        b.push(0, 0, 2.0);
        b.push(1, 0, 3.0);
        b.push(0, 1, -1.0);
        let a = b.build().unwrap();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(1, 0), 4.0);
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(1, 1), 0.0);
    }

    #[test]
    fn builder_rejects_out_of_bounds() {
        let mut b = CooBuilder::new(2, 2);
        b.entries.push((5, 0, 1.0)); // bypass push's check
        assert!(matches!(b.build(), Err(SparseError::Shape(_))));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_bounds_check_is_unconditional() {
        // Regression: this was a debug_assert!, so release builds silently
        // accepted garbage indices until build() (or never, for callers
        // reading entries back). It must abort in every profile.
        let mut b = CooBuilder::new(2, 2);
        b.push(5, 0, 1.0);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = small();
        let x = vec![1.0, 2.0, 3.0];
        let y = a.mul_vec(&x);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn residual_is_b_minus_ax() {
        let a = small();
        let x = vec![1.0, 1.0, 1.0];
        let b = vec![1.0, 0.0, 1.0];
        let r = a.residual(&b, &x);
        assert_eq!(r, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn transpose_of_symmetric_is_identical() {
        let a = small();
        let t = a.transpose();
        assert_eq!(a, t);
        assert!(a.is_symmetric(0.0));
    }

    #[test]
    fn transpose_rectangular() {
        let mut b = CooBuilder::new(2, 3);
        b.push(0, 2, 5.0);
        b.push(1, 0, 7.0);
        let a = b.build().unwrap();
        let t = a.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.get(2, 0), 5.0);
        assert_eq!(t.get(0, 1), 7.0);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn unit_diagonal_scaling() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, 4.0);
        b.push(1, 1, 9.0);
        b.push_sym(0, 1, -1.0);
        let mut a = b.build().unwrap();
        let d = a.scale_unit_diagonal().unwrap();
        assert_eq!(d, vec![0.5, 1.0 / 3.0]);
        assert!((a.get(0, 0) - 1.0).abs() < 1e-15);
        assert!((a.get(1, 1) - 1.0).abs() < 1e-15);
        assert!((a.get(0, 1) + 1.0 / 6.0).abs() < 1e-15);
        assert!(a.is_symmetric(1e-15));
    }

    #[test]
    fn scaling_rejects_nonpositive_diagonal() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        b.push(1, 1, -2.0);
        let mut a = b.build().unwrap();
        assert!(matches!(
            a.scale_unit_diagonal(),
            Err(SparseError::Numeric(_))
        ));
    }

    #[test]
    fn principal_submatrix_extracts_block() {
        let a = small();
        let s = a.principal_submatrix(&[0, 2]);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.get(0, 0), 2.0);
        assert_eq!(s.get(1, 1), 2.0);
        assert_eq!(s.get(0, 1), 0.0);
        let s2 = a.principal_submatrix(&[1, 2]);
        assert_eq!(s2.get(0, 1), -1.0);
    }

    #[test]
    fn identity_acts_as_identity() {
        let i = CsrMatrix::identity(4);
        let x = vec![3.0, -1.0, 0.5, 2.0];
        assert_eq!(i.mul_vec(&x), x);
    }

    #[test]
    fn get_returns_zero_for_missing() {
        let a = small();
        assert_eq!(a.get(0, 2), 0.0);
    }

    #[test]
    fn from_parts_validates() {
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::from_parts(1, 1, vec![0, 2], vec![0, 0], vec![1.0, 2.0]).is_err());
        assert!(CsrMatrix::from_parts(1, 2, vec![0, 2], vec![1, 0], vec![1.0, 2.0]).is_err());
        assert!(CsrMatrix::from_parts(1, 2, vec![0, 2], vec![0, 5], vec![1.0, 2.0]).is_err());
        assert!(CsrMatrix::from_parts(1, 2, vec![0, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn to_dense_roundtrip_values() {
        let a = small();
        let d = a.to_dense();
        assert_eq!(d[0], 2.0);
        assert_eq!(d[1], -1.0);
        assert_eq!(d[5], -1.0);
        assert_eq!(d[8], 2.0);
    }
}
