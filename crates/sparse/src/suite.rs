//! Synthetic stand-ins for the paper's 14 SuiteSparse test matrices (Table 1).
//!
//! The originals (27M–114M nonzeros) are distributed out-of-band by the
//! paper's authors and are far beyond a single-core simulator, so each entry
//! here is a scaled-down synthetic matrix engineered to sit in the same
//! *Block Jacobi regime* the paper observed for its namesake:
//!
//! * `Diverges` — BJ never reaches ‖r‖₂ = 0.1 at high process counts
//!   (most matrices in Table 2),
//! * `ConvergesThenDiverges` — BJ reaches 0.1, then diverges if more steps
//!   are taken (Geo_1438, Hook_1498 in Fig. 7),
//! * `AlwaysConverges` — BJ never diverged (af_5_k101).
//!
//! The regime dial is the clique coupling `c` (see [`crate::gen::clique`]).
//! Every matrix is SPD and is symmetrically scaled to unit diagonal by
//! [`SuiteEntry::build`], exactly as in §4.2 of the paper.
//!
//! If you have the original SuiteSparse files, point
//! [`SuiteEntry::load_real`] at the directory holding them (Matrix Market
//! or DSWB binary); the loader converts `.mtx` files to a binary cache on
//! first read so reruns skip ASCII parsing.

use crate::gen::fe::FeMeshOptions;
use crate::gen::{clique_grid2d, clique_grid3d, fe_clique, grid2d_poisson, CliqueOptions};
use crate::{CsrMatrix, SparseError};
use std::path::Path;

/// The Block Jacobi behaviour the paper reports for the original matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockJacobiRegime {
    /// BJ diverges (or stalls) before reaching ‖r‖₂ = 0.1 at 8192 processes.
    Diverges,
    /// BJ reaches 0.1 but diverges if iterated further.
    ConvergesThenDiverges,
    /// BJ always converged in the paper's runs.
    AlwaysConverges,
}

/// Structural recipe for a stand-in matrix.
#[derive(Debug, Clone, Copy)]
pub enum Recipe {
    /// 3D hexahedral clique assembly (`nx, ny, nz`).
    Clique3d(usize, usize, usize, CliqueOptions),
    /// 2D quadrilateral clique assembly (`nx, ny`).
    Clique2d(usize, usize, CliqueOptions),
    /// Unstructured triangle clique assembly.
    FeClique(FeMeshOptions, CliqueOptions),
    /// 5-point FD Poisson (the Jacobi-friendly end).
    Poisson2d(usize, usize),
}

/// One row of the (synthetic) Table 1.
#[derive(Debug, Clone, Copy)]
pub struct SuiteEntry {
    /// Name of the SuiteSparse matrix this stands in for.
    pub name: &'static str,
    /// Rows of the *original* matrix (for the Table 1 printout).
    pub paper_n: u64,
    /// Nonzeros of the original matrix.
    pub paper_nnz: u64,
    /// The Block Jacobi regime observed in the paper.
    pub regime: BlockJacobiRegime,
    /// How the stand-in is generated.
    pub recipe: Recipe,
}

impl SuiteEntry {
    /// Builds the stand-in matrix and applies the paper's symmetric
    /// unit-diagonal scaling.
    pub fn build(&self) -> CsrMatrix {
        let mut a = self.build_unscaled();
        a.scale_unit_diagonal()
            .expect("suite matrices are SPD with positive diagonals");
        a
    }

    /// Builds the stand-in without the unit-diagonal scaling.
    pub fn build_unscaled(&self) -> CsrMatrix {
        match self.recipe {
            Recipe::Clique3d(nx, ny, nz, o) => clique_grid3d(nx, ny, nz, o),
            Recipe::Clique2d(nx, ny, o) => clique_grid2d(nx, ny, o),
            Recipe::FeClique(m, o) => fe_clique(m, o),
            Recipe::Poisson2d(nx, ny) => grid2d_poisson(nx, ny),
        }
    }

    /// Loads the *real* SuiteSparse matrix this entry stands in for from
    /// `dir`, applying the paper's symmetric unit-diagonal scaling exactly
    /// like the synthetic stand-ins.
    ///
    /// The loader prefers the binary cache and falls back to Matrix
    /// Market: `<name>.mtx.bin`, then `<name>.bin`, then `<name>.mtx`.
    /// After a successful `.mtx` parse it writes `<name>.mtx.bin` next to
    /// the source (best effort — a read-only directory is fine) so the
    /// next load takes the bulk binary path instead of ASCII parsing.
    pub fn load_real<P: AsRef<Path>>(&self, dir: P) -> crate::Result<CsrMatrix> {
        let dir = dir.as_ref();
        let bin_cache = dir.join(format!("{}.mtx.bin", self.name));
        let mut a = if bin_cache.is_file() {
            crate::io_bin::read_bin_file(&bin_cache)?
        } else {
            let bare_bin = dir.join(format!("{}.bin", self.name));
            if bare_bin.is_file() {
                crate::io_bin::read_bin_file(&bare_bin)?
            } else {
                let mtx = dir.join(format!("{}.mtx", self.name));
                if !mtx.is_file() {
                    return Err(SparseError::Io(format!(
                        "no {}.mtx[.bin] under {}",
                        self.name,
                        dir.display()
                    )));
                }
                let parsed = crate::io::read_matrix_market_file(&mtx)?;
                let _ = crate::io_bin::write_bin_file(&parsed, &bin_cache);
                parsed
            }
        };
        a.scale_unit_diagonal()?;
        Ok(a)
    }

    /// A reduced-size version of the same recipe (dimensions multiplied by
    /// `factor`, minimum 3), for fast tests. Same coupling/regime character.
    pub fn build_small(&self, factor: f64) -> CsrMatrix {
        let s = |d: usize| ((d as f64 * factor).round() as usize).max(3);
        let mut a = match self.recipe {
            Recipe::Clique3d(nx, ny, nz, o) => clique_grid3d(s(nx), s(ny), s(nz), o),
            Recipe::Clique2d(nx, ny, o) => clique_grid2d(s(nx), s(ny), o),
            Recipe::FeClique(m, o) => {
                let m = FeMeshOptions {
                    nx: s(m.nx),
                    ny: s(m.ny),
                    ..m
                };
                fe_clique(m, o)
            }
            Recipe::Poisson2d(nx, ny) => grid2d_poisson(s(nx), s(ny)),
        };
        a.scale_unit_diagonal()
            .expect("generated SPD matrices have nonzero diagonals");
        a
    }
}

const fn c3(coupling: f64, weight_jump: f64, seed: u64) -> CliqueOptions {
    CliqueOptions {
        coupling,
        weight_jump,
        hot_fraction: 0.0,
        hot_coupling: 0.0,
        seed,
    }
}

/// A recipe with a localized strong-coupling region (the
/// converge-then-diverge dial for Block Jacobi; see
/// [`crate::gen::clique::CliqueOptions::hot_fraction`]).
const fn c3_hot(
    coupling: f64,
    weight_jump: f64,
    hot_fraction: f64,
    hot_coupling: f64,
    seed: u64,
) -> CliqueOptions {
    CliqueOptions {
        coupling,
        weight_jump,
        hot_fraction,
        hot_coupling,
        seed,
    }
}

/// The 14-entry suite, in the paper's Table 1 order.
pub fn suite() -> Vec<SuiteEntry> {
    use BlockJacobiRegime::*;
    use Recipe::*;
    vec![
        SuiteEntry {
            name: "Flan_1565",
            paper_n: 1_564_794,
            paper_nnz: 114_165_372,
            regime: Diverges,
            recipe: Clique3d(40, 40, 40, c3(0.36, 0.30, 101)),
        },
        SuiteEntry {
            name: "audikw_1",
            paper_n: 943_695,
            paper_nnz: 77_651_847,
            regime: Diverges,
            recipe: Clique3d(36, 36, 36, c3(0.36, 0.40, 102)),
        },
        SuiteEntry {
            name: "Serena",
            paper_n: 1_382_121,
            paper_nnz: 64_122_743,
            regime: Diverges,
            recipe: Clique3d(38, 38, 38, c3(0.36, 0.30, 103)),
        },
        SuiteEntry {
            name: "Geo_1438",
            paper_n: 1_371_480,
            paper_nnz: 60_169_842,
            regime: ConvergesThenDiverges,
            recipe: Clique3d(38, 38, 38, c3_hot(0.21, 0.20, 0.20, 0.60, 104)),
        },
        SuiteEntry {
            name: "Hook_1498",
            paper_n: 1_468_023,
            paper_nnz: 59_344_451,
            regime: ConvergesThenDiverges,
            recipe: Clique3d(37, 37, 37, c3_hot(0.21, 0.20, 0.20, 0.53, 105)),
        },
        SuiteEntry {
            name: "bone010",
            paper_n: 986_703,
            paper_nnz: 47_851_783,
            regime: Diverges,
            recipe: Clique3d(34, 34, 34, c3(0.37, 0.30, 106)),
        },
        SuiteEntry {
            name: "ldoor",
            paper_n: 909_537,
            paper_nnz: 42_451_151,
            regime: Diverges,
            recipe: Clique2d(210, 160, c3(0.88, 0.20, 107)),
        },
        SuiteEntry {
            name: "boneS10",
            paper_n: 914_898,
            paper_nnz: 40_878_708,
            regime: Diverges,
            recipe: Clique3d(33, 33, 33, c3(0.37, 0.25, 108)),
        },
        SuiteEntry {
            name: "Emilia_923",
            paper_n: 908_712,
            paper_nnz: 40_359_114,
            regime: Diverges,
            recipe: Clique3d(34, 34, 34, c3(0.50, 0.40, 109)),
        },
        SuiteEntry {
            name: "inline_1",
            paper_n: 503_712,
            paper_nnz: 36_816_170,
            regime: Diverges,
            recipe: Clique2d(180, 140, c3(0.85, 0.30, 110)),
        },
        SuiteEntry {
            name: "Fault_639",
            paper_n: 616_923,
            paper_nnz: 27_224_065,
            regime: Diverges,
            recipe: Clique3d(32, 32, 32, c3(0.55, 0.40, 111)),
        },
        SuiteEntry {
            name: "StocF-1465",
            paper_n: 1_436_033,
            paper_nnz: 20_976_285,
            regime: Diverges,
            recipe: Clique3d(40, 36, 30, c3(0.36, 0.30, 112)),
        },
        SuiteEntry {
            name: "msdoor",
            paper_n: 404_785,
            paper_nnz: 19_162_085,
            regime: Diverges,
            recipe: Clique2d(160, 120, c3(0.82, 0.20, 113)),
        },
        SuiteEntry {
            name: "af_5_k101",
            paper_n: 503_625,
            paper_nnz: 17_550_675,
            regime: AlwaysConverges,
            recipe: FeClique(
                FeMeshOptions {
                    nx: 230,
                    ny: 230,
                    jitter: 0.25,
                    seed: 114,
                },
                c3(0.30, 0.20, 114),
            ),
        },
    ]
}

/// Looks up a suite entry by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<SuiteEntry> {
    suite()
        .into_iter()
        .find(|e| e.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_fourteen_unique_entries() {
        let s = suite();
        assert_eq!(s.len(), 14);
        let mut names: Vec<_> = s.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(by_name("flan_1565").is_some());
        assert!(by_name("AF_5_K101").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn small_builds_are_unit_diagonal_spd_symmetric() {
        for e in suite() {
            let a = e.build_small(0.12);
            assert!(a.nrows() > 0, "{} empty", e.name);
            assert!(a.is_symmetric(1e-12), "{} not symmetric", e.name);
            for i in 0..a.nrows() {
                assert!((a.get(i, i) - 1.0).abs() < 1e-12, "{} diag", e.name);
            }
            assert!(
                crate::dense::Cholesky::factor_csr(&a).is_ok(),
                "{} not SPD",
                e.name
            );
        }
    }

    #[test]
    fn full_build_one_entry() {
        // Building every full entry is slow for a unit test; spot-check the
        // smallest one end to end.
        let e = by_name("msdoor").unwrap();
        let a = e.build();
        assert_eq!(a.nrows(), 160 * 120);
        assert!((a.get(0, 0) - 1.0).abs() < 1e-12);
    }
}
