//! Asynchronous-backend cost of DS vs PS vs BJ at the default sweep
//! point of the `async` experiment (`max_lag = 4`, `straggler_skew =
//! 0.5`): each `*_run` case times one full `run_method` drive — the
//! probabilistic tick scheduler, maintained monitoring with exact
//! verification, and the convergence check to ‖r‖₂ ≤ 0.1 — on a §4.2
//! Poisson problem.
//!
//! Alongside the timings, `record_metric` rows archive the deterministic
//! outcome of one run per method (scheduler ticks to the target and
//! per-rank messages to the target). CI's quick mode reads those rows
//! from `results/BENCH_async.json` and gates on the paper's headline
//! surviving asynchrony: DS must spend fewer messages per rank than PS.

use criterion::{criterion_group, criterion_main, record_metric, Criterion};
use dsw_bench::experiments::async_convergence::{DEFAULT_LAG, DEFAULT_SKEW, TARGET};
use dsw_bench::harness::{setup_problem, suite_partition};
use dsw_core::dist::{run_method, DistOptions, ExecBackend, Method};
use dsw_rma::AsyncOptions;
use dsw_sparse::gen;

fn bench_async_convergence(c: &mut Criterion) {
    // 24×24 §4.2 Poisson over 18 ranks: the same construction as the
    // `async` experiment, sized so a full drive stays in the
    // milliseconds and quick mode finishes in seconds.
    let g = 24usize;
    let mut a = gen::grid2d_poisson(g, g);
    a.scale_unit_diagonal().unwrap();
    let prob = setup_problem(a, 11);
    let part = suite_partition(&prob.a, g * g / 32, 1);
    let opts = DistOptions {
        max_steps: 200,
        target_residual: Some(TARGET),
        backend: ExecBackend::Async(AsyncOptions {
            advance_probability: 0.6,
            max_lag: DEFAULT_LAG,
            seed: 1,
            straggler_skew: DEFAULT_SKEW,
        }),
        ..DistOptions::default()
    };

    let mut group = c.benchmark_group("async_convergence");
    group.sample_size(10);
    for (tag, method) in [
        ("ds", Method::DistributedSouthwell),
        ("ps", Method::ParallelSouthwell),
        ("bj", Method::BlockJacobi),
    ] {
        // One run outside the timing loop pins the deterministic outcome
        // the CI gate checks (the backend is seeded, so every iteration
        // below reproduces it bit-for-bit).
        let rep = run_method(method, &prob.a, &prob.b, &prob.x0, &part, &opts);
        // A miss at the sweep point is data, not a fatal error: emit the
        // sentinel (-1) so the archived JSON still carries a row per method
        // and the CI gate can flag it without killing the whole bench job.
        let (ticks, msgs) = match (rep.converged_at, rep.comm_to_reach(TARGET)) {
            (Some(t), Some(m)) => (t as f64, m),
            _ => {
                eprintln!("warning: {tag} did not reach the target at the default sweep point");
                (-1.0, -1.0)
            }
        };
        record_metric(
            "async_convergence",
            &format!("{tag}_ticks_to_target"),
            ticks,
        );
        record_metric(
            "async_convergence",
            &format!("{tag}_msgs_per_rank_to_target"),
            msgs,
        );
        group.bench_function(&format!("{tag}_run"), |bench| {
            bench.iter(|| run_method(method, &prob.a, &prob.b, &prob.x0, &part, &opts))
        });
    }
    group.finish();
}

criterion_group!(async_convergence, bench_async_convergence);
criterion_main!(async_convergence);
