//! Criterion benches regenerating the paper's *tables* at reduced scale:
//! one group per table (table1, table2, table3, table4) plus the ablation
//! group for the design-choice studies called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use dsw_bench::harness::{setup_problem, suite_partition, ExperimentCtx};
use dsw_core::dist::{run_method, DistOptions, DsConfig, Method};
use dsw_sparse::suite;

fn small_ctx() -> ExperimentCtx {
    let mut ctx = ExperimentCtx::smoke();
    ctx.scale = 0.15;
    ctx
}

fn bench_table1(c: &mut Criterion) {
    // Matrix construction cost for the whole (reduced) inventory.
    let ctx = small_ctx();
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("build_suite", |bench| {
        bench.iter(|| {
            suite::suite()
                .iter()
                .map(|e| ctx.build_suite_matrix(e).nnz())
                .sum::<usize>()
        })
    });
    g.finish();
}

fn bench_table2(c: &mut Criterion) {
    // The per-matrix measurement unit of Table 2: a 50-step run of each
    // method on a representative matrix.
    let ctx = small_ctx();
    let e = suite::by_name("msdoor").unwrap();
    let prob = setup_problem(ctx.build_suite_matrix(&e), 1);
    let part = suite_partition(&prob.a, ctx.scaled_ranks(), 1);
    let opts = DistOptions {
        max_steps: 50,
        target_residual: None,
        divergence_cutoff: None,
        ..DistOptions::default()
    };
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    for m in [
        Method::BlockJacobi,
        Method::ParallelSouthwell,
        Method::DistributedSouthwell,
    ] {
        g.bench_function(&format!("msdoor_{}", m.label()), |bench| {
            bench.iter(|| run_method(m, &prob.a, &prob.b, &prob.x0, &part, &opts))
        });
    }
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    // Communication-breakdown measurement: PS vs DS to the 0.1 target.
    let ctx = small_ctx();
    let e = suite::by_name("af_5_k101").unwrap();
    let prob = setup_problem(ctx.build_suite_matrix(&e), 1);
    let part = suite_partition(&prob.a, ctx.scaled_ranks(), 1);
    let opts = DistOptions {
        max_steps: 50,
        target_residual: Some(0.1),
        ..DistOptions::default()
    };
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    for m in [Method::ParallelSouthwell, Method::DistributedSouthwell] {
        g.bench_function(&format!("af_5_k101_{}_to_0.1", m.label()), |bench| {
            bench.iter(|| {
                let rep = run_method(m, &prob.a, &prob.b, &prob.x0, &part, &opts);
                (
                    rep.records.last().unwrap().msgs_solve,
                    rep.records.last().unwrap().msgs_residual,
                )
            })
        });
    }
    g.finish();
}

fn bench_table4(c: &mut Criterion) {
    // Per-parallel-step cost: a single step of each method (the quantity
    // Table 4 averages over 50 steps).
    use dsw_core::dist::{distribute, BlockJacobiRank, DistributedSouthwellRank};
    use dsw_rma::{CostModel, ExecMode, Executor};
    let ctx = small_ctx();
    let e = suite::by_name("Serena").unwrap();
    let prob = setup_problem(ctx.build_suite_matrix(&e), 1);
    let part = suite_partition(&prob.a, ctx.scaled_ranks(), 1);
    let mut g = c.benchmark_group("table4");
    g.sample_size(20);
    g.bench_function("serena_BJ_step", |bench| {
        let locals = distribute(&prob.a, &prob.b, &prob.x0, &part).unwrap();
        let mut ex = Executor::new(
            BlockJacobiRank::build(locals),
            CostModel::default(),
            ExecMode::Sequential,
        );
        bench.iter(|| ex.step())
    });
    g.bench_function("serena_DS_step", |bench| {
        let locals = distribute(&prob.a, &prob.b, &prob.x0, &part).unwrap();
        let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
        let r0 = prob.a.residual(&prob.b, &prob.x0);
        let mut ex = Executor::new(
            DistributedSouthwellRank::build(locals, &norms, &r0),
            CostModel::default(),
            ExecMode::Sequential,
        );
        bench.iter(|| ex.step())
    });
    g.finish();
}

fn bench_ablation(c: &mut Criterion) {
    // The design-choice ablations: DS with and without ghost refinement.
    let ctx = small_ctx();
    let e = suite::by_name("msdoor").unwrap();
    let prob = setup_problem(ctx.build_suite_matrix(&e), 77);
    let part = suite_partition(&prob.a, ctx.scaled_ranks(), 1);
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    for (name, cfg) in [
        ("ds_full", DsConfig::default()),
        (
            "ds_no_ghost_refinement",
            DsConfig {
                refine_estimates: false,
                ..DsConfig::default()
            },
        ),
    ] {
        let opts = DistOptions {
            max_steps: 50,
            target_residual: Some(0.1),
            ds_config: cfg,
            ..DistOptions::default()
        };
        g.bench_function(name, |bench| {
            bench.iter(|| {
                run_method(
                    Method::DistributedSouthwell,
                    &prob.a,
                    &prob.b,
                    &prob.x0,
                    &part,
                    &opts,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    tables,
    bench_table1,
    bench_table2,
    bench_table3,
    bench_table4,
    bench_ablation
);
criterion_main!(tables);
