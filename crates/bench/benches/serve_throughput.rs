//! Serving-layer throughput at the ISSUE's gate point: 64+ tenants'
//! warm re-solves multiplexed over one shared pool versus a serialized
//! stateless baseline that re-partitions / re-distributes / rebuilds per
//! request (both warm-start from the previous solution, so the iteration
//! work is identical — the gap is per-solve setup amortization).
//!
//! `record_metric` rows archive the measured point (solves/sec on both
//! sides, speedup, p50/p99 latency, pool utilization, queue depth) into
//! `results/BENCH_serve.json`; CI's quick mode (`DSW_BENCH_QUICK=1`,
//! 64 tenants) gates on `speedup ≥ 2`. Full runs use 128 tenants. The
//! gated rows run [`GATE_METHOD`] (Block Jacobi — fast convergence tail,
//! so the measurement isolates the serving layer); a `ds_*` row records
//! Distributed Southwell at the same point, ungated (see
//! `experiments::serve` for why its tail makes a gate fragile). The
//! timed `window_drain` case measures one complete submit-and-drain
//! scheduler window at the gate's tenant count.

use criterion::{criterion_group, criterion_main, record_metric, Criterion};
use dsw_bench::experiments::serve::{
    run_point, serve_opts, serve_problem, tenant_rhs, GATE_METHOD, GATE_SPEEDUP, JOBS, QUANTUM,
    WORKERS,
};
use dsw_core::dist::Method;
use dsw_serve::{ServeConfig, SolveService, TenantId};

fn bench_serve(c: &mut Criterion) {
    let quick = std::env::var("DSW_BENCH_QUICK").is_ok();
    let tenants = if quick { 64 } else { 128 };

    // One measured point outside the timing loop pins the archived gate
    // numbers (the workload is deterministic; only wall-clock varies).
    let row = run_point(GATE_METHOD, tenants);
    if row.speedup < GATE_SPEEDUP {
        eprintln!(
            "warning: multiplexed speedup {:.2}x at {tenants} tenants is below the {GATE_SPEEDUP}x gate",
            row.speedup
        );
    }
    record_metric("serve_throughput", "tenants", row.tenants as f64);
    record_metric("serve_throughput", "solves", row.solves as f64);
    record_metric(
        "serve_throughput",
        "serve_solves_per_sec",
        row.serve_solves_per_sec,
    );
    record_metric(
        "serve_throughput",
        "serialized_solves_per_sec",
        row.serialized_solves_per_sec,
    );
    record_metric("serve_throughput", "speedup", row.speedup);
    record_metric("serve_throughput", "p50_ms", row.p50_ms);
    record_metric("serve_throughput", "p99_ms", row.p99_ms);
    record_metric("serve_throughput", "pool_utilization", row.pool_utilization);
    record_metric(
        "serve_throughput",
        "max_queue_depth",
        row.max_queue_depth as f64,
    );

    // The paper's method at the same point, recorded but not gated.
    let ds = run_point(Method::DistributedSouthwell, tenants);
    record_metric(
        "serve_throughput",
        "ds_serve_solves_per_sec",
        ds.serve_solves_per_sec,
    );
    record_metric(
        "serve_throughput",
        "ds_serialized_solves_per_sec",
        ds.serialized_solves_per_sec,
    );
    record_metric("serve_throughput", "ds_speedup", ds.speedup);
    record_metric("serve_throughput", "ds_p50_ms", ds.p50_ms);
    record_metric("serve_throughput", "ds_p99_ms", ds.p99_ms);
    record_metric(
        "serve_throughput",
        "ds_pool_utilization",
        ds.pool_utilization,
    );

    // Timed case: a full submit-and-drain window over warm sessions. The
    // service persists across iterations (that is the point); the rhs
    // drifts with an iteration counter so every window does real work.
    let (a, _b, x0, part) = serve_problem();
    let n = a.nrows();
    let opts = serve_opts();
    let mut svc = SolveService::new(ServeConfig {
        workers: WORKERS,
        quantum: QUANTUM,
        queue_capacity: tenants * (JOBS + 1),
        seed: 1,
    });
    let ids: Vec<TenantId> = (0..tenants)
        .map(|t| {
            svc.add_tenant(
                GATE_METHOD,
                a.clone(),
                &tenant_rhs(n, t, 0),
                &x0,
                &part,
                &opts,
            )
        })
        .collect();
    // Warm every session once so the timed windows measure steady state.
    for (t, &id) in ids.iter().enumerate() {
        svc.submit(id, tenant_rhs(n, t, 0)).expect("queue has room");
    }
    svc.run_until_idle();

    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    let mut window = 0usize;
    group.bench_function(&format!("window_drain_{tenants}"), |bench| {
        bench.iter(|| {
            window += 1;
            for (t, &id) in ids.iter().enumerate() {
                svc.submit(id, tenant_rhs(n, t, 1 + window % JOBS))
                    .expect("queue has room");
            }
            let stats = svc.run_until_idle();
            for &id in &ids {
                let _ = svc.take_reports(id);
            }
            stats.solves
        })
    });
    group.finish();
}

criterion_group!(serve_throughput, bench_serve);
criterion_main!(serve_throughput);
