//! The tentpole comparison: what it costs to know the global residual at
//! every superstep.
//!
//! `*_step_exact` is one superstep plus the old monitor — gather the
//! distributed solution into a scratch vector, SpMV, norm: `O(n + nnz)`
//! work per step regardless of how many ranks are still active.
//! `*_step_maintained` is one superstep plus the incremental monitor —
//! sum two cached scalars per rank: `O(P)` work. Each pair runs on the
//! same problem, so the difference is purely the monitoring strategy;
//! this is the per-step cost the driver's `MonitorMode` selects between.
//!
//! The problem is the Southwell methods' motivating regime: a large
//! system (80³ Poisson, 512 000 rows, 3.5 M nonzeros, 512 ranks) whose
//! residual is concentrated in a small region — a 16³ cube of initial
//! error, the "local update after a localized change" scenario of §1 of
//! the paper. The Southwell selection keeps only the ranks near the
//! error front active (≈ 5–15 of 512 at steady state), so a superstep is
//! cheap — and the old exact monitor, which pays the full `O(n + nnz)`
//! gather + SpMV every step regardless of activity, dominates the wall
//! clock. That is precisely the overhead the tentpole removes.
//!
//! `eval_exact_512` / `eval_maintained_512` time the monitor calls alone
//! (no superstep) on two nnz sizes to expose the asymptotics directly:
//! the maintained cost depends only on `P`, the exact cost on `n + nnz`.

use criterion::{criterion_group, criterion_main, Criterion};
use dsw_core::dist::{
    distribute, BlockJacobiRank, DistributedSouthwellRank, LocalSystem, Monitor,
    ParallelSouthwellRank,
};
use dsw_partition::{partition_multilevel, Graph, MultilevelOptions};
use dsw_rma::{CostModel, ExecMode, Executor, RankAlgorithm};
use dsw_sparse::{gen, CsrMatrix};

/// The monitor-bench problem: a `dim³` Poisson system over 512 ranks
/// with the initial error confined to a 16³ cube, so the Southwell
/// selection keeps activity local while the exact monitor still pays for
/// the whole system.
fn monitor_problem_512(dim: usize) -> (CsrMatrix, Vec<f64>, Vec<LocalSystem>, Vec<f64>, Vec<f64>) {
    let mut a = gen::grid3d_poisson(dim, dim, dim);
    a.scale_unit_diagonal().unwrap();
    let n = a.nrows();
    let b = vec![0.0; n];
    let full = gen::random_guess(n, 3);
    let mut x0 = vec![0.0; n];
    for z in 0..16 {
        for y in 0..16 {
            for x in 0..16 {
                let i = (z * dim + y) * dim + x;
                x0[i] = full[i];
            }
        }
    }
    let g = Graph::from_matrix(&a);
    let part = partition_multilevel(&g, 512, MultilevelOptions::default());
    let locals = distribute(&a, &b, &x0, &part).unwrap();
    let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
    let r0 = a.residual(&b, &x0);
    (a, b, locals, norms, r0)
}

/// Supersteps run before timing starts. The first steps of a run are
/// atypical (the seeded error has not yet shaped the activity pattern);
/// a long run spends almost all of its steps in the steady-state regime
/// the warm-up reaches, where the Southwell selection keeps only the
/// error-front ranks working and the monitor is the per-step fixed cost.
const WARMUP_STEPS: usize = 100;

/// Benches one method under both monitor modes: each iteration is one
/// superstep followed by one monitor evaluation, exactly the work the
/// driver does per step. Separate executors per mode so each advances
/// its own run.
fn bench_method_pair<A, F, L>(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    a: &CsrMatrix,
    b: &[f64],
    build: F,
    local_of: L,
) where
    A: RankAlgorithm,
    F: Fn() -> Vec<A>,
    L: Fn(&A) -> &LocalSystem,
{
    let mut ex = Executor::new(build(), CostModel::default(), ExecMode::Sequential);
    for _ in 0..WARMUP_STEPS {
        ex.step();
    }
    let mut mon = Monitor::new(a, b);
    group.bench_function(&format!("{name}_step_exact"), |bench| {
        bench.iter(|| {
            ex.step();
            mon.exact(ex.ranks(), &local_of)
        })
    });
    let mut ex = Executor::new(build(), CostModel::default(), ExecMode::Sequential);
    for _ in 0..WARMUP_STEPS {
        ex.step();
    }
    let mut mon = Monitor::new(a, b);
    group.bench_function(&format!("{name}_step_maintained"), |bench| {
        bench.iter(|| {
            ex.step();
            mon.maintained(ex.ranks()).map(|m| m.norm)
        })
    });
}

fn bench_monitor_512(c: &mut Criterion) {
    let (a, b, locals, norms, r0) = monitor_problem_512(80);
    let mut group = c.benchmark_group("monitor_512");
    group.sample_size(20);
    bench_method_pair(
        &mut group,
        "ds",
        &a,
        &b,
        || DistributedSouthwellRank::build(locals.clone(), &norms, &r0),
        |r: &DistributedSouthwellRank| &r.ls,
    );
    bench_method_pair(
        &mut group,
        "ps",
        &a,
        &b,
        || ParallelSouthwellRank::build(locals.clone(), &norms),
        |r: &ParallelSouthwellRank| &r.ls,
    );
    bench_method_pair(
        &mut group,
        "bj",
        &a,
        &b,
        || BlockJacobiRank::build(locals.clone()),
        |r: &BlockJacobiRank| &r.ls,
    );

    // The monitor calls in isolation, at two problem sizes with the same
    // rank count: the maintained evaluation reads two scalars per rank
    // (O(P) — the `_80` and `_40` numbers coincide), while the exact one
    // gathers `n` entries and multiplies `nnz` nonzeros (O(n + nnz) —
    // 512 000 rows / 3.5 M nnz vs 64 000 rows / 439 K nnz).
    for (tag, prob) in [
        ("80", (a, b, locals, norms, r0)),
        ("40", monitor_problem_512(40)),
    ] {
        let (a, b, locals, norms, r0) = prob;
        let ex = Executor::new(
            DistributedSouthwellRank::build(locals, &norms, &r0),
            CostModel::default(),
            ExecMode::Sequential,
        );
        let mut mon = Monitor::new(&a, &b);
        group.bench_function(&format!("eval_exact_512_grid{tag}"), |bench| {
            bench.iter(|| mon.exact(ex.ranks(), &|r: &DistributedSouthwellRank| &r.ls))
        });
        group.bench_function(&format!("eval_maintained_512_grid{tag}"), |bench| {
            bench.iter(|| mon.maintained(ex.ranks()).map(|m| m.norm))
        });
    }
    group.finish();
}

criterion_group!(monitor, bench_monitor_512);
criterion_main!(monitor);
