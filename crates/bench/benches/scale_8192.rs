//! Paper-scale step throughput: the arena/SoA + SIMD + slab-payload hot
//! paths at 4096 and 8192 ranks.
//!
//! Rows mirror `epoch_close` so the two files stay directly comparable:
//!
//! * `route_serial_{P}` — the pure-routing grid program (`GridRoute`
//!   shape: `BURST` solve puts to every 4-neighbor, no numerics), at 4096
//!   and 8192 ranks.
//! * `{ds,ps,bj}_step_serial_{P}` — the paper's solvers on the same 40³
//!   Poisson system `epoch_close` uses, so `ds_step_serial_4096` here is
//!   the row CI gates against the *checked-in* `BENCH_epoch_close.json`
//!   baseline (quick mode ≥ 2×; full runs archive ≥ 5× in
//!   `results/BENCH_scale.json`).
//!
//! Serial rows run on [`ExecMode::Sequential`] — the actual serial
//! configuration (no pool dispatch), bit-identical to every other mode by
//! the executor's determinism contract. `meta_workers` records the host
//! parallelism for context; per-row `route_ns` / `span_ns` breakdowns feed
//! the EXPERIMENTS.md table.

use criterion::{criterion_group, criterion_main, record_metric, Criterion};
use dsw_core::dist::{
    distribute, BlockJacobiRank, DistributedSouthwellRank, ParallelSouthwellRank,
};
use dsw_partition::{partition_multilevel, Graph, MultilevelOptions};
use dsw_rma::{CommClass, CostModel, Envelope, ExecMode, Executor, PhaseCtx, RankAlgorithm};
use dsw_sparse::gen;

/// Messages per neighbor per step in the routing rows (matches
/// `epoch_close`).
const BURST: u64 = 4;

/// Supersteps run before timing starts (matches `epoch_close`).
const WARMUP_STEPS: usize = 10;

/// A pure-routing rank on a `w × h` grid (the `epoch_close` shape).
struct GridRoute {
    id: usize,
    w: usize,
    h: usize,
    step: u64,
    sum: u64,
}

impl GridRoute {
    fn neighbors(&self) -> Vec<usize> {
        let (x, y) = (self.id % self.w, self.id / self.w);
        let mut out = Vec::new();
        if x > 0 {
            out.push(self.id - 1);
        }
        if x + 1 < self.w {
            out.push(self.id + 1);
        }
        if y > 0 {
            out.push(self.id - self.w);
        }
        if y + 1 < self.h {
            out.push(self.id + self.w);
        }
        out
    }
}

impl RankAlgorithm for GridRoute {
    type Msg = u64;

    fn phases(&self) -> usize {
        1
    }

    fn put_targets(&self) -> Option<Vec<usize>> {
        Some(self.neighbors())
    }

    fn phase(&mut self, _phase: usize, inbox: &[Envelope<u64>], ctx: &mut PhaseCtx<u64>) {
        for e in inbox {
            self.sum = self.sum.wrapping_add(e.payload);
        }
        for t in self.neighbors() {
            for k in 0..BURST {
                ctx.put(t, CommClass::Solve, self.step.wrapping_add(k), 16);
            }
        }
        self.step += 1;
    }
}

/// Grid side lengths giving exactly 4096 / 8192 ranks.
fn grid_dims(p: usize) -> (usize, usize) {
    match p {
        4096 => (64, 64),
        8192 => (128, 64),
        _ => unreachable!("unsupported rank count {p}"),
    }
}

fn grid_route(p: usize) -> Vec<GridRoute> {
    let (w, h) = grid_dims(p);
    (0..w * h)
        .map(|id| GridRoute {
            id,
            w,
            h,
            step: 0,
            sum: 0,
        })
        .collect()
}

/// Records the measured per-step `route_ns` / `span_ns` breakdown.
fn record_breakdown<A: RankAlgorithm>(ex: &Executor<A>, id_prefix: &str) {
    let steps = ex.stats.nsteps().max(1) as f64;
    record_metric(
        "scale_8192",
        &format!("{id_prefix}_route_ns_per_step"),
        ex.stats.total_route_ns() as f64 / steps,
    );
    record_metric(
        "scale_8192",
        &format!("{id_prefix}_span_ns_per_step"),
        ex.stats.total_span_ns() as f64 / steps,
    );
}

/// The three solver rank types behind one constructor indirection.
enum BuiltRanks {
    Ds(Vec<DistributedSouthwellRank>),
    Ps(Vec<ParallelSouthwellRank>),
    Bj(Vec<BlockJacobiRank>),
}

fn run_solver_bench<A: RankAlgorithm>(
    group: &mut criterion::BenchmarkGroup<'_>,
    id: &str,
    ranks: Vec<A>,
) {
    let mut ex = Executor::new(ranks, CostModel::default(), ExecMode::Sequential);
    for _ in 0..WARMUP_STEPS {
        ex.step();
    }
    group.bench_function(id, |bench| bench.iter(|| ex.step()));
    record_breakdown(&ex, id);
}

fn bench_scale(c: &mut Criterion) {
    let nworkers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    record_metric("scale_8192", "meta_workers", nworkers as f64);

    let mut group = c.benchmark_group("scale_8192");
    group.sample_size(20);
    for p in [4096usize, 8192] {
        let mut ex = Executor::new(grid_route(p), CostModel::default(), ExecMode::Sequential);
        for _ in 0..3 {
            ex.step();
        }
        group.bench_function(&format!("route_serial_{p}"), |bench| {
            bench.iter(|| ex.step())
        });
        record_breakdown(&ex, &format!("route_serial_{p}"));
    }

    // The epoch_close solver system: 40³ Poisson, unit diagonal, error
    // seeded in a 16³ cube — identical construction so the 4096-rank rows
    // are comparable against the archived epoch_close baselines.
    let dim = 40usize;
    let mut a = gen::grid3d_poisson(dim, dim, dim);
    a.scale_unit_diagonal()
        .expect("Poisson matrices have nonzero diagonals");
    let n = a.nrows();
    let b = vec![0.0; n];
    let full = gen::random_guess(n, 3);
    let mut x0 = vec![0.0; n];
    for z in 0..16 {
        for y in 0..16 {
            for x in 0..16 {
                x0[(z * dim + y) * dim + x] = full[(z * dim + y) * dim + x];
            }
        }
    }
    let g = Graph::from_matrix(&a);

    group.sample_size(10);
    for p in [4096usize, 8192] {
        let part = partition_multilevel(&g, p, MultilevelOptions::default());
        let locals = distribute(&a, &b, &x0, &part).expect("bench system distributes cleanly");
        let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
        let r0 = a.residual(&b, &x0);

        let mut bench_one = |name: &str, build: &dyn Fn() -> BuiltRanks| {
            let id = format!("{name}_step_serial_{p}");
            match build() {
                BuiltRanks::Ds(ranks) => run_solver_bench(&mut group, &id, ranks),
                BuiltRanks::Ps(ranks) => run_solver_bench(&mut group, &id, ranks),
                BuiltRanks::Bj(ranks) => run_solver_bench(&mut group, &id, ranks),
            }
        };
        bench_one("ds", &|| {
            BuiltRanks::Ds(DistributedSouthwellRank::build(locals.clone(), &norms, &r0))
        });
        bench_one("ps", &|| {
            BuiltRanks::Ps(ParallelSouthwellRank::build(locals.clone(), &norms))
        });
        bench_one("bj", &|| {
            BuiltRanks::Bj(BlockJacobiRank::build(locals.clone()))
        });
    }
    group.finish();
}

criterion_group!(scale_8192, bench_scale);
criterion_main!(scale_8192);
