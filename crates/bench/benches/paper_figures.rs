//! Criterion benches regenerating the paper's *figures* at reduced scale:
//! one group per figure (fig2, fig5, fig6, fig7, fig8, fig9).
//!
//! These measure the end-to-end experiment kernels; the full-size numbers
//! are produced by `cargo run --release -p dsw-bench --bin experiments`.

use criterion::{criterion_group, criterion_main, Criterion};
use dsw_bench::experiments::fig2::fe_problem;
use dsw_bench::experiments::scaling::scaling_points;
use dsw_bench::harness::{setup_problem, suite_partition, ExperimentCtx};
use dsw_core::dist::{run_method, DistOptions, Method};
use dsw_core::scalar::{
    distributed_southwell_scalar, gauss_seidel, jacobi, multicolor_gauss_seidel,
    parallel_southwell, sequential_southwell, ScalarOptions,
};
use dsw_multigrid::{Multigrid, Smoother};
use dsw_sparse::{gen, suite};

fn small_ctx() -> ExperimentCtx {
    let mut ctx = ExperimentCtx::smoke();
    ctx.scale = 0.15;
    ctx
}

fn bench_fig2(c: &mut Criterion) {
    let ctx = small_ctx();
    let (a, b) = fe_problem(&ctx);
    let n = a.nrows();
    let x0 = vec![0.0; n];
    let opts = ScalarOptions {
        max_relaxations: 3 * n as u64,
        target_residual: None,
        record_stride: (n as u64 / 16).max(1),
        seed: 7,
    };
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("gauss_seidel_3_sweeps", |bench| {
        bench.iter(|| gauss_seidel(&a, &b, &x0, &opts))
    });
    g.bench_function("sequential_southwell_3_sweeps", |bench| {
        bench.iter(|| sequential_southwell(&a, &b, &x0, &opts))
    });
    g.bench_function("parallel_southwell_3_sweeps", |bench| {
        bench.iter(|| parallel_southwell(&a, &b, &x0, &opts))
    });
    g.bench_function("multicolor_gs_3_sweeps", |bench| {
        bench.iter(|| multicolor_gauss_seidel(&a, &b, &x0, &opts))
    });
    g.bench_function("jacobi_3_sweeps", |bench| {
        bench.iter(|| jacobi(&a, &b, &x0, &opts))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let ctx = small_ctx();
    let (a, b) = fe_problem(&ctx);
    let n = a.nrows();
    let x0 = vec![0.0; n];
    let opts = ScalarOptions {
        max_relaxations: 3 * n as u64,
        target_residual: None,
        record_stride: (n as u64 / 16).max(1),
        seed: 7,
    };
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("distributed_southwell_scalar_3_sweeps", |bench| {
        bench.iter(|| distributed_southwell_scalar(&a, &b, &x0, &opts))
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    let dim = 31;
    let b = gen::random_rhs(dim * dim, 4);
    g.bench_function("vcycle9_gs_31", |bench| {
        bench.iter(|| Multigrid::new(dim, Smoother::gauss_seidel(1.0)).solve(&b, 9))
    });
    g.bench_function("vcycle9_dsw_half_31", |bench| {
        bench.iter(|| Multigrid::new(dim, Smoother::distributed_southwell(0.5, 9)).solve(&b, 9))
    });
    g.bench_function("vcycle9_dsw_full_31", |bench| {
        bench.iter(|| Multigrid::new(dim, Smoother::distributed_southwell(1.0, 9)).solve(&b, 9))
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    // One contrasting panel: the bone010 stand-in, all three methods over
    // 50 steps.
    let ctx = small_ctx();
    let e = suite::by_name("bone010").unwrap();
    let prob = setup_problem(ctx.build_suite_matrix(&e), 1);
    let part = suite_partition(&prob.a, ctx.scaled_ranks(), 1);
    let opts = DistOptions {
        max_steps: 50,
        target_residual: None,
        divergence_cutoff: None,
        ..DistOptions::default()
    };
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    for m in [
        Method::BlockJacobi,
        Method::ParallelSouthwell,
        Method::DistributedSouthwell,
    ] {
        g.bench_function(&format!("bone010_{}_50_steps", m.label()), |bench| {
            bench.iter(|| run_method(m, &prob.a, &prob.b, &prob.x0, &part, &opts))
        });
    }
    g.finish();
}

fn bench_fig8_fig9(c: &mut Criterion) {
    // The full (reduced-scale) scaling sweep backing both figures.
    let mut ctx = small_ctx();
    ctx.scale = 0.1;
    let mut g = c.benchmark_group("fig8_fig9");
    g.sample_size(10);
    g.bench_function("scaling_sweep", |bench| bench.iter(|| scaling_points(&ctx)));
    g.finish();
}

criterion_group!(
    figures,
    bench_fig2,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8_fig9
);
criterion_main!(figures);
