//! Coded-straggler-resilience cost of the redundant placement at the
//! `redundancy` experiment's gate point (`straggler_skew = 0.9`,
//! `max_lag = 4`): each `r*_run` case times one full `run_method` drive —
//! replica fan-out, first-arrival-wins reconciliation, logical lag
//! groups, and the convergence check to ‖r‖₂ ≤ 0.1 — on a §4.2 Poisson
//! problem.
//!
//! Alongside the timings, `record_metric` rows archive the deterministic
//! outcome of one run per replication factor (scheduler ticks to the
//! target, redundancy messages, reconciled duplicates). CI's quick mode
//! reads those rows from `results/BENCH_redundancy.json` and gates on the
//! tentpole's claim: in the straggler regime the r = 2 placement must
//! reach the target in fewer ticks than the uncoded run.

use criterion::{criterion_group, criterion_main, record_metric, Criterion};
use dsw_bench::experiments::redundancy::{GATE_R, LAG, STALL_SKEW, TARGET};
use dsw_bench::harness::{setup_problem, suite_partition};
use dsw_core::dist::{run_method, DistOptions, ExecBackend, Method, Redundancy};
use dsw_rma::AsyncOptions;
use dsw_sparse::gen;

fn bench_redundancy(c: &mut Criterion) {
    // 24×24 §4.2 Poisson over 18 ranks: the same construction as the
    // `async_convergence` bench, driven at the straggler gate point.
    let g = 24usize;
    let mut a = gen::grid2d_poisson(g, g);
    a.scale_unit_diagonal().unwrap();
    let prob = setup_problem(a, 11);
    let part = suite_partition(&prob.a, g * g / 32, 1);
    let opts_for = |r: usize| DistOptions {
        max_steps: 200,
        target_residual: Some(TARGET),
        backend: ExecBackend::Async(AsyncOptions {
            advance_probability: 0.6,
            max_lag: LAG,
            seed: 1,
            straggler_skew: STALL_SKEW,
        }),
        redundancy: Some(Redundancy::new(r)),
        ..DistOptions::default()
    };

    let mut group = c.benchmark_group("redundancy");
    group.sample_size(10);
    for r in [1usize, GATE_R, 3] {
        let opts = opts_for(r);
        // One run outside the timing loop pins the deterministic outcome
        // the CI gate checks (scheduler and placement are both seeded, so
        // every iteration below reproduces it bit-for-bit).
        let rep = run_method(
            Method::DistributedSouthwell,
            &prob.a,
            &prob.b,
            &prob.x0,
            &part,
            &opts,
        );
        // A miss at the gate point is data, not a fatal error: emit the
        // sentinel (-1) so the archived JSON still carries a row per r and
        // the CI gate can flag it without killing the whole bench job.
        let ticks = match rep.converged_at {
            Some(t) => t as f64,
            None => {
                eprintln!("warning: r = {r} did not reach the target at the straggler gate point");
                -1.0
            }
        };
        record_metric("redundancy", &format!("r{r}_ticks_to_target"), ticks);
        record_metric(
            "redundancy",
            &format!("r{r}_msgs_redundancy"),
            rep.stats.total_msgs_redundancy() as f64,
        );
        record_metric(
            "redundancy",
            &format!("r{r}_reconciled"),
            rep.stale_discards as f64,
        );
        group.bench_function(&format!("r{r}_run"), |bench| {
            bench.iter(|| {
                run_method(
                    Method::DistributedSouthwell,
                    &prob.a,
                    &prob.b,
                    &prob.x0,
                    &part,
                    &opts,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(redundancy, bench_redundancy);
criterion_main!(redundancy);
