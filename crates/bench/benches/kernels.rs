//! Micro-benchmarks of the computational kernels underneath the solvers:
//! SpMV, the local Gauss–Seidel sweep, the multilevel partitioner, and a
//! single superstep of the RMA executor.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dsw_core::dist::{
    distribute, BlockJacobiRank, DistributedSouthwellRank, LocalSystem, ParallelSouthwellRank,
};
use dsw_partition::{partition_multilevel, Graph, MultilevelOptions};
use dsw_rma::{CostModel, ExecMode, Executor, RankAlgorithm};
use dsw_sparse::gen;

fn bench_spmv(c: &mut Criterion) {
    let a = gen::grid3d_poisson(24, 24, 24);
    let x = gen::random_guess(a.nrows(), 1);
    let mut y = vec![0.0; a.nrows()];
    let mut g = c.benchmark_group("kernels");
    g.throughput(Throughput::Elements(a.nnz() as u64));
    g.bench_function("spmv_poisson3d_24", |b| b.iter(|| a.spmv(&x, &mut y)));
    g.finish();
}

fn bench_local_sweep(c: &mut Criterion) {
    let a = gen::grid3d_poisson(16, 16, 16);
    let n = a.nrows();
    let b = gen::random_rhs(n, 2);
    let x0 = vec![0.0; n];
    let g = Graph::from_matrix(&a);
    let part = partition_multilevel(&g, 8, MultilevelOptions::default());
    let locals = distribute(&a, &b, &x0, &part).unwrap();
    let mut group = c.benchmark_group("kernels");
    group.bench_function("gs_sweep_local_block", |bench| {
        let mut ls = locals[0].clone();
        let mut gdr = vec![0.0; ls.ext_cols.len()];
        bench.iter(|| {
            gdr.iter_mut().for_each(|v| *v = 0.0);
            ls.gs_sweep(&mut gdr)
        })
    });
    group.finish();
}

fn bench_partitioner(c: &mut Criterion) {
    let a = gen::grid2d_poisson(64, 64);
    let g = Graph::from_matrix(&a);
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    group.bench_function("multilevel_partition_4096_to_32", |b| {
        b.iter(|| partition_multilevel(&g, 32, MultilevelOptions::default()))
    });
    group.finish();
}

fn bench_executor_step(c: &mut Criterion) {
    let mut a = gen::grid2d_poisson(48, 48);
    a.scale_unit_diagonal().unwrap();
    let n = a.nrows();
    let b = vec![0.0; n];
    let x0 = gen::random_guess(n, 3);
    let g = Graph::from_matrix(&a);
    let part = partition_multilevel(&g, 32, MultilevelOptions::default());
    let locals = distribute(&a, &b, &x0, &part).unwrap();
    let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
    let r0 = a.residual(&b, &x0);
    let mut ex = Executor::new(
        DistributedSouthwellRank::build(locals, &norms, &r0),
        CostModel::default(),
        ExecMode::Sequential,
    );
    let mut group = c.benchmark_group("kernels");
    group.bench_function("ds_superstep_32_ranks", |bench| bench.iter(|| ex.step()));
    group.finish();
}

/// Shared setup for the 512-rank executor comparison: the §4.2 Poisson
/// problem (4096 rows) partitioned to the scaling sweep's top rank count.
fn executor_problem_512() -> (Vec<LocalSystem>, Vec<f64>, Vec<f64>) {
    let mut a = gen::grid2d_poisson(64, 64);
    a.scale_unit_diagonal().unwrap();
    let n = a.nrows();
    let b = vec![0.0; n];
    let x0 = gen::random_guess(n, 3);
    let g = Graph::from_matrix(&a);
    let part = partition_multilevel(&g, 512, MultilevelOptions::default());
    let locals = distribute(&a, &b, &x0, &part).unwrap();
    let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
    let r0 = a.residual(&b, &x0);
    (locals, norms, r0)
}

fn bench_one_mode<A: RankAlgorithm>(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    ranks: Vec<A>,
    mode: ExecMode,
) {
    let mut ex = Executor::new(ranks, CostModel::default(), mode);
    group.bench_function(name, |b| b.iter(|| ex.step()));
}

/// Old vs new executor on 512-rank supersteps: `pool4` is the persistent
/// work-stealing pool (`ExecMode::Threaded`), `spawn4` the legacy
/// per-phase `crossbeam::thread::scope` scheduler (`ThreadedSpawn`), with
/// `seq` as the single-thread floor. The pool's win is the amortized
/// thread start-up: `spawn4` pays a spawn+join per *phase*.
fn bench_executor_pool_vs_spawn(c: &mut Criterion) {
    let (locals, norms, r0) = executor_problem_512();
    let mut group = c.benchmark_group("executor_512");
    group.sample_size(10);
    for (label, mode) in [
        ("seq", ExecMode::Sequential),
        ("pool4", ExecMode::Threaded(4)),
        ("spawn4", ExecMode::ThreadedSpawn(4)),
    ] {
        bench_one_mode(
            &mut group,
            &format!("ds_step_512_{label}"),
            DistributedSouthwellRank::build(locals.clone(), &norms, &r0),
            mode,
        );
        bench_one_mode(
            &mut group,
            &format!("ps_step_512_{label}"),
            ParallelSouthwellRank::build(locals.clone(), &norms),
            mode,
        );
        bench_one_mode(
            &mut group,
            &format!("bj_step_512_{label}"),
            BlockJacobiRank::build(locals.clone()),
            mode,
        );
    }
    group.finish();
}

criterion_group!(
    kernels,
    bench_spmv,
    bench_local_sweep,
    bench_partitioner,
    bench_executor_step,
    bench_executor_pool_vs_spawn
);
criterion_main!(kernels);
