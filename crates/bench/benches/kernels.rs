//! Micro-benchmarks of the computational kernels underneath the solvers:
//! SpMV, the local Gauss–Seidel sweep, the multilevel partitioner, and a
//! single superstep of the RMA executor.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dsw_core::dist::{distribute, DistributedSouthwellRank};
use dsw_partition::{partition_multilevel, Graph, MultilevelOptions};
use dsw_rma::{CostModel, ExecMode, Executor};
use dsw_sparse::gen;

fn bench_spmv(c: &mut Criterion) {
    let a = gen::grid3d_poisson(24, 24, 24);
    let x = gen::random_guess(a.nrows(), 1);
    let mut y = vec![0.0; a.nrows()];
    let mut g = c.benchmark_group("kernels");
    g.throughput(Throughput::Elements(a.nnz() as u64));
    g.bench_function("spmv_poisson3d_24", |b| b.iter(|| a.spmv(&x, &mut y)));
    g.finish();
}

fn bench_local_sweep(c: &mut Criterion) {
    let a = gen::grid3d_poisson(16, 16, 16);
    let n = a.nrows();
    let b = gen::random_rhs(n, 2);
    let x0 = vec![0.0; n];
    let g = Graph::from_matrix(&a);
    let part = partition_multilevel(&g, 8, MultilevelOptions::default());
    let locals = distribute(&a, &b, &x0, &part).unwrap();
    let mut group = c.benchmark_group("kernels");
    group.bench_function("gs_sweep_local_block", |bench| {
        let mut ls = locals[0].clone();
        let mut gdr = vec![0.0; ls.ext_cols.len()];
        bench.iter(|| {
            gdr.iter_mut().for_each(|v| *v = 0.0);
            ls.gs_sweep(&mut gdr)
        })
    });
    group.finish();
}

fn bench_partitioner(c: &mut Criterion) {
    let a = gen::grid2d_poisson(64, 64);
    let g = Graph::from_matrix(&a);
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    group.bench_function("multilevel_partition_4096_to_32", |b| {
        b.iter(|| partition_multilevel(&g, 32, MultilevelOptions::default()))
    });
    group.finish();
}

fn bench_executor_step(c: &mut Criterion) {
    let mut a = gen::grid2d_poisson(48, 48);
    a.scale_unit_diagonal().unwrap();
    let n = a.nrows();
    let b = vec![0.0; n];
    let x0 = gen::random_guess(n, 3);
    let g = Graph::from_matrix(&a);
    let part = partition_multilevel(&g, 32, MultilevelOptions::default());
    let locals = distribute(&a, &b, &x0, &part).unwrap();
    let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
    let r0 = a.residual(&b, &x0);
    let mut ex = Executor::new(
        DistributedSouthwellRank::build(locals, &norms, &r0),
        CostModel::default(),
        ExecMode::Sequential,
    );
    let mut group = c.benchmark_group("kernels");
    group.bench_function("ds_superstep_32_ranks", |bench| bench.iter(|| ex.step()));
    group.finish();
}

criterion_group!(
    kernels,
    bench_spmv,
    bench_local_sweep,
    bench_partitioner,
    bench_executor_step
);
criterion_main!(kernels);
