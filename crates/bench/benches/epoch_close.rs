//! The tentpole comparison: what one epoch close costs, serial vs chunked
//! across the worker pool.
//!
//! Two tiers, both timing **full `Executor::step` loops** (the close is
//! not callable in isolation — and the end-to-end step is what the user
//! waits on):
//!
//! * `route_{serial,parallel}_{P}` — the routing-dominated regime: a
//!   synthetic grid program (`GridRoute`) whose phase does no numerical
//!   work and puts a fixed burst of messages to every neighbor, at 512 /
//!   2048 / 4096 ranks. Step wall-clock here is dispatch + close, so the
//!   pair isolates the close strategy; this is the pair CI gates on.
//! * `{ds,ps,bj}_step_{serial,parallel}_{P}` — the paper's solvers on a
//!   40³ Poisson system at the same three rank counts: how much of the
//!   routing win survives once real relaxation work shares the step.
//!
//! Alongside the timings, `record_metric` rows capture the measured
//! per-step breakdown (`route_ns` vs `span_ns`) for the EXPERIMENTS.md
//! table, and `meta_workers` records the worker count so the CI gate can
//! skip the ratio check on single-core runners (a pool of one cannot
//! speed anything up; the determinism contract is what the tests assert
//! there).

use criterion::{criterion_group, criterion_main, record_metric, Criterion};
use dsw_core::dist::{
    distribute, BlockJacobiRank, DistributedSouthwellRank, ParallelSouthwellRank,
};
use dsw_partition::{partition_multilevel, Graph, MultilevelOptions};
use dsw_rma::{
    CloseMode, CommClass, CostModel, Envelope, ExecMode, Executor, PhaseCtx, RankAlgorithm,
};
use dsw_sparse::gen;

/// Messages per neighbor per step in the routing microbench.
const BURST: u64 = 4;

/// A pure-routing rank on a `w × h` grid: every step it puts `BURST`
/// solve-class messages to each 4-neighbor and does no numerical work, so
/// the step's wall-clock is the delivery machinery itself.
struct GridRoute {
    id: usize,
    w: usize,
    h: usize,
    step: u64,
    sum: u64,
}

impl GridRoute {
    fn neighbors(&self) -> Vec<usize> {
        let (x, y) = (self.id % self.w, self.id / self.w);
        let mut out = Vec::new();
        if x > 0 {
            out.push(self.id - 1);
        }
        if x + 1 < self.w {
            out.push(self.id + 1);
        }
        if y > 0 {
            out.push(self.id - self.w);
        }
        if y + 1 < self.h {
            out.push(self.id + self.w);
        }
        out
    }
}

impl RankAlgorithm for GridRoute {
    type Msg = u64;

    fn phases(&self) -> usize {
        1
    }

    fn put_targets(&self) -> Option<Vec<usize>> {
        Some(self.neighbors())
    }

    fn phase(&mut self, _phase: usize, inbox: &[Envelope<u64>], ctx: &mut PhaseCtx<u64>) {
        for e in inbox {
            self.sum = self.sum.wrapping_add(e.payload);
        }
        for t in self.neighbors() {
            for k in 0..BURST {
                ctx.put(t, CommClass::Solve, self.step.wrapping_add(k), 16);
            }
        }
        self.step += 1;
    }
}

/// Grid side lengths giving exactly 512 / 2048 / 4096 ranks.
fn grid_dims(p: usize) -> (usize, usize) {
    match p {
        512 => (32, 16),
        2048 => (64, 32),
        4096 => (64, 64),
        _ => unreachable!("unsupported rank count {p}"),
    }
}

fn grid_route(p: usize) -> Vec<GridRoute> {
    let (w, h) = grid_dims(p);
    (0..w * h)
        .map(|id| GridRoute {
            id,
            w,
            h,
            step: 0,
            sum: 0,
        })
        .collect()
}

/// Runs a measured step loop and records the per-step `route_ns` /
/// `span_ns` breakdown for the EXPERIMENTS.md table.
fn record_breakdown<A: RankAlgorithm>(ex: &Executor<A>, id_prefix: &str) {
    let steps = ex.stats.nsteps().max(1) as f64;
    record_metric(
        "epoch_close",
        &format!("{id_prefix}_route_ns_per_step"),
        ex.stats.total_route_ns() as f64 / steps,
    );
    record_metric(
        "epoch_close",
        &format!("{id_prefix}_span_ns_per_step"),
        ex.stats.total_span_ns() as f64 / steps,
    );
}

fn bench_routing_micro(c: &mut Criterion, nworkers: usize) {
    let mut group = c.benchmark_group("epoch_close");
    group.sample_size(20);
    for p in [512usize, 2048, 4096] {
        for (tag, close) in [
            ("serial", CloseMode::Serial),
            ("parallel", CloseMode::Parallel),
        ] {
            let mut ex = Executor::new(
                grid_route(p),
                CostModel::default(),
                ExecMode::Threaded(nworkers),
            );
            ex.set_close_mode(close);
            for _ in 0..3 {
                ex.step();
            }
            group.bench_function(&format!("route_{tag}_{p}"), |bench| {
                bench.iter(|| ex.step())
            });
            record_breakdown(&ex, &format!("route_{tag}_{p}"));
        }
    }
    group.finish();
}

/// Supersteps run before timing starts: past the seeded transient, into
/// the steady activity pattern a long run actually spends its time in.
const WARMUP_STEPS: usize = 10;

fn bench_solvers(c: &mut Criterion, nworkers: usize) {
    // The solvers' motivating regime at bench scale: 40³ Poisson (64 000
    // rows, 439 K nonzeros) with the initial error confined to a 16³ cube.
    let dim = 40usize;
    let mut a = gen::grid3d_poisson(dim, dim, dim);
    a.scale_unit_diagonal().unwrap();
    let n = a.nrows();
    let b = vec![0.0; n];
    let full = gen::random_guess(n, 3);
    let mut x0 = vec![0.0; n];
    for z in 0..16 {
        for y in 0..16 {
            for x in 0..16 {
                x0[(z * dim + y) * dim + x] = full[(z * dim + y) * dim + x];
            }
        }
    }
    let g = Graph::from_matrix(&a);

    let mut group = c.benchmark_group("epoch_close");
    group.sample_size(10);
    for p in [512usize, 2048, 4096] {
        let part = partition_multilevel(&g, p, MultilevelOptions::default());
        let locals = distribute(&a, &b, &x0, &part).unwrap();
        let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
        let r0 = a.residual(&b, &x0);

        let mut bench_one = |name: &str, build: &dyn Fn() -> BuiltRanks| {
            for (tag, close) in [
                ("serial", CloseMode::Serial),
                ("parallel", CloseMode::Parallel),
            ] {
                let id = format!("{name}_step_{tag}_{p}");
                match build() {
                    BuiltRanks::Ds(ranks) => {
                        run_solver_bench(&mut group, &id, ranks, nworkers, close)
                    }
                    BuiltRanks::Ps(ranks) => {
                        run_solver_bench(&mut group, &id, ranks, nworkers, close)
                    }
                    BuiltRanks::Bj(ranks) => {
                        run_solver_bench(&mut group, &id, ranks, nworkers, close)
                    }
                }
            }
        };
        bench_one("ds", &|| {
            BuiltRanks::Ds(DistributedSouthwellRank::build(locals.clone(), &norms, &r0))
        });
        bench_one("ps", &|| {
            BuiltRanks::Ps(ParallelSouthwellRank::build(locals.clone(), &norms))
        });
        bench_one("bj", &|| {
            BuiltRanks::Bj(BlockJacobiRank::build(locals.clone()))
        });
    }
    group.finish();
}

/// The three solver rank types behind one constructor indirection, so the
/// serial/parallel pairing logic is written once.
enum BuiltRanks {
    Ds(Vec<DistributedSouthwellRank>),
    Ps(Vec<ParallelSouthwellRank>),
    Bj(Vec<BlockJacobiRank>),
}

fn run_solver_bench<A: RankAlgorithm>(
    group: &mut criterion::BenchmarkGroup<'_>,
    id: &str,
    ranks: Vec<A>,
    nworkers: usize,
    close: CloseMode,
) {
    let mut ex = Executor::new(ranks, CostModel::default(), ExecMode::Threaded(nworkers));
    ex.set_close_mode(close);
    for _ in 0..WARMUP_STEPS {
        ex.step();
    }
    group.bench_function(id, |bench| bench.iter(|| ex.step()));
    record_breakdown(&ex, id);
}

fn bench_epoch_close(c: &mut Criterion) {
    let nworkers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The CI gate reads this to skip the speedup ratio on single-core
    // runners, where a pool of one worker cannot beat the serial close.
    record_metric("epoch_close", "meta_workers", nworkers as f64);
    bench_routing_micro(c, nworkers);
    bench_solvers(c, nworkers);
}

criterion_group!(epoch_close, bench_epoch_close);
criterion_main!(epoch_close);
