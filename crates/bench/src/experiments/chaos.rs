//! Chaos study (beyond the paper's tables): Distributed Southwell on an
//! *unreliable* transport. The paper's protocol assumes MPI-3 RMA's
//! delivery guarantee; this experiment sweeps drop / duplicate / delay /
//! stall rates at the substrate's epoch boundaries and contrasts the bare
//! protocol with the recovery layer (sequenced delivery, periodic
//! invariant audits, freeze watchdog), reporting convergence, the message
//! and modelled-time overhead of recovery, and the self-healing counters.

use crate::harness::{setup_problem, suite_partition, write_csv, ExperimentCtx};
use dsw_core::dist::{run_method, DistOptions, DsConfig, Method, RecoveryConfig};
use dsw_rma::ChaosConfig;
use dsw_sparse::gen;

/// One fault scenario of the sweep.
struct Scenario {
    name: &'static str,
    chaos: ChaosConfig,
}

fn scenarios() -> Vec<Scenario> {
    let base = ChaosConfig::none();
    vec![
        Scenario {
            name: "reliable",
            chaos: base,
        },
        Scenario {
            name: "drop5",
            chaos: ChaosConfig {
                drop_rate: 0.05,
                seed: 1,
                ..base
            },
        },
        Scenario {
            name: "drop10",
            chaos: ChaosConfig {
                drop_rate: 0.10,
                seed: 1,
                ..base
            },
        },
        Scenario {
            name: "drop20",
            chaos: ChaosConfig {
                drop_rate: 0.20,
                seed: 1,
                ..base
            },
        },
        Scenario {
            name: "delay10",
            chaos: ChaosConfig {
                delay_rate: 0.10,
                max_delay_epochs: 3,
                seed: 2,
                ..base
            },
        },
        Scenario {
            name: "dup10",
            chaos: ChaosConfig {
                duplicate_rate: 0.10,
                seed: 3,
                ..base
            },
        },
        Scenario {
            name: "stall5",
            chaos: ChaosConfig {
                stall_rate: 0.05,
                stall_steps: 2,
                seed: 4,
                ..base
            },
        },
        Scenario {
            name: "mixed",
            chaos: ChaosConfig {
                drop_rate: 0.10,
                duplicate_rate: 0.05,
                delay_rate: 0.10,
                max_delay_epochs: 2,
                stall_rate: 0.03,
                stall_steps: 2,
                seed: 5,
                ..base
            },
        },
    ]
}

/// One row of the chaos table.
pub struct ChaosRow {
    /// Fault scenario label.
    pub scenario: &'static str,
    /// Whether the recovery layer was on.
    pub recovery: bool,
    /// Step at which ‖r‖₂ ≤ 0.1 was first met.
    pub converged_at: Option<usize>,
    /// Final true residual norm.
    pub final_residual: f64,
    /// Total delivered messages.
    pub msgs: u64,
    /// Recovery-class messages (audits, watchdog rebroadcasts).
    pub msgs_recovery: u64,
    /// Recovery share of the modelled communication time.
    pub recovery_time_share: f64,
    /// Total modelled wall-clock seconds.
    pub time: f64,
    /// Boundary rows overwritten by the invariant audit.
    pub drift_repairs: u64,
    /// Duplicate / stale / subsumed messages discarded.
    pub stale_discards: u64,
    /// Freeze-watchdog interventions.
    pub watchdog_nudges: u64,
    /// The run froze permanently.
    pub deadlocked: bool,
    /// Mean per-step load imbalance (slowest rank / mean measured compute
    /// time) — stalls and drops skew this beyond the protocol's own skew.
    pub mean_imbalance: f64,
    /// Executor worker utilization (busy / (span × workers)).
    pub worker_utilization: f64,
}

fn run_one(scenario: &Scenario, recovery: bool, ctx: &ExperimentCtx) -> ChaosRow {
    // §4.2 Poisson setup, sized with the context's scale: the smoke scale
    // reproduces the 16×16 / 8-rank acceptance problem of
    // `tests/failure_injection.rs`.
    let g = ((64.0 * ctx.scale).round() as usize).max(16);
    let mut a = gen::grid2d_poisson(g, g);
    a.scale_unit_diagonal().unwrap();
    let prob = setup_problem(a, 11);
    let p = (g * g / 32).max(8);
    let part = suite_partition(&prob.a, p, 1);
    let opts = DistOptions {
        max_steps: ctx.max_steps.max(400),
        target_residual: Some(0.1),
        ds_config: DsConfig {
            recovery: if recovery {
                RecoveryConfig::standard()
            } else {
                RecoveryConfig::off()
            },
            ..DsConfig::default()
        },
        chaos: scenario.chaos,
        ..DistOptions::default()
    };
    let rep = run_method(
        Method::DistributedSouthwell,
        &prob.a,
        &prob.b,
        &prob.x0,
        &part,
        &opts,
    );
    let last = rep.records.last().expect("at least the initial record");
    let comm = rep.stats.comm_cost();
    ChaosRow {
        scenario: scenario.name,
        recovery,
        converged_at: rep.converged_at,
        final_residual: last.residual_norm,
        msgs: rep.stats.total_msgs(),
        msgs_recovery: rep.stats.total_msgs_recovery(),
        recovery_time_share: if comm > 0.0 {
            rep.stats.comm_cost_recovery() / comm
        } else {
            0.0
        },
        time: rep.stats.total_time(),
        drift_repairs: rep.drift_repairs,
        stale_discards: rep.stale_discards,
        watchdog_nudges: rep.watchdog_nudges,
        deadlocked: rep.deadlocked,
        mean_imbalance: rep.mean_imbalance(),
        worker_utilization: rep.worker_utilization(),
    }
}

/// Runs the sweep: every scenario, recovery off and on.
pub fn run_chaos(ctx: &ExperimentCtx) -> Vec<ChaosRow> {
    let mut rows = Vec::new();
    for sc in scenarios() {
        rows.push(run_one(&sc, false, ctx));
        rows.push(run_one(&sc, true, ctx));
    }

    println!("\n=== chaos — DS on an unreliable transport (target ‖r‖₂ = 0.1) ===");
    println!(
        "{:<10} {:<9} {:>6} {:>10} {:>8} {:>7} {:>7} {:>9} {:>8} {:>8} {:>7}",
        "scenario",
        "recovery",
        "steps",
        "final ‖r‖",
        "msgs",
        "recov",
        "rec t%",
        "time (s)",
        "repairs",
        "discard",
        "nudges"
    );
    let mut csv = Vec::new();
    for r in &rows {
        let steps = match (r.converged_at, r.deadlocked) {
            (Some(s), _) => s.to_string(),
            (None, true) => "frozen".to_string(),
            (None, false) => "†".to_string(),
        };
        println!(
            "{:<10} {:<9} {:>6} {:>10.2e} {:>8} {:>7} {:>6.1}% {:>9.4} {:>8} {:>8} {:>7}",
            r.scenario,
            if r.recovery { "standard" } else { "off" },
            steps,
            r.final_residual,
            r.msgs,
            r.msgs_recovery,
            100.0 * r.recovery_time_share,
            r.time,
            r.drift_repairs,
            r.stale_discards,
            r.watchdog_nudges
        );
        csv.push(vec![
            r.scenario.to_string(),
            if r.recovery { "standard" } else { "off" }.to_string(),
            r.converged_at.map(|s| s.to_string()).unwrap_or("".into()),
            format!("{:.6e}", r.final_residual),
            r.msgs.to_string(),
            r.msgs_recovery.to_string(),
            format!("{:.4}", r.recovery_time_share),
            format!("{:.6}", r.time),
            r.drift_repairs.to_string(),
            r.stale_discards.to_string(),
            r.watchdog_nudges.to_string(),
            r.deadlocked.to_string(),
            format!("{:.3}", r.mean_imbalance),
            format!("{:.3}", r.worker_utilization),
        ]);
    }
    write_csv(
        &ctx.out_dir,
        "chaos",
        &[
            "scenario",
            "recovery",
            "converged_at",
            "final_residual",
            "msgs",
            "msgs_recovery",
            "recovery_time_share",
            "time_s",
            "drift_repairs",
            "stale_discards",
            "watchdog_nudges",
            "deadlocked",
            "mean_imbalance",
            "worker_utilization",
        ],
        &csv,
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_converges_where_the_bare_protocol_suffers() {
        let ctx = ExperimentCtx::smoke();
        let rows = run_chaos(&ctx);
        let find = |name: &str, rec: bool| {
            rows.iter()
                .find(|r| r.scenario == name && r.recovery == rec)
                .unwrap()
        };
        // The reliable baseline converges either way, with zero recovery
        // interventions (the layer is transparent on a clean link).
        let clean = find("reliable", true);
        assert!(clean.converged_at.is_some());
        assert_eq!(clean.drift_repairs, 0);
        assert_eq!(clean.stale_discards, 0);
        // The load-imbalance observables populate under chaos too.
        for r in &rows {
            assert!(
                r.mean_imbalance >= 1.0,
                "{}: {}",
                r.scenario,
                r.mean_imbalance
            );
            assert!(
                r.worker_utilization > 0.0 && r.worker_utilization <= 1.0,
                "{}: {}",
                r.scenario,
                r.worker_utilization
            );
        }
        // Every chaos scenario converges with the standard recovery
        // preset — the acceptance bar of this reproduction's fault model.
        for r in rows.iter().filter(|r| r.recovery) {
            assert!(
                r.converged_at.is_some(),
                "{} with recovery did not converge ({:.2e})",
                r.scenario,
                r.final_residual
            );
            assert!(!r.deadlocked, "{} froze despite recovery", r.scenario);
        }
        // ... and recovery earns its keep: under sustained drops the bare
        // protocol is strictly worse (slower, frozen, or not converged).
        let bare = find("drop20", false);
        let healed = find("drop20", true);
        assert!(
            match (bare.converged_at, healed.converged_at) {
                (None, Some(_)) => true,
                (Some(b), Some(h)) => h < b || bare.deadlocked,
                _ => false,
            },
            "recovery should beat the bare protocol under 20% drops \
             (bare {:?} deadlocked={}, healed {:?})",
            bare.converged_at,
            bare.deadlocked,
            healed.converged_at
        );
    }
}
