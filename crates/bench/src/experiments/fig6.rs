//! Figure 6: multigrid smoothing — relative residual after 9 V-cycles for
//! increasing grid dimensions, Gauss–Seidel vs Distributed Southwell
//! smoothers ("1 sweep" and "1/2 sweep").

use crate::harness::{write_csv, ExperimentCtx};
use dsw_multigrid::{Multigrid, Smoother};
use dsw_sparse::gen;

/// One (smoother, grid) measurement.
pub struct Fig6Point {
    /// Smoother label as in the paper's legend.
    pub label: &'static str,
    /// Grid dimension.
    pub dim: usize,
    /// Relative residual norm after 9 V-cycles.
    pub rel_residual: f64,
}

/// The grid dimensions of the paper (15 → 255), truncated at smoke scale.
pub fn dims(ctx: &ExperimentCtx) -> Vec<usize> {
    let all = [15usize, 31, 63, 127, 255];
    let keep = if ctx.scale >= 1.0 { 5 } else { 3 };
    all[..keep].to_vec()
}

/// Runs the experiment.
pub fn run_fig6(ctx: &ExperimentCtx) -> Vec<Fig6Point> {
    let smoothers: [(&'static str, Smoother); 3] = [
        ("GS, 1 sweep", Smoother::gauss_seidel(1.0)),
        (
            "Dist SW, 1/2 sweep",
            Smoother::distributed_southwell(0.5, 99),
        ),
        ("Dist SW, 1 sweep", Smoother::distributed_southwell(1.0, 99)),
    ];
    let mut points = Vec::new();
    println!("\n=== fig6 — rel. residual after 9 V-cycles (2D Poisson) ===");
    println!("{:<20} dim: rel residual ...", "smoother");
    for (label, sm) in smoothers {
        let mut line = format!("{label:<20}");
        for dim in dims(ctx) {
            let n = dim * dim;
            let b = gen::random_rhs(n, 4100 + dim as u64);
            let mut mg = Multigrid::new(dim, sm);
            let (_, hist) = mg.solve(&b, 9);
            let rel = hist[8];
            line.push_str(&format!(" {dim}:{rel:.3e}"));
            points.push(Fig6Point {
                label,
                dim,
                rel_residual: rel,
            });
        }
        println!("{line}");
    }
    let csv: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.label.to_string(),
                p.dim.to_string(),
                format!("{:.6e}", p.rel_residual),
            ]
        })
        .collect();
    write_csv(
        &ctx.out_dir,
        "fig6",
        &["smoother", "grid_dim", "rel_residual_after_9_vcycles"],
        &csv,
    );
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shape_holds() {
        let ctx = ExperimentCtx::smoke();
        let pts = run_fig6(&ctx);
        // Grid-independence: per smoother, max/min across dims is bounded.
        for label in ["GS, 1 sweep", "Dist SW, 1/2 sweep", "Dist SW, 1 sweep"] {
            let vals: Vec<f64> = pts
                .iter()
                .filter(|p| p.label == label)
                .map(|p| p.rel_residual)
                .collect();
            assert!(!vals.is_empty());
            let max = vals.iter().cloned().fold(0.0f64, f64::max);
            let min = vals.iter().cloned().fold(f64::MAX, f64::min);
            assert!(max / min < 200.0, "{label}: not grid independent {vals:?}");
            assert!(max < 1e-4, "{label}: 9 V-cycles should converge, {vals:?}");
        }
        // DS 1 sweep beats GS 1 sweep on the largest grid tested.
        let largest = pts.iter().map(|p| p.dim).max().unwrap();
        let at = |l: &str| {
            pts.iter()
                .find(|p| p.label == l && p.dim == largest)
                .unwrap()
                .rel_residual
        };
        assert!(
            at("Dist SW, 1 sweep") < at("GS, 1 sweep"),
            "DS should be the more efficient smoother"
        );
    }
}
