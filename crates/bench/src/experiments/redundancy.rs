//! Coded straggler resilience study (beyond the paper's tables): DS on
//! the asynchronous backend with redundancy-coded block placement
//! ([`DistOptions::redundancy`]), swept over straggler skew × replication
//! factor r ∈ {1, 2, 3}. With r = 1 (the uncoded placement) the progress
//! bound gates on the slowest *rank*, so a heavy straggler stalls the
//! whole run; with r ≥ 2 every block is hosted by r ranks, the bound
//! gates on the slowest *replica set* (which progresses at its fastest
//! member), and first-arrival-wins reconciliation absorbs whichever copy
//! lands first — time to ‖r‖₂ ≤ 0.1 must degrade gracefully where the
//! uncoded run stalls. The price is the replica fan-out, reported
//! separately under `CommClass::Redundancy`.

use crate::harness::{fmt_or_dagger, setup_problem, suite_partition, write_csv, ExperimentCtx};
use dsw_core::dist::{run_method, DistOptions, ExecBackend, Method, Redundancy};
use dsw_rma::AsyncOptions;
use dsw_sparse::gen;

/// The sweep's convergence target (the paper's Table 2 rule).
pub const TARGET: f64 = 0.1;

/// Progress bound of every run (the `async` experiment's CI point).
pub const LAG: usize = 4;

/// The straggler regime the CI bench gate checks: at this skew the
/// slowest rank advances at a small fraction of the nominal probability,
/// and the uncoded placement is gated on it.
pub const STALL_SKEW: f64 = 0.9;

/// The replication factor the CI bench gate checks against uncoded.
pub const GATE_R: usize = 2;

/// One row of the redundancy sweep (DS only — the coded placement wraps
/// the method transparently, so one method isolates the r × skew effect).
pub struct RedundancyRow {
    /// Replication factor (1 = the uncoded placement).
    pub r: usize,
    /// Straggler skew of the per-rank advance probabilities.
    pub skew: f64,
    /// Scheduler tick at which ‖r‖₂ ≤ 0.1 was first (verifiably) met.
    pub converged_tick: Option<usize>,
    /// Messages per rank expended to reach the target (interpolated).
    pub msgs_to_target: Option<f64>,
    /// Total delivered messages over the whole run.
    pub msgs: u64,
    /// ... of the solve class.
    pub msgs_solve: u64,
    /// ... of the explicit-residual class.
    pub msgs_residual: u64,
    /// ... of the redundancy class (replica fan-out copies).
    pub msgs_redundancy: u64,
    /// Modelled bytes of the redundancy class.
    pub bytes_redundancy: u64,
    /// Duplicate copies absorbed by first-arrival-wins reconciliation.
    pub reconciled: u64,
    /// Final true residual norm.
    pub final_residual: f64,
    /// The run froze permanently.
    pub deadlocked: bool,
}

fn run_one(r: usize, skew: f64, ctx: &ExperimentCtx) -> RedundancyRow {
    // §4.2 Poisson setup, sized with the context's scale (the smoke scale
    // gives a 12×12 grid over 8 ranks) — the same construction as the
    // `async` experiment, so r = 1 rows are directly comparable.
    let g = ((48.0 * ctx.scale).round() as usize).max(12);
    let mut a = gen::grid2d_poisson(g, g);
    a.scale_unit_diagonal().unwrap();
    let prob = setup_problem(a, 11);
    let p = (g * g / 32).max(8);
    let part = suite_partition(&prob.a, p, 1);
    let opts = DistOptions {
        max_steps: ctx.max_steps.max(200),
        target_residual: Some(TARGET),
        backend: ExecBackend::Async(AsyncOptions {
            advance_probability: 0.6,
            max_lag: LAG,
            seed: 1,
            straggler_skew: skew,
        }),
        redundancy: Some(Redundancy::new(r)),
        ..DistOptions::default()
    };
    let rep = run_method(
        Method::DistributedSouthwell,
        &prob.a,
        &prob.b,
        &prob.x0,
        &part,
        &opts,
    );
    RedundancyRow {
        r,
        skew,
        converged_tick: rep.converged_at,
        msgs_to_target: rep.comm_to_reach(TARGET),
        msgs: rep.stats.total_msgs(),
        msgs_solve: rep.stats.total_msgs_solve(),
        msgs_residual: rep.stats.total_msgs_residual(),
        msgs_redundancy: rep.stats.total_msgs_redundancy(),
        bytes_redundancy: rep.records.last().unwrap().bytes_redundancy,
        reconciled: rep.stale_discards,
        final_residual: rep.final_residual(),
        deadlocked: rep.deadlocked,
    }
}

/// Runs the sweep: r ∈ {1, 2, 3} × straggler skew ∈ {0, 0.5, 0.9}.
pub fn run_redundancy(ctx: &ExperimentCtx) -> Vec<RedundancyRow> {
    let rs = [1usize, 2, 3];
    let skews = [0.0f64, 0.5, STALL_SKEW];
    let mut rows = Vec::new();
    for &r in &rs {
        for &skew in &skews {
            rows.push(run_one(r, skew, ctx));
        }
    }

    // Slowdown is relative to the healthy uncoded run (r = 1, skew 0):
    // the graceful-degradation claim is that coded rows stay within a
    // small factor of it at skews where the uncoded row blows up.
    let baseline = rows[0].converged_tick;
    println!("\n=== redundancy — coded straggler resilience, DS async (target ‖r‖₂ = {TARGET}, max_lag = {LAG}) ===");
    println!(
        "{:>2} {:>5} {:>8} {:>9} {:>12} {:>9} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "r",
        "skew",
        "ticks",
        "vs base",
        "msgs/rank→t",
        "msgs",
        "solve",
        "resid",
        "redun",
        "reconciled",
        "final ‖r‖"
    );
    let mut csv = Vec::new();
    for row in &rows {
        let ticks = match (row.converged_tick, row.deadlocked) {
            (Some(t), _) => t.to_string(),
            (None, true) => "frozen".to_string(),
            (None, false) => "†".to_string(),
        };
        let slowdown = match (row.converged_tick, baseline) {
            (Some(t), Some(b)) if b > 0 => format!("{:.2}x", t as f64 / b as f64),
            _ => "†".to_string(),
        };
        println!(
            "{:>2} {:>5.1} {:>8} {:>9} {:>12} {:>9} {:>9} {:>9} {:>9} {:>10} {:>10.2e}",
            row.r,
            row.skew,
            ticks,
            slowdown,
            fmt_or_dagger(row.msgs_to_target, 1),
            row.msgs,
            row.msgs_solve,
            row.msgs_residual,
            row.msgs_redundancy,
            row.reconciled,
            row.final_residual
        );
        csv.push(vec![
            row.r.to_string(),
            format!("{:.2}", row.skew),
            row.converged_tick
                .map(|t| t.to_string())
                .unwrap_or("".into()),
            row.msgs_to_target
                .map(|m| format!("{m:.2}"))
                .unwrap_or("".into()),
            row.msgs.to_string(),
            row.msgs_solve.to_string(),
            row.msgs_residual.to_string(),
            row.msgs_redundancy.to_string(),
            row.bytes_redundancy.to_string(),
            row.reconciled.to_string(),
            format!("{:.6e}", row.final_residual),
            row.deadlocked.to_string(),
        ]);
    }
    write_csv(
        &ctx.out_dir,
        "redundancy",
        &[
            "r",
            "straggler_skew",
            "converged_tick",
            "msgs_per_rank_to_target",
            "msgs",
            "msgs_solve",
            "msgs_residual",
            "msgs_redundancy",
            "bytes_redundancy",
            "reconciled",
            "final_residual",
            "deadlocked",
        ],
        &csv,
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coded_placement_rides_through_the_straggler_regime() {
        // Half scale (24x24 grid over 18 ranks) -- the same point the CI
        // bench gate pins. The 8-rank smoke scale is too small for a
        // meaningful straggler regime: with so few ranks the r = 2
        // placement has even odds of pairing the two slowest ranks into
        // one replica set, which is exactly the coupon-collector effect
        // larger rank counts wash out.
        let ctx = ExperimentCtx {
            scale: 0.5,
            ..ExperimentCtx::smoke()
        };
        let rows = run_redundancy(&ctx);
        let find = |r: usize, skew: f64| {
            rows.iter()
                .find(|row| row.r == r && (row.skew - skew).abs() < 1e-12)
                .unwrap()
        };
        let baseline = find(1, 0.0);
        let base_ticks = baseline
            .converged_tick
            .expect("healthy uncoded run must converge") as f64;

        // Accounting: the uncoded rows carry no redundancy traffic, the
        // coded rows must, and every row that converged is verified.
        for row in &rows {
            if row.r == 1 {
                assert_eq!(row.msgs_redundancy, 0, "uncoded row charged redundancy");
                assert_eq!(row.bytes_redundancy, 0);
            } else {
                assert!(row.msgs_redundancy > 0, "replica fan-out must be accounted");
                assert!(row.reconciled > 0, "duplicate copies must be reconciled");
            }
            if row.converged_tick.is_some() {
                assert!(row.final_residual <= TARGET * (1.0 + 1e-9));
            }
        }

        // The stall: at STALL_SKEW the uncoded run is gated on the
        // slowest rank and pays a large multiple of the healthy baseline
        // (full runs show >5x; the half-scale point shows ~4.7x).
        let uncoded = find(1, STALL_SKEW);
        let uncoded_ok = match uncoded.converged_tick {
            None => true,
            Some(t) => t as f64 >= 2.0 * base_ticks,
        };
        assert!(
            uncoded_ok,
            "uncoded at skew {STALL_SKEW} finished in {:?} ticks - no stall to ride through \
             (baseline {base_ticks})",
            uncoded.converged_tick
        );

        // The claim: coded placements degrade gracefully where uncoded
        // stalls. r = 2 must converge and strictly beat the uncoded run
        // at the same skew; deeper replication tightens the bound.
        let coded = find(GATE_R, STALL_SKEW);
        let coded_ticks = coded
            .converged_tick
            .expect("r = 2 must converge in the straggler regime") as f64;
        assert!(
            coded_ticks <= 4.0 * base_ticks,
            "r = {GATE_R} took {coded_ticks} ticks at skew {STALL_SKEW} - more than 4x the \
             healthy baseline {base_ticks}"
        );
        if let Some(t) = uncoded.converged_tick {
            assert!(
                coded_ticks < t as f64,
                "r = {GATE_R} ({coded_ticks}) should beat uncoded ({t}) at skew {STALL_SKEW}"
            );
        }
        let deep = find(3, STALL_SKEW);
        let deep_ticks = deep
            .converged_tick
            .expect("r = 3 must converge in the straggler regime") as f64;
        assert!(
            deep_ticks <= 3.0 * base_ticks,
            "r = 3 took {deep_ticks} ticks at skew {STALL_SKEW} - more than 3x the healthy \
             baseline {base_ticks}"
        );
        assert!(
            deep_ticks <= coded_ticks,
            "deeper replication should not degrade resilience (r3 {deep_ticks} vs r2 {coded_ticks})"
        );
    }
}
