//! The §5 extension study: variable-threshold message coalescing.
//!
//! The paper's related-work section points to de Jager & Bradley's
//! asynchronous variable-threshold scheme as "a possibility for further
//! reducing communication cost". This experiment grafts it onto
//! Distributed Southwell (`DsConfig::solve_msg_threshold`) and sweeps the
//! threshold: solve messages carrying small accumulated residual deltas
//! are deferred until they matter. The tradeoff is an accuracy floor —
//! deferred deltas leave neighbor residuals slightly stale — so
//! communication to a *coarse* target shrinks while aggressive thresholds
//! eventually slow or stall convergence.

use crate::harness::{fmt_or_dagger, setup_problem, suite_partition, write_csv, ExperimentCtx};
use dsw_core::dist::{run_method, DistOptions, DsConfig, Method};
use dsw_sparse::suite::by_name;

/// One threshold setting's outcome.
pub struct ThresholdRow {
    /// The threshold θ.
    pub theta: f64,
    /// Messages/rank to reach 0.1 (None = not reached).
    pub comm_to_target: Option<f64>,
    /// Parallel steps to reach 0.1.
    pub steps_to_target: Option<f64>,
    /// Final residual after the full run.
    pub final_residual: f64,
}

/// Sweeps the coalescing threshold on the ldoor stand-in.
pub fn run_threshold(ctx: &ExperimentCtx) -> Vec<ThresholdRow> {
    let e = by_name("ldoor").expect("suite matrix");
    let a = ctx.build_suite_matrix(&e);
    let prob = setup_problem(a, 31);
    let part = suite_partition(&prob.a, ctx.scaled_ranks(), 1);

    println!("\n=== threshold — §5 extension: solve-message coalescing (ldoor) ===");
    println!(
        "{:>6} {:>14} {:>12} {:>14}",
        "theta", "comm to 0.1", "steps", "final ‖r‖"
    );
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for theta in [0.0, 0.02, 0.05, 0.1, 0.2, 0.4] {
        let opts = DistOptions {
            max_steps: ctx.max_steps,
            target_residual: None,
            ds_config: DsConfig {
                solve_msg_threshold: theta,
                ..DsConfig::default()
            },
            ..DistOptions::default()
        };
        let rep = run_method(
            Method::DistributedSouthwell,
            &prob.a,
            &prob.b,
            &prob.x0,
            &part,
            &opts,
        );
        let row = ThresholdRow {
            theta,
            comm_to_target: rep.comm_to_reach(0.1),
            steps_to_target: rep.steps_to_reach(0.1),
            final_residual: rep.final_residual(),
        };
        println!(
            "{:>6.2} {:>14} {:>12} {:>14.4e}",
            row.theta,
            fmt_or_dagger(row.comm_to_target, 2),
            fmt_or_dagger(row.steps_to_target, 1),
            row.final_residual
        );
        rows.push(vec![
            format!("{theta}"),
            fmt_or_dagger(row.comm_to_target, 4),
            fmt_or_dagger(row.steps_to_target, 3),
            format!("{:.6e}", row.final_residual),
        ]);
        out.push(row);
    }
    write_csv(
        &ctx.out_dir,
        "threshold",
        &["theta", "comm_to_0.1", "steps_to_0.1", "final_residual"],
        &rows,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moderate_threshold_saves_communication() {
        let ctx = ExperimentCtx::smoke();
        let rows = run_threshold(&ctx);
        let base = &rows[0];
        assert_eq!(base.theta, 0.0);
        let base_comm = base.comm_to_target.expect("θ=0 reaches the target");
        // Some positive threshold reaches the same target with fewer
        // messages per rank.
        let saved = rows[1..]
            .iter()
            .filter_map(|r| r.comm_to_target)
            .any(|c| c < base_comm);
        assert!(saved, "expected a communication win at some θ > 0");
    }
}
