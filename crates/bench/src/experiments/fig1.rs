//! Figures 1 and 3: the geometric illustration of the Parallel Southwell
//! criterion — which points (scalar form, Fig. 1) or subdomains (block
//! form, Fig. 3) are selected to relax in one parallel step.
//!
//! The paper's figures are mesh drawings; here the same content renders as
//! a character grid: `#` marks a selected row/subdomain, `o` a neighbor of
//! a selected one, `.` everything else.

use crate::harness::{setup_problem, write_csv, ExperimentCtx};
use dsw_core::scalar::southwell_par::southwell_selection;
use dsw_partition::{partition_multilevel, Graph, MultilevelOptions};
use dsw_sparse::gen;

/// Outcome of the illustration (for tests): which rows/subdomains were
/// selected.
pub struct IllustrationResult {
    /// Selected rows in the scalar picture.
    pub scalar_selected: Vec<usize>,
    /// Selected subdomains in the block picture.
    pub block_selected: Vec<usize>,
    /// Number of subdomains.
    pub nparts: usize,
}

/// Runs the illustration on a 2D grid.
pub fn run_fig1(ctx: &ExperimentCtx) -> IllustrationResult {
    let dim = 24usize;
    let mut a = gen::grid2d_poisson(dim, dim);
    a.scale_unit_diagonal().unwrap();
    let prob = setup_problem(a, 0xF16);
    let r = prob.a.residual(&prob.b, &prob.x0);

    // --- Figure 1: scalar selection --------------------------------------
    let selected = southwell_selection(&prob.a, &r);
    let is_sel = |i: usize| selected.binary_search(&i).is_ok();
    println!("\n=== fig1 — one parallel step of Parallel Southwell (scalar) ===");
    println!("(# = relaxed this step, o = neighbor of a relaxed point)");
    for j in 0..dim {
        let mut line = String::with_capacity(dim);
        for i in 0..dim {
            let idx = j * dim + i;
            let c = if is_sel(idx) {
                '#'
            } else if prob.a.row_cols(idx).iter().any(|&w| w != idx && is_sel(w)) {
                'o'
            } else {
                '.'
            };
            line.push(c);
        }
        println!("  {line}");
    }

    // --- Figure 3: block selection ---------------------------------------
    let nparts = 16;
    let part = partition_multilevel(
        &Graph::from_matrix(&prob.a),
        nparts,
        MultilevelOptions::default(),
    );
    // Subdomain residual norms and the block criterion with rank ties.
    let mut norm_sq = vec![0.0f64; nparts];
    for (i, &ri) in r.iter().enumerate() {
        norm_sq[part.part_of(i)] += ri * ri;
    }
    // Neighbor relation between parts.
    let mut selected_parts = Vec::new();
    'parts: for p in 0..nparts {
        for i in 0..prob.n() {
            if part.part_of(i) != p {
                continue;
            }
            for &j in prob.a.row_cols(i) {
                let q = part.part_of(j);
                if q != p && !(norm_sq[p] > norm_sq[q] || (norm_sq[p] == norm_sq[q] && p < q)) {
                    continue 'parts;
                }
            }
        }
        selected_parts.push(p);
    }
    println!("\n=== fig3 — one parallel step of block Parallel Southwell ===");
    println!("(digits/letters = subdomain id, uppercase # overlay = selected)");
    for j in 0..dim {
        let mut line = String::with_capacity(dim);
        for i in 0..dim {
            let p = part.part_of(j * dim + i);
            let c = if selected_parts.contains(&p) {
                '#'
            } else {
                char::from_digit((p % 36) as u32, 36).unwrap_or('?')
            };
            line.push(c);
        }
        println!("  {line}");
    }
    println!(
        "selected subdomains: {:?} of {nparts} (norms are per-subdomain ‖r‖)",
        selected_parts
    );

    let rows: Vec<Vec<String>> = selected
        .iter()
        .map(|&i| vec!["scalar".into(), i.to_string()])
        .chain(
            selected_parts
                .iter()
                .map(|&p| vec!["block".into(), p.to_string()]),
        )
        .collect();
    write_csv(&ctx.out_dir, "fig1", &["form", "selected_index"], &rows);

    IllustrationResult {
        scalar_selected: selected,
        block_selected: selected_parts,
        nparts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn illustration_selects_independent_nonempty_sets() {
        let ctx = ExperimentCtx::smoke();
        let res = run_fig1(&ctx);
        assert!(!res.scalar_selected.is_empty());
        assert!(!res.block_selected.is_empty());
        assert!(
            res.block_selected.len() < res.nparts,
            "not everyone relaxes"
        );
        // Block selection must be an independent set in the part graph —
        // guaranteed by the strict criterion; spot-check disjointness of ids.
        let mut sorted = res.block_selected.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), res.block_selected.len());
    }
}
