//! Table 1: the test-matrix inventory — paper originals and the synthetic
//! stand-ins actually built (see DESIGN.md for the substitution rationale).

use crate::harness::{write_csv, ExperimentCtx};
use dsw_sparse::analysis::{jacobi_spectral_radius, matrix_stats};
use dsw_sparse::suite::{suite, BlockJacobiRegime};

/// One row of the inventory.
pub struct InventoryRow {
    /// SuiteSparse name.
    pub name: &'static str,
    /// Original row count.
    pub paper_n: u64,
    /// Original nonzeros.
    pub paper_nnz: u64,
    /// Stand-in row count at this context's scale.
    pub n: usize,
    /// Stand-in nonzeros.
    pub nnz: usize,
    /// Power-iteration estimate of the point-Jacobi spectral radius of the
    /// (unit-diagonal) stand-in — the dial behind the BJ regimes.
    pub jacobi_radius: f64,
    /// Fraction of positive off-diagonal entries.
    pub positive_offdiag: f64,
    /// The Block Jacobi regime the stand-in is tuned for.
    pub regime: BlockJacobiRegime,
}

/// Builds and prints the inventory.
pub fn run_table1(ctx: &ExperimentCtx) -> Vec<InventoryRow> {
    let mut rows = Vec::new();
    println!("\n=== table1 — test problems (paper original → synthetic stand-in) ===");
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>12} {:>8} {:>8}  BJ regime",
        "matrix", "paper nnz", "paper rows", "rows", "nonzeros", "ρ(Jac)", "off>0"
    );
    for e in suite() {
        let a = ctx.build_suite_matrix(&e);
        let stats = matrix_stats(&a);
        let rho = jacobi_spectral_radius(&a, 60);
        println!(
            "{:<12} {:>12} {:>12} {:>10} {:>12} {:>8.3} {:>8.2}  {:?}",
            e.name,
            e.paper_nnz,
            e.paper_n,
            a.nrows(),
            a.nnz(),
            rho,
            stats.positive_offdiag_fraction,
            e.regime
        );
        rows.push(InventoryRow {
            name: e.name,
            paper_n: e.paper_n,
            paper_nnz: e.paper_nnz,
            n: a.nrows(),
            nnz: a.nnz(),
            jacobi_radius: rho,
            positive_offdiag: stats.positive_offdiag_fraction,
            regime: e.regime,
        });
    }
    let csv: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.paper_n.to_string(),
                r.paper_nnz.to_string(),
                r.n.to_string(),
                r.nnz.to_string(),
                format!("{:.4}", r.jacobi_radius),
                format!("{:.3}", r.positive_offdiag),
                format!("{:?}", r.regime),
            ]
        })
        .collect();
    write_csv(
        &ctx.out_dir,
        "table1",
        &[
            "matrix",
            "paper_rows",
            "paper_nnz",
            "rows",
            "nnz",
            "jacobi_radius",
            "positive_offdiag_fraction",
            "bj_regime",
        ],
        &csv,
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_has_fourteen_rows_sorted_by_paper_nnz() {
        let ctx = ExperimentCtx::smoke();
        let rows = run_table1(&ctx);
        assert_eq!(rows.len(), 14);
        // Table 1 order is decreasing paper nnz.
        for w in rows.windows(2) {
            assert!(w[0].paper_nnz >= w[1].paper_nnz);
        }
        assert!(rows.iter().all(|r| r.n > 0 && r.nnz > 0));
    }
}
