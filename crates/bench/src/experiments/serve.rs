//! Serve-throughput study (beyond the paper's tables): many tenants'
//! repeated solves multiplexed over one [`dsw_serve::SolveService`]
//! versus a stateless serialized baseline.
//!
//! Both sides solve the *same* job stream — per tenant, a sequence of
//! slowly drifting right-hand sides on a §4.2 Poisson system over 64
//! ranks, each solve starting from the previous solution. The multiplexed
//! side keeps a persistent [`TenantSession`] per tenant (partition,
//! routed topology, rank state, and monitor scratch built once at
//! registration) and warm-starts every solve by re-seeding residuals; the
//! serialized baseline re-partitions, re-distributes, and rebuilds the
//! executor for every request, the way a stateless server would. The
//! iteration work is identical by construction — the measured gap is
//! pure per-solve setup amortization, which is exactly the serving
//! layer's claim.
//!
//! [`TenantSession`]: dsw_core::dist::TenantSession

use crate::harness::{setup_problem, suite_partition, write_csv, ExperimentCtx};
use dsw_core::dist::{run_method, DistOptions, ExecBackend, Method};
use dsw_partition::Partition;
use dsw_rma::ExecMode;
use dsw_serve::{ServeConfig, ServiceStats, SolveService, TenantId};
use dsw_sparse::{gen, CsrMatrix};
use std::time::Instant;

/// Rank count of the serve problem (the paper's §4.2 scale).
pub const RANKS: usize = 64;

/// Grid side: 32×32 Poisson (1024 rows, 16 rows per rank).
pub const GRID: usize = 32;

/// Convergence target of every solve (the paper's Table 2 rule).
pub const TARGET: f64 = 0.1;

/// Worker threads in the shared pool.
pub const WORKERS: usize = 2;

/// Supersteps per scheduler visit.
pub const QUANTUM: usize = 4;

/// Timed solves per tenant (after one untimed priming solve).
pub const JOBS: usize = 3;

/// The CI gate: multiplexed solves/sec must be at least this multiple of
/// the serialized baseline at 64+ tenants.
pub const GATE_SPEEDUP: f64 = 2.0;

/// The method the CI gate runs. Block Jacobi's convergence tail is a
/// handful of supersteps, so warm re-solves turn over fast and the
/// measurement isolates the serving layer (scheduler + setup
/// amortization) instead of the solver's tail. Distributed Southwell —
/// whose near-target tail relaxes only the locally-maximal ranks and
/// therefore takes an input-sensitive 50–300 supersteps — is recorded
/// alongside, ungated.
pub const GATE_METHOD: Method = Method::BlockJacobi;

/// The §4.2 serve problem: unit-diagonal Poisson, b = 0 initially, unit
/// initial residual, multilevel partition over [`RANKS`] ranks.
pub fn serve_problem() -> (CsrMatrix, Vec<f64>, Vec<f64>, Partition) {
    let mut a = gen::grid2d_poisson(GRID, GRID);
    a.scale_unit_diagonal()
        .expect("Poisson diagonal is nonzero");
    let prob = setup_problem(a, 11);
    let part = suite_partition(&prob.a, RANKS, 1);
    (prob.a, prob.b, prob.x0, part)
}

/// Solver options for both sides: superstep backend, exact monitor off
/// the hot path is not needed — the default maintained monitor matches
/// what the paper's drives use.
pub fn serve_opts() -> DistOptions {
    DistOptions {
        backend: ExecBackend::Superstep(ExecMode::Sequential),
        target_residual: Some(TARGET),
        max_steps: 400,
        ..DistOptions::default()
    }
}

/// The deterministic job stream: tenant `t`'s `job`-th right-hand side.
/// Job 0 is the priming solve; later jobs drift by a small deterministic
/// perturbation, so warm re-solves do real (but short) work.
///
/// Both the base and the drift are zero-mean and modulated by the grid
/// checkerboard, keeping the rhs energy in high-frequency modes the
/// block solvers contract quickly. A smooth (DC-heavy) rhs would push
/// every solve into the slow smooth-error tail (hundreds of supersteps
/// at ρ ≈ 1 − O(h²)), and the sweep would measure the solver's
/// asymptotics instead of the serving layer.
pub fn tenant_rhs(n: usize, tenant: usize, job: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let parity = if ((i % GRID) + (i / GRID)).is_multiple_of(2) {
                1.0
            } else {
                -1.0
            };
            let base = (((tenant * 7 + i) % 11) as f64 - 5.0) * 0.01;
            let drift = (((tenant * 13 + job * 29 + i) % 17) as f64 - 8.0) * 2e-4 * job as f64;
            parity * (base + drift)
        })
        .collect()
}

/// Runs the multiplexed side: registers `tenants` sessions on one shared
/// pool, primes each with its job-0 solve (untimed, like registration),
/// then submits jobs `1..=JOBS` for every tenant and drains the service.
/// Returns the timed window's service stats.
pub fn run_multiplexed(method: Method, tenants: usize) -> ServiceStats {
    let (a, _b, x0, part) = serve_problem();
    let n = a.nrows();
    let opts = serve_opts();
    let mut svc = SolveService::new(ServeConfig {
        workers: WORKERS,
        quantum: QUANTUM,
        queue_capacity: tenants * (JOBS + 1),
        seed: 1,
    });
    let ids: Vec<TenantId> = (0..tenants)
        .map(|t| svc.add_tenant(method, a.clone(), &tenant_rhs(n, t, 0), &x0, &part, &opts))
        .collect();
    // Priming window: every tenant solves its job-0 system cold, landing
    // on the solution later jobs drift from. Untimed — the serialized
    // baseline gets the same free priming pass.
    for (t, &id) in ids.iter().enumerate() {
        svc.submit(id, tenant_rhs(n, t, 0)).expect("queue has room");
    }
    svc.run_until_idle();
    for &id in &ids {
        let _ = svc.take_reports(id);
    }

    for job in 1..=JOBS {
        for (t, &id) in ids.iter().enumerate() {
            svc.submit(id, tenant_rhs(n, t, job))
                .expect("queue has room");
        }
    }
    let stats = svc.run_until_idle();
    assert_eq!(stats.solves as usize, tenants * JOBS, "every job completed");
    stats
}

/// Runs the serialized baseline on the same job stream: a stateless
/// server that re-partitions, re-distributes, and rebuilds per request,
/// with only the previous solution (warm `x0`) carried across solves.
/// Returns its sustained solves/sec over the timed jobs.
pub fn run_serialized(method: Method, tenants: usize) -> f64 {
    let (a, _b, x0, _part) = serve_problem();
    let n = a.nrows();
    let opts = serve_opts();
    // Priming pass (untimed), mirroring the multiplexed side.
    let mut xs: Vec<Vec<f64>> = (0..tenants)
        .map(|t| {
            let part = suite_partition(&a, RANKS, 1);
            run_method(method, &a, &tenant_rhs(n, t, 0), &x0, &part, &opts).x
        })
        .collect();

    let t0 = Instant::now();
    let mut solves = 0u64;
    for job in 1..=JOBS {
        for (t, x) in xs.iter_mut().enumerate() {
            let part = suite_partition(&a, RANKS, 1);
            let rep = run_method(method, &a, &tenant_rhs(n, t, job), x, &part, &opts);
            *x = rep.x;
            solves += 1;
        }
    }
    solves as f64 / t0.elapsed().as_secs_f64()
}

/// One row of the serve-throughput sweep.
pub struct ServeRow {
    /// The solver every tenant runs.
    pub method: Method,
    /// Registered tenants.
    pub tenants: usize,
    /// Solves completed in the timed window.
    pub solves: u64,
    /// Multiplexed sustained throughput, solves/sec.
    pub serve_solves_per_sec: f64,
    /// Serialized-baseline throughput, solves/sec.
    pub serialized_solves_per_sec: f64,
    /// `serve / serialized`.
    pub speedup: f64,
    /// Median solve latency under multiplexing, ms.
    pub p50_ms: f64,
    /// 99th-percentile solve latency, ms.
    pub p99_ms: f64,
    /// Shared-pool busy fraction over the window.
    pub pool_utilization: f64,
    /// Peak admitted-job count.
    pub max_queue_depth: usize,
}

/// Measures one (method, tenant count) point on both sides.
pub fn run_point(method: Method, tenants: usize) -> ServeRow {
    let stats = run_multiplexed(method, tenants);
    let serialized = run_serialized(method, tenants);
    ServeRow {
        method,
        tenants,
        solves: stats.solves,
        serve_solves_per_sec: stats.solves_per_sec,
        serialized_solves_per_sec: serialized,
        speedup: if serialized > 0.0 {
            stats.solves_per_sec / serialized
        } else {
            f64::INFINITY
        },
        p50_ms: stats.p50_ms,
        p99_ms: stats.p99_ms,
        pool_utilization: stats.pool_utilization,
        max_queue_depth: stats.max_queue_depth,
    }
}

/// Runs the sweep and writes `results/serve_throughput.csv`.
pub fn run_serve(ctx: &ExperimentCtx) -> Vec<ServeRow> {
    let counts: Vec<usize> = [16usize, 64, 128]
        .iter()
        .map(|&c| ((c as f64 * ctx.scale).round() as usize).max(2))
        .collect();
    let mut rows: Vec<ServeRow> = counts.iter().map(|&c| run_point(GATE_METHOD, c)).collect();
    // One DS point at the gate's tenant count for paper fidelity — its
    // input-sensitive convergence tail keeps it out of the gate.
    rows.push(run_point(Method::DistributedSouthwell, counts[1]));

    println!(
        "\n=== serve — multiplexed tenants over one shared pool vs serialized rebuilds \
         ({RANKS} ranks, {GRID}×{GRID} Poisson, {JOBS} warm solves/tenant) ==="
    );
    println!(
        "{:>6} {:>7} {:>7} {:>12} {:>12} {:>8} {:>9} {:>9} {:>6} {:>7}",
        "method",
        "tenants",
        "solves",
        "serve s/s",
        "serial s/s",
        "speedup",
        "p50 ms",
        "p99 ms",
        "util",
        "depth"
    );
    let mut csv = Vec::new();
    for row in &rows {
        println!(
            "{:>6} {:>7} {:>7} {:>12.1} {:>12.1} {:>7.2}x {:>9.3} {:>9.3} {:>6.2} {:>7}",
            row.method.label(),
            row.tenants,
            row.solves,
            row.serve_solves_per_sec,
            row.serialized_solves_per_sec,
            row.speedup,
            row.p50_ms,
            row.p99_ms,
            row.pool_utilization,
            row.max_queue_depth
        );
        csv.push(vec![
            row.method.label().to_string(),
            row.tenants.to_string(),
            row.solves.to_string(),
            format!("{:.2}", row.serve_solves_per_sec),
            format!("{:.2}", row.serialized_solves_per_sec),
            format!("{:.3}", row.speedup),
            format!("{:.4}", row.p50_ms),
            format!("{:.4}", row.p99_ms),
            format!("{:.4}", row.pool_utilization),
            row.max_queue_depth.to_string(),
        ]);
    }
    write_csv(
        &ctx.out_dir,
        "serve_throughput",
        &[
            "method",
            "tenants",
            "solves",
            "serve_solves_per_sec",
            "serialized_solves_per_sec",
            "speedup",
            "p50_ms",
            "p99_ms",
            "pool_utilization",
            "max_queue_depth",
        ],
        &csv,
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplexed_window_completes_with_isolated_accounting() {
        // Tiny tenant count: this pins the mechanics (every job completes,
        // stats are sane), not the throughput gate — that is CI's bench
        // gate on `BENCH_serve.json`, where the tenant count is realistic.
        let stats = run_multiplexed(GATE_METHOD, 3);
        assert_eq!(stats.solves as usize, 3 * JOBS);
        assert!(stats.solves_per_sec > 0.0);
        assert!(stats.pool_utilization >= 0.0 && stats.pool_utilization <= 1.0);
        assert!(stats.p50_ms <= stats.p99_ms);
        assert_eq!(stats.max_queue_depth, 3 * JOBS);
    }
}
