//! One module per table/figure of the paper's evaluation.
//!
//! | id     | reproduces                                             |
//! |--------|--------------------------------------------------------|
//! | fig2   | scalar convergence of GS/SW/ParSW/MC-GS/Jacobi          |
//! | fig5   | scalar Distributed Southwell vs the others              |
//! | fig6   | multigrid smoothing, grids 15–255                       |
//! | table1 | the test-matrix inventory (stand-ins)                   |
//! | table2 | DS vs PS vs BJ to ‖r‖ = 0.1 at fixed ranks              |
//! | table3 | communication breakdown (solve vs explicit residual)    |
//! | table4 | per-parallel-step cost over 50 steps                    |
//! | fig7   | residual vs time/comm/steps for 4 contrasting matrices  |
//! | fig8   | strong scaling: time to ‖r‖ = 0.1 vs rank count         |
//! | fig9   | residual after 50 steps vs rank count                   |
//! | ablation | deadlock-avoidance and ghost-refinement ablations     |
//! | chaos  | DS on an unreliable transport, recovery off vs on       |
//! | async  | DS vs PS vs BJ on the asynchronous backend (lag × skew) |
//! | redundancy | coded block placement r ∈ {1,2,3} × straggler skew  |
//! | serve  | multiplexed tenants on one pool vs serialized rebuilds  |

pub mod ablation;
pub mod async_convergence;
pub mod chaos;
pub mod comm_pattern;
pub mod fig1;
pub mod fig2;
pub mod fig6;
pub mod fig7;
pub mod redundancy;
pub mod scaling;
pub mod serve;
pub mod suite_tables;
pub mod table1;
pub mod threshold;

pub use scaling::{run_fig8, run_fig9};
pub use suite_tables::{run_table2, run_table3, run_table4};
