//! Figures 2 and 5: scalar convergence on the small finite element problem.
//!
//! The problem is a P1 FE discretization of the Poisson equation on an
//! irregularly triangulated square with 3081 rows; the right-hand side is
//! uniform random scaled to unit norm; three sweeps of each method are run
//! and residual norm is plotted against the number of relaxations, with
//! markers at parallel-step boundaries.

use crate::harness::{write_csv, ExperimentCtx};
use dsw_core::scalar::{
    distributed_southwell_scalar, gauss_seidel, jacobi, multicolor_gauss_seidel,
    parallel_southwell, sequential_southwell, ScalarOptions,
};
use dsw_core::ScalarHistory;
use dsw_sparse::gen::fe::{fe_poisson, FeMeshOptions};
use dsw_sparse::{gen, CsrMatrix};

/// One method's curve.
pub struct Curve {
    /// Method label as in the paper's legend.
    pub label: &'static str,
    /// Convergence history.
    pub history: ScalarHistory,
}

/// Result of the Figure 2 / Figure 5 experiment.
pub struct ScalarConvergence {
    /// Number of rows (3081 at full scale).
    pub n: usize,
    /// One curve per method.
    pub curves: Vec<Curve>,
}

/// Builds the paper's 3081-row FE problem (scaled by `ctx.scale`).
pub fn fe_problem(ctx: &ExperimentCtx) -> (CsrMatrix, Vec<f64>) {
    let base = FeMeshOptions::default(); // 80 x 40 cells -> 3081 rows
    let opts = if (ctx.scale - 1.0).abs() < 1e-12 {
        base
    } else {
        FeMeshOptions {
            nx: ((base.nx as f64 * ctx.scale) as usize).max(4),
            ny: ((base.ny as f64 * ctx.scale) as usize).max(4),
            ..base
        }
    };
    let a = fe_poisson(opts);
    let b = gen::random_rhs(a.nrows(), 20170101);
    (a, b)
}

fn three_sweep_opts(n: usize) -> ScalarOptions {
    ScalarOptions {
        max_relaxations: 3 * n as u64,
        target_residual: None,
        record_stride: (n as u64 / 64).max(1),
        seed: 7,
    }
}

/// Runs the Figure 2 methods (GS, SW, Par SW, MC GS, Jacobi).
pub fn run_fig2(ctx: &ExperimentCtx) -> ScalarConvergence {
    let (a, b) = fe_problem(ctx);
    let n = a.nrows();
    let x0 = vec![0.0; n];
    let opts = three_sweep_opts(n);
    let curves = vec![
        curve("GS", gauss_seidel(&a, &b, &x0, &opts).1),
        curve("SW", sequential_southwell(&a, &b, &x0, &opts).1),
        curve("Par SW", parallel_southwell(&a, &b, &x0, &opts).1),
        curve("MC GS", multicolor_gauss_seidel(&a, &b, &x0, &opts).1),
        curve("Jacobi", jacobi(&a, &b, &x0, &opts).1),
    ];
    let result = ScalarConvergence { n, curves };
    emit(ctx, "fig2", &result);
    result
}

/// Runs the Figure 5 methods (SW, Par SW, MC GS, Dist SW — scalar forms).
pub fn run_fig5(ctx: &ExperimentCtx) -> ScalarConvergence {
    let (a, b) = fe_problem(ctx);
    let n = a.nrows();
    let x0 = vec![0.0; n];
    let opts = three_sweep_opts(n);
    let ds = distributed_southwell_scalar(&a, &b, &x0, &opts);
    let curves = vec![
        curve("SW", sequential_southwell(&a, &b, &x0, &opts).1),
        curve("Par SW", parallel_southwell(&a, &b, &x0, &opts).1),
        curve("MC GS", multicolor_gauss_seidel(&a, &b, &x0, &opts).1),
        curve("Dist SW", ds.history),
    ];
    let result = ScalarConvergence { n, curves };
    emit(ctx, "fig5", &result);
    result
}

fn curve(label: &'static str, history: ScalarHistory) -> Curve {
    Curve { label, history }
}

fn emit(ctx: &ExperimentCtx, name: &str, result: &ScalarConvergence) {
    println!(
        "\n=== {} — scalar convergence, n = {} (3 sweeps) ===",
        name, result.n
    );
    println!(
        "{:<8} {:>10} {:>14} {:>12} {:>16}",
        "method", "steps", "relaxations", "final ‖r‖", "relax to ‖r‖=0.6"
    );
    let mut rows = Vec::new();
    for c in &result.curves {
        let to06 = c.history.relaxations_to_reach(0.6);
        let steps = match c.history.parallel_steps() {
            0 => "-".to_string(), // one-at-a-time method: no parallel steps
            k => k.to_string(),
        };
        println!(
            "{:<8} {:>10} {:>14} {:>12.4} {:>16}",
            c.label,
            steps,
            c.history.total_relaxations,
            c.history.final_residual,
            to06.map(|v| format!("{v:.0}")).unwrap_or("†".into()),
        );
        for s in &c.history.samples {
            rows.push(vec![
                c.label.to_string(),
                s.relaxations.to_string(),
                format!("{:.6e}", s.residual_norm),
            ]);
        }
    }
    // The paper's plot shape, in the terminal.
    let series: Vec<crate::chart::Series<'_>> = result
        .curves
        .iter()
        .map(|c| crate::chart::Series {
            label: c.label,
            points: c
                .history
                .samples
                .iter()
                .map(|s| (s.relaxations as f64, s.residual_norm))
                .collect(),
        })
        .collect();
    crate::chart::print(&series, 72, 16);
    write_csv(
        &ctx.out_dir,
        name,
        &["method", "relaxations", "residual_norm"],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shape_holds_at_small_scale() {
        let ctx = ExperimentCtx::smoke();
        let r = run_fig2(&ctx);
        let get = |l: &str| {
            r.curves
                .iter()
                .find(|c| c.label == l)
                .unwrap()
                .history
                .relaxations_to_reach(0.6)
                .expect("reaches 0.6 within 3 sweeps")
        };
        // Paper's qualitative ordering at low accuracy: SW fastest,
        // Par SW close, both well below GS; Jacobi slowest.
        let (sw, psw, gs, j) = (get("SW"), get("Par SW"), get("GS"), get("Jacobi"));
        assert!(sw < gs, "SW {sw} !< GS {gs}");
        assert!(psw < gs, "ParSW {psw} !< GS {gs}");
        assert!(gs < j, "GS {gs} !< Jacobi {j}");
    }

    #[test]
    fn fig5_ds_tracks_psw() {
        let ctx = ExperimentCtx::smoke();
        let r = run_fig5(&ctx);
        let get = |l: &str| {
            r.curves
                .iter()
                .find(|c| c.label == l)
                .unwrap()
                .history
                .relaxations_to_reach(0.6)
                .expect("reaches 0.6")
        };
        let (ds, psw) = (get("Dist SW"), get("Par SW"));
        assert!(ds < 2.0 * psw, "DS {ds} should track ParSW {psw}");
        // DS takes fewer parallel steps (more relaxations per step).
        let steps = |l: &str| {
            r.curves
                .iter()
                .find(|c| c.label == l)
                .unwrap()
                .history
                .parallel_steps()
        };
        assert!(steps("Dist SW") <= steps("Par SW"));
    }
}
