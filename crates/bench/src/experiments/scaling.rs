//! Figures 8 and 9: strong scaling over the rank count.
//!
//! Figure 8 plots the (modelled) wall-clock time to reach ‖r‖₂ = 0.1 as a
//! function of the number of ranks; a missing point means the method never
//! reached the target within 50 parallel steps. Figure 9 plots the
//! residual norm after exactly 50 parallel steps — values above 1 mean the
//! method diverged. The paper sweeps 32…8192 MPI processes over 0.4M–1.6M
//! rows; we sweep 8…512 simulated ranks over the scaled-down stand-ins,
//! preserving the subdomain-size regime (see DESIGN.md).

use crate::harness::{fmt_or_dagger, setup_problem, suite_partition, write_csv, ExperimentCtx};
use dsw_core::dist::{run_method, DistOptions, DistReport, Method};
use dsw_sparse::suite::by_name;

/// The six matrices the paper plots in Figures 8 and 9.
pub const SCALING_MATRICES: [&str; 6] = [
    "Flan_1565",
    "ldoor",
    "StocF-1465",
    "inline_1",
    "bone010",
    "Hook_1498",
];

/// One (matrix, ranks, method) measurement.
pub struct ScalingPoint {
    /// Matrix name.
    pub matrix: &'static str,
    /// Rank count.
    pub ranks: usize,
    /// Method.
    pub method: Method,
    /// Modelled seconds to reach 0.1 (`None` = not reached in 50 steps).
    pub time_to_target: Option<f64>,
    /// Residual norm after the full 50 steps.
    pub residual_after_50: f64,
    /// Mean per-step load imbalance (slowest rank / mean measured compute
    /// time): the paper's few-winners regime made visible.
    pub mean_imbalance: f64,
    /// Executor worker utilization (busy / (span × workers)).
    pub worker_utilization: f64,
}

/// Rank counts for the sweep at a given context scale.
pub fn rank_sweep(ctx: &ExperimentCtx) -> Vec<usize> {
    let full = [8usize, 16, 32, 64, 128, 256, 512];
    if ctx.scale >= 1.0 {
        full.to_vec()
    } else {
        vec![4, 8, 16, 32]
    }
}

/// Runs the sweep shared by Figures 8 and 9.
pub fn scaling_points(ctx: &ExperimentCtx) -> Vec<ScalingPoint> {
    let mut points = Vec::new();
    for name in SCALING_MATRICES {
        let e = by_name(name).expect("matrix in suite");
        let a = ctx.build_suite_matrix(&e);
        let prob = setup_problem(a, 0x5CA1E + e.paper_nnz);
        for &p in &rank_sweep(ctx) {
            // Tiny smoke-scale stand-ins can have fewer rows than the rank
            // count; clamp so every rank owns at least a few rows.
            let p = p.min((prob.n() / 4).max(1));
            let part = suite_partition(&prob.a, p, 1);
            for m in [
                Method::BlockJacobi,
                Method::ParallelSouthwell,
                Method::DistributedSouthwell,
            ] {
                let opts = DistOptions {
                    max_steps: ctx.max_steps,
                    target_residual: None,
                    divergence_cutoff: None,
                    ..DistOptions::default()
                };
                let rep: DistReport = run_method(m, &prob.a, &prob.b, &prob.x0, &part, &opts);
                points.push(ScalingPoint {
                    matrix: name,
                    ranks: p,
                    method: m,
                    time_to_target: rep.time_to_reach(0.1),
                    residual_after_50: rep.final_residual(),
                    mean_imbalance: rep.mean_imbalance(),
                    worker_utilization: rep.worker_utilization(),
                });
            }
        }
    }
    points
}

/// Figure 8 entry point.
pub fn run_fig8(ctx: &ExperimentCtx) -> Vec<ScalingPoint> {
    let points = scaling_points(ctx);
    println!("\n=== fig8 — modelled time (ms) to ‖r‖₂ = 0.1 vs ranks ===");
    print_grid(&points, |pt| pt.time_to_target.map(|t| t * 1e3), 2);
    let rows = csv_rows(&points);
    write_csv(
        &ctx.out_dir,
        "fig8",
        &[
            "matrix",
            "ranks",
            "method",
            "time_to_target_s",
            "residual_after_50",
            "mean_imbalance",
            "worker_utilization",
        ],
        &rows,
    );
    points
}

/// Figure 9 entry point.
pub fn run_fig9(ctx: &ExperimentCtx) -> Vec<ScalingPoint> {
    let points = scaling_points(ctx);
    println!("\n=== fig9 — residual norm after 50 parallel steps vs ranks ===");
    print_grid(&points, |pt| Some(pt.residual_after_50), 4);
    let rows = csv_rows(&points);
    write_csv(
        &ctx.out_dir,
        "fig9",
        &[
            "matrix",
            "ranks",
            "method",
            "time_to_target_s",
            "residual_after_50",
            "mean_imbalance",
            "worker_utilization",
        ],
        &rows,
    );
    points
}

fn csv_rows(points: &[ScalingPoint]) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|pt| {
            vec![
                pt.matrix.to_string(),
                pt.ranks.to_string(),
                pt.method.label().to_string(),
                fmt_or_dagger(pt.time_to_target, 6),
                format!("{:.6e}", pt.residual_after_50),
                format!("{:.3}", pt.mean_imbalance),
                format!("{:.3}", pt.worker_utilization),
            ]
        })
        .collect()
}

fn print_grid(points: &[ScalingPoint], f: impl Fn(&ScalingPoint) -> Option<f64>, decimals: usize) {
    let mut matrices: Vec<&str> = points.iter().map(|p| p.matrix).collect();
    matrices.dedup();
    let mut ranks: Vec<usize> = points.iter().map(|p| p.ranks).collect();
    ranks.sort_unstable();
    ranks.dedup();
    for m in matrices {
        println!("{m}:");
        for method in [
            Method::BlockJacobi,
            Method::ParallelSouthwell,
            Method::DistributedSouthwell,
        ] {
            let mut line = format!("  {:<3}", method.label());
            for &p in &ranks {
                let pt = points
                    .iter()
                    .find(|x| x.matrix == m && x.ranks == p && x.method == method)
                    .unwrap();
                line.push_str(&format!(" {:>10}", fmt_or_dagger(f(pt), decimals)));
            }
            println!("{line}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_combinations() {
        let mut ctx = ExperimentCtx::smoke();
        // 0.3 keeps the smallest stand-in above ~30 rows per rank at the
        // top of the sweep — the paper's subdomain regime. (Degenerately
        // small blocks reintroduce the adjacent-relax risk of §4.3.)
        ctx.scale = 0.3;
        let pts = scaling_points(&ctx);
        assert_eq!(pts.len(), 6 * rank_sweep(&ctx).len() * 3);
        // DS never diverges on the sweep.
        for pt in pts
            .iter()
            .filter(|p| p.method == Method::DistributedSouthwell)
        {
            assert!(
                pt.residual_after_50 < 10.0,
                "{} at {} ranks: DS residual {}",
                pt.matrix,
                pt.ranks,
                pt.residual_after_50
            );
        }
        // The load-imbalance observables populate for every point.
        for pt in &pts {
            assert!(
                pt.mean_imbalance >= 1.0,
                "{}: {}",
                pt.matrix,
                pt.mean_imbalance
            );
            assert!(
                pt.worker_utilization > 0.0 && pt.worker_utilization <= 1.0,
                "{}: {}",
                pt.matrix,
                pt.worker_utilization
            );
        }
    }
}
