//! Asynchronous backend study (beyond the paper's tables): DS vs PS vs BJ
//! driven through [`ExecBackend::Async`], swept over the progress bound
//! (`max_lag`) and the straggler skew. The paper's MPI implementation runs
//! asynchronously (Casper ghost processes); this experiment asks whether
//! Distributed Southwell's communication advantage survives uncoordinated
//! schedules and heterogeneous rank speeds — reporting scheduler ticks to
//! ‖r‖₂ ≤ 0.1, per-rank message cost to the target, and per-class totals.

use crate::harness::{fmt_or_dagger, setup_problem, suite_partition, write_csv, ExperimentCtx};
use dsw_core::dist::{run_method, DistOptions, ExecBackend, Method};
use dsw_rma::AsyncOptions;
use dsw_sparse::gen;

/// The sweep's convergence target (the paper's Table 2 rule).
pub const TARGET: f64 = 0.1;

/// The `(max_lag, straggler_skew)` point the CI bench gate checks.
pub const DEFAULT_LAG: usize = 4;
pub const DEFAULT_SKEW: f64 = 0.5;

/// One row of the async sweep.
pub struct AsyncRow {
    /// Method label (DS / PS / BJ).
    pub method: &'static str,
    /// Progress bound: max phases any rank may lead the slowest.
    pub max_lag: usize,
    /// Straggler skew of the per-rank advance probabilities.
    pub skew: f64,
    /// Scheduler tick at which ‖r‖₂ ≤ 0.1 was first (verifiably) met.
    pub converged_tick: Option<usize>,
    /// Messages per rank expended to reach the target (interpolated).
    pub msgs_to_target: Option<f64>,
    /// Total delivered messages over the whole run.
    pub msgs: u64,
    /// ... of the solve class.
    pub msgs_solve: u64,
    /// ... of the explicit-residual class.
    pub msgs_residual: u64,
    /// Final true residual norm.
    pub final_residual: f64,
    /// The run froze permanently.
    pub deadlocked: bool,
}

fn run_one(method: Method, max_lag: usize, skew: f64, ctx: &ExperimentCtx) -> AsyncRow {
    // §4.2 Poisson setup, sized with the context's scale (the smoke scale
    // gives a 12×12 grid over 8 ranks).
    let g = ((48.0 * ctx.scale).round() as usize).max(12);
    let mut a = gen::grid2d_poisson(g, g);
    a.scale_unit_diagonal().unwrap();
    let prob = setup_problem(a, 11);
    let p = (g * g / 32).max(8);
    let part = suite_partition(&prob.a, p, 1);
    let opts = DistOptions {
        max_steps: ctx.max_steps.max(200),
        target_residual: Some(TARGET),
        backend: ExecBackend::Async(AsyncOptions {
            advance_probability: 0.6,
            max_lag,
            seed: 1,
            straggler_skew: skew,
        }),
        ..DistOptions::default()
    };
    let rep = run_method(method, &prob.a, &prob.b, &prob.x0, &part, &opts);
    AsyncRow {
        method: method.label(),
        max_lag,
        skew,
        converged_tick: rep.converged_at,
        msgs_to_target: rep.comm_to_reach(TARGET),
        msgs: rep.stats.total_msgs(),
        msgs_solve: rep.stats.total_msgs_solve(),
        msgs_residual: rep.stats.total_msgs_residual(),
        final_residual: rep.final_residual(),
        deadlocked: rep.deadlocked,
    }
}

/// Runs the sweep: DS / PS / BJ × `max_lag` × straggler skew.
pub fn run_async_convergence(ctx: &ExperimentCtx) -> Vec<AsyncRow> {
    let methods = [
        Method::DistributedSouthwell,
        Method::ParallelSouthwell,
        Method::BlockJacobi,
    ];
    let lags = [2usize, DEFAULT_LAG, 8];
    let skews = [0.0f64, DEFAULT_SKEW, 0.9];
    let mut rows = Vec::new();
    for m in methods {
        for &lag in &lags {
            for &skew in &skews {
                rows.push(run_one(m, lag, skew, ctx));
            }
        }
    }

    println!(
        "\n=== async — DS vs PS vs BJ under asynchronous scheduling (target ‖r‖₂ = {TARGET}) ==="
    );
    println!(
        "{:<6} {:>7} {:>5} {:>8} {:>12} {:>9} {:>9} {:>9} {:>10}",
        "method", "max_lag", "skew", "ticks", "msgs/rank→t", "msgs", "solve", "resid", "final ‖r‖"
    );
    let mut csv = Vec::new();
    for r in &rows {
        let ticks = match (r.converged_tick, r.deadlocked) {
            (Some(t), _) => t.to_string(),
            (None, true) => "frozen".to_string(),
            (None, false) => "†".to_string(),
        };
        println!(
            "{:<6} {:>7} {:>5.1} {:>8} {:>12} {:>9} {:>9} {:>9} {:>10.2e}",
            r.method,
            r.max_lag,
            r.skew,
            ticks,
            fmt_or_dagger(r.msgs_to_target, 1),
            r.msgs,
            r.msgs_solve,
            r.msgs_residual,
            r.final_residual
        );
        csv.push(vec![
            r.method.to_string(),
            r.max_lag.to_string(),
            format!("{:.2}", r.skew),
            r.converged_tick.map(|t| t.to_string()).unwrap_or("".into()),
            r.msgs_to_target
                .map(|m| format!("{m:.2}"))
                .unwrap_or("".into()),
            r.msgs.to_string(),
            r.msgs_solve.to_string(),
            r.msgs_residual.to_string(),
            format!("{:.6e}", r.final_residual),
            r.deadlocked.to_string(),
        ]);
    }
    write_csv(
        &ctx.out_dir,
        "async_convergence",
        &[
            "method",
            "max_lag",
            "straggler_skew",
            "converged_tick",
            "msgs_per_rank_to_target",
            "msgs",
            "msgs_solve",
            "msgs_residual",
            "final_residual",
            "deadlocked",
        ],
        &csv,
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ds_keeps_its_message_advantage_under_asynchrony() {
        let ctx = ExperimentCtx::smoke();
        let rows = run_async_convergence(&ctx);
        let find = |method: &str, lag: usize, skew: f64| {
            rows.iter()
                .find(|r| r.method == method && r.max_lag == lag && (r.skew - skew).abs() < 1e-12)
                .unwrap()
        };
        // Every method converges at the default sweep point (the
        // acceptance problem is small and well-conditioned).
        for m in ["DS", "PS", "BJ"] {
            let r = find(m, DEFAULT_LAG, DEFAULT_SKEW);
            assert!(
                r.converged_tick.is_some(),
                "{m} did not converge at the default sweep point (final {:.2e})",
                r.final_residual
            );
            assert!(!r.deadlocked);
        }
        // The headline claim survives asynchrony: DS spends fewer messages
        // per rank to the target than PS at the default sweep point...
        let ds = find("DS", DEFAULT_LAG, DEFAULT_SKEW);
        let ps = find("PS", DEFAULT_LAG, DEFAULT_SKEW);
        let (dsm, psm) = (
            ds.msgs_to_target.expect("DS crossed the target"),
            ps.msgs_to_target.expect("PS crossed the target"),
        );
        assert!(
            dsm < psm,
            "DS msgs/rank {dsm:.1} should beat PS {psm:.1} at lag {DEFAULT_LAG}, skew {DEFAULT_SKEW}"
        );
        // ... and under every straggler-skew setting of the sweep.
        for &skew in &[0.0, DEFAULT_SKEW, 0.9] {
            let ds = find("DS", DEFAULT_LAG, skew);
            let ps = find("PS", DEFAULT_LAG, skew);
            if let (Some(d), Some(p)) = (ds.msgs_to_target, ps.msgs_to_target) {
                assert!(d < p, "skew {skew}: DS {d:.1} !< PS {p:.1}");
            }
        }
    }
}
