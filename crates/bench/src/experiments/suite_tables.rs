//! Tables 2, 3, and 4: the full-suite comparison of Block Jacobi,
//! Parallel Southwell, and Distributed Southwell at a fixed rank count.
//!
//! One 50-step run per (matrix, method) — no early stopping, no divergence
//! cutoff, exactly like the paper's sweeps — feeds all three tables:
//!
//! * **Table 2**: wall-clock time, communication cost, parallel steps,
//!   relaxations/n, and active-process fraction to reach ‖r‖₂ = 0.1
//!   (log-interpolated; `†` if never reached in 50 steps),
//! * **Table 3**: the communication cost split into solve messages and
//!   explicit residual updates,
//! * **Table 4**: mean wall-clock time and communication cost per parallel
//!   step over the 50 steps.

use crate::harness::{fmt_or_dagger, setup_problem, suite_partition, write_csv, ExperimentCtx};
use dsw_core::dist::{run_method, DistOptions, DistReport, Method};
use dsw_sparse::suite::suite;

/// The three methods of the comparison, in the paper's column order.
pub const METHODS: [Method; 3] = [
    Method::BlockJacobi,
    Method::ParallelSouthwell,
    Method::DistributedSouthwell,
];

/// All runs for one matrix.
pub struct SuiteRun {
    /// Matrix name.
    pub name: &'static str,
    /// Rows.
    pub n: usize,
    /// Reports in [`METHODS`] order.
    pub reports: Vec<DistReport>,
}

/// Runs the full suite (one 50-step run per matrix and method).
pub fn suite_runs(ctx: &ExperimentCtx) -> Vec<SuiteRun> {
    let p = ctx.scaled_ranks();
    let mut out = Vec::new();
    for e in suite() {
        let a = ctx.build_suite_matrix(&e);
        let prob = setup_problem(a, 0xD15C0 + e.paper_nnz);
        let part = suite_partition(&prob.a, p, 1);
        let opts = DistOptions {
            max_steps: ctx.max_steps,
            target_residual: None,
            divergence_cutoff: None,
            ..DistOptions::default()
        };
        let reports = METHODS
            .iter()
            .map(|&m| run_method(m, &prob.a, &prob.b, &prob.x0, &part, &opts))
            .collect();
        out.push(SuiteRun {
            name: e.name,
            n: prob.n(),
            reports,
        });
    }
    out
}

/// Prints Table 2 from the shared runs.
pub fn table2(ctx: &ExperimentCtx, runs: &[SuiteRun]) {
    const TARGET: f64 = 0.1;
    println!(
        "\n=== table2 — reaching ‖r‖₂ = {TARGET} with {} ranks (BJ | PS | DS) ===",
        ctx.scaled_ranks()
    );
    println!(
        "{:<12} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6}",
        "matrix", "t_BJ", "t_PS", "t_DS", "c_BJ", "c_PS", "c_DS", "s_BJ", "s_PS", "s_DS",
        "rx_BJ", "rx_PS", "rx_DS", "a_BJ", "a_PS", "a_DS"
    );
    let mut rows = Vec::new();
    for run in runs {
        let t: Vec<Option<f64>> = run
            .reports
            .iter()
            .map(|r| r.time_to_reach(TARGET))
            .collect();
        let c: Vec<Option<f64>> = run
            .reports
            .iter()
            .map(|r| r.comm_to_reach(TARGET))
            .collect();
        let s: Vec<Option<f64>> = run
            .reports
            .iter()
            .map(|r| r.steps_to_reach(TARGET))
            .collect();
        let rx: Vec<Option<f64>> = run
            .reports
            .iter()
            .map(|r| r.relaxations_to_reach(TARGET))
            .collect();
        let act: Vec<Option<f64>> = run
            .reports
            .iter()
            .zip(&s)
            .map(|(r, reached)| reached.map(|_| r.active_fraction()))
            .collect();
        println!(
            "{:<12} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6}",
            run.name,
            fmt_or_dagger(t[0].map(|v| v * 1e3), 2),
            fmt_or_dagger(t[1].map(|v| v * 1e3), 2),
            fmt_or_dagger(t[2].map(|v| v * 1e3), 2),
            fmt_or_dagger(c[0], 1),
            fmt_or_dagger(c[1], 1),
            fmt_or_dagger(c[2], 1),
            fmt_or_dagger(s[0], 1),
            fmt_or_dagger(s[1], 1),
            fmt_or_dagger(s[2], 1),
            fmt_or_dagger(rx[0], 2),
            fmt_or_dagger(rx[1], 2),
            fmt_or_dagger(rx[2], 2),
            fmt_or_dagger(act[0], 3),
            fmt_or_dagger(act[1], 3),
            fmt_or_dagger(act[2], 3),
        );
        for (i, m) in METHODS.iter().enumerate() {
            rows.push(vec![
                run.name.to_string(),
                m.label().to_string(),
                fmt_or_dagger(t[i], 6),
                fmt_or_dagger(c[i], 3),
                fmt_or_dagger(s[i], 3),
                fmt_or_dagger(rx[i], 3),
                fmt_or_dagger(act[i], 4),
            ]);
        }
    }
    println!("(t in modelled milliseconds; c = messages/rank; s = parallel steps;");
    println!(" rx = relaxations/n; a = mean active-process fraction; † = not reached in 50 steps)");
    write_csv(
        &ctx.out_dir,
        "table2",
        &[
            "matrix",
            "method",
            "time_s",
            "comm_cost",
            "parallel_steps",
            "relaxations_per_n",
            "active_fraction",
        ],
        &rows,
    );
}

/// One method's Table 3 cells: solve/residual message costs, then the
/// matching per-class byte volumes (`None` = target never reached).
type Table3Cells = (Option<f64>, Option<f64>, Option<f64>, Option<f64>);

/// Prints Table 3 (communication breakdown to the 0.1 target).
pub fn table3(ctx: &ExperimentCtx, runs: &[SuiteRun]) {
    const TARGET: f64 = 0.1;
    println!("\n=== table3 — communication breakdown to ‖r‖₂ = {TARGET} (PS vs DS) ===");
    println!(
        "{:<12} | {:>10} {:>10} | {:>10} {:>10}",
        "matrix", "solve PS", "solve DS", "res PS", "res DS"
    );
    let mut rows = Vec::new();
    for run in runs {
        // PS is index 1, DS index 2 in METHODS order. Messages carry the
        // paper's cost metric; the per-class byte columns record the
        // modelled payload volume behind those messages.
        let vals: Vec<Table3Cells> = [1usize, 2]
            .iter()
            .map(|&i| {
                let r = &run.reports[i];
                let p = r.nranks as f64;
                let solve = crossing_of(r, TARGET, |rec| rec.msgs_solve as f64 / p);
                let res = crossing_of(r, TARGET, |rec| rec.msgs_residual as f64 / p);
                let solve_b = crossing_of(r, TARGET, |rec| rec.bytes_solve as f64 / p);
                let res_b = crossing_of(r, TARGET, |rec| rec.bytes_residual as f64 / p);
                (solve, res, solve_b, res_b)
            })
            .collect();
        println!(
            "{:<12} | {:>10} {:>10} | {:>10} {:>10}",
            run.name,
            fmt_or_dagger(vals[0].0, 3),
            fmt_or_dagger(vals[1].0, 3),
            fmt_or_dagger(vals[0].1, 3),
            fmt_or_dagger(vals[1].1, 3),
        );
        for (k, &i) in [1usize, 2].iter().enumerate() {
            rows.push(vec![
                run.name.to_string(),
                run.reports[i].method.label().to_string(),
                fmt_or_dagger(vals[k].0, 4),
                fmt_or_dagger(vals[k].1, 4),
                fmt_or_dagger(vals[k].2, 4),
                fmt_or_dagger(vals[k].3, 4),
            ]);
        }
    }
    write_csv(
        &ctx.out_dir,
        "table3",
        &[
            "matrix",
            "method",
            "solve_comm",
            "res_comm",
            "solve_bytes",
            "res_bytes",
        ],
        &rows,
    );
}

/// Prints Table 4 (mean per-step cost over the 50-step run).
pub fn table4(ctx: &ExperimentCtx, runs: &[SuiteRun]) {
    println!(
        "\n=== table4 — mean per-parallel-step cost over {} steps (BJ | PS | DS) ===",
        ctx.max_steps
    );
    println!(
        "{:<12} | {:>9} {:>9} {:>9} | {:>8} {:>8} {:>8}",
        "matrix", "t_BJ(ms)", "t_PS(ms)", "t_DS(ms)", "c_BJ", "c_PS", "c_DS"
    );
    let mut rows = Vec::new();
    for run in runs {
        let mt: Vec<f64> = run
            .reports
            .iter()
            .map(|r| {
                let steps = (r.records.len() - 1).max(1) as f64;
                r.records.last().unwrap().time / steps
            })
            .collect();
        let mc: Vec<f64> = run
            .reports
            .iter()
            .map(|r| {
                let steps = (r.records.len() - 1).max(1) as f64;
                r.records.last().unwrap().msgs as f64 / r.nranks as f64 / steps
            })
            .collect();
        println!(
            "{:<12} | {:>9.4} {:>9.4} {:>9.4} | {:>8.3} {:>8.3} {:>8.3}",
            run.name,
            mt[0] * 1e3,
            mt[1] * 1e3,
            mt[2] * 1e3,
            mc[0],
            mc[1],
            mc[2]
        );
        for (i, m) in METHODS.iter().enumerate() {
            rows.push(vec![
                run.name.to_string(),
                m.label().to_string(),
                format!("{:.6e}", mt[i]),
                format!("{:.4}", mc[i]),
            ]);
        }
    }
    write_csv(
        &ctx.out_dir,
        "table4",
        &[
            "matrix",
            "method",
            "mean_step_time_s",
            "mean_step_comm_cost",
        ],
        &rows,
    );
}

/// Crossing helper over an arbitrary cumulative x-axis.
fn crossing_of(
    r: &DistReport,
    target: f64,
    f: impl Fn(&dsw_core::dist::StepRecord) -> f64,
) -> Option<f64> {
    dsw_core::history::interpolate_crossing(
        r.records.iter().map(|rec| (f(rec), rec.residual_norm)),
        target,
    )
}

/// Convenience entry points (each recomputes the shared runs).
pub fn run_table2(ctx: &ExperimentCtx) -> Vec<SuiteRun> {
    let runs = suite_runs(ctx);
    table2(ctx, &runs);
    runs
}

/// Table 3 entry point.
pub fn run_table3(ctx: &ExperimentCtx) -> Vec<SuiteRun> {
    let runs = suite_runs(ctx);
    table3(ctx, &runs);
    runs
}

/// Table 4 entry point.
pub fn run_table4(ctx: &ExperimentCtx) -> Vec<SuiteRun> {
    let runs = suite_runs(ctx);
    table4(ctx, &runs);
    runs
}
