//! Ablations of Distributed Southwell's design choices (DESIGN.md):
//!
//! * **deadlock avoidance** (Alg. 3 lines 27–30) off → the method freezes,
//!   like the ICCS'16 piggyback-only scheme the paper criticizes;
//! * **local ghost-layer refinement** off → neighbor-norm estimates go
//!   stale between messages and far more explicit updates are needed.

use crate::harness::{setup_problem, suite_partition, write_csv, ExperimentCtx};
use dsw_core::dist::{run_method, DistOptions, DistReport, DsConfig, Method};
use dsw_sparse::suite::by_name;

/// One ablation configuration's outcome.
pub struct AblationRow {
    /// Configuration label.
    pub label: &'static str,
    /// Reached ‖r‖ = 0.1?
    pub reached: bool,
    /// Deadlocked?
    pub deadlocked: bool,
    /// Communication cost expended (total msgs / ranks at end of run).
    pub comm_cost: f64,
    /// Explicit-residual share of the messages.
    pub res_share: f64,
    /// Final residual.
    pub final_residual: f64,
}

/// Runs the ablations on a mid-size suite matrix.
pub fn run_ablation(ctx: &ExperimentCtx) -> Vec<AblationRow> {
    let e = by_name("msdoor").expect("suite matrix");
    let a = ctx.build_suite_matrix(&e);
    let prob = setup_problem(a, 77);
    let part = suite_partition(&prob.a, ctx.scaled_ranks(), 1);

    let configs: [(&'static str, Method, DsConfig); 4] = [
        (
            "DS (full)",
            Method::DistributedSouthwell,
            DsConfig::default(),
        ),
        (
            "DS, no ghost refinement",
            Method::DistributedSouthwell,
            DsConfig {
                refine_estimates: false,
                deadlock_avoidance: true,
                ..DsConfig::default()
            },
        ),
        (
            "DS, no deadlock avoidance",
            Method::DistributedSouthwell,
            DsConfig {
                refine_estimates: true,
                deadlock_avoidance: false,
                ..DsConfig::default()
            },
        ),
        (
            "PS piggyback-only (ICCS'16)",
            Method::ParallelSouthwellPiggybackOnly,
            DsConfig::default(),
        ),
    ];

    println!("\n=== ablation — Distributed Southwell design choices (msdoor) ===");
    println!(
        "{:<28} {:>8} {:>10} {:>10} {:>10} {:>12}",
        "configuration", "reached", "deadlock", "comm", "res share", "final ‖r‖"
    );
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (label, method, ds_config) in configs {
        // Run the full step budget (no early stop at the target): the
        // ablated behaviors — stale estimates forcing explicit updates,
        // and the freeze without avoidance — only accumulate over a
        // sustained run, like the paper's 50-step sweeps.
        let opts = DistOptions {
            max_steps: ctx.max_steps,
            target_residual: None,
            ds_config,
            ..DistOptions::default()
        };
        let rep: DistReport = run_method(method, &prob.a, &prob.b, &prob.x0, &part, &opts);
        let last = rep.records.last().unwrap();
        let res_share = if last.msgs > 0 {
            last.msgs_residual as f64 / last.msgs as f64
        } else {
            0.0
        };
        let row = AblationRow {
            label,
            reached: rep.records.iter().any(|rec| rec.residual_norm <= 0.1),
            deadlocked: rep.deadlocked,
            comm_cost: rep.comm_cost(),
            res_share,
            final_residual: rep.final_residual(),
        };
        println!(
            "{:<28} {:>8} {:>10} {:>10.2} {:>10.3} {:>12.3e}",
            row.label,
            row.reached,
            row.deadlocked,
            row.comm_cost,
            row.res_share,
            row.final_residual
        );
        rows.push(vec![
            label.to_string(),
            row.reached.to_string(),
            row.deadlocked.to_string(),
            format!("{:.3}", row.comm_cost),
            format!("{:.4}", row.res_share),
            format!("{:.6e}", row.final_residual),
        ]);
        out.push(row);
    }
    write_csv(
        &ctx.out_dir,
        "ablation",
        &[
            "config",
            "reached_0.1",
            "deadlocked",
            "comm_cost",
            "res_share",
            "final_residual",
        ],
        &rows,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_ds_wins_the_ablation() {
        // Only the scale-robust facts are asserted here: at the smoke
        // scale (32 ranks, tiny msdoor stand-in) neither pathology has
        // room to develop — estimates barely go stale, so refinement's
        // message savings (and the piggyback-only freeze) only show at
        // the full 512-rank scale, where `experiments -- ablation`
        // reproduces both.
        let ctx = ExperimentCtx::smoke();
        let rows = run_ablation(&ctx);
        let full = &rows[0];
        assert!(full.reached, "full DS must reach the target");
        assert!(!full.deadlocked);
        // Deadlock avoidance is the only source of explicit updates:
        // visible in the full config, structurally absent when disabled.
        assert!(full.res_share > 0.0, "avoidance must send explicit updates");
        let noavoid = &rows[2];
        assert_eq!(noavoid.res_share, 0.0);
        let piggyback = &rows[3];
        assert_eq!(piggyback.res_share, 0.0);
        // Whatever the config, a run that reached the target must agree
        // with the full method's final state to iteration accuracy.
        for r in &rows {
            if r.reached {
                assert!(r.final_residual < 0.1, "{}: {}", r.label, r.final_residual);
            }
        }
    }
}
