//! Figure 7: residual norm against wall-clock time, communication cost,
//! and parallel step for four matrices exhibiting the different Block
//! Jacobi behaviours (reaches 0.1 then diverges / never reaches 0.1 /
//! never diverges).

#[cfg(test)]
use crate::experiments::suite_tables::METHODS;
use crate::experiments::suite_tables::{suite_runs, SuiteRun};
use crate::harness::{write_csv, ExperimentCtx};

/// The four matrices the paper plots.
pub const FIG7_MATRICES: [&str; 4] = ["Geo_1438", "Hook_1498", "bone010", "af_5_k101"];

/// Runs the experiment (full-suite runs, then the four panels extracted).
pub fn run_fig7(ctx: &ExperimentCtx) -> Vec<SuiteRun> {
    let runs: Vec<SuiteRun> = suite_runs(ctx)
        .into_iter()
        .filter(|r| FIG7_MATRICES.contains(&r.name))
        .collect();
    emit(ctx, &runs);
    runs
}

/// Prints the summary and writes per-step CSV series.
pub fn emit(ctx: &ExperimentCtx, runs: &[SuiteRun]) {
    println!("\n=== fig7 — residual vs time / comm / steps, four BJ regimes ===");
    let mut rows = Vec::new();
    for run in runs {
        println!("\n{} — residual norm vs parallel step:", run.name);
        let series: Vec<crate::chart::Series<'_>> = run
            .reports
            .iter()
            .map(|rep| crate::chart::Series {
                label: rep.method.label(),
                points: rep
                    .records
                    .iter()
                    .map(|rec| (rec.step as f64, rec.residual_norm))
                    .collect(),
            })
            .collect();
        crate::chart::print(&series, 60, 12);
        for rep in &run.reports {
            let final_r = rep.final_residual();
            let reached = rep.steps_to_reach(0.1).is_some();
            println!(
                "{:<12} {:<3}: final ‖r‖ = {:>10.3e} after {:>2} steps, reached 0.1: {}, diverged: {}",
                run.name,
                rep.method.label(),
                final_r,
                rep.records.len() - 1,
                reached,
                rep.diverged || final_r > 1.0,
            );
            for rec in &rep.records {
                rows.push(vec![
                    run.name.to_string(),
                    rep.method.label().to_string(),
                    rec.step.to_string(),
                    format!("{:.6e}", rec.time),
                    format!("{:.3}", rec.msgs as f64 / rep.nranks as f64),
                    format!("{:.6e}", rec.residual_norm),
                ]);
            }
        }
    }
    write_csv(
        &ctx.out_dir,
        "fig7",
        &[
            "matrix",
            "method",
            "step",
            "time_s",
            "comm_cost",
            "residual_norm",
        ],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_have_all_methods_and_steps() {
        let ctx = ExperimentCtx::smoke();
        let runs = run_fig7(&ctx);
        assert_eq!(runs.len(), 4);
        for run in &runs {
            assert_eq!(run.reports.len(), METHODS.len());
            for rep in &run.reports {
                assert!(rep.records.len() >= 2, "{}: no steps", run.name);
            }
        }
    }
}
