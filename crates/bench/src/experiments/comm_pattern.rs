//! Communication-pattern study (beyond the paper's tables): who talks to
//! whom. Uses the substrate's message trace to contrast Block Jacobi's
//! uniform all-neighbors traffic with Distributed Southwell's sparse,
//! shifting pattern, and reports the hottest links.

use crate::harness::{setup_problem, suite_partition, write_csv, ExperimentCtx};
use dsw_core::dist::{
    distribute, BlockJacobiRank, DistributedSouthwellRank, ParallelSouthwellRank,
};
use dsw_rma::{CommClass, CostModel, ExecMode, Executor, RankAlgorithm};
use dsw_sparse::suite::by_name;

/// Per-method traffic summary.
pub struct PatternRow {
    /// Method label.
    pub label: &'static str,
    /// Delivered messages.
    pub delivered: usize,
    /// Share of (src,dst) pairs with any traffic, over all neighbor pairs.
    pub link_utilization: f64,
    /// Maximum messages on a single directed link.
    pub hottest_link: u64,
    /// Solve-class share.
    pub solve_share: f64,
}

fn run_one<R>(label: &'static str, ranks: Vec<R>, steps: usize, npairs: usize) -> PatternRow
where
    R: RankAlgorithm,
{
    let n = ranks.len();
    let mut ex = Executor::new(ranks, CostModel::default(), ExecMode::Sequential);
    ex.enable_trace(1_000_000);
    for _ in 0..steps {
        ex.step();
    }
    let trace = ex.trace.as_ref().unwrap();
    let m = trace.traffic_matrix(n);
    let used = m
        .iter()
        .flat_map(|row| row.iter())
        .filter(|&&c| c > 0)
        .count();
    let hottest = m
        .iter()
        .flat_map(|row| row.iter())
        .copied()
        .max()
        .unwrap_or(0);
    PatternRow {
        label,
        delivered: trace.len(),
        link_utilization: used as f64 / npairs.max(1) as f64,
        hottest_link: hottest,
        solve_share: trace.count_class(CommClass::Solve) as f64 / trace.len().max(1) as f64,
    }
}

/// Runs the study on the msdoor stand-in.
pub fn run_comm_pattern(ctx: &ExperimentCtx) -> Vec<PatternRow> {
    let e = by_name("msdoor").expect("suite matrix");
    let a = ctx.build_suite_matrix(&e);
    let prob = setup_problem(a, 55);
    let p = ctx.scaled_ranks();
    let part = suite_partition(&prob.a, p, 1);
    let locals = distribute(&prob.a, &prob.b, &prob.x0, &part).unwrap();
    let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
    let r0 = prob.a.residual(&prob.b, &prob.x0);
    // Directed neighbor-pair count.
    let npairs: usize = locals.iter().map(|l| l.neighbors.len()).sum();
    let steps = 25;

    let rows = vec![
        run_one("BJ", BlockJacobiRank::build(locals.clone()), steps, npairs),
        run_one(
            "PS",
            ParallelSouthwellRank::build(locals.clone(), &norms),
            steps,
            npairs,
        ),
        run_one(
            "DS",
            DistributedSouthwellRank::build(locals, &norms, &r0),
            steps,
            npairs,
        ),
    ];

    println!("\n=== comm — traffic pattern over {steps} steps (msdoor, {p} ranks) ===");
    println!(
        "{:<4} {:>10} {:>12} {:>12} {:>12}",
        "", "delivered", "link util", "hottest", "solve share"
    );
    let mut csv = Vec::new();
    for r in &rows {
        println!(
            "{:<4} {:>10} {:>12.3} {:>12} {:>12.3}",
            r.label, r.delivered, r.link_utilization, r.hottest_link, r.solve_share
        );
        csv.push(vec![
            r.label.to_string(),
            r.delivered.to_string(),
            format!("{:.4}", r.link_utilization),
            r.hottest_link.to_string(),
            format!("{:.4}", r.solve_share),
        ]);
    }
    write_csv(
        &ctx.out_dir,
        "comm_pattern",
        &[
            "method",
            "delivered",
            "link_utilization",
            "hottest_link",
            "solve_share",
        ],
        &csv,
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bj_saturates_links_and_ds_does_not() {
        let ctx = ExperimentCtx::smoke();
        let rows = run_comm_pattern(&ctx);
        let bj = &rows[0];
        let ds = &rows[2];
        // BJ sends on every neighbor link every step.
        assert!(
            bj.link_utilization > 0.999,
            "BJ util {}",
            bj.link_utilization
        );
        assert_eq!(bj.solve_share, 1.0);
        // DS delivers far fewer messages over the same steps.
        assert!(
            (ds.delivered as f64) < 0.6 * bj.delivered as f64,
            "DS {} !< BJ {}",
            ds.delivered,
            bj.delivered
        );
    }
}
