//! An artifact-compatible command-line driver, mirroring the interface of
//! the paper's `DMEM_Southwell` binary (Appendix A):
//!
//! ```text
//! dmem_southwell -n 1024 -x_zeros -mat_file ecology2.mtx -sweep_max 20 \
//!                -loc_solver gs -solver sos_sds
//! ```
//!
//! * `-mat_file F` — Matrix Market (`.mtx`) or binary (`.mtx.bin`) input
//!   (the artifact's binary matrix files); without it, a 5-point
//!   centered-difference Laplacian on a 1000×1000 grid is generated, as in
//!   the artifact (`-grid N` overrides the grid dimension).
//! * `-n P` — number of simulated ranks (the artifact's `srun -n`).
//! * `-x_zeros` — start from x = 0 with a random unit-norm right-hand
//!   side; the default is the paper's b = 0 with a random guess scaled so
//!   ‖r⁰‖₂ = 1.
//! * `-sweep_max K` — parallel steps (default 20, as in the artifact).
//! * `-loc_solver gs|pardiso` — local solver (pardiso maps to the dense
//!   Cholesky direct solve).
//! * `-solver sos_sds|sos_ps|sos_ps_iccs16|bj` — Distributed Southwell,
//!   Parallel Southwell, the deadlock-prone piggyback-only variant, or
//!   Block Jacobi.
//! * `-target R` — stop at ‖r‖₂ = R (default: run all steps).
//! * `-format_out` — machine-readable per-step output.

use dsw_core::dist::{run_method, DistOptions, LocalSolver, Method};
use dsw_partition::{partition_multilevel, Graph, MultilevelOptions};
use dsw_sparse::{gen, vecops, CsrMatrix};

struct Args {
    mat_file: Option<String>,
    grid: usize,
    ranks: usize,
    x_zeros: bool,
    sweep_max: usize,
    loc_solver: LocalSolver,
    solver: Method,
    target: Option<f64>,
    format_out: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        mat_file: None,
        grid: 1000,
        ranks: 32,
        x_zeros: false,
        sweep_max: 20,
        loc_solver: LocalSolver::GaussSeidel,
        solver: Method::DistributedSouthwell,
        target: None,
        format_out: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {a}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "-mat_file" => args.mat_file = Some(val()),
            "-grid" => args.grid = val().parse().expect("integer grid size"),
            "-n" => args.ranks = val().parse().expect("integer rank count"),
            "-x_zeros" => args.x_zeros = true,
            "-sweep_max" => args.sweep_max = val().parse().expect("integer sweep_max"),
            "-loc_solver" => {
                args.loc_solver = match val().as_str() {
                    "gs" => LocalSolver::GaussSeidel,
                    "mcgs" => LocalSolver::MulticolorGaussSeidel,
                    "pardiso" | "exact" => LocalSolver::Exact,
                    other => {
                        eprintln!("unknown local solver {other} (gs|mcgs|pardiso)");
                        std::process::exit(2);
                    }
                }
            }
            "-solver" => {
                args.solver = match val().as_str() {
                    "sos_sds" | "ds" => Method::DistributedSouthwell,
                    "sos_ps" | "ps" => Method::ParallelSouthwell,
                    "sos_ps_iccs16" => Method::ParallelSouthwellPiggybackOnly,
                    "sj" | "bj" => Method::BlockJacobi,
                    other => {
                        eprintln!("unknown solver {other} (sos_sds|sos_ps|sos_ps_iccs16|bj)");
                        std::process::exit(2);
                    }
                }
            }
            "-target" => args.target = Some(val().parse().expect("float target")),
            "-format_out" => args.format_out = true,
            "-h" | "--help" => {
                eprintln!(
                    "usage: dmem_southwell [-mat_file F | -grid N] [-n P] [-x_zeros]\n\
                     \u{20}      [-sweep_max K] [-loc_solver gs|pardiso]\n\
                     \u{20}      [-solver sos_sds|sos_ps|sos_ps_iccs16|bj] [-target R] [-format_out]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();

    // --- Setup phase (matrix load, scaling, partitioning) -----------------
    let setup_start = std::time::Instant::now();
    let mut a: CsrMatrix = match &args.mat_file {
        Some(path) => {
            let m = dsw_sparse::io_bin::read_matrix_auto(path).unwrap_or_else(|e| {
                eprintln!("failed to read {path}: {e}");
                std::process::exit(1);
            });
            if !m.is_symmetric(1e-12) {
                eprintln!("warning: matrix is not symmetric; solvers assume a_ji = a_ij");
            }
            m
        }
        None => gen::grid2d_poisson(args.grid, args.grid),
    };
    a.scale_unit_diagonal().unwrap_or_else(|e| {
        eprintln!("cannot scale to unit diagonal: {e}");
        std::process::exit(1);
    });
    let n = a.nrows();

    // The artifact scales x or b so the initial residual norm is one.
    let (b, x0) = if args.x_zeros {
        (gen::random_rhs(n, 7), vec![0.0; n])
    } else {
        let b = vec![0.0; n];
        let mut x0 = gen::random_guess(n, 7);
        let s = 1.0 / vecops::norm2(&a.residual(&b, &x0));
        x0.iter_mut().for_each(|v| *v *= s);
        (b, x0)
    };

    let ranks = args.ranks.min(n);
    let part = partition_multilevel(&Graph::from_matrix(&a), ranks, MultilevelOptions::default());
    let setup_time = setup_start.elapsed();
    println!(
        "setup: {} rows, {} nonzeros, {} ranks, partition imbalance {:.3}, {:.2?}",
        n,
        a.nnz(),
        ranks,
        part.imbalance(&Graph::from_matrix(&a)).unwrap_or(f64::NAN),
        setup_time
    );

    // --- Solve phase -------------------------------------------------------
    let mut opts = DistOptions {
        max_steps: args.sweep_max,
        target_residual: args.target,
        divergence_cutoff: None,
        ..DistOptions::default()
    };
    opts.ds_config.local_solver = args.loc_solver;
    let solve_start = std::time::Instant::now();
    let rep = run_method(args.solver, &a, &b, &x0, &part, &opts);
    let wall = solve_start.elapsed();

    if args.format_out {
        println!("step,residual_norm,relaxations,msgs,msgs_solve,msgs_residual,model_time_s");
        for r in &rep.records {
            println!(
                "{},{:.8e},{},{},{},{},{:.6e}",
                r.step,
                r.residual_norm,
                r.relaxations,
                r.msgs,
                r.msgs_solve,
                r.msgs_residual,
                r.time
            );
        }
    } else {
        println!(
            "solver {} finished: {} parallel steps, ‖r‖₂ = {:.6e}",
            args.solver.label(),
            rep.records.len() - 1,
            rep.final_residual()
        );
        println!(
            "  relaxations/n:      {:.3}",
            rep.records.last().unwrap().relaxations as f64 / n as f64
        );
        println!("  communication cost: {:.3} msgs/rank", rep.comm_cost());
        println!(
            "  active processes:   {:.3} (mean fraction per step)",
            rep.active_fraction()
        );
        println!(
            "  modelled time:      {:.4e} s   (simulator wall: {:.2?})",
            rep.records.last().unwrap().time,
            wall
        );
        if rep.deadlocked {
            println!("  DEADLOCK: the run froze before reaching the target");
        }
        if rep.diverged {
            println!("  DIVERGED");
        }
        if let Some(k) = rep.converged_at {
            println!("  reached target at parallel step {k}");
        }
    }
}
