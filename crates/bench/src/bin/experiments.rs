//! CLI entry point regenerating the paper's tables and figures.
//!
//! ```text
//! experiments [--scale F] [--ranks N] [--steps K] [--out DIR] <ids...>
//!   ids: fig1 fig2 fig5 fig6 table1 table2 table3 table4 fig7 fig8 fig9
//!        ablation threshold comm chaos async redundancy serve all smoke
//! ```

use dsw_bench::experiments::fig2::{run_fig2, run_fig5};
use dsw_bench::experiments::fig6::run_fig6;
use dsw_bench::experiments::fig7::{self, FIG7_MATRICES};
use dsw_bench::experiments::scaling::{run_fig8, run_fig9, scaling_points};
use dsw_bench::experiments::suite_tables::{suite_runs, table2, table3, table4};
use dsw_bench::experiments::{ablation, table1};
use dsw_bench::harness::ExperimentCtx;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = ExperimentCtx::default();
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => ctx.scale = it.next().expect("--scale F").parse().expect("float scale"),
            "--ranks" => {
                ctx.ranks = it
                    .next()
                    .expect("--ranks N")
                    .parse()
                    .expect("integer ranks")
            }
            "--steps" => {
                ctx.max_steps = it
                    .next()
                    .expect("--steps K")
                    .parse()
                    .expect("integer steps")
            }
            "--out" => ctx.out_dir = it.next().expect("--out DIR").into(),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!(
            "usage: experiments [--scale F] [--ranks N] [--steps K] [--out DIR] <ids...>\n\
             ids: fig1 fig2 fig5 fig6 table1 table2 table3 table4 fig7 fig8 fig9\n\
                  ablation threshold comm chaos async redundancy serve all smoke"
        );
        std::process::exit(2);
    }

    for id in ids {
        match id.as_str() {
            "fig1" | "fig3" => {
                dsw_bench::experiments::fig1::run_fig1(&ctx);
            }
            "fig2" => {
                run_fig2(&ctx);
            }
            "fig5" => {
                run_fig5(&ctx);
            }
            "fig6" => {
                run_fig6(&ctx);
            }
            "table1" => {
                table1::run_table1(&ctx);
            }
            "table2" | "table3" | "table4" | "tables" => {
                let runs = suite_runs(&ctx);
                match id.as_str() {
                    "table2" => table2(&ctx, &runs),
                    "table3" => table3(&ctx, &runs),
                    "table4" => table4(&ctx, &runs),
                    _ => {
                        table2(&ctx, &runs);
                        table3(&ctx, &runs);
                        table4(&ctx, &runs);
                    }
                }
            }
            "fig7" => {
                let runs: Vec<_> = suite_runs(&ctx)
                    .into_iter()
                    .filter(|r| FIG7_MATRICES.contains(&r.name))
                    .collect();
                fig7::emit(&ctx, &runs);
            }
            "fig8" => {
                run_fig8(&ctx);
            }
            "fig9" => {
                run_fig9(&ctx);
            }
            "ablation" => {
                ablation::run_ablation(&ctx);
            }
            "threshold" => {
                dsw_bench::experiments::threshold::run_threshold(&ctx);
            }
            "comm" => {
                dsw_bench::experiments::comm_pattern::run_comm_pattern(&ctx);
            }
            "chaos" => {
                dsw_bench::experiments::chaos::run_chaos(&ctx);
            }
            "async" => {
                dsw_bench::experiments::async_convergence::run_async_convergence(&ctx);
            }
            "redundancy" => {
                dsw_bench::experiments::redundancy::run_redundancy(&ctx);
            }
            "serve" => {
                dsw_bench::experiments::serve::run_serve(&ctx);
            }
            "all" => {
                dsw_bench::experiments::fig1::run_fig1(&ctx);
                run_fig2(&ctx);
                run_fig5(&ctx);
                run_fig6(&ctx);
                table1::run_table1(&ctx);
                let runs = suite_runs(&ctx);
                table2(&ctx, &runs);
                table3(&ctx, &runs);
                table4(&ctx, &runs);
                let panels: Vec<_> = runs
                    .into_iter()
                    .filter(|r| FIG7_MATRICES.contains(&r.name))
                    .collect();
                fig7::emit(&ctx, &panels);
                // Figures 8 and 9 share one sweep.
                let pts = scaling_points(&ctx);
                {
                    use dsw_bench::harness::write_csv;
                    let rows: Vec<Vec<String>> = pts
                        .iter()
                        .map(|pt| {
                            vec![
                                pt.matrix.to_string(),
                                pt.ranks.to_string(),
                                pt.method.label().to_string(),
                                pt.time_to_target
                                    .map(|t| format!("{t:.6}"))
                                    .unwrap_or("†".into()),
                                format!("{:.6e}", pt.residual_after_50),
                            ]
                        })
                        .collect();
                    write_csv(
                        &ctx.out_dir,
                        "fig8",
                        &[
                            "matrix",
                            "ranks",
                            "method",
                            "time_to_target_s",
                            "residual_after_50",
                        ],
                        &rows,
                    );
                    write_csv(
                        &ctx.out_dir,
                        "fig9",
                        &[
                            "matrix",
                            "ranks",
                            "method",
                            "time_to_target_s",
                            "residual_after_50",
                        ],
                        &rows,
                    );
                    println!("\n(fig8/fig9 sweep written to CSV; see results/)");
                }
                ablation::run_ablation(&ctx);
                dsw_bench::experiments::threshold::run_threshold(&ctx);
                dsw_bench::experiments::comm_pattern::run_comm_pattern(&ctx);
                dsw_bench::experiments::chaos::run_chaos(&ctx);
                dsw_bench::experiments::async_convergence::run_async_convergence(&ctx);
                dsw_bench::experiments::redundancy::run_redundancy(&ctx);
                dsw_bench::experiments::serve::run_serve(&ctx);
            }
            "smoke" => {
                let sctx = ExperimentCtx::smoke();
                run_fig2(&sctx);
                run_fig5(&sctx);
                run_fig6(&sctx);
                table1::run_table1(&sctx);
                let runs = suite_runs(&sctx);
                table2(&sctx, &runs);
                table3(&sctx, &runs);
                table4(&sctx, &runs);
                ablation::run_ablation(&sctx);
            }
            other => {
                eprintln!("unknown experiment id: {other}");
                std::process::exit(2);
            }
        }
    }
}
