//! Regime-tuning utility: probes candidate coupling / hot-region dials for
//! the synthetic suite (see DESIGN.md) by running Block Jacobi at the
//! experiment's rank counts and reporting whether it reaches the paper's
//! 0.1 target, where its residual bottoms out, and whether it diverges.
//! This is the tool the shipped dial values in `dsw_sparse::suite` were
//! fitted with; edit the candidate lists below to refit.

use dsw_bench::harness::{setup_problem, suite_partition};
use dsw_core::dist::{run_method, DistOptions, Method};
use dsw_sparse::gen::{clique_grid2d, clique_grid3d, CliqueOptions};
use dsw_sparse::CsrMatrix;

fn probe(label: &str, a: CsrMatrix, seed: u64) {
    let mut a = a;
    a.scale_unit_diagonal().unwrap();
    let prob = setup_problem(a, seed);
    let part = suite_partition(&prob.a, 512, 1);
    let opts = DistOptions {
        max_steps: 50,
        target_residual: None,
        divergence_cutoff: None,
        ..DistOptions::default()
    };
    let bj = run_method(
        Method::BlockJacobi,
        &prob.a,
        &prob.b,
        &prob.x0,
        &part,
        &opts,
    );
    let min = bj
        .records
        .iter()
        .map(|r| r.residual_norm)
        .fold(f64::MAX, f64::min);
    println!(
        "{label}: BJ reach={} min={:.3e} final={:.3e}",
        bj.steps_to_reach(0.1)
            .map(|v| format!("{v:.1}"))
            .unwrap_or("†".into()),
        min,
        bj.final_residual(),
    );
}

fn main() {
    // Geo_1438 candidates: 38³, seed 104. The shipped (0.22, 0.60) dials
    // only dip to ~0.10–0.12 before diverging under the post-PR-1 random
    // streams; scan for a pair that crosses 0.1 first.
    let gseed = 0xD15C0u64 + 60_169_842;
    for (bulk, hc) in [
        (0.22, 0.60),
        (0.22, 0.58),
        (0.21, 0.60),
        (0.22, 0.56),
        (0.20, 0.60),
        (0.21, 0.58),
    ] {
        probe(
            &format!("geo bulk={bulk} hc={hc}"),
            clique_grid3d(
                38,
                38,
                38,
                CliqueOptions {
                    coupling: bulk,
                    weight_jump: 0.2,
                    hot_fraction: 0.2,
                    hot_coupling: hc,
                    seed: 104,
                },
            ),
            gseed,
        );
    }
    // Hook_1498 candidates: 37³, seed 105, same near-miss problem.
    let seed = 0xD15C0u64 + 59_344_451;
    for (bulk, hc) in [
        (0.22, 0.55),
        (0.22, 0.53),
        (0.21, 0.55),
        (0.22, 0.51),
        (0.20, 0.55),
        (0.21, 0.53),
    ] {
        probe(
            &format!("hook bulk={bulk} hc={hc}"),
            clique_grid3d(
                37,
                37,
                37,
                CliqueOptions {
                    coupling: bulk,
                    weight_jump: 0.2,
                    hot_fraction: 0.2,
                    hot_coupling: hc,
                    seed: 105,
                },
            ),
            seed,
        );
    }
    // ldoor check (shipped dial still fine; add candidates here to refit).
    let lseed = 0xD15C0u64 + 42_451_151;
    probe(
        "ldoor c=0.92",
        clique_grid2d(
            210,
            160,
            CliqueOptions {
                coupling: 0.92,
                weight_jump: 0.2,
                hot_fraction: 0.0,
                hot_coupling: 0.0,
                seed: 107,
            },
        ),
        lseed,
    );
}
