//! Shared harness utilities: §4.2's problem setup, partitioning, CSV
//! output, and the run-context plumbing every experiment uses.

use dsw_core::dist::{run_method, DistOptions, DistReport, Method};
use dsw_partition::{partition_multilevel, Graph, MultilevelOptions, Partition};
use dsw_sparse::suite::SuiteEntry;
use dsw_sparse::{gen, vecops, CsrMatrix};
use std::io::Write;
use std::path::PathBuf;

/// The simulated-rank count standing in for the paper's 8192 MPI processes
/// (scaled with the matrix sizes so subdomain sizes match the paper's
/// regime; see DESIGN.md).
pub const DEFAULT_RANKS: usize = 512;

/// A ready-to-run test problem in the paper's §4.2 setup: unit-diagonal
/// SPD matrix, `b = 0`, random initial guess scaled so `‖r⁰‖₂ = 1`.
pub struct Problem {
    /// The (already unit-diagonal) matrix.
    pub a: CsrMatrix,
    /// Right-hand side (all zeros in the distributed experiments).
    pub b: Vec<f64>,
    /// Initial guess, scaled for a unit initial residual.
    pub x0: Vec<f64>,
}

impl Problem {
    /// Number of unknowns.
    pub fn n(&self) -> usize {
        self.a.nrows()
    }
}

/// Builds the §4.2 problem for an (already unit-scaled) matrix.
///
/// # Panics
/// If no random guess with a nonzero initial residual can be found (see
/// [`try_setup_problem`]) — possible only for a degenerate (e.g. all-zero)
/// matrix.
pub fn setup_problem(a: CsrMatrix, seed: u64) -> Problem {
    try_setup_problem(a, seed).expect("problem setup failed")
}

/// As [`setup_problem`], but reports failure instead of panicking.
///
/// The initial guess is scaled by `1 / ‖r⁰‖₂`; a guess that already solves
/// the system (zero residual) would turn that into `inf`/NaN and poison
/// every downstream norm. Such a guess is reseeded a few times — it can
/// only recur if the matrix maps every guess to zero (e.g. a zero matrix),
/// which is reported as an error naming the problem.
pub fn try_setup_problem(a: CsrMatrix, seed: u64) -> Result<Problem, String> {
    const RESEED_ATTEMPTS: u64 = 8;
    let n = a.nrows();
    let b = vec![0.0; n];
    for attempt in 0..RESEED_ATTEMPTS {
        let mut x0 = gen::random_guess(n, seed.wrapping_add(attempt));
        let r0 = a.residual(&b, &x0);
        let norm = vecops::norm2(&r0);
        if !norm.is_finite() || norm == 0.0 {
            continue;
        }
        let scale = 1.0 / norm;
        for v in x0.iter_mut() {
            *v *= scale;
        }
        return Ok(Problem { a, b, x0 });
    }
    Err(format!(
        "setup_problem: every random guess (seed {seed}, {RESEED_ATTEMPTS} reseeds) \
         produced a zero or non-finite initial residual; the matrix appears to \
         annihilate all guesses (zero or near-zero matrix?)"
    ))
}

/// Partitions a suite problem over `p` ranks with the multilevel
/// partitioner (the METIS stand-in).
pub fn suite_partition(a: &CsrMatrix, p: usize, seed: u64) -> Partition {
    let g = Graph::from_matrix(a);
    partition_multilevel(
        &g,
        p,
        MultilevelOptions {
            seed,
            ..MultilevelOptions::default()
        },
    )
}

/// Experiment context: where outputs go and how large runs are.
#[derive(Debug, Clone)]
pub struct ExperimentCtx {
    /// Directory for CSV outputs.
    pub out_dir: PathBuf,
    /// Scale factor applied to suite matrix dimensions (1.0 = full size;
    /// smaller for smoke tests).
    pub scale: f64,
    /// Rank count for the fixed-P experiments.
    pub ranks: usize,
    /// Maximum parallel steps (the paper uses 50).
    pub max_steps: usize,
}

impl Default for ExperimentCtx {
    fn default() -> Self {
        ExperimentCtx {
            out_dir: PathBuf::from("results"),
            scale: 1.0,
            ranks: DEFAULT_RANKS,
            max_steps: 50,
        }
    }
}

impl ExperimentCtx {
    /// A small configuration for smoke tests and Criterion benches.
    pub fn smoke() -> Self {
        ExperimentCtx {
            out_dir: std::env::temp_dir().join("dsw-results"),
            scale: 0.25,
            ranks: 32,
            max_steps: 50,
        }
    }

    /// Builds a suite matrix at this context's scale.
    pub fn build_suite_matrix(&self, e: &SuiteEntry) -> CsrMatrix {
        if (self.scale - 1.0).abs() < 1e-12 {
            e.build()
        } else {
            e.build_small(self.scale)
        }
    }

    /// Rank count scaled the same way the matrices are.
    pub fn scaled_ranks(&self) -> usize {
        if (self.scale - 1.0).abs() < 1e-12 {
            self.ranks
        } else {
            // Subdomain sizes shrink with scale³ for 3D recipes; keep the
            // rank count proportional to the *row* count reduction so
            // subdomain sizes stay in the paper's regime.
            ((self.ranks as f64) * self.scale * self.scale)
                .ceil()
                .max(4.0) as usize
        }
    }
}

/// Runs one method on a problem/partition with the context's step cap.
pub fn run_one(
    method: Method,
    prob: &Problem,
    part: &Partition,
    max_steps: usize,
    target: Option<f64>,
) -> DistReport {
    let opts = DistOptions {
        max_steps,
        target_residual: target,
        ..DistOptions::default()
    };
    run_method(method, &prob.a, &prob.b, &prob.x0, part, &opts)
}

/// Writes rows of `(header, rows)` to `<out_dir>/<name>.csv`.
pub fn write_csv(out_dir: &PathBuf, name: &str, header: &[&str], rows: &[Vec<String>]) {
    std::fs::create_dir_all(out_dir).expect("create results dir");
    let path = out_dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", header.join(",")).unwrap();
    for row in rows {
        writeln!(f, "{}", row.join(",")).unwrap();
    }
}

/// Formats a float like the paper's tables (3 decimals), with a dagger for
/// missing values ("could not achieve the target in 50 parallel steps").
pub fn fmt_or_dagger(v: Option<f64>, decimals: usize) -> String {
    match v {
        Some(x) => format!("{x:.decimals$}"),
        None => "†".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_problem_has_unit_residual() {
        let mut a = gen::grid2d_poisson(10, 10);
        a.scale_unit_diagonal().unwrap();
        let p = setup_problem(a, 3);
        let r0 = p.a.residual(&p.b, &p.x0);
        assert!((vecops::norm2(&r0) - 1.0).abs() < 1e-12);
        assert!(p.b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn setup_problem_rejects_zero_initial_residual() {
        // Regression: a guess that already solves the system made
        // `scale = 1/‖r⁰‖` infinite and poisoned x0 with inf/NaN. A zero
        // matrix annihilates every guess, so every reseed fails and the
        // error must say so instead of returning a poisoned problem.
        let zero = dsw_sparse::CooBuilder::new(4, 4).build().unwrap();
        let err = match try_setup_problem(zero, 7) {
            Err(e) => e,
            Ok(_) => panic!("zero matrix must be rejected"),
        };
        assert!(err.contains("zero or non-finite"), "unhelpful error: {err}");
        // A healthy matrix still sets up fine through the fallible path...
        let mut a = gen::grid2d_poisson(6, 6);
        a.scale_unit_diagonal().unwrap();
        let p = try_setup_problem(a, 7).expect("healthy setup");
        assert!(p.x0.iter().all(|v| v.is_finite()));
        let r0 = p.a.residual(&p.b, &p.x0);
        assert!((vecops::norm2(&r0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "problem setup failed")]
    fn setup_problem_panics_with_clear_message_on_degenerate_matrix() {
        let zero = dsw_sparse::CooBuilder::new(3, 3).build().unwrap();
        let _ = setup_problem(zero, 1);
    }

    #[test]
    fn smoke_ctx_scales() {
        let ctx = ExperimentCtx::smoke();
        assert!(ctx.scaled_ranks() < DEFAULT_RANKS);
        assert!(ctx.scaled_ranks() >= 4);
    }

    #[test]
    fn fmt_dagger() {
        assert_eq!(fmt_or_dagger(Some(1.23456), 3), "1.235");
        assert_eq!(fmt_or_dagger(None, 3), "†");
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("dsw-csv-test");
        write_csv(&dir, "t", &["a", "b"], &[vec!["1".into(), "2".into()]]);
        let text = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
    }
}
