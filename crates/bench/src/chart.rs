//! Terminal rendering of convergence curves: a minimal log-scale ASCII
//! line chart, so `experiments -- fig2` shows the *shape* of every figure
//! without leaving the terminal (CSV output remains the machine-readable
//! artifact).

/// One named series of `(x, y)` points, `y > 0` expected (log scale).
pub struct Series<'a> {
    /// Legend label (first character is used as the plot glyph).
    pub label: &'a str,
    /// The points, in increasing-x order.
    pub points: Vec<(f64, f64)>,
}

/// Renders series into an `width × height` character grid with a log-10
/// y-axis, returning the lines (axis labels included).
pub fn render(series: &[Series<'_>], width: usize, height: usize) -> Vec<String> {
    assert!(width >= 16 && height >= 4, "chart too small to be useful");
    let mut xmax = f64::MIN;
    let mut xmin = f64::MAX;
    let mut ymax = f64::MIN;
    let mut ymin = f64::MAX;
    for s in series {
        for &(x, y) in &s.points {
            if y <= 0.0 || !y.is_finite() || !x.is_finite() {
                continue;
            }
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(y.log10());
            ymax = ymax.max(y.log10());
        }
    }
    if xmin >= xmax {
        xmax = xmin + 1.0;
    }
    if ymin >= ymax {
        ymax = ymin + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        let glyph = s.label.chars().next().unwrap_or('*');
        for &(x, y) in &s.points {
            if y <= 0.0 || !y.is_finite() || !x.is_finite() {
                continue;
            }
            let cx = ((x - xmin) / (xmax - xmin) * (width - 1) as f64).round() as usize;
            let cy = ((y.log10() - ymin) / (ymax - ymin) * (height - 1) as f64).round() as usize;
            // y axis grows downward in the grid.
            let row = height - 1 - cy.min(height - 1);
            let col = cx.min(width - 1);
            if grid[row][col] == ' ' || grid[row][col] == glyph {
                grid[row][col] = glyph;
            } else {
                grid[row][col] = '+'; // overlapping series
            }
        }
    }

    let mut out = Vec::with_capacity(height + 2);
    for (i, row) in grid.into_iter().enumerate() {
        let ylab = if i == 0 {
            format!("{:>8.1e}", 10f64.powf(ymax))
        } else if i == height - 1 {
            format!("{:>8.1e}", 10f64.powf(ymin))
        } else {
            " ".repeat(8)
        };
        out.push(format!("{ylab} |{}", row.into_iter().collect::<String>()));
    }
    out.push(format!("{} +{}", " ".repeat(8), "-".repeat(width)));
    out.push(format!(
        "{}  {:<12} {:>w$.0}",
        " ".repeat(8),
        format!("x: {xmin:.0}"),
        xmax,
        w = width - 8
    ));
    let legend = series
        .iter()
        .map(|s| format!("{}={}", s.label.chars().next().unwrap_or('*'), s.label))
        .collect::<Vec<_>>()
        .join("  ");
    out.push(format!("{}  {legend}", " ".repeat(8)));
    out
}

/// Prints the chart to stdout.
pub fn print(series: &[Series<'_>], width: usize, height: usize) {
    for line in render(series, width, height) {
        println!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_monotone_series() {
        let s = Series {
            label: "test",
            points: (0..20).map(|i| (i as f64, 10f64.powi(-i))).collect(),
        };
        let lines = render(&[s], 40, 10);
        assert_eq!(lines.len(), 13);
        // The glyph appears and the extremes are labelled.
        assert!(lines.iter().any(|l| l.contains('t')));
        assert!(lines[0].contains("1.0e0"));
        assert!(lines.last().unwrap().contains("t=test"));
    }

    #[test]
    fn overlap_marked_with_plus() {
        let a = Series {
            label: "aaa",
            points: vec![(0.0, 1.0), (1.0, 0.1)],
        };
        let b = Series {
            label: "bbb",
            points: vec![(0.0, 1.0), (1.0, 0.01)],
        };
        let lines = render(&[a, b], 20, 6);
        let joined = lines.join("\n");
        assert!(joined.contains('+'), "overlapping start point");
        assert!(joined.contains('b'));
    }

    #[test]
    fn tolerates_zero_and_nan_values() {
        let s = Series {
            label: "z",
            points: vec![(0.0, 0.0), (1.0, f64::NAN), (2.0, 1.0), (3.0, 0.5)],
        };
        let lines = render(&[s], 20, 5);
        assert!(!lines.is_empty());
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_tiny_canvas() {
        render(&[], 4, 2);
    }
}
