//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (see DESIGN.md for the experiment index and EXPERIMENTS.md
//! for paper-vs-measured numbers).
//!
//! Run the full set with
//! `cargo run --release -p dsw-bench --bin experiments -- all`
//! or a single experiment by id (`fig2`, `table2`, …). Output goes to the
//! terminal as aligned text tables and, for every experiment, as CSV files
//! under `results/`.

pub mod chart;
pub mod experiments;
pub mod harness;

pub use harness::{
    setup_problem, suite_partition, write_csv, ExperimentCtx, Problem, DEFAULT_RANKS,
};
