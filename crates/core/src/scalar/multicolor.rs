//! Multicolor Gauss–Seidel.

use super::{ScalarOptions, ScalarState};
use crate::ScalarHistory;
use dsw_partition::{greedy_coloring_bfs, Coloring, Graph};
use dsw_sparse::CsrMatrix;

/// Multicolor Gauss–Seidel: rows are colored so same-color rows are
/// mutually uncoupled; one parallel step relaxes one whole color class.
/// With `k` colors, one sweep takes `k` parallel steps (§2.1 of the paper).
///
/// The coloring is greedy in BFS order, as in the paper; pass a
/// precomputed [`Coloring`] with
/// [`multicolor_gauss_seidel_with_coloring`] to use a different one.
pub fn multicolor_gauss_seidel(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: &ScalarOptions,
) -> (Vec<f64>, ScalarHistory) {
    let coloring = greedy_coloring_bfs(&Graph::from_matrix(a));
    multicolor_gauss_seidel_with_coloring(a, b, x0, opts, &coloring)
}

/// Multicolor Gauss–Seidel with a caller-supplied coloring.
pub fn multicolor_gauss_seidel_with_coloring(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: &ScalarOptions,
    coloring: &Coloring,
) -> (Vec<f64>, ScalarHistory) {
    let classes = coloring.classes();
    let mut st = ScalarState::new(a, b, x0, opts);
    'outer: loop {
        for class in &classes {
            if st.relaxations + class.len() as u64 > opts.max_relaxations {
                break 'outer;
            }
            // Rows within one class are uncoupled, so relaxing them
            // one-at-a-time equals relaxing them simultaneously.
            for &i in class {
                st.relax_row(i);
            }
            let norm = st.end_parallel_step();
            if let Some(t) = opts.target_residual {
                if norm <= t {
                    break 'outer;
                }
            }
        }
    }
    st.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::test_support::{error_norm, poisson_system};

    #[test]
    fn mcgs_converges_on_poisson() {
        let (a, b, x_true) = poisson_system(8, 8);
        let n = a.nrows();
        let opts = ScalarOptions {
            max_relaxations: 400 * n as u64,
            target_residual: Some(1e-9),
            record_stride: n as u64,
            seed: 0,
        };
        let (x, h) = multicolor_gauss_seidel(&a, &b, &vec![0.0; n], &opts);
        assert!(h.final_residual <= 1e-9);
        assert!(error_norm(&x, &x_true) < 1e-7);
    }

    #[test]
    fn one_sweep_takes_ncolors_parallel_steps() {
        let (a, b, _) = poisson_system(6, 6);
        let n = a.nrows();
        let g = Graph::from_matrix(&a);
        let coloring = greedy_coloring_bfs(&g);
        assert_eq!(coloring.ncolors, 2); // bipartite 5-point grid
        let opts = ScalarOptions::sweeps(n, 1.0);
        let (_, h) = multicolor_gauss_seidel_with_coloring(&a, &b, &vec![0.0; n], &opts, &coloring);
        assert_eq!(h.parallel_steps(), 2);
        assert_eq!(h.total_relaxations, n as u64);
    }

    #[test]
    fn simultaneous_equals_sequential_within_color() {
        // Relaxing a color class simultaneously (Jacobi-style on the class)
        // must give the same result as the loop in the implementation,
        // because same-color rows are uncoupled. Verify the maintained
        // residual matches b - Ax after a step.
        let (a, b, _) = poisson_system(5, 5);
        let n = a.nrows();
        let opts = ScalarOptions::sweeps(n, 1.0);
        let (x, _) = multicolor_gauss_seidel(&a, &b, &vec![0.0; n], &opts);
        let r = a.residual(&b, &x);
        // Maintained r inside the solver equaled the true residual; here we
        // simply sanity-check the final iterate is consistent and finite.
        assert!(r.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn mcgs_converges_on_strong_coupling() {
        // Relaxing independent sets preserves the SPD convergence guarantee
        // (paper §5: "such convergence is guaranteed for Multicolor
        // Gauss-Seidel and Parallel Southwell").
        let mut a = dsw_sparse::gen::clique_grid2d(
            8,
            8,
            dsw_sparse::gen::CliqueOptions {
                coupling: 0.8,
                weight_jump: 0.0,
                seed: 0,
                hot_fraction: 0.0,
                hot_coupling: 0.0,
            },
        );
        a.scale_unit_diagonal().unwrap();
        let n = a.nrows();
        let b = vec![0.0; n];
        let x0 = dsw_sparse::gen::random_guess(n, 3);
        let opts = ScalarOptions {
            max_relaxations: 500 * n as u64,
            target_residual: Some(1e-8),
            record_stride: n as u64,
            seed: 0,
        };
        let (_, h) = multicolor_gauss_seidel(&a, &b, &x0, &opts);
        assert!(h.final_residual <= 1e-8, "final {}", h.final_residual);
    }
}
