//! The (point) Jacobi method.

use super::{ScalarOptions, ScalarState};
use crate::ScalarHistory;
use dsw_sparse::CsrMatrix;

/// Point Jacobi: every sweep relaxes all rows simultaneously using the
/// residual from the start of the sweep. One sweep is one parallel step.
///
/// Jacobi is the slowest method per relaxation in the paper's Figure 2 and
/// is *not* guaranteed to converge for SPD matrices.
pub fn jacobi(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: &ScalarOptions,
) -> (Vec<f64>, ScalarHistory) {
    let n = a.nrows();
    let mut st = ScalarState::new(a, b, x0, opts);
    let diag = a.diagonal().expect("square matrix");

    while st.relaxations + (n as u64) <= opts.max_relaxations {
        // delta = D^{-1} r, applied simultaneously.
        let delta: Vec<f64> = st.r.iter().zip(&diag).map(|(r, d)| r / d).collect();
        for (xi, di) in st.x.iter_mut().zip(&delta) {
            *xi += di;
        }
        // r <- r - A delta.
        let adelta = a.mul_vec(&delta);
        for (ri, adi) in st.r.iter_mut().zip(&adelta) {
            *ri -= adi;
        }
        st.relaxations += n as u64;
        let norm = st.end_parallel_step();
        if let Some(t) = opts.target_residual {
            if norm <= t {
                break;
            }
        }
        if !norm.is_finite() {
            break; // diverged to overflow; history records it
        }
    }
    st.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::test_support::{error_norm, poisson_system};

    #[test]
    fn jacobi_converges_on_poisson() {
        let (a, b, x_true) = poisson_system(8, 8);
        let n = a.nrows();
        let opts = ScalarOptions {
            max_relaxations: 500 * n as u64,
            target_residual: Some(1e-8),
            record_stride: n as u64,
            seed: 0,
        };
        let (x, h) = jacobi(&a, &b, &vec![0.0; n], &opts);
        assert!(h.final_residual <= 1e-8, "final {}", h.final_residual);
        assert!(error_norm(&x, &x_true) < 1e-6);
        // Each parallel step is a full sweep.
        assert_eq!(h.step_boundaries[0], n as u64);
        assert_eq!(h.total_relaxations % n as u64, 0);
    }

    #[test]
    fn jacobi_respects_relaxation_budget() {
        let (a, b, _) = poisson_system(5, 5);
        let n = a.nrows() as u64;
        let opts = ScalarOptions {
            max_relaxations: 3 * n + 7, // only 3 whole sweeps fit
            target_residual: None,
            record_stride: n,
            seed: 0,
        };
        let (_, h) = jacobi(&a, &b, &[0.0; 25], &opts);
        assert_eq!(h.total_relaxations, 3 * n);
        assert_eq!(h.parallel_steps(), 3);
    }

    #[test]
    fn jacobi_diverges_on_strong_coupling() {
        // Unit-diagonal clique matrix with c = 0.8: point Jacobi diverges
        // (the paper's motivation for Southwell-type methods).
        let mut a = dsw_sparse::gen::clique_grid2d(
            8,
            8,
            dsw_sparse::gen::CliqueOptions {
                coupling: 0.8,
                weight_jump: 0.0,
                seed: 0,
                hot_fraction: 0.0,
                hot_coupling: 0.0,
            },
        );
        a.scale_unit_diagonal().unwrap();
        let n = a.nrows();
        let b = vec![0.0; n];
        let x0 = dsw_sparse::gen::random_guess(n, 3);
        let opts = ScalarOptions {
            max_relaxations: 200 * n as u64,
            target_residual: None,
            record_stride: n as u64,
            seed: 0,
        };
        let (_, h) = jacobi(&a, &b, &x0, &opts);
        let first = h.samples.first().unwrap().residual_norm;
        assert!(
            h.final_residual > 10.0 * first || !h.final_residual.is_finite(),
            "expected divergence, final {} vs initial {}",
            h.final_residual,
            first
        );
    }
}
