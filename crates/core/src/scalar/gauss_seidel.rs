//! The Gauss–Seidel method (natural row order).

use super::{ScalarOptions, ScalarState};
use crate::ScalarHistory;
use dsw_sparse::CsrMatrix;

/// Gauss–Seidel: relaxes rows `0, 1, …, n−1` cyclically, each relaxation
/// using the freshest residual. Converges for every SPD matrix, but each
/// parallel step relaxes only a single equation (it is inherently
/// sequential — §1 of the paper).
pub fn gauss_seidel(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: &ScalarOptions,
) -> (Vec<f64>, ScalarHistory) {
    let n = a.nrows();
    let mut st = ScalarState::new(a, b, x0, opts);
    'outer: loop {
        for i in 0..n {
            if st.relaxations >= opts.max_relaxations {
                break 'outer;
            }
            st.relax_row(i);
            if let Some(norm) = st.sample_if_due() {
                if let Some(t) = opts.target_residual {
                    if norm <= t {
                        break 'outer;
                    }
                }
            }
        }
    }
    st.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::test_support::{error_norm, poisson_system};

    #[test]
    fn gs_converges_on_poisson() {
        let (a, b, x_true) = poisson_system(8, 8);
        let n = a.nrows();
        let opts = ScalarOptions {
            max_relaxations: 400 * n as u64,
            target_residual: Some(1e-9),
            record_stride: n as u64,
            seed: 0,
        };
        let (x, h) = gauss_seidel(&a, &b, &vec![0.0; n], &opts);
        assert!(h.final_residual <= 1e-9);
        assert!(error_norm(&x, &x_true) < 1e-7);
    }

    #[test]
    fn gs_faster_than_jacobi_per_relaxation() {
        let (a, b, _) = poisson_system(10, 10);
        let n = a.nrows();
        let opts = ScalarOptions::sweeps(n, 10.0);
        let (_, hg) = gauss_seidel(&a, &b, &vec![0.0; n], &opts);
        let (_, hj) = super::super::jacobi(&a, &b, &vec![0.0; n], &opts);
        assert!(
            hg.final_residual < hj.final_residual,
            "GS {} !< Jacobi {}",
            hg.final_residual,
            hj.final_residual
        );
    }

    #[test]
    fn gs_converges_where_jacobi_diverges() {
        // GS converges for ALL SPD systems (paper §1), including the
        // strong-coupling clique matrices that break Jacobi.
        let mut a = dsw_sparse::gen::clique_grid2d(
            8,
            8,
            dsw_sparse::gen::CliqueOptions {
                coupling: 0.8,
                weight_jump: 0.0,
                seed: 0,
                hot_fraction: 0.0,
                hot_coupling: 0.0,
            },
        );
        a.scale_unit_diagonal().unwrap();
        let n = a.nrows();
        let b = vec![0.0; n];
        let x0 = dsw_sparse::gen::random_guess(n, 3);
        let opts = ScalarOptions {
            max_relaxations: 500 * n as u64,
            target_residual: Some(1e-8),
            record_stride: n as u64,
            seed: 0,
        };
        let (_, h) = gauss_seidel(&a, &b, &x0, &opts);
        assert!(h.final_residual <= 1e-8, "final {}", h.final_residual);
    }

    #[test]
    fn gs_stops_at_exact_budget() {
        let (a, b, _) = poisson_system(4, 4);
        let opts = ScalarOptions {
            max_relaxations: 23,
            target_residual: None,
            record_stride: 1,
            seed: 0,
        };
        let (_, h) = gauss_seidel(&a, &b, &[0.0; 16], &opts);
        assert_eq!(h.total_relaxations, 23);
    }
}
