//! The Parallel Southwell method (scalar form).

use super::{beats, ScalarOptions, ScalarState};
use crate::ScalarHistory;
use dsw_sparse::CsrMatrix;

/// Parallel Southwell: in each parallel step, row `i` is relaxed if
/// `|r_i|` is maximal in its neighborhood `{Γ_i, |r_i|}` (§2.3 of the
/// paper). Ties are broken toward the smaller row index, which makes the
/// selected set independent: two coupled rows are never relaxed together,
/// so the step equals a fragment of Gauss–Seidel and the SPD convergence
/// guarantee is preserved.
pub fn parallel_southwell(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: &ScalarOptions,
) -> (Vec<f64>, ScalarHistory) {
    let n = a.nrows();
    let mut st = ScalarState::new(a, b, x0, opts);
    let mut selected: Vec<usize> = Vec::new();

    loop {
        // Selection against a consistent snapshot of |r|.
        selected.clear();
        'rows: for i in 0..n {
            let mine = st.r[i].abs();
            if mine == 0.0 {
                continue;
            }
            for (j, _) in a.row(i) {
                if j != i && !beats(mine, i, st.r[j].abs(), j) {
                    continue 'rows;
                }
            }
            selected.push(i);
        }
        if selected.is_empty() {
            break; // converged exactly (all residuals zero)
        }
        if st.relaxations + selected.len() as u64 > opts.max_relaxations {
            break;
        }
        // The selected set is independent, so sequential application of the
        // row relaxations equals simultaneous application.
        for &i in &selected {
            st.relax_row(i);
        }
        let norm = st.end_parallel_step();
        if let Some(t) = opts.target_residual {
            if norm <= t {
                break;
            }
        }
    }
    st.finish()
}

/// Returns the rows that satisfy the Parallel Southwell criterion for the
/// residual snapshot `r` (exposed for tests and the Figure 1 illustration).
pub fn southwell_selection(a: &CsrMatrix, r: &[f64]) -> Vec<usize> {
    let n = a.nrows();
    let mut out = Vec::new();
    'rows: for i in 0..n {
        let mine = r[i].abs();
        if mine == 0.0 {
            continue;
        }
        for (j, _) in a.row(i) {
            if j != i && !beats(mine, i, r[j].abs(), j) {
                continue 'rows;
            }
        }
        out.push(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::test_support::{error_norm, poisson_system};

    #[test]
    fn selection_is_independent_set() {
        let (a, b, _) = poisson_system(8, 8);
        let x = vec![0.0; a.nrows()];
        let r = a.residual(&b, &x);
        let sel = southwell_selection(&a, &r);
        assert!(!sel.is_empty());
        for &i in &sel {
            for (j, _) in a.row(i) {
                if j != i {
                    assert!(!sel.contains(&j), "coupled rows {i},{j} both selected");
                }
            }
        }
    }

    #[test]
    fn selection_contains_global_max() {
        let (a, b, _) = poisson_system(7, 6);
        let x = vec![0.0; a.nrows()];
        let r = a.residual(&b, &x);
        let (imax, _) = dsw_sparse::vecops::argmax_abs(&r).unwrap();
        let sel = southwell_selection(&a, &r);
        assert!(sel.contains(&imax));
    }

    #[test]
    fn par_southwell_converges_on_poisson() {
        let (a, b, x_true) = poisson_system(8, 8);
        let n = a.nrows();
        let opts = ScalarOptions {
            max_relaxations: 500 * n as u64,
            target_residual: Some(1e-9),
            record_stride: 1,
            seed: 0,
        };
        let (x, h) = parallel_southwell(&a, &b, &vec![0.0; n], &opts);
        assert!(h.final_residual <= 1e-9);
        assert!(error_norm(&x, &x_true) < 1e-7);
        // Parallel steps relax several rows each.
        assert!(h.parallel_steps() > 0);
        assert!((h.total_relaxations as usize) > h.parallel_steps());
    }

    #[test]
    fn par_southwell_converges_on_strong_coupling() {
        let mut a = dsw_sparse::gen::clique_grid2d(
            8,
            8,
            dsw_sparse::gen::CliqueOptions {
                coupling: 0.8,
                weight_jump: 0.0,
                seed: 0,
                hot_fraction: 0.0,
                hot_coupling: 0.0,
            },
        );
        a.scale_unit_diagonal().unwrap();
        let n = a.nrows();
        let b = vec![0.0; n];
        let x0 = dsw_sparse::gen::random_guess(n, 3);
        let opts = ScalarOptions {
            max_relaxations: 2000 * n as u64,
            target_residual: Some(1e-8),
            record_stride: 1,
            seed: 0,
        };
        let (_, h) = parallel_southwell(&a, &b, &x0, &opts);
        assert!(h.final_residual <= 1e-8, "final {}", h.final_residual);
    }

    #[test]
    fn tracks_sequential_southwell_early() {
        // Fig. 2: Parallel Southwell converges almost as fast per relaxation
        // as Sequential Southwell at low accuracy.
        let a = dsw_sparse::gen::fe::fe_poisson(dsw_sparse::gen::fe::FeMeshOptions {
            nx: 20,
            ny: 20,
            jitter: 0.25,
            seed: 1,
        });
        let n = a.nrows();
        let b = dsw_sparse::gen::random_rhs(n, 7);
        let opts = ScalarOptions {
            max_relaxations: 3 * n as u64,
            target_residual: None,
            record_stride: 1,
            seed: 0,
        };
        let x0 = vec![0.0; n];
        let (_, hp) = parallel_southwell(&a, &b, &x0, &opts);
        let (_, hs) = crate::scalar::sequential_southwell(&a, &b, &x0, &opts);
        let rp = hp.relaxations_to_reach(0.6).unwrap();
        let rs = hs.relaxations_to_reach(0.6).unwrap();
        assert!(rp < 1.8 * rs, "ParSW {rp} vs SeqSW {rs}");
    }
}
