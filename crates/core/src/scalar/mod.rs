//! Scalar (one-equation-per-process) forms of the methods.
//!
//! All solvers here assume a **symmetric** matrix (the paper's setting is
//! SPD): when row `i` is relaxed, the induced residual updates
//! `r_j ← r_j − a_{ji}·δ` are applied by walking row `i`, using
//! `a_{ji} = a_{ij}`.
//!
//! Every solver returns its final iterate together with a
//! [`ScalarHistory`](crate::ScalarHistory) sampled the way the paper plots
//! Figures 2 and 5: residual norm against cumulative relaxations, with
//! parallel-step boundaries marked.

pub mod gauss_seidel;
pub mod jacobi;
pub mod multicolor;
pub mod sor;
pub mod southwell_dist;
pub mod southwell_par;
pub mod southwell_seq;

pub use gauss_seidel::gauss_seidel;
pub use jacobi::jacobi;
pub use multicolor::multicolor_gauss_seidel;
pub use sor::{damped_jacobi, sor, symmetric_gauss_seidel};
pub use southwell_dist::{distributed_southwell_scalar, DsScalarReport};
pub use southwell_par::parallel_southwell;
pub use southwell_seq::sequential_southwell;

use dsw_sparse::{vecops, CsrMatrix};

/// Options shared by the scalar solvers.
#[derive(Debug, Clone, Copy)]
pub struct ScalarOptions {
    /// Stop after this many row relaxations (e.g. `3 n` for "3 sweeps").
    pub max_relaxations: u64,
    /// Stop once `‖r‖₂ ≤ target` (checked at sample points).
    pub target_residual: Option<f64>,
    /// For one-at-a-time methods, sample the residual every this many
    /// relaxations (parallel methods sample once per parallel step).
    pub record_stride: u64,
    /// Seed for solvers that randomize (Distributed Southwell's exact
    /// relaxation budget).
    pub seed: u64,
}

impl ScalarOptions {
    /// `sweeps` sweeps over an `n`-row system with a sensible stride.
    pub fn sweeps(n: usize, sweeps: f64) -> Self {
        ScalarOptions {
            max_relaxations: (n as f64 * sweeps).round() as u64,
            target_residual: None,
            record_stride: (n as u64 / 64).max(1),
            seed: 0,
        }
    }
}

/// Shared iteration state: solution, residual, and bookkeeping.
pub(crate) struct ScalarState<'a> {
    pub a: &'a CsrMatrix,
    pub x: Vec<f64>,
    pub r: Vec<f64>,
    pub relaxations: u64,
    pub history: crate::ScalarHistory,
    next_sample: u64,
    stride: u64,
}

impl<'a> ScalarState<'a> {
    pub fn new(a: &'a CsrMatrix, b: &[f64], x0: &[f64], opts: &ScalarOptions) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "square systems only");
        assert_eq!(b.len(), a.nrows());
        assert_eq!(x0.len(), a.nrows());
        let r = a.residual(b, x0);
        let mut st = ScalarState {
            a,
            x: x0.to_vec(),
            r,
            relaxations: 0,
            history: crate::ScalarHistory::default(),
            next_sample: 0,
            stride: opts.record_stride.max(1),
        };
        st.sample(); // record the initial residual at 0 relaxations
        st
    }

    /// Relaxes row `i`: `x_i += r_i / a_ii`, updating all coupled residuals
    /// through the (symmetric) row pattern. Returns the applied delta.
    #[inline]
    pub fn relax_row(&mut self, i: usize) -> f64 {
        self.relax_row_weighted(i, 1.0)
    }

    /// Weighted relaxation `x_i += omega · r_i / a_ii` (SOR step).
    #[inline]
    pub fn relax_row_weighted(&mut self, i: usize, omega: f64) -> f64 {
        let aii = self.a.get(i, i);
        debug_assert!(aii != 0.0, "zero diagonal at row {i}");
        let delta = omega * self.r[i] / aii;
        self.x[i] += delta;
        for (j, aij) in self.a.row(i) {
            // Symmetric: a_ji = a_ij.
            self.r[j] -= aij * delta;
        }
        self.relaxations += 1;
        delta
    }

    /// Current residual norm (exact recomputation over the maintained `r`).
    #[inline]
    pub fn residual_norm(&self) -> f64 {
        vecops::norm2(&self.r)
    }

    /// Records a history sample now.
    pub fn sample(&mut self) {
        let norm = self.residual_norm();
        self.history.samples.push(crate::ScalarSample {
            relaxations: self.relaxations,
            residual_norm: norm,
        });
        // Saturating: `record_stride: u64::MAX` means "never sample again"
        // and must not wrap around.
        self.next_sample = self.relaxations.saturating_add(self.stride);
    }

    /// Records a sample if the stride has elapsed; returns the residual
    /// norm if a sample was taken.
    pub fn sample_if_due(&mut self) -> Option<f64> {
        if self.relaxations >= self.next_sample {
            self.sample();
            let last = self.history.samples.last();
            Some(last.expect("sample() just pushed").residual_norm)
        } else {
            None
        }
    }

    /// Marks a parallel-step boundary and records a sample.
    pub fn end_parallel_step(&mut self) -> f64 {
        self.history.step_boundaries.push(self.relaxations);
        self.sample();
        let last = self.history.samples.last();
        last.expect("sample() just pushed").residual_norm
    }

    /// Finalizes the history and returns `(x, history)`.
    pub fn finish(mut self) -> (Vec<f64>, crate::ScalarHistory) {
        if self
            .history
            .samples
            .last()
            .map(|s| s.relaxations != self.relaxations)
            .unwrap_or(true)
        {
            self.sample();
        }
        self.history.total_relaxations = self.relaxations;
        self.history.final_residual = self
            .history
            .samples
            .last()
            .expect("finish() samples when the history is empty")
            .residual_norm;
        (self.x, self.history)
    }
}

/// Returns `true` if, under the Parallel Southwell criterion with
/// rank-id tie-breaking, the owner of `mine` beats a neighbor with
/// magnitude `theirs` and index `their_idx`.
#[inline]
pub(crate) fn beats(mine: f64, my_idx: usize, theirs: f64, their_idx: usize) -> bool {
    mine > theirs || (mine == theirs && my_idx < their_idx)
}

#[cfg(test)]
pub(crate) mod test_support {
    use dsw_sparse::dense::Cholesky;
    use dsw_sparse::gen;
    use dsw_sparse::CsrMatrix;

    /// A small SPD test system with a known solution.
    pub fn poisson_system(nx: usize, ny: usize) -> (CsrMatrix, Vec<f64>, Vec<f64>) {
        let a = gen::grid2d_poisson(nx, ny);
        let n = a.nrows();
        let b = gen::random_rhs(n, 42);
        let x_true = Cholesky::factor_csr(&a).unwrap().solve(&b);
        (a, b, x_true)
    }

    pub fn error_norm(x: &[f64], x_true: &[f64]) -> f64 {
        x.iter()
            .zip(x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsw_sparse::gen;

    #[test]
    fn relax_row_zeroes_its_residual() {
        let a = gen::grid2d_poisson(3, 3);
        let b = gen::random_rhs(9, 1);
        let opts = ScalarOptions::sweeps(9, 1.0);
        let mut st = ScalarState::new(&a, &b, &[0.0; 9], &opts);
        st.relax_row(4);
        assert!(st.r[4].abs() < 1e-15);
        // The maintained residual still equals b - Ax.
        let exact = a.residual(&b, &st.x);
        for (m, e) in st.r.iter().zip(&exact) {
            assert!((m - e).abs() < 1e-14);
        }
    }

    #[test]
    fn history_sampling_and_boundaries() {
        let a = gen::grid2d_poisson(4, 4);
        let b = gen::random_rhs(16, 2);
        let opts = ScalarOptions {
            max_relaxations: 100,
            target_residual: None,
            record_stride: 4,
            seed: 0,
        };
        let mut st = ScalarState::new(&a, &b, &[0.0; 16], &opts);
        for i in 0..8 {
            st.relax_row(i % 16);
            st.sample_if_due();
        }
        st.end_parallel_step();
        let (_, h) = st.finish();
        assert_eq!(h.total_relaxations, 8);
        assert_eq!(h.step_boundaries, vec![8]);
        assert!(h.samples.first().unwrap().relaxations == 0);
        assert!(h.samples.last().unwrap().relaxations == 8);
    }

    #[test]
    fn beats_tie_breaking() {
        assert!(beats(1.0, 5, 0.5, 2));
        assert!(beats(1.0, 2, 1.0, 5));
        assert!(!beats(1.0, 5, 1.0, 2));
        assert!(!beats(0.5, 0, 1.0, 1));
    }
}
