//! Successive over-relaxation (SOR), symmetric Gauss–Seidel (SSOR sweep
//! shape), and damped Jacobi — the classical relatives of the baseline
//! methods, for completeness of the stationary-method family.

use super::{ScalarOptions, ScalarState};
use crate::ScalarHistory;
use dsw_sparse::CsrMatrix;

/// SOR with relaxation factor `omega ∈ (0, 2)`: Gauss–Seidel order, each
/// update scaled by `omega`. `omega = 1` recovers Gauss–Seidel; the
/// optimal value for the 2D Poisson model problem approaches 2 as the grid
/// refines.
pub fn sor(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    omega: f64,
    opts: &ScalarOptions,
) -> (Vec<f64>, ScalarHistory) {
    assert!(
        omega > 0.0 && omega < 2.0,
        "SOR requires omega in (0, 2), got {omega}"
    );
    let n = a.nrows();
    let mut st = ScalarState::new(a, b, x0, opts);
    'outer: loop {
        for i in 0..n {
            if st.relaxations >= opts.max_relaxations {
                break 'outer;
            }
            st.relax_row_weighted(i, omega);
            if let Some(norm) = st.sample_if_due() {
                if let Some(t) = opts.target_residual {
                    if norm <= t {
                        break 'outer;
                    }
                }
            }
        }
    }
    st.finish()
}

/// Symmetric Gauss–Seidel: forward sweep then backward sweep. As a
/// stationary method its iteration matrix is symmetrizable, which makes
/// it usable inside CG-type preconditioners.
pub fn symmetric_gauss_seidel(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: &ScalarOptions,
) -> (Vec<f64>, ScalarHistory) {
    let n = a.nrows();
    let mut st = ScalarState::new(a, b, x0, opts);
    'outer: loop {
        for i in 0..n {
            if st.relaxations >= opts.max_relaxations {
                break 'outer;
            }
            st.relax_row(i);
            st.sample_if_due();
        }
        for i in (0..n).rev() {
            if st.relaxations >= opts.max_relaxations {
                break 'outer;
            }
            st.relax_row(i);
            if let Some(norm) = st.sample_if_due() {
                if let Some(t) = opts.target_residual {
                    if norm <= t {
                        break 'outer;
                    }
                }
            }
        }
    }
    st.finish()
}

/// Damped Jacobi with weight `omega ∈ (0, 1]`: the classical multigrid
/// smoother baseline (`omega = 2/3` optimal for 1D Poisson smoothing).
pub fn damped_jacobi(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    omega: f64,
    opts: &ScalarOptions,
) -> (Vec<f64>, ScalarHistory) {
    assert!(
        omega > 0.0 && omega <= 1.0,
        "damped Jacobi requires omega in (0, 1], got {omega}"
    );
    let n = a.nrows();
    let mut st = ScalarState::new(a, b, x0, opts);
    let diag = a.diagonal().expect("square matrix");
    while st.relaxations + (n as u64) <= opts.max_relaxations {
        let delta: Vec<f64> = st.r.iter().zip(&diag).map(|(r, d)| omega * r / d).collect();
        for (xi, di) in st.x.iter_mut().zip(&delta) {
            *xi += di;
        }
        let adelta = a.mul_vec(&delta);
        for (ri, adi) in st.r.iter_mut().zip(&adelta) {
            *ri -= adi;
        }
        st.relaxations += n as u64;
        let norm = st.end_parallel_step();
        if let Some(t) = opts.target_residual {
            if norm <= t {
                break;
            }
        }
        if !norm.is_finite() {
            break;
        }
    }
    st.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::test_support::{error_norm, poisson_system};
    use crate::scalar::{gauss_seidel, jacobi};

    #[test]
    fn sor_omega_one_equals_gauss_seidel() {
        let (a, b, _) = poisson_system(6, 6);
        let n = a.nrows();
        let opts = ScalarOptions::sweeps(n, 3.0);
        let (xs, _) = sor(&a, &b, &vec![0.0; n], 1.0, &opts);
        let (xg, _) = gauss_seidel(&a, &b, &vec![0.0; n], &opts);
        for (s, g) in xs.iter().zip(&xg) {
            assert!((s - g).abs() < 1e-14);
        }
    }

    #[test]
    fn tuned_sor_beats_gauss_seidel() {
        let (a, b, _) = poisson_system(12, 12);
        let n = a.nrows();
        let opts = ScalarOptions {
            max_relaxations: 40 * n as u64,
            target_residual: None,
            record_stride: n as u64,
            seed: 0,
        };
        // Near-optimal omega for this grid size.
        let (_, hs) = sor(&a, &b, &vec![0.0; n], 1.6, &opts);
        let (_, hg) = gauss_seidel(&a, &b, &vec![0.0; n], &opts);
        assert!(
            hs.final_residual < hg.final_residual,
            "SOR {} !< GS {}",
            hs.final_residual,
            hg.final_residual
        );
    }

    #[test]
    fn sor_converges_to_solution() {
        let (a, b, x_true) = poisson_system(8, 8);
        let n = a.nrows();
        let opts = ScalarOptions {
            max_relaxations: 400 * n as u64,
            target_residual: Some(1e-10),
            record_stride: n as u64,
            seed: 0,
        };
        let (x, h) = sor(&a, &b, &vec![0.0; n], 1.5, &opts);
        assert!(h.final_residual <= 1e-10);
        assert!(error_norm(&x, &x_true) < 1e-8);
    }

    #[test]
    fn symmetric_gs_converges() {
        let (a, b, x_true) = poisson_system(8, 8);
        let n = a.nrows();
        let opts = ScalarOptions {
            max_relaxations: 400 * n as u64,
            target_residual: Some(1e-10),
            record_stride: n as u64,
            seed: 0,
        };
        let (x, h) = symmetric_gauss_seidel(&a, &b, &vec![0.0; n], &opts);
        assert!(h.final_residual <= 1e-10);
        assert!(error_norm(&x, &x_true) < 1e-8);
    }

    #[test]
    fn damped_jacobi_converges_where_it_should() {
        let (a, b, _) = poisson_system(8, 8);
        let n = a.nrows();
        let opts = ScalarOptions {
            max_relaxations: 2000 * n as u64,
            target_residual: Some(1e-8),
            record_stride: n as u64,
            seed: 0,
        };
        let (_, h) = damped_jacobi(&a, &b, &vec![0.0; n], 0.8, &opts);
        assert!(h.final_residual <= 1e-8, "final {}", h.final_residual);
        // And matches plain Jacobi at omega = 1.
        let opts1 = ScalarOptions::sweeps(n, 2.0);
        let (x1, _) = damped_jacobi(&a, &b, &vec![0.0; n], 1.0, &opts1);
        let (x2, _) = jacobi(&a, &b, &vec![0.0; n], &opts1);
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-14);
        }
    }

    #[test]
    #[should_panic(expected = "omega in (0, 2)")]
    fn sor_rejects_bad_omega() {
        let (a, b, _) = poisson_system(3, 3);
        let opts = ScalarOptions::sweeps(9, 1.0);
        sor(&a, &b, &[0.0; 9], 2.5, &opts);
    }
}
