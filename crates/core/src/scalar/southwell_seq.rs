//! The Sequential Southwell method.

use super::{ScalarOptions, ScalarState};
use crate::ScalarHistory;
use dsw_sparse::CsrMatrix;
use std::collections::BinaryHeap;

/// A max-heap entry ordered by `|r|`, with a version stamp for lazy
/// invalidation.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    mag: f64,
    row: usize,
    version: u64,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max by magnitude; ties broken toward the smaller row index so the
        // method is deterministic.
        self.mag
            .total_cmp(&other.mag)
            .then_with(|| other.row.cmp(&self.row))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Sequential Southwell (Gauss–Southwell): each step relaxes the single
/// row with the largest residual magnitude (§2.2 of the paper). Implemented
/// with a lazily-invalidated max-heap, so each relaxation costs
/// `O(deg · log n)` instead of the `O(n)` scan that made the method
/// unpopular on early computers.
///
/// Since the paper scales every matrix to unit diagonal, `max |r_i|` and
/// the Gauss–Southwell rule `max |r_i / a_ii|` coincide.
pub fn sequential_southwell(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: &ScalarOptions,
) -> (Vec<f64>, ScalarHistory) {
    let n = a.nrows();
    let mut st = ScalarState::new(a, b, x0, opts);
    let mut version = vec![0u64; n];
    let mut heap: BinaryHeap<HeapEntry> = (0..n)
        .map(|row| HeapEntry {
            mag: st.r[row].abs(),
            row,
            version: 0,
        })
        .collect();

    while st.relaxations < opts.max_relaxations {
        // Pop until a current entry emerges.
        let top = loop {
            match heap.pop() {
                Some(e) if e.version == version[e.row] => break Some(e),
                Some(_) => continue,
                None => break None,
            }
        };
        let Some(top) = top else { break };
        if top.mag == 0.0 {
            break; // exact solution reached
        }
        st.relax_row(top.row);
        // Re-stamp and re-push every touched row (the relaxed row and its
        // neighbors all changed residuals).
        for (j, _) in a.row(top.row) {
            version[j] += 1;
            heap.push(HeapEntry {
                mag: st.r[j].abs(),
                row: j,
                version: version[j],
            });
        }
        if let Some(norm) = st.sample_if_due() {
            if let Some(t) = opts.target_residual {
                if norm <= t {
                    break;
                }
            }
        }
    }
    st.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::test_support::{error_norm, poisson_system};
    use crate::scalar::{gauss_seidel, ScalarOptions};

    #[test]
    fn southwell_converges_on_poisson() {
        let (a, b, x_true) = poisson_system(8, 8);
        let n = a.nrows();
        let opts = ScalarOptions {
            max_relaxations: 500 * n as u64,
            target_residual: Some(1e-9),
            record_stride: 1,
            seed: 0,
        };
        let (x, h) = sequential_southwell(&a, &b, &vec![0.0; n], &opts);
        assert!(h.final_residual <= 1e-9);
        assert!(error_norm(&x, &x_true) < 1e-7);
    }

    #[test]
    fn southwell_always_relaxes_the_max_row() {
        // Check directly against a brute-force argmax on a few steps.
        let (a, b, _) = poisson_system(5, 5);
        let n = a.nrows();
        let mut x = vec![0.0; n];
        let mut r = a.residual(&b, &x);
        for _ in 0..20 {
            let (imax, _) = dsw_sparse::vecops::argmax_abs(&r).unwrap();
            // One step of the solver from this state must relax imax: emulate
            // by running with max_relaxations = 1 from (x, r).
            let opts = ScalarOptions {
                max_relaxations: 1,
                target_residual: None,
                record_stride: 1,
                seed: 0,
            };
            let (x1, _) = sequential_southwell(&a, &b, &x, &opts);
            // Only x[imax] changed.
            let changed: Vec<usize> = (0..n).filter(|&i| x1[i] != x[i]).collect();
            assert_eq!(changed, vec![imax]);
            x = x1;
            r = a.residual(&b, &x);
        }
    }

    #[test]
    fn southwell_beats_gs_at_low_accuracy() {
        // The paper's headline for Fig. 2: Southwell needs roughly half the
        // relaxations of GS to reach residual norm 0.6 from a random RHS.
        let a = dsw_sparse::gen::fe::fe_poisson(dsw_sparse::gen::fe::FeMeshOptions {
            nx: 20,
            ny: 20,
            jitter: 0.25,
            seed: 1,
        });
        let n = a.nrows();
        let mut b = dsw_sparse::gen::random_rhs(n, 7);
        dsw_sparse::vecops::normalize(&mut b);
        let opts = ScalarOptions {
            max_relaxations: 3 * n as u64,
            target_residual: None,
            record_stride: 1,
            seed: 0,
        };
        let x0 = vec![0.0; n];
        let (_, hsw) = sequential_southwell(&a, &b, &x0, &opts);
        let (_, hgs) = gauss_seidel(&a, &b, &x0, &opts);
        let sw = hsw.relaxations_to_reach(0.6).expect("SW reaches 0.6");
        let gs = hgs.relaxations_to_reach(0.6).expect("GS reaches 0.6");
        assert!(
            sw < 0.8 * gs,
            "SW should need far fewer relaxations: sw={sw}, gs={gs}"
        );
    }

    #[test]
    fn stops_on_exact_zero_residual() {
        // Solve a 1x1 system: one relaxation zeroes the residual, after
        // which the solver must stop on its own.
        let a = CsrMatrix::identity(1);
        let opts = ScalarOptions {
            max_relaxations: 100,
            target_residual: None,
            record_stride: 1,
            seed: 0,
        };
        let (x, h) = sequential_southwell(&a, &[2.0], &[0.0], &opts);
        assert_eq!(x, vec![2.0]);
        assert!(h.total_relaxations <= 1);
    }
}
