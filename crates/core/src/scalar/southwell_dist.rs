//! The Distributed Southwell method, scalar form (§3, Figure 5, and the
//! multigrid smoother of §4.1).
//!
//! Each row plays the role of a process. Row `i` keeps, for every neighbor
//! `j`:
//!
//! * `z(i→j)` — its *estimate of the residual* `r_j` (the scalar form of the
//!   ghost residual layer). When `i` relaxes by `δ`, it refines
//!   `z(i→j) −= a_ij·δ` locally, **without communication** — the exact
//!   contribution its relaxation makes to `r_j`.
//! * `t(i→j)` — its record of *what `j` currently believes `r_i` is*
//!   (the scalar form of `Γ̃`). The paper's key claim is that this record is
//!   always exact, because `j`'s belief only changes through messages that
//!   either originate at `i` or are carried to `i` in `j`'s next message.
//!   The implementation `debug_assert`s this invariant.
//!
//! Row `i` relaxes when `|r_i|` beats every estimate `|z(i→j)|`
//! (rank-id tie-break). Because the estimates are inexact, coupled rows may
//! occasionally relax together — the behaviour the paper observes as "more
//! equations relaxed per parallel step". Deadlock — every row believing a
//! neighbor is larger — is averted in a second phase: if `|r_i| < |t(i→j)|`,
//! row `i` sends `j` an explicit residual update (a `Res comm` message).

use super::{beats, ScalarOptions, ScalarState};
use crate::ScalarHistory;
use dsw_sparse::CsrMatrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of a scalar Distributed Southwell run.
#[derive(Debug, Clone)]
pub struct DsScalarReport {
    /// Final iterate.
    pub x: Vec<f64>,
    /// Convergence history (per parallel step).
    pub history: ScalarHistory,
    /// Messages a distributed implementation would send for relaxation
    /// updates (one per relaxing row per neighbor).
    pub solve_msgs: u64,
    /// Explicit residual-update (deadlock-avoidance) messages.
    pub res_msgs: u64,
    /// Parallel steps in which no row relaxed (deadlock was being resolved).
    pub idle_steps: u64,
    /// The run was cut short because the residual exploded. In scalar form
    /// a relaxed row piggybacks a residual of exactly zero, so on strongly
    /// coupled systems the selection can widen until the method behaves
    /// like (divergent) Jacobi — the degradation mechanism behind the
    /// paper's remark that "convergence is at risk" when coupled equations
    /// relax simultaneously.
    pub diverged: bool,
}

/// Directed-edge bookkeeping aligned with the CSR off-diagonal entries.
struct EdgeState {
    /// For CSR entry `k = (i → j)`, the position of the reciprocal entry
    /// `(j → i)`; `usize::MAX` for diagonal entries.
    recip: Vec<usize>,
    /// `z[k]`: the signed estimate row `i` holds of `r_j` (diagonal slots
    /// unused).
    z: Vec<f64>,
    /// `t[k]`: row `i`'s record of the signed estimate `j` holds of `r_i`.
    /// Invariant: `t[k] == z[recip[k]]`.
    t: Vec<f64>,
}

impl EdgeState {
    fn new(a: &CsrMatrix, r: &[f64]) -> Self {
        let nnz = a.nnz();
        let mut recip = vec![usize::MAX; nnz];
        let mut z = vec![0.0; nnz];
        let mut t = vec![0.0; nnz];
        for i in 0..a.nrows() {
            let base = a.row_ptr()[i];
            for (off, &j) in a.row_cols(i).iter().enumerate() {
                if j == i {
                    continue;
                }
                let k = base + off;
                let pos = a
                    .row_cols(j)
                    .binary_search(&i)
                    .expect("matrix must be structurally symmetric");
                recip[k] = a.row_ptr()[j] + pos;
                // Setup exchange: all estimates start exact.
                z[k] = r[j];
                t[k] = r[i];
            }
        }
        EdgeState { recip, z, t }
    }

    #[cfg(debug_assertions)]
    fn check_gamma_tilde_invariant(&self) {
        for k in 0..self.recip.len() {
            let rk = self.recip[k];
            if rk != usize::MAX {
                debug_assert!(
                    self.t[k] == self.z[rk],
                    "Γ̃ invariant violated at edge {k}: t={} z_recip={}",
                    self.t[k],
                    self.z[rk]
                );
            }
        }
    }
}

/// The row that owns CSR position `k`.
#[inline]
fn edge_row(a: &CsrMatrix, k: usize) -> usize {
    a.row_ptr().partition_point(|&p| p <= k) - 1
}

/// Runs scalar Distributed Southwell. `opts.max_relaxations` is honored
/// *exactly*: if the final step selects more rows than the remaining
/// budget, a random subset is relaxed (seeded by `opts.seed`), as the paper
/// does for its multigrid comparison ("a random subset of the rows selected
/// to be relaxed are actually relaxed").
pub fn distributed_southwell_scalar(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    opts: &ScalarOptions,
) -> DsScalarReport {
    let n = a.nrows();
    let mut st = ScalarState::new(a, b, x0, opts);
    let mut edges = EdgeState::new(a, &st.r);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut solve_msgs = 0u64;
    let mut res_msgs = 0u64;
    let mut idle_steps = 0u64;
    let mut diverged = false;
    let mut selected: Vec<usize> = Vec::new();
    let mut deltas: Vec<f64> = Vec::new();
    let initial_norm = st.residual_norm();

    loop {
        if st.relaxations >= opts.max_relaxations {
            break;
        }
        // ---- Phase A: selection against local estimates, relax, "send". --
        selected.clear();
        'rows: for i in 0..n {
            let mine = st.r[i].abs();
            if mine == 0.0 {
                continue;
            }
            let base = a.row_ptr()[i];
            for (off, &j) in a.row_cols(i).iter().enumerate() {
                if j != i && !beats(mine, i, edges.z[base + off].abs(), j) {
                    continue 'rows;
                }
            }
            selected.push(i);
        }

        // Exact relaxation budget: subsample the final step if needed.
        let remaining = (opts.max_relaxations - st.relaxations) as usize;
        if selected.len() > remaining {
            selected.shuffle(&mut rng);
            selected.truncate(remaining);
            selected.sort_unstable();
        }

        if selected.is_empty() {
            idle_steps += 1;
        } else {
            // Snapshot deltas, then apply all true-residual updates.
            deltas.clear();
            deltas.extend(selected.iter().map(|&i| st.r[i] / a.get(i, i)));
            let mut is_selected = vec![false; n];
            for &i in &selected {
                is_selected[i] = true;
            }
            for (&i, &delta) in selected.iter().zip(&deltas) {
                st.x[i] += delta;
                st.relaxations += 1;
                for (j, aij) in a.row(i) {
                    st.r[j] -= aij * delta;
                }
            }
            // Send pass: every sender refines its own estimates (the exact
            // contribution of its relaxation, no communication needed) and
            // records the piggyback it sends. Sender i's own view of r_i
            // after its relax is exactly 0 — it cannot yet see simultaneous
            // neighbors' updates.
            for (&i, &delta) in selected.iter().zip(&deltas) {
                let base = a.row_ptr()[i];
                for (off, &j) in a.row_cols(i).iter().enumerate() {
                    if j == i {
                        continue;
                    }
                    let k = base + off;
                    let aij = a.row_values(i)[off];
                    edges.z[k] -= aij * delta;
                    edges.t[k] = 0.0; // i records the piggyback it sends to j
                    solve_msgs += 1;
                }
            }
            // Delivery pass (epoch close): the message i -> j carries the
            // piggyback r_i = 0 and i's refined estimate of r_j. The
            // receiver overwrites its estimate of the sender with the
            // piggyback unconditionally; it takes the sender's estimate
            // field only if it did not itself send to the sender this step
            // (otherwise its own piggyback is the sender's last word).
            for &i in &selected {
                let base = a.row_ptr()[i];
                for (off, &j) in a.row_cols(i).iter().enumerate() {
                    if j == i {
                        continue;
                    }
                    let k = base + off;
                    let rk = edges.recip[k];
                    edges.z[rk] = 0.0;
                    if !is_selected[j] {
                        edges.t[rk] = edges.z[k];
                    }
                }
            }
        }

        // ---- Phase B: deadlock detection / explicit residual updates. ----
        // Decide all sends against the post-phase-A state, then deliver,
        // so crossing explicit updates are handled symmetrically.
        let mut to_send: Vec<usize> = Vec::new(); // edge positions (i -> j)
        for i in 0..n {
            let cur = st.r[i].abs();
            let base = a.row_ptr()[i];
            for (off, &j) in a.row_cols(i).iter().enumerate() {
                if j != i {
                    let k = base + off;
                    if cur < edges.t[k].abs() {
                        // Neighbor j overestimates |r_i|: possible deadlock.
                        to_send.push(k);
                    }
                }
            }
        }
        let sent_b: std::collections::HashSet<usize> = to_send.iter().copied().collect();
        for &k in &to_send {
            let i = edge_row(a, k);
            let rk = edges.recip[k];
            let cur = st.r[i];
            edges.t[k] = cur; // i records the piggyback it sends
            edges.z[rk] = cur; // j's estimate of r_i corrected
            if !sent_b.contains(&rk) {
                edges.t[rk] = edges.z[k]; // j learns i's estimate of r_j
            }
            res_msgs += 1;
        }
        #[cfg(debug_assertions)]
        edges.check_gamma_tilde_invariant();

        let norm = st.end_parallel_step();
        if let Some(t) = opts.target_residual {
            if norm <= t {
                break;
            }
        }
        if norm == 0.0 {
            break;
        }
        if !norm.is_finite() || norm > 1e12 * initial_norm.max(1e-300) {
            diverged = true;
            break;
        }
    }

    let (x, history) = st.finish();
    DsScalarReport {
        x,
        history,
        solve_msgs,
        res_msgs,
        idle_steps,
        diverged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::test_support::{error_norm, poisson_system};

    #[test]
    fn ds_scalar_converges_on_poisson() {
        let (a, b, x_true) = poisson_system(8, 8);
        let n = a.nrows();
        let opts = ScalarOptions {
            max_relaxations: 500 * n as u64,
            target_residual: Some(1e-9),
            record_stride: 1,
            seed: 1,
        };
        let rep = distributed_southwell_scalar(&a, &b, &vec![0.0; n], &opts);
        assert!(rep.history.final_residual <= 1e-9);
        assert!(error_norm(&rep.x, &x_true) < 1e-7);
        assert!(rep.solve_msgs > 0);
    }

    #[test]
    fn ds_scalar_degrades_to_jacobi_on_strong_coupling() {
        // Documented corner of the *scalar* form: a relaxed row piggybacks
        // r_i = 0, so estimates ratchet downward and the selection widens
        // until every row relaxes every step — i.e. Jacobi — which diverges
        // on strongly coupled cliques. (The block form does not degenerate:
        // a subdomain sweep leaves a nonzero norm. The paper only uses the
        // scalar form on Poisson-type problems, Figs. 5–6.)
        let mut a = dsw_sparse::gen::clique_grid2d(
            8,
            8,
            dsw_sparse::gen::CliqueOptions {
                coupling: 0.8,
                weight_jump: 0.0,
                seed: 0,
                hot_fraction: 0.0,
                hot_coupling: 0.0,
            },
        );
        a.scale_unit_diagonal().unwrap();
        let n = a.nrows();
        let b = vec![0.0; n];
        let x0 = dsw_sparse::gen::random_guess(n, 3);
        let opts = ScalarOptions {
            max_relaxations: 3000 * n as u64,
            target_residual: Some(1e-8),
            record_stride: 1,
            seed: 0,
        };
        let rep = distributed_southwell_scalar(&a, &b, &x0, &opts);
        assert!(rep.diverged, "expected the documented Jacobi degeneration");
        // The widened selection is visible as near-n relaxations per step.
        let last_steps: Vec<u64> = rep
            .history
            .step_boundaries
            .windows(2)
            .map(|w| w[1] - w[0])
            .collect();
        assert!(*last_steps.last().unwrap() as usize >= n / 2);
    }

    #[test]
    fn ds_scalar_never_deadlocks_and_budget_exact() {
        let (a, b, _) = poisson_system(10, 10);
        let n = a.nrows() as u64;
        for budget in [n / 2, n, 3 * n + 17] {
            let opts = ScalarOptions {
                max_relaxations: budget,
                target_residual: None,
                record_stride: 1,
                seed: 7,
            };
            let rep = distributed_southwell_scalar(&a, &b, &vec![0.0; 100], &opts);
            assert_eq!(
                rep.history.total_relaxations, budget,
                "exact budget must be honored"
            );
        }
    }

    #[test]
    fn ds_relaxes_more_rows_per_step_than_ps() {
        // §3 / Fig. 5: with inexact estimates, Distributed Southwell relaxes
        // more equations per parallel step than Parallel Southwell.
        let a = dsw_sparse::gen::fe::fe_poisson(dsw_sparse::gen::fe::FeMeshOptions {
            nx: 24,
            ny: 24,
            jitter: 0.25,
            seed: 1,
        });
        let n = a.nrows();
        let b = dsw_sparse::gen::random_rhs(n, 7);
        let opts = ScalarOptions {
            max_relaxations: 2 * n as u64,
            target_residual: None,
            record_stride: 1,
            seed: 0,
        };
        let x0 = vec![0.0; n];
        let rep = distributed_southwell_scalar(&a, &b, &x0, &opts);
        let (_, hp) = crate::scalar::parallel_southwell(&a, &b, &x0, &opts);
        let ds_per_step =
            rep.history.total_relaxations as f64 / rep.history.parallel_steps() as f64;
        let ps_per_step = hp.total_relaxations as f64 / hp.parallel_steps() as f64;
        assert!(
            ds_per_step > ps_per_step,
            "DS {ds_per_step} rows/step !> PS {ps_per_step}"
        );
    }

    #[test]
    fn ds_tracks_ps_convergence_at_low_accuracy() {
        // Fig. 5: DS closely matches PS down to residual ~0.6.
        let a = dsw_sparse::gen::fe::fe_poisson(dsw_sparse::gen::fe::FeMeshOptions {
            nx: 24,
            ny: 24,
            jitter: 0.25,
            seed: 1,
        });
        let n = a.nrows();
        let b = dsw_sparse::gen::random_rhs(n, 7);
        let opts = ScalarOptions {
            max_relaxations: 3 * n as u64,
            target_residual: None,
            record_stride: 1,
            seed: 0,
        };
        let x0 = vec![0.0; n];
        let rep = distributed_southwell_scalar(&a, &b, &x0, &opts);
        let (_, hp) = crate::scalar::parallel_southwell(&a, &b, &x0, &opts);
        let ds = rep.history.relaxations_to_reach(0.6).unwrap();
        let ps = hp.relaxations_to_reach(0.6).unwrap();
        assert!(
            ds < 1.5 * ps,
            "DS should track PS at low accuracy: DS {ds}, PS {ps}"
        );
    }

    #[test]
    fn one_isolated_row_system() {
        let a = CsrMatrix::identity(1);
        let opts = ScalarOptions {
            max_relaxations: 10,
            target_residual: None,
            record_stride: 1,
            seed: 0,
        };
        let rep = distributed_southwell_scalar(&a, &[3.0], &[0.0], &opts);
        assert_eq!(rep.x, vec![3.0]);
        assert_eq!(rep.solve_msgs, 0);
        assert_eq!(rep.res_msgs, 0);
    }
}
