//! Parallel Southwell, block form (Algorithm 2 of the paper).

use super::layout::LocalSystem;
use super::local_solver::{LocalSolver, LocalSolverImpl};
use super::msg::{DistMsg, SlabVec};
use crate::scalar::beats;
use dsw_rma::{CommClass, Envelope, PhaseCtx, RankAlgorithm};

/// One rank of block Parallel Southwell.
///
/// `Γ` holds the **exact** residual norms of the neighbors: every time a
/// rank's residual norm changes without it having relaxed (i.e. it received
/// updates), it broadcasts the new norm to all neighbors in a second epoch —
/// the *explicit residual update* whose cost dominates Table 3. A rank that
/// relaxed piggybacks its new norm on the solve messages instead.
///
/// With `explicit_updates = false` this degenerates to the piggyback-only
/// scheme of the authors' earlier ICCS'16 paper, which the paper reports
/// "deadlocks for all our test problems" — reproduce that with the
/// `ablation_deadlock` bench.
pub struct ParallelSouthwellRank {
    /// The local piece of the system.
    pub ls: LocalSystem,
    /// Exact neighbor residual norms (squared), per neighbor slot.
    pub gamma_sq: Vec<f64>,
    /// ‖r_p‖² as of the start of the current phase.
    my_norm_sq: f64,
    /// The norm last communicated to the neighbors (piggyback or explicit).
    last_sent_norm_sq: f64,
    /// Whether to send the deadlock-preventing explicit updates.
    explicit_updates: bool,
    /// Whether this rank relaxed in the most recent parallel step
    /// (observability hook for tests and the harness).
    pub relaxed_last_step: bool,
    solver: LocalSolverImpl,
    ghost_dr: Vec<f64>,
}

impl ParallelSouthwellRank {
    /// Wraps local systems into Parallel Southwell ranks. `norms_sq` holds
    /// every rank's initial ‖r‖² (the setup exchange, not counted as solver
    /// communication).
    pub fn build(locals: Vec<LocalSystem>, norms_sq: &[f64]) -> Vec<Self> {
        Self::build_with(locals, norms_sq, true)
    }

    /// As [`build`](Self::build), optionally disabling explicit residual
    /// updates (the deadlock-prone ICCS'16 variant).
    pub fn build_with(
        locals: Vec<LocalSystem>,
        norms_sq: &[f64],
        explicit_updates: bool,
    ) -> Vec<Self> {
        Self::build_cfg(locals, norms_sq, explicit_updates, LocalSolver::GaussSeidel)
    }

    /// Fully configurable constructor (explicit updates, local solver).
    pub fn build_cfg(
        locals: Vec<LocalSystem>,
        norms_sq: &[f64],
        explicit_updates: bool,
        solver: LocalSolver,
    ) -> Vec<Self> {
        locals
            .into_iter()
            .map(|ls| {
                let gamma_sq = ls.neighbors.iter().map(|&q| norms_sq[q]).collect();
                let my = norms_sq[ls.rank];
                let g = ls.ext_cols.len();
                ParallelSouthwellRank {
                    solver: LocalSolverImpl::new(solver, &ls),
                    ls,
                    gamma_sq,
                    my_norm_sq: my,
                    last_sent_norm_sq: my,
                    explicit_updates,
                    relaxed_last_step: false,
                    ghost_dr: vec![0.0; g],
                }
            })
            .collect()
    }

    /// The Parallel Southwell criterion: does this rank hold the largest
    /// residual norm in its neighborhood (rank-id tie-break)?
    fn wins(&self) -> bool {
        if self.my_norm_sq == 0.0 {
            return false;
        }
        self.ls
            .neighbors
            .iter()
            .zip(&self.gamma_sq)
            .all(|(&q, &g)| beats(self.my_norm_sq, self.ls.rank, g, q))
    }

    /// Applies one incoming message, whatever phase it lands in (in the
    /// superstep executor solve messages arrive at phase 1 and explicit
    /// updates at phase 0; under asynchronous scheduling either can arrive
    /// at either boundary). Returns `true` if residual data changed.
    fn apply_msg(&mut self, src: usize, msg: &DistMsg) -> bool {
        let s = self.ls.neighbor_slot(src);
        match msg {
            DistMsg::Solve { dr, norm_sq, .. } => {
                for (&li, &d) in self.ls.boundary_rows_to[s].iter().zip(dr) {
                    self.ls.r[li as usize] += d;
                }
                self.gamma_sq[s] = *norm_sq;
                true
            }
            DistMsg::Residual { norm_sq, .. } => {
                self.gamma_sq[s] = *norm_sq;
                false
            }
            // PS has no self-healing layer and never sends audits; an audit
            // from a foreign protocol still carries a valid norm.
            DistMsg::Audit { norm_sq, .. } => {
                self.gamma_sq[s] = *norm_sq;
                false
            }
        }
    }
}

impl super::recovery::Recoverable for ParallelSouthwellRank {}

impl super::session::WarmStart for ParallelSouthwellRank {
    fn local(&self) -> &LocalSystem {
        &self.ls
    }

    fn reseed_rhs(&mut self, delta_b: &[f64]) -> f64 {
        // r = b − Ax: the b change shifts r purely locally (x untouched).
        for (li, &g) in self.ls.rows.iter().enumerate() {
            self.ls.b[li] += delta_b[g];
            self.ls.r[li] += delta_b[g];
        }
        self.my_norm_sq = self.ls.residual_norm_sq();
        self.my_norm_sq
    }

    fn reseed_estimates(&mut self, norms_sq: &[f64]) {
        // Out-of-band exact exchange, mirroring `build_cfg`'s setup: every
        // neighbor estimate becomes the neighbor's exact post-reseed norm,
        // and `last_sent` reflects that the neighbors hold *this* rank's
        // exact norm too.
        for (s, &q) in self.ls.neighbors.iter().enumerate() {
            self.gamma_sq[s] = norms_sq[q];
        }
        self.last_sent_norm_sq = self.my_norm_sq;
        self.relaxed_last_step = false;
    }
}

impl RankAlgorithm for ParallelSouthwellRank {
    type Msg = DistMsg;

    fn phases(&self) -> usize {
        2
    }

    fn put_targets(&self) -> Option<Vec<usize>> {
        // Solve and residual traffic both stay on the static subdomain
        // neighbor set (enables the executor's target-major parallel close).
        Some(self.ls.neighbors.clone())
    }

    fn phase(&mut self, phase: usize, inbox: &[Envelope<DistMsg>], ctx: &mut PhaseCtx<DistMsg>) {
        match phase {
            0 => {
                // Read explicit residual updates from the previous step
                // (and any solve updates arriving here under asynchrony).
                let mut received = false;
                for env in inbox {
                    received |= self.apply_msg(env.src, &env.payload);
                }
                if received {
                    self.my_norm_sq = self.ls.residual_norm_sq();
                    ctx.add_flops(2 * self.ls.nrows() as u64);
                }
                self.relaxed_last_step = self.wins();
                if self.relaxed_last_step {
                    self.ghost_dr.iter_mut().for_each(|v| *v = 0.0);
                    let flops = self.solver.relax(&mut self.ls, &mut self.ghost_dr);
                    ctx.add_flops(flops);
                    ctx.record_relaxations(self.ls.nrows() as u64);
                    self.my_norm_sq = self.ls.residual_norm_sq();
                    self.last_sent_norm_sq = self.my_norm_sq;
                    for s in 0..self.ls.nneighbors() {
                        let dr: SlabVec = self.ls.ghosts_of[s]
                            .iter()
                            .map(|&slot| self.ghost_dr[slot as usize])
                            .collect();
                        let msg = DistMsg::Solve {
                            dr,
                            boundary_r: SlabVec::new(),
                            norm_sq: self.my_norm_sq,
                            est_of_target_sq: 0.0,
                        };
                        let bytes = msg.wire_bytes();
                        ctx.put(self.ls.neighbors[s], CommClass::Solve, msg, bytes);
                    }
                }
            }
            1 => {
                // Read solve updates; piggybacked norms keep Γ exact.
                let mut received = false;
                for env in inbox {
                    received |= self.apply_msg(env.src, &env.payload);
                }
                if received {
                    self.my_norm_sq = self.ls.residual_norm_sq();
                    ctx.add_flops(2 * self.ls.nrows() as u64);
                }
                // Explicit residual update whenever the norm changed without
                // being communicated — the deadlock preventer.
                if self.explicit_updates && self.my_norm_sq != self.last_sent_norm_sq {
                    for s in 0..self.ls.nneighbors() {
                        let msg = DistMsg::Residual {
                            boundary_r: SlabVec::new(),
                            norm_sq: self.my_norm_sq,
                            est_of_target_sq: 0.0,
                        };
                        let bytes = msg.wire_bytes();
                        ctx.put(self.ls.neighbors[s], CommClass::Residual, msg, bytes);
                    }
                    self.last_sent_norm_sq = self.my_norm_sq;
                }
            }
            _ => unreachable!("Parallel Southwell has two phases"),
        }
    }

    /// PS keeps `my_norm_sq` exact at step boundaries on a reliable link:
    /// solve deltas sent in phase 0 are applied in phase 1 of the same
    /// step, and explicit updates carry no residual data.
    fn maintained_norm_sq(&self) -> Option<f64> {
        Some(self.my_norm_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::layout::{distribute, gather_x};
    use dsw_partition::partition_strip;
    use dsw_rma::{CostModel, ExecMode, Executor};
    use dsw_sparse::gen;

    fn build_ps(
        nx: usize,
        ny: usize,
        p: usize,
        explicit: bool,
    ) -> (
        dsw_sparse::CsrMatrix,
        Vec<f64>,
        Executor<ParallelSouthwellRank>,
    ) {
        build_ps_part(nx, ny, p, explicit, false)
    }

    fn build_ps_part(
        nx: usize,
        ny: usize,
        p: usize,
        explicit: bool,
        multilevel: bool,
    ) -> (
        dsw_sparse::CsrMatrix,
        Vec<f64>,
        Executor<ParallelSouthwellRank>,
    ) {
        let a = gen::grid2d_poisson(nx, ny);
        let n = a.nrows();
        let b = gen::random_rhs(n, 1);
        let x0 = vec![0.0; n];
        let part = if multilevel {
            dsw_partition::partition_multilevel(
                &dsw_partition::Graph::from_matrix(&a),
                p,
                dsw_partition::MultilevelOptions::default(),
            )
        } else {
            partition_strip(n, p)
        };
        let locals = distribute(&a, &b, &x0, &part).unwrap();
        let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
        let ranks = ParallelSouthwellRank::build_with(locals, &norms, explicit);
        let ex = Executor::new(ranks, CostModel::default(), ExecMode::Sequential);
        (a, b, ex)
    }

    fn global_norm(
        ex: &Executor<ParallelSouthwellRank>,
        a: &dsw_sparse::CsrMatrix,
        b: &[f64],
    ) -> f64 {
        let locals: Vec<_> = ex.ranks().iter().map(|r| r.ls.clone()).collect();
        let x = gather_x(&locals, a.nrows());
        dsw_sparse::vecops::norm2(&a.residual(b, &x))
    }

    #[test]
    fn ps_converges_on_poisson() {
        let (a, b, mut ex) = build_ps(12, 12, 6, true);
        for _ in 0..2000 {
            ex.step();
        }
        let norm = global_norm(&ex, &a, &b);
        assert!(norm < 1e-8, "residual {norm}");
    }

    #[test]
    fn at_most_an_independent_set_relaxes() {
        // With exact norms and rank tie-breaks, two neighboring ranks never
        // relax in the same step (PS preserves the SPD guarantee this way).
        let (_, _, mut ex) = build_ps_part(16, 16, 8, true, true);
        for step in 0..60 {
            ex.step();
            for r in ex.ranks() {
                if !r.relaxed_last_step {
                    continue;
                }
                for &q in &r.ls.neighbors {
                    assert!(
                        !ex.ranks()[q].relaxed_last_step,
                        "step {step}: neighbors {} and {q} both relaxed",
                        r.ls.rank
                    );
                }
            }
        }
    }

    #[test]
    fn relax_set_matches_exact_criterion() {
        // The explicit residual updates keep Γ an exact snapshot: the set
        // of ranks relaxing in step k must equal the Parallel Southwell
        // criterion evaluated on the TRUE norms at the end of step k−1
        // (this is what makes distributed PS mathematically identical to
        // its shared-memory definition, §2.4).
        let (_, _, mut ex) = build_ps_part(16, 16, 8, true, true);
        for step in 0..60 {
            let prev: Vec<f64> = ex.ranks().iter().map(|r| r.ls.residual_norm_sq()).collect();
            ex.step();
            for r in ex.ranks() {
                let mine = prev[r.ls.rank];
                let expected = mine > 0.0
                    && r.ls
                        .neighbors
                        .iter()
                        .all(|&q| crate::scalar::beats(mine, r.ls.rank, prev[q], q));
                assert_eq!(
                    r.relaxed_last_step, expected,
                    "step {step}, rank {}: relaxed={} but exact criterion={}",
                    r.ls.rank, r.relaxed_last_step, expected
                );
            }
        }
    }

    #[test]
    fn piggyback_only_variant_deadlocks() {
        // The ICCS'16 scheme: no explicit updates. The paper reports it
        // deadlocks on all test problems; detect the frozen state (a step
        // with no relaxations and no messages) under the paper's setup
        // (unit-diagonal scaling, b = 0, random scaled guess).
        let mut a = gen::grid2d_poisson(16, 16);
        a.scale_unit_diagonal().unwrap();
        let n = a.nrows();
        let b = vec![0.0; n];
        let mut x0 = gen::random_guess(n, 11);
        let s = 1.0 / dsw_sparse::vecops::norm2(&a.residual(&b, &x0));
        x0.iter_mut().for_each(|v| *v *= s);
        let part = dsw_partition::partition_multilevel(
            &dsw_partition::Graph::from_matrix(&a),
            8,
            dsw_partition::MultilevelOptions::default(),
        );
        let locals = distribute(&a, &b, &x0, &part).unwrap();
        let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
        let ranks = ParallelSouthwellRank::build_with(locals, &norms, false);
        let mut ex = Executor::new(ranks, CostModel::default(), ExecMode::Sequential);
        let mut frozen = false;
        for _ in 0..500 {
            let s = ex.step();
            if s.relaxations == 0 && s.msgs == 0 {
                frozen = true;
                break;
            }
        }
        assert!(frozen, "piggyback-only Parallel Southwell should deadlock");
    }

    #[test]
    fn explicit_variant_never_freezes_before_convergence() {
        let (a, b, mut ex) = build_ps(10, 10, 5, true);
        for _ in 0..400 {
            let s = ex.step();
            let norm = global_norm(&ex, &a, &b);
            if norm < 1e-10 {
                return; // converged
            }
            assert!(
                !(s.relaxations == 0 && s.msgs == 0),
                "froze at residual {norm}"
            );
        }
    }

    #[test]
    fn res_comm_dominates_solve_comm() {
        // Table 3's headline: explicit residual updates dominate PS's
        // communication. Every neighbor of a relaxer re-broadcasts its
        // changed norm to all of *its* neighbors, so with realistic
        // (multilevel) partitions Res comm exceeds Solve comm.
        let (_, _, mut ex) = build_ps_part(24, 24, 12, true, true);
        for _ in 0..100 {
            ex.step();
        }
        let solve = ex.stats.total_msgs_solve();
        let res = ex.stats.total_msgs_residual();
        assert!(
            res > solve,
            "expected residual comm to dominate: solve={solve} res={res}"
        );
    }
}
