//! Local subdomain solvers.
//!
//! The paper's artifact exposes a `-loc_solver` switch: a single
//! Gauss–Seidel sweep (the default, used for every reported experiment) or
//! a direct solve of the local block (PARDISO in the artifact; a dense
//! Cholesky here). The exact solve drives the local residual to zero,
//! which makes a relaxing rank piggyback a zero norm — the same mechanism
//! that degrades the scalar form of Distributed Southwell on strongly
//! coupled systems — so the Gauss–Seidel sweep is both cheaper and
//! better-behaved; the option exists for completeness and experimentation,
//! mirroring the artifact.

use super::layout::LocalSystem;
use dsw_partition::{greedy_coloring_bfs, Graph};
use dsw_sparse::dense::Cholesky;

/// Which local solver to use when a rank relaxes its subdomain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalSolver {
    /// One Gauss–Seidel sweep over the owned rows (`-loc_solver gs`).
    #[default]
    GaussSeidel,
    /// One Multicolor Gauss–Seidel sweep: mathematically a GS sweep in
    /// color order, but each color class could be relaxed by local threads
    /// — the "single process per node with a multi-threaded local solver,
    /// e.g. Multicolor Gauss-Seidel" configuration the paper notes in §4.2.
    MulticolorGaussSeidel,
    /// Exact solve of the local block via dense Cholesky
    /// (`-loc_solver pardiso` in the artifact). Factors each block once at
    /// setup; only sensible for small subdomains.
    Exact,
}

/// The instantiated solver held by each rank.
pub enum LocalSolverImpl {
    /// Sweep; stateless.
    GaussSeidel,
    /// Sweep in color order; holds the local row order (colors
    /// concatenated) computed once at setup.
    Multicolor(Vec<u32>),
    /// Direct solve with a prefactored local block.
    Exact(Box<Cholesky>),
}

impl LocalSolverImpl {
    /// Instantiates the solver for one local system.
    pub fn new(kind: LocalSolver, ls: &LocalSystem) -> Self {
        match kind {
            LocalSolver::GaussSeidel => LocalSolverImpl::GaussSeidel,
            LocalSolver::MulticolorGaussSeidel => {
                let coloring = greedy_coloring_bfs(&Graph::from_matrix(&ls.a_int));
                let order: Vec<u32> = coloring
                    .classes()
                    .into_iter()
                    .flatten()
                    .map(|i| i as u32)
                    .collect();
                LocalSolverImpl::Multicolor(order)
            }
            LocalSolver::Exact => LocalSolverImpl::Exact(Box::new(
                Cholesky::factor_csr(&ls.a_int)
                    .expect("local diagonal blocks of an SPD matrix are SPD"),
            )),
        }
    }

    /// Relaxes the subdomain: updates `ls.x` and `ls.r`, accumulates the
    /// off-process residual deltas into `ghost_dr` (pre-zeroed by the
    /// caller), and returns the flop count for the time model.
    pub fn relax(&self, ls: &mut LocalSystem, ghost_dr: &mut [f64]) -> u64 {
        match self {
            LocalSolverImpl::GaussSeidel => ls.gs_sweep(ghost_dr),
            LocalSolverImpl::Multicolor(order) => ls.gs_sweep_ordered(order, ghost_dr),
            LocalSolverImpl::Exact(chol) => ls.exact_solve(chol, ghost_dr),
        }
    }
}

impl LocalSystem {
    /// Exact local solve: `δ = A_int⁻¹ r`, `x += δ`, local residual
    /// becomes zero, and the off-process residual deltas are accumulated
    /// into `ghost_dr`. Returns the flop count.
    pub fn exact_solve(&mut self, chol: &Cholesky, ghost_dr: &mut [f64]) -> u64 {
        debug_assert_eq!(chol.dim(), self.nrows());
        let delta = chol.solve(&self.r);
        for (x, d) in self.x.iter_mut().zip(&delta) {
            *x += d;
        }
        // Off-process contributions: a_{ji} = a_{ij}.
        for (i, &d) in delta.iter().enumerate() {
            for k in self.a_ext_ptr[i]..self.a_ext_ptr[i + 1] {
                ghost_dr[self.a_ext_idx[k] as usize] -= self.a_ext_val[k] * d;
            }
        }
        // The local block is solved exactly.
        self.r.iter_mut().for_each(|v| *v = 0.0);
        let m = self.nrows() as u64;
        // Two triangular solves (forward + backward, ~m² each) plus the
        // off-process delta accumulation (one multiply-add per external
        // coupling entry).
        2 * m * m + 2 * (self.a_ext_idx.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::layout::distribute;
    use dsw_partition::partition_strip;
    use dsw_sparse::gen;

    #[test]
    fn exact_solve_zeroes_local_residual_and_matches_global_semantics() {
        let a = gen::grid2d_poisson(8, 8);
        let n = a.nrows();
        let b = gen::random_rhs(n, 1);
        let x0 = gen::random_guess(n, 2);
        let part = partition_strip(n, 4);
        let mut locals = distribute(&a, &b, &x0, &part).unwrap();
        let mut all_dr: Vec<Vec<f64>> = Vec::new();
        for ls in locals.iter_mut() {
            let solver = LocalSolverImpl::new(LocalSolver::Exact, ls);
            let mut gdr = vec![0.0; ls.ext_cols.len()];
            solver.relax(ls, &mut gdr);
            assert!(ls.r.iter().all(|&v| v == 0.0));
            all_dr.push(gdr);
        }
        // Deliver deltas, then the maintained residuals must equal b - Ax.
        for p in 0..locals.len() {
            let (ext, dr) = (locals[p].ext_cols.clone(), all_dr[p].clone());
            for (slot, &g) in ext.iter().enumerate() {
                let q = locals
                    .iter()
                    .position(|l| l.rows.binary_search(&g).is_ok())
                    .unwrap();
                let li = locals[q].rows.binary_search(&g).unwrap();
                locals[q].r[li] += dr[slot];
            }
        }
        let x = crate::dist::layout::gather_x(&locals, n);
        let r_true = a.residual(&b, &x);
        let r_kept = crate::dist::layout::gather_r(&locals, n);
        for (k, t) in r_kept.iter().zip(&r_true) {
            assert!((k - t).abs() < 1e-11, "{k} vs {t}");
        }
    }

    #[test]
    fn exact_solve_flop_model_charges_both_triangular_solves() {
        // Regression: the model charged m·m for "two triangular solves";
        // a dense forward + backward substitution is 2·m² (+ the external
        // delta accumulation), so exact solves were under-billed 2x
        // relative to the Gauss–Seidel sweep on the modelled clock.
        let a = gen::grid2d_poisson(8, 8);
        let n = a.nrows();
        let b = gen::random_rhs(n, 1);
        let part = partition_strip(n, 4);
        let mut locals = distribute(&a, &b, &vec![0.0; n], &part).unwrap();
        for ls in locals.iter_mut() {
            let solver = LocalSolverImpl::new(LocalSolver::Exact, ls);
            let m = ls.nrows() as u64;
            let ext_nnz = ls.a_ext_idx.len() as u64;
            let mut gdr = vec![0.0; ls.ext_cols.len()];
            let flops = solver.relax(ls, &mut gdr);
            assert_eq!(flops, 2 * m * m + 2 * ext_nnz);
        }
    }

    #[test]
    fn multicolor_sweep_visits_every_row_once() {
        let a = gen::grid2d_poisson(8, 8);
        let n = a.nrows();
        let b = gen::random_rhs(n, 4);
        let x0 = gen::random_guess(n, 5);
        let part = partition_strip(n, 4);
        let mut locals = distribute(&a, &b, &x0, &part).unwrap();
        for ls in locals.iter_mut() {
            let solver = LocalSolverImpl::new(LocalSolver::MulticolorGaussSeidel, ls);
            if let LocalSolverImpl::Multicolor(order) = &solver {
                let mut sorted: Vec<u32> = order.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..ls.nrows() as u32).collect::<Vec<_>>());
            } else {
                panic!("expected multicolor solver");
            }
            let before = ls.residual_norm_sq();
            let mut gdr = vec![0.0; ls.ext_cols.len()];
            solver.relax(ls, &mut gdr);
            assert!(ls.residual_norm_sq() < before);
        }
    }

    #[test]
    fn all_local_solvers_converge_block_jacobi() {
        use crate::dist::{run_method, DistOptions, DsConfig, Method};
        let mut a = gen::grid2d_poisson(12, 12);
        a.scale_unit_diagonal().unwrap();
        let n = a.nrows();
        let b = gen::random_rhs(n, 6);
        let x0 = vec![0.0; n];
        let part = partition_strip(n, 4);
        for kind in [
            LocalSolver::GaussSeidel,
            LocalSolver::MulticolorGaussSeidel,
            LocalSolver::Exact,
        ] {
            let opts = DistOptions {
                max_steps: 500,
                target_residual: Some(1e-8),
                ds_config: DsConfig {
                    local_solver: kind,
                    ..DsConfig::default()
                },
                ..DistOptions::default()
            };
            let rep = run_method(Method::BlockJacobi, &a, &b, &x0, &part, &opts);
            assert!(
                rep.converged_at.is_some(),
                "{kind:?}: final {}",
                rep.final_residual()
            );
        }
    }

    #[test]
    fn single_rank_exact_solve_is_direct_solution() {
        let a = gen::grid2d_poisson(6, 6);
        let n = a.nrows();
        let b = gen::random_rhs(n, 3);
        let part = partition_strip(n, 1);
        let mut locals = distribute(&a, &b, &vec![0.0; n], &part).unwrap();
        let solver = LocalSolverImpl::new(LocalSolver::Exact, &locals[0]);
        let mut gdr = vec![];
        solver.relax(&mut locals[0], &mut gdr);
        let r = a.residual(&b, &locals[0].x);
        assert!(dsw_sparse::vecops::norm2(&r) < 1e-11);
    }
}
