//! Persistent solve sessions: distributed state that survives across
//! solves.
//!
//! The paper measures one solve; the ROADMAP's north star is heavy
//! traffic — many repeated solves of the same system with an evolving
//! right-hand side (Hong's D-iteration framing: the diffusion *continues
//! from current state* when `b` changes). A [`SolveSession`] keeps
//! everything that is expensive to set up — the partition-routed
//! [`LocalSystem`]s, the per-rank algorithm state, the executor's routing
//! index, the monitor scratch — alive across solves, so a repeated solve
//! warm-starts from the previous solution and only re-seeds residuals.
//! No re-partition, no re-route, zero steady-state allocation.
//!
//! # Warm-start semantics
//!
//! Re-solving with an **unchanged** `b` touches nothing: the session
//! simply continues stepping the existing rank states, so the resulting
//! iterates are bit-identical to having let the original run continue
//! (the `warm_start` proptests pin this).
//!
//! Re-solving with a **changed** `b` exploits `r = b − Ax`: a change in
//! `b` shifts the residual by exactly `Δb`, purely locally — `x` and
//! `Ax` are untouched. Each rank applies its owned slice of `Δb` to `b`
//! and `r` ([`WarmStart::reseed_rhs`]), recomputes its exact norm, and
//! mirrors the boundary-row deltas into the DS ghost layer `z`. Then the
//! cross-rank estimate state (PS/DS `Γ`, DS `Γ̃`) is re-seeded from the
//! exact post-reseed norms ([`WarmStart::reseed_estimates`]) — the same
//! out-of-band exchange the cold build performs — and the executor's
//! in-flight queues are discarded. Discarding is safe *only* at a step
//! boundary with `solve_msg_threshold == 0`, no chaos, and recovery off:
//! there, every residual delta sent in phase 0 was applied in phase 1 of
//! the same step, so in-flight messages carry norm estimates only — and
//! those are superseded by the exact exchange. [`TenantSession::build`]
//! asserts exactly these preconditions.
//!
//! # Quantum stepping
//!
//! [`SolveSession::step_batch`] advances a bounded number of supersteps
//! and returns whether the solve reached a verdict, so a serving layer
//! can interleave many sessions on one shared [`SharedPool`] with
//! per-tenant quanta (see the `dsw-serve` crate). The loop body is the
//! driver's superstep loop — same measurement cadence, same verdict
//! rules — so a session solve and a [`run_method`](super::run_method)
//! solve of the same problem produce identical records.

use super::block_jacobi::BlockJacobiRank;
use super::distributed_southwell::DistributedSouthwellRank;
use super::driver::{
    initial_record, measure_boundary, push_record, DirectView, DistOptions, DistReport,
    ExecBackend, Method, MonitorCore, StepRecord,
};
use super::layout::{distribute, LocalSystem};
use super::parallel_southwell::ParallelSouthwellRank;
use super::recovery::Recoverable;
use dsw_partition::Partition;
use dsw_rma::{Executor, RankAlgorithm, SharedPool};
use dsw_sparse::CsrMatrix;

/// A rank algorithm whose state can be warm-started in place when the
/// right-hand side changes between solves.
///
/// Implementations live next to each solver (private-field access); the
/// contract is shared: [`reseed_rhs`](WarmStart::reseed_rhs) applies the
/// owned slice of `Δb` to `b` and `r` and returns the recomputed exact
/// `‖r_p‖²`, and [`reseed_estimates`](WarmStart::reseed_estimates)
/// re-seeds all cross-rank estimate state from the exact per-rank norms,
/// exactly as the cold build's setup exchange does.
pub trait WarmStart: RankAlgorithm + Recoverable {
    /// The rank's local piece of the system (the driver's gather view).
    fn local(&self) -> &LocalSystem;

    /// Applies the global `Δb` to the owned rows' `b` and `r` (and any
    /// mirrored ghost residuals) and returns the exact recomputed
    /// `‖r_p‖²`.
    fn reseed_rhs(&mut self, delta_b: &[f64]) -> f64;

    /// Re-seeds cross-rank estimate state (`Γ`, `Γ̃`, last-sent norms)
    /// from the exact per-rank `‖r_q‖²` vector, indexed by rank.
    fn reseed_estimates(&mut self, norms_sq: &[f64]);
}

/// Per-solve progress — everything [`run_method`](super::run_method)
/// keeps in loop locals, extracted so a solve can be suspended between
/// quanta.
struct SolveState {
    records: Vec<StepRecord>,
    initial: f64,
    step: usize,
    converged_at: Option<usize>,
    deadlocked: bool,
    diverged: bool,
    watchdog_nudges: u64,
    nudges_since_relax: u32,
    done: bool,
    /// Rank-cumulative recovery counters at solve start, so the report
    /// carries per-solve deltas.
    drift_base: u64,
    stale_base: u64,
}

/// A persistent solver instance: distributed state that survives across
/// solves with evolving right-hand sides.
///
/// Constructed through [`TenantSession::build`] (which picks the rank
/// type for the method and enforces the warm-start preconditions), or
/// directly from pre-built ranks for tests.
pub struct SolveSession<R: WarmStart> {
    method: Method,
    a: CsrMatrix,
    b: Vec<f64>,
    ex: Executor<R>,
    monitor: MonitorCore,
    opts: DistOptions,
    state: SolveState,
    /// `Δb` scratch (global indexing), reused across reseeds.
    delta_b: Vec<f64>,
    /// Exact per-rank `‖r_p‖²` scratch, reused across reseeds.
    norms_sq: Vec<f64>,
}

impl<R: WarmStart> SolveSession<R> {
    fn view() -> DirectView<fn(&R) -> &LocalSystem> {
        DirectView(R::local as fn(&R) -> &LocalSystem)
    }

    /// Wraps a built executor into a session ready to solve `b`.
    pub fn new(
        method: Method,
        a: CsrMatrix,
        b: Vec<f64>,
        mut ex: Executor<R>,
        opts: DistOptions,
    ) -> Self {
        let n = a.nrows();
        let nranks = ex.nranks();
        let mut monitor = MonitorCore::new(n);
        let initial = monitor.exact_view(&a, &b, ex.ranks(), &Self::view());
        let state = SolveState {
            records: vec![initial_record(initial)],
            initial,
            step: 0,
            converged_at: None,
            deadlocked: false,
            diverged: false,
            watchdog_nudges: 0,
            nudges_since_relax: 0,
            done: false,
            drift_base: ex.ranks().iter().map(|r| r.drift_repairs()).sum(),
            stale_base: ex.ranks().iter().map(|r| r.stale_discards()).sum(),
        };
        // Harvest setup-time accounting so the first solve's stats start
        // from a clean epoch (the distribute/build work is not a step).
        let _ = ex.stats.take_epoch();
        SolveSession {
            method,
            a,
            b,
            ex,
            monitor,
            opts,
            state,
            delta_b: vec![0.0; n],
            norms_sq: vec![0.0; nranks],
        }
    }

    /// Number of ranks (blocks) in the session's partition.
    pub fn nranks(&self) -> usize {
        self.ex.nranks()
    }

    /// Read access to the per-rank state (tests audit warm-start
    /// invariants through this).
    pub fn ranks(&self) -> &[R] {
        self.ex.ranks()
    }

    /// Mutable access to the per-rank state (test harnesses only;
    /// out-of-band mutation of a rank's residual requires the rank's own
    /// cache invalidation hooks).
    pub fn ranks_mut(&mut self) -> &mut [R] {
        self.ex.ranks_mut()
    }

    /// The method this session runs.
    pub fn method(&self) -> Method {
        self.method
    }

    /// Whether the current solve has reached a verdict.
    pub fn is_done(&self) -> bool {
        self.state.done
    }

    /// Begins a solve of `A x = b_new`, warm-starting from the current
    /// `x`.
    ///
    /// If `b_new` is bitwise identical to the session's current `b`, the
    /// rank states are left completely untouched — the solve is a pure
    /// continuation of the previous one. Otherwise the residuals are
    /// re-seeded by the `Δb` shift, the cross-rank estimates by an exact
    /// out-of-band norm exchange, and stale in-flight norm messages are
    /// discarded.
    pub fn begin_solve(&mut self, b_new: &[f64]) {
        assert_eq!(b_new.len(), self.a.nrows(), "rhs dimension mismatch");
        let changed = self.b != b_new;
        if changed {
            for ((d, &new), old) in self.delta_b.iter_mut().zip(b_new).zip(&mut self.b) {
                *d = new - *old;
                *old = new;
            }
            for (p, r) in self.ex.ranks_mut().iter_mut().enumerate() {
                self.norms_sq[p] = r.reseed_rhs(&self.delta_b);
            }
            for r in self.ex.ranks_mut() {
                r.reseed_estimates(&self.norms_sq);
            }
            // Only norm-estimate messages can be in flight at a step
            // boundary under the session preconditions; the exact
            // exchange above supersedes them.
            self.ex.discard_in_flight();
        }
        let initial = self
            .monitor
            .exact_view(&self.a, &self.b, self.ex.ranks(), &Self::view());
        self.state = SolveState {
            records: vec![initial_record(initial)],
            initial,
            step: 0,
            converged_at: None,
            deadlocked: false,
            diverged: false,
            watchdog_nudges: 0,
            nudges_since_relax: 0,
            // Even a below-target initial state steps at least once —
            // exactly like the driver's loop, which only checks verdicts
            // at step boundaries. Keeps session records comparable to
            // `run_method` records step for step.
            done: false,
            drift_base: self.ex.ranks().iter().map(|r| r.drift_repairs()).sum(),
            stale_base: self.ex.ranks().iter().map(|r| r.stale_discards()).sum(),
        };
    }

    /// Advances up to `quantum` supersteps of the current solve; returns
    /// `true` once the solve has reached a verdict (converged, deadlocked,
    /// diverged, or out of steps). The loop body mirrors the driver's
    /// superstep loop exactly.
    pub fn step_batch(&mut self, quantum: usize) -> bool {
        let view = Self::view();
        let nranks = self.ex.nranks();
        let mut left = quantum;
        while !self.state.done && left > 0 && self.state.step < self.opts.max_steps {
            left -= 1;
            self.state.step += 1;
            let step = self.state.step;
            let s = self.ex.step();
            let idle = s.relaxations == 0 && s.msgs == 0 && s.faults.stalled_ranks == 0;

            let (norm, verified) = measure_boundary(
                &mut self.monitor,
                &self.a,
                &self.b,
                self.ex.ranks(),
                &view,
                &self.opts,
                self.state.initial,
                step,
                idle,
                step == self.opts.max_steps,
            );
            push_record(&mut self.state.records, step, norm, &s, nranks);
            if s.relaxations > 0 {
                self.state.nudges_since_relax = 0;
            }
            if verified && self.state.converged_at.is_none() {
                if let Some(t) = self.opts.target_residual {
                    if norm <= t {
                        self.state.converged_at = Some(step);
                        self.state.done = true;
                        break;
                    }
                }
            }
            if idle {
                let frozen = norm > self.opts.target_residual.unwrap_or(0.0).max(1e-300);
                if frozen && self.state.nudges_since_relax < 2 {
                    let mut any = false;
                    for r in self.ex.ranks_mut() {
                        any |= r.nudge();
                    }
                    if any {
                        self.state.watchdog_nudges += 1;
                        self.state.nudges_since_relax += 1;
                        continue;
                    }
                }
                self.state.deadlocked = frozen;
                self.state.done = true;
                break;
            }
            if verified {
                if !norm.is_finite() {
                    self.state.diverged = true;
                    self.state.done = true;
                    break;
                }
                if let Some(cut) = self.opts.divergence_cutoff {
                    if norm > cut * self.state.initial.max(1e-300) {
                        self.state.diverged = true;
                        self.state.done = true;
                        break;
                    }
                }
            }
        }
        if self.state.step >= self.opts.max_steps {
            self.state.done = true;
        }
        self.state.done
    }

    /// Closes the current solve and returns its report. Stats cover this
    /// solve only: the executor's accumulators are harvested as an epoch
    /// ([`dsw_rma::RunStats::take_epoch`]), so back-to-back solves on one
    /// session never bleed into each other.
    pub fn finish(&mut self) -> DistReport {
        let x = self.monitor.gather_view(self.ex.ranks(), &Self::view());
        let mut stats = self.ex.stats.take_epoch();
        stats.monitor = std::mem::take(&mut self.monitor.stats);
        let drift: u64 = self.ex.ranks().iter().map(|r| r.drift_repairs()).sum();
        let stale: u64 = self.ex.ranks().iter().map(|r| r.stale_discards()).sum();
        DistReport {
            method: self.method,
            n: self.a.nrows(),
            nranks: self.ex.nranks(),
            records: std::mem::take(&mut self.state.records),
            stats,
            converged_at: self.state.converged_at,
            deadlocked: self.state.deadlocked,
            diverged: self.state.diverged,
            watchdog_nudges: self.state.watchdog_nudges,
            drift_repairs: drift - self.state.drift_base,
            stale_discards: stale - self.state.stale_base,
            x,
        }
    }

    /// One full solve: begin, run to a verdict, report.
    pub fn solve(&mut self, b: &[f64]) -> DistReport {
        self.begin_solve(b);
        while !self.step_batch(self.opts.max_steps) {}
        self.finish()
    }

    /// Batched right-hand sides: one fused sweep over `k` solves of the
    /// same matrix, amortizing the session's topology across all of them.
    /// Each solve warm-starts from its predecessor's solution.
    pub fn solve_many(&mut self, bs: &[Vec<f64>]) -> Vec<DistReport> {
        bs.iter().map(|b| self.solve(b)).collect()
    }
}

/// A method-erased [`SolveSession`] — what a serving layer holds per
/// tenant.
pub enum TenantSession {
    /// Algorithm 1.
    Bj(SolveSession<BlockJacobiRank>),
    /// Algorithm 2 (with or without explicit updates).
    Ps(SolveSession<ParallelSouthwellRank>),
    /// Algorithm 3.
    Ds(SolveSession<DistributedSouthwellRank>),
}

impl TenantSession {
    /// Distributes the system, builds the per-rank state for `method`,
    /// and wraps it in a session — the cold-start path, paid once per
    /// tenant. With `pool`, the executor runs its phases on the shared
    /// worker pool instead of spawning its own.
    ///
    /// Panics unless the options satisfy the warm-start preconditions:
    /// superstep backend, no chaos, no redundancy, no message coalescing
    /// (`solve_msg_threshold == 0`), recovery off.
    pub fn build(
        method: Method,
        a: CsrMatrix,
        b: &[f64],
        x0: &[f64],
        partition: &Partition,
        opts: &DistOptions,
        pool: Option<&SharedPool>,
    ) -> TenantSession {
        let mode = match opts.backend {
            ExecBackend::Superstep(mode) => mode,
            ExecBackend::Async(_) => {
                panic!("TenantSession requires the superstep backend (warm-start precondition)")
            }
        };
        assert!(
            !opts.chaos.is_active(),
            "TenantSession requires a reliable transport (warm-start precondition)"
        );
        assert!(
            opts.redundancy.is_none(),
            "TenantSession does not support coded redundancy"
        );
        assert_eq!(
            opts.ds_config.solve_msg_threshold, 0.0,
            "TenantSession requires unbuffered solve messages (warm-start precondition)"
        );
        assert!(
            !opts.ds_config.recovery.is_active(),
            "TenantSession requires the recovery layer off (discarding in-flight \
             messages would violate sequencing)"
        );

        let locals = distribute(&a, b, x0, partition).expect("valid distribution");
        let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
        macro_rules! session {
            ($ranks:expr) => {{
                let ranks = $ranks;
                let mut ex = match pool {
                    Some(pool) => {
                        Executor::with_shared_pool(ranks, opts.cost_model, opts.chaos, pool)
                    }
                    None => Executor::with_chaos(ranks, opts.cost_model, mode, opts.chaos),
                };
                ex.set_close_mode(opts.close_mode);
                SolveSession::new(method, a, b.to_vec(), ex, *opts)
            }};
        }
        match method {
            Method::BlockJacobi => TenantSession::Bj(session!(BlockJacobiRank::build_with_solver(
                locals,
                opts.ds_config.local_solver
            ))),
            Method::ParallelSouthwell => TenantSession::Ps(session!(
                ParallelSouthwellRank::build_cfg(locals, &norms, true, opts.ds_config.local_solver)
            )),
            Method::ParallelSouthwellPiggybackOnly => {
                TenantSession::Ps(session!(ParallelSouthwellRank::build_cfg(
                    locals,
                    &norms,
                    false,
                    opts.ds_config.local_solver
                )))
            }
            Method::DistributedSouthwell => {
                let r0 = a.residual(b, x0);
                TenantSession::Ds(session!(DistributedSouthwellRank::build_with(
                    locals,
                    &norms,
                    &r0,
                    opts.ds_config
                )))
            }
        }
    }

    /// See [`SolveSession::begin_solve`].
    pub fn begin_solve(&mut self, b: &[f64]) {
        match self {
            TenantSession::Bj(s) => s.begin_solve(b),
            TenantSession::Ps(s) => s.begin_solve(b),
            TenantSession::Ds(s) => s.begin_solve(b),
        }
    }

    /// See [`SolveSession::step_batch`].
    pub fn step_batch(&mut self, quantum: usize) -> bool {
        match self {
            TenantSession::Bj(s) => s.step_batch(quantum),
            TenantSession::Ps(s) => s.step_batch(quantum),
            TenantSession::Ds(s) => s.step_batch(quantum),
        }
    }

    /// See [`SolveSession::is_done`].
    pub fn is_done(&self) -> bool {
        match self {
            TenantSession::Bj(s) => s.is_done(),
            TenantSession::Ps(s) => s.is_done(),
            TenantSession::Ds(s) => s.is_done(),
        }
    }

    /// See [`SolveSession::finish`].
    pub fn finish(&mut self) -> DistReport {
        match self {
            TenantSession::Bj(s) => s.finish(),
            TenantSession::Ps(s) => s.finish(),
            TenantSession::Ds(s) => s.finish(),
        }
    }

    /// See [`SolveSession::solve`].
    pub fn solve(&mut self, b: &[f64]) -> DistReport {
        match self {
            TenantSession::Bj(s) => s.solve(b),
            TenantSession::Ps(s) => s.solve(b),
            TenantSession::Ds(s) => s.solve(b),
        }
    }

    /// See [`SolveSession::solve_many`].
    pub fn solve_many(&mut self, bs: &[Vec<f64>]) -> Vec<DistReport> {
        match self {
            TenantSession::Bj(s) => s.solve_many(bs),
            TenantSession::Ps(s) => s.solve_many(bs),
            TenantSession::Ds(s) => s.solve_many(bs),
        }
    }

    /// See [`SolveSession::nranks`].
    pub fn nranks(&self) -> usize {
        match self {
            TenantSession::Bj(s) => s.nranks(),
            TenantSession::Ps(s) => s.nranks(),
            TenantSession::Ds(s) => s.nranks(),
        }
    }

    /// See [`SolveSession::method`].
    pub fn method(&self) -> Method {
        match self {
            TenantSession::Bj(s) => s.method(),
            TenantSession::Ps(s) => s.method(),
            TenantSession::Ds(s) => s.method(),
        }
    }
}
