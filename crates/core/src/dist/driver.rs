//! Run loop for the distributed solvers: steps the executor, tracks the
//! true global residual out-of-band (the measurement hook, as in the
//! paper's harness), and detects convergence, divergence, and deadlock.

use super::block_jacobi::BlockJacobiRank;
use super::distributed_southwell::{DistributedSouthwellRank, DsConfig};
use super::layout::{distribute, LocalSystem};
use super::parallel_southwell::ParallelSouthwellRank;
use super::recovery::Recoverable;
use crate::history::interpolate_crossing;
use dsw_partition::{Partition, Redundancy, ReplicaMap};
use dsw_rma::{
    AsyncExecutor, AsyncOptions, ChaosConfig, CloseMode, CostModel, ExecMode, Executor,
    MonitorStats, RankAlgorithm, RedundantHost, RunStats,
};
use dsw_sparse::CsrMatrix;
use std::time::Instant;

/// Which distributed method to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Algorithm 1.
    BlockJacobi,
    /// Algorithm 2 (with explicit residual updates).
    ParallelSouthwell,
    /// Algorithm 2 without explicit updates — the deadlock-prone ICCS'16
    /// scheme, kept as a foil.
    ParallelSouthwellPiggybackOnly,
    /// Algorithm 3 — the paper's contribution.
    DistributedSouthwell,
}

impl Method {
    /// Short display name matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Method::BlockJacobi => "BJ",
            Method::ParallelSouthwell => "PS",
            Method::ParallelSouthwellPiggybackOnly => "PS-iccs16",
            Method::DistributedSouthwell => "DS",
        }
    }
}

/// How the driver monitors global convergence between parallel steps.
///
/// The paper's whole point (§3) is that residual norms are tracked
/// *locally*, without global reductions — so a driver that gathers the
/// solution and recomputes `‖b − Ax‖₂` after every superstep spends its
/// wall-clock on exactly the global operation the method eliminates.
/// [`MonitorMode::Maintained`] instead sums the per-rank maintained norms
/// (`O(P)` scalars, no gather, no SpMV) and falls back to the exact
/// recompute only where correctness demands it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorMode {
    /// Recompute the exact `‖b − Ax‖₂` at every step boundary (gather +
    /// SpMV — the original measurement hook; `O(n + nnz)` per step).
    Exact,
    /// Drive the step records from the `O(P)` maintained-norm sum. The
    /// exact norm is recomputed only
    ///
    /// * every `verify_every` steps (`0` disables the periodic check),
    /// * before any convergence, divergence, or deadlock verdict is
    ///   declared (**verified convergence** — under chaos drops or
    ///   threshold coalescing the maintained norms can drift, so a claim
    ///   from them alone is never trusted), and
    /// * at the final step, so the last record is always exact.
    ///
    /// Observed drift between the two is recorded in
    /// [`MonitorStats::max_rel_drift`]. With a reliable transport and
    /// coalescing off the maintained norms are exact at every boundary
    /// (up to round-off) and runs behave identically to
    /// [`MonitorMode::Exact`].
    Maintained {
        /// Periodic exact-verification cadence in steps (`0` = only on
        /// verdicts and at the end of the run).
        verify_every: usize,
    },
}

impl Default for MonitorMode {
    /// Maintained monitoring with a 10-step verification cadence: at the
    /// paper's 50-step horizon this bounds undetected drift to 10 steps
    /// while keeping 80–98% of the per-step gather + SpMV cost off the
    /// driver.
    fn default() -> Self {
        MonitorMode::Maintained { verify_every: 10 }
    }
}

/// Which execution substrate drives the ranks.
///
/// Both backends run the same [`RankAlgorithm`] programs and the same
/// driver stack (verified monitoring, watchdog, recovery accounting) —
/// what changes is *when* phases run and puts land:
///
/// * [`ExecBackend::Superstep`] is the lock-step [`Executor`]: every rank
///   runs every phase each parallel step, puts become visible at the next
///   epoch close. Records are per parallel step.
/// * [`ExecBackend::Async`] is the [`AsyncExecutor`]: per-rank phase
///   clocks, a pseudo-random subset advances each scheduler tick (bounded
///   by `max_lag`, optionally skewed by the straggler model), and puts
///   land at the target's next phase boundary. Records are per tick, and
///   `max_steps` counts *logical* full steps — the run ends when the
///   slowest rank has completed that many.
#[derive(Debug, Clone, Copy)]
pub enum ExecBackend {
    /// Lock-step supersteps, sequential or on the persistent worker pool.
    Superstep(ExecMode),
    /// Independent per-rank phase clocks under a probabilistic scheduler.
    Async(AsyncOptions),
}

impl Default for ExecBackend {
    fn default() -> Self {
        ExecBackend::Superstep(ExecMode::Sequential)
    }
}

impl From<ExecMode> for ExecBackend {
    fn from(mode: ExecMode) -> Self {
        ExecBackend::Superstep(mode)
    }
}

/// Options for a distributed run.
#[derive(Debug, Clone, Copy)]
pub struct DistOptions {
    /// Maximum parallel steps (the paper uses 50). On the async backend
    /// these are logical full steps of the slowest rank.
    pub max_steps: usize,
    /// Stop once the global residual norm reaches this value.
    pub target_residual: Option<f64>,
    /// The α–β–γ time model.
    pub cost_model: CostModel,
    /// Execution substrate: lock-step supersteps (sequential or threaded,
    /// identical results) or the asynchronous per-rank scheduler.
    pub backend: ExecBackend,
    /// Where epoch closes run (serial reference or the worker pool; all
    /// solvers declare their neighbor sets, so the executor routes
    /// target-major either way — identical results). Superstep backend
    /// only; the async scheduler has no epoch close.
    pub close_mode: CloseMode,
    /// Configuration for Distributed Southwell (ablations). Its
    /// `local_solver` field is also honored by Block Jacobi and Parallel
    /// Southwell.
    pub ds_config: DsConfig,
    /// Stop once the residual exceeds this multiple of the initial norm
    /// (`None` runs through divergence, as the paper's 50-step sweeps do).
    pub divergence_cutoff: Option<f64>,
    /// Fault injection at the substrate's epoch boundaries (drops,
    /// duplicates, delays, stalls). [`ChaosConfig::none`] — the default —
    /// is a perfectly reliable transport.
    pub chaos: ChaosConfig,
    /// How the global residual norm is obtained between steps
    /// (incremental by default; see [`MonitorMode`]).
    pub monitor: MonitorMode,
    /// Redundancy-coded block placement: `Some(r)` hosts every block on
    /// `r` ranks (replica sets derived deterministically from the
    /// placement seed; see [`dsw_partition::ReplicaMap`]), routes every
    /// logical message to all hosts with first-arrival-wins
    /// reconciliation, and treats a replica set as one logical owner in
    /// the solver protocol. `None` (default) and `Some(r = 1)` are the
    /// uncoded identity placement (`r = 1` still validates the factor).
    /// Extra replica traffic is accounted under
    /// [`dsw_rma::CommClass::Redundancy`].
    pub redundancy: Option<Redundancy>,
}

impl Default for DistOptions {
    fn default() -> Self {
        DistOptions {
            max_steps: 50,
            target_residual: Some(0.1),
            cost_model: CostModel::default(),
            backend: ExecBackend::default(),
            close_mode: CloseMode::default(),
            ds_config: DsConfig::default(),
            divergence_cutoff: Some(1e12),
            chaos: ChaosConfig::none(),
            monitor: MonitorMode::default(),
            redundancy: None,
        }
    }
}

/// The `O(P)` maintained view of the global residual norm.
#[derive(Debug, Clone, Copy)]
pub struct MaintainedNorm {
    /// `√Σ_p ‖r_p‖²` over the per-rank maintained residuals.
    pub norm: f64,
    /// `√Σ_p` undelivered-delta² — the root-sum-square of every parked
    /// and in-flight ghost delta. On a reliable link the true norm
    /// differs from `norm` by at most the norm of the summed deltas;
    /// `slack` equals that when deltas hit disjoint rows and understates
    /// it by at most a small overlap factor otherwise, so the monitor
    /// uses it to *widen* its verify trigger, never as a proof — every
    /// verdict is confirmed by an exact recompute regardless.
    pub slack: f64,
}

/// Out-of-band residual measurement with reusable scratch, lifetime-free.
///
/// Owns the gather and SpMV buffers (allocated once per run, not per
/// step) and the [`MonitorStats`] counters, but *not* the system: every
/// measurement takes `(a, b)` as arguments. This lets a persistent
/// [`SolveSession`](crate::dist::session::SolveSession) — which owns its
/// matrix and right-hand side — hold monitor scratch across solves
/// without a self-referential borrow. [`Monitor`] wraps this with
/// borrowed `(a, b)` for one-shot use.
pub struct MonitorCore {
    /// Gather scratch: every owned row is overwritten on each gather (the
    /// parts partition `0..n`), so no per-use zeroing is needed.
    x: Vec<f64>,
    /// SpMV output scratch.
    ax: Vec<f64>,
    /// Cost and drift observables (copied into `RunStats` by the driver).
    pub stats: MonitorStats,
}

impl MonitorCore {
    /// Allocates the scratch for `‖b − Ax‖` measurements on an
    /// `n`-dimensional system.
    pub fn new(n: usize) -> Self {
        MonitorCore {
            x: vec![0.0; n],
            ax: vec![0.0; n],
            stats: MonitorStats::default(),
        }
    }

    /// The `O(P)` maintained global norm: a sum of per-rank scalars, no
    /// gather, no SpMV, independent of `n` and `nnz`. `None` if the
    /// algorithm does not maintain local norms
    /// ([`RankAlgorithm::maintained_norm_sq`]). Takes the rank slice, not
    /// an executor, so the superstep and async backends share it.
    pub fn maintained<R: RankAlgorithm>(&mut self, ranks: &[R]) -> Option<MaintainedNorm> {
        let t0 = Instant::now();
        let mut norm_sq = 0.0;
        let mut slack_sq = 0.0;
        for r in ranks {
            norm_sq += r.maintained_norm_sq()?;
            slack_sq += r.undelivered_delta_sq();
        }
        self.stats.evals += 1;
        self.stats.eval_ns += t0.elapsed().as_nanos() as u64;
        Some(MaintainedNorm {
            norm: norm_sq.sqrt(),
            slack: slack_sq.sqrt(),
        })
    }

    /// The exact `‖b − Ax‖₂`: gather into the reusable scratch, one SpMV,
    /// one norm — `O(n + nnz)`.
    pub fn exact<R: RankAlgorithm>(
        &mut self,
        a: &CsrMatrix,
        b: &[f64],
        ranks: &[R],
        local_of: &impl Fn(&R) -> &LocalSystem,
    ) -> f64 {
        let t0 = Instant::now();
        self.gather_into_scratch(ranks, local_of);
        a.spmv(&self.x, &mut self.ax);
        let norm_sq: f64 = b
            .iter()
            .zip(&self.ax)
            .map(|(&b, &ax)| {
                let d = b - ax;
                d * d
            })
            .sum();
        self.stats.verifications += 1;
        self.stats.verify_ns += t0.elapsed().as_nanos() as u64;
        norm_sq.sqrt()
    }

    /// Gathers the current global solution (reuses the scratch buffer,
    /// clones out once — for the end-of-run report).
    pub fn gather<R: RankAlgorithm>(
        &mut self,
        ranks: &[R],
        local_of: &impl Fn(&R) -> &LocalSystem,
    ) -> Vec<f64> {
        self.gather_into_scratch(ranks, local_of);
        self.x.clone()
    }

    fn gather_into_scratch<R: RankAlgorithm>(
        &mut self,
        ranks: &[R],
        local_of: &impl Fn(&R) -> &LocalSystem,
    ) {
        for r in ranks {
            let ls = local_of(r);
            for (li, &g) in ls.rows.iter().enumerate() {
                self.x[g] = ls.x[li];
            }
        }
    }

    /// View-based [`MonitorCore::maintained`]: the drive loops read global
    /// state through a [`NormView`], so the uncoded run (one block per
    /// rank) and a redundancy-coded run (one representative per replica
    /// set) share one loop body and one accounting path.
    pub(crate) fn maintained_view<R: RankAlgorithm>(
        &mut self,
        ranks: &[R],
        view: &impl NormView<R>,
    ) -> Option<MaintainedNorm> {
        let t0 = Instant::now();
        let (norm_sq, slack_sq) = view.maintained_sums(ranks)?;
        self.stats.evals += 1;
        self.stats.eval_ns += t0.elapsed().as_nanos() as u64;
        Some(MaintainedNorm {
            norm: norm_sq.sqrt(),
            slack: slack_sq.sqrt(),
        })
    }

    /// View-based [`MonitorCore::exact`].
    pub(crate) fn exact_view<R: RankAlgorithm>(
        &mut self,
        a: &CsrMatrix,
        b: &[f64],
        ranks: &[R],
        view: &impl NormView<R>,
    ) -> f64 {
        let t0 = Instant::now();
        view.scatter_into(ranks, &mut self.x);
        a.spmv(&self.x, &mut self.ax);
        let norm_sq: f64 = b
            .iter()
            .zip(&self.ax)
            .map(|(&b, &ax)| {
                let d = b - ax;
                d * d
            })
            .sum();
        self.stats.verifications += 1;
        self.stats.verify_ns += t0.elapsed().as_nanos() as u64;
        norm_sq.sqrt()
    }

    /// View-based [`MonitorCore::gather`].
    pub(crate) fn gather_view<R: RankAlgorithm>(
        &mut self,
        ranks: &[R],
        view: &impl NormView<R>,
    ) -> Vec<f64> {
        view.scatter_into(ranks, &mut self.x);
        self.x.clone()
    }
}

/// [`MonitorCore`] with the system borrowed in: the one-shot driver entry
/// points and external callers (benches, property tests) measure a fixed
/// `(a, b)` for the run, so they carry the pair here instead of threading
/// it through every call.
pub struct Monitor<'a> {
    a: &'a CsrMatrix,
    b: &'a [f64],
    core: MonitorCore,
}

impl<'a> Monitor<'a> {
    /// Allocates the scratch for one run of `‖b − Ax‖` measurements.
    pub fn new(a: &'a CsrMatrix, b: &'a [f64]) -> Self {
        Monitor {
            a,
            b,
            core: MonitorCore::new(a.nrows()),
        }
    }

    /// See [`MonitorCore::maintained`].
    pub fn maintained<R: RankAlgorithm>(&mut self, ranks: &[R]) -> Option<MaintainedNorm> {
        self.core.maintained(ranks)
    }

    /// See [`MonitorCore::exact`].
    pub fn exact<R: RankAlgorithm>(
        &mut self,
        ranks: &[R],
        local_of: &impl Fn(&R) -> &LocalSystem,
    ) -> f64 {
        self.core.exact(self.a, self.b, ranks, local_of)
    }

    /// See [`MonitorCore::gather`].
    pub fn gather<R: RankAlgorithm>(
        &mut self,
        ranks: &[R],
        local_of: &impl Fn(&R) -> &LocalSystem,
    ) -> Vec<f64> {
        self.core.gather(ranks, local_of)
    }

    /// Cost and drift observables accumulated so far.
    pub fn stats(&self) -> &MonitorStats {
        &self.core.stats
    }
}

/// How a drive loop reads global solver state out of a rank set: each
/// logical block contributes exactly once, whatever the physical hosting.
///
/// The uncoded [`DirectView`] is the identity (rank = block). The coded
/// [`ReplicaView`] reads each block from its freshest replica and declares
/// the replica sets as scheduler lag groups.
pub(crate) trait NormView<R: RankAlgorithm> {
    /// Writes every global row's current value into `x` (each logical
    /// block exactly once).
    fn scatter_into(&self, ranks: &[R], x: &mut [f64]);

    /// `(Σ norm², Σ slack²)` over logical blocks — the inputs of
    /// [`MaintainedNorm`] — or `None` if the algorithm maintains no norms.
    fn maintained_sums(&self, ranks: &[R]) -> Option<(f64, f64)>;

    /// Lag groups for the asynchronous scheduler: ranks hosting a common
    /// block progress as one logical owner, so a replica-covered straggler
    /// stops gating the lag bound. `None` keeps per-rank gating.
    fn lag_groups(&self) -> Option<Vec<Vec<u32>>> {
        None
    }
}

/// The uncoded identity view: one block per rank, read via the solver's
/// `local_of` projection.
pub(crate) struct DirectView<F>(pub(crate) F);

impl<R, F> NormView<R> for DirectView<F>
where
    R: RankAlgorithm,
    F: Fn(&R) -> &LocalSystem,
{
    fn scatter_into(&self, ranks: &[R], x: &mut [f64]) {
        for r in ranks {
            let ls = (self.0)(r);
            for (li, &g) in ls.rows.iter().enumerate() {
                x[g] = ls.x[li];
            }
        }
    }

    fn maintained_sums(&self, ranks: &[R]) -> Option<(f64, f64)> {
        let mut norm_sq = 0.0;
        let mut slack_sq = 0.0;
        for r in ranks {
            norm_sq += r.maintained_norm_sq()?;
            slack_sq += r.undelivered_delta_sq();
        }
        Some((norm_sq, slack_sq))
    }
}

/// The coded view over [`RedundantHost`] ranks: block `b` is read from
/// its *representative* — the furthest-along host (first on ties, so
/// lock-step runs always read the primary). Every replica holds a valid
/// estimate state; the representative is simply the freshest one, which is
/// exactly the first-arrival semantics the message plane uses.
struct ReplicaView<F> {
    /// Hosts per logical block, primary first.
    replicas: Vec<Vec<usize>>,
    /// Projects the inner solver to its local system.
    local_of: F,
}

impl<F> ReplicaView<F> {
    fn representative<A: RankAlgorithm>(&self, ranks: &[RedundantHost<A>], b: usize) -> usize {
        let mut best = self.replicas[b][0];
        for &h in &self.replicas[b][1..] {
            if ranks[h].clock() > ranks[best].clock() {
                best = h;
            }
        }
        best
    }
}

impl<A, F> NormView<RedundantHost<A>> for ReplicaView<F>
where
    A: RankAlgorithm,
    F: Fn(&A) -> &LocalSystem,
{
    fn scatter_into(&self, ranks: &[RedundantHost<A>], x: &mut [f64]) {
        for b in 0..self.replicas.len() {
            let h = self.representative(ranks, b);
            let ls = (self.local_of)(ranks[h].solver_for(b).expect("host carries its block"));
            for (li, &g) in ls.rows.iter().enumerate() {
                x[g] = ls.x[li];
            }
        }
    }

    fn maintained_sums(&self, ranks: &[RedundantHost<A>]) -> Option<(f64, f64)> {
        let mut norm_sq = 0.0;
        let mut slack_sq = 0.0;
        for b in 0..self.replicas.len() {
            let h = self.representative(ranks, b);
            let sv = ranks[h].solver_for(b).expect("host carries its block");
            norm_sq += sv.maintained_norm_sq()?;
            slack_sq += sv.undelivered_delta_sq();
        }
        Some((norm_sq, slack_sq))
    }

    fn lag_groups(&self) -> Option<Vec<Vec<u32>>> {
        Some(
            self.replicas
                .iter()
                .map(|hs| hs.iter().map(|&h| h as u32).collect())
                .collect(),
        )
    }
}

/// One row of the per-step record (all counters cumulative).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepRecord {
    /// Parallel step index (0 = initial state).
    pub step: usize,
    /// True global residual norm ‖b − Ax‖₂ at this boundary.
    pub residual_norm: f64,
    /// Cumulative row relaxations.
    pub relaxations: u64,
    /// Cumulative messages (all classes).
    pub msgs: u64,
    /// Cumulative solve-class messages.
    pub msgs_solve: u64,
    /// Cumulative explicit-residual messages.
    pub msgs_residual: u64,
    /// Cumulative recovery messages (audits, watchdog rebroadcasts).
    pub msgs_recovery: u64,
    /// Cumulative redundancy messages (replica fan-out copies of coded
    /// placements; zero on uncoded runs).
    pub msgs_redundancy: u64,
    /// Cumulative modelled payload bytes (all classes).
    pub bytes: u64,
    /// Cumulative solve-class payload bytes.
    pub bytes_solve: u64,
    /// Cumulative explicit-residual payload bytes.
    pub bytes_residual: u64,
    /// Cumulative recovery payload bytes.
    pub bytes_recovery: u64,
    /// Cumulative redundancy payload bytes (replica fan-out copies).
    pub bytes_redundancy: u64,
    /// Cumulative modelled wall-clock seconds.
    pub time: f64,
    /// Ranks that relaxed in this step.
    pub active_ranks: u64,
    /// Cumulative *measured* compute wall-time across all ranks, ns
    /// (observability only — the modelled clock is `time`).
    pub compute_ns: u64,
    /// Load imbalance of this step: slowest rank's measured compute time
    /// over the mean (1.0 = perfectly balanced, 0 steps → 1.0).
    pub imbalance: f64,
}

/// The full report of one distributed run.
#[derive(Debug, Clone)]
pub struct DistReport {
    /// Which method ran.
    pub method: Method,
    /// Problem size (rows).
    pub n: usize,
    /// Number of ranks.
    pub nranks: usize,
    /// Per-step records, starting with the initial state at step 0.
    pub records: Vec<StepRecord>,
    /// Raw substrate statistics.
    pub stats: RunStats,
    /// Step at which the target was first met.
    pub converged_at: Option<usize>,
    /// The run froze: a step moved no data and relaxed nothing, so no
    /// future step can act (deadlock). With the freeze watchdog enabled
    /// this is only set after nudging failed to restore progress.
    pub deadlocked: bool,
    /// The residual exceeded 10¹² × initial (divergence cut-off).
    pub diverged: bool,
    /// Times the freeze watchdog nudged the ranks after an idle step.
    pub watchdog_nudges: u64,
    /// Boundary residual rows overwritten by the invariant audit, summed
    /// over ranks.
    pub drift_repairs: u64,
    /// Messages discarded as duplicate / stale / subsumed, summed over
    /// ranks.
    pub stale_discards: u64,
    /// Final gathered solution.
    pub x: Vec<f64>,
}

impl DistReport {
    /// The last cumulative record. Infallible: every report carries the
    /// step-0 baseline record from construction.
    fn last_record(&self) -> &StepRecord {
        self.records
            .last()
            .expect("a report holds at least the step-0 baseline record")
    }

    /// Final residual norm.
    pub fn final_residual(&self) -> f64 {
        self.last_record().residual_norm
    }

    /// Convergence-monitor accounting: how many cheap maintained
    /// evaluations ran, how many exact verifications, and the worst
    /// relative drift observed between the two.
    pub fn monitor_stats(&self) -> &MonitorStats {
        &self.stats.monitor
    }

    /// The paper's communication cost: total messages / ranks.
    pub fn comm_cost(&self) -> f64 {
        self.last_record().msgs as f64 / self.nranks as f64
    }

    /// Modelled payload volume per rank, bytes (all classes).
    pub fn byte_cost(&self) -> f64 {
        self.last_record().bytes as f64 / self.nranks as f64
    }

    /// Solve-class payload volume per rank, bytes.
    pub fn byte_cost_solve(&self) -> f64 {
        self.last_record().bytes_solve as f64 / self.nranks as f64
    }

    /// Explicit-residual payload volume per rank, bytes.
    pub fn byte_cost_residual(&self) -> f64 {
        self.last_record().bytes_residual as f64 / self.nranks as f64
    }

    /// Recovery payload volume per rank, bytes.
    pub fn byte_cost_recovery(&self) -> f64 {
        self.last_record().bytes_recovery as f64 / self.nranks as f64
    }

    /// Redundancy payload volume per rank, bytes (replica fan-out copies;
    /// zero on uncoded runs).
    pub fn byte_cost_redundancy(&self) -> f64 {
        self.last_record().bytes_redundancy as f64 / self.nranks as f64
    }

    /// Redundancy messages per rank (the coded placement's overhead in the
    /// paper's communication metric).
    pub fn comm_cost_redundancy(&self) -> f64 {
        self.last_record().msgs_redundancy as f64 / self.nranks as f64
    }

    /// Mean fraction of active ranks per executed step.
    pub fn active_fraction(&self) -> f64 {
        let steps = self.records.len() - 1;
        if steps == 0 {
            return 0.0;
        }
        self.records[1..]
            .iter()
            .map(|r| r.active_ranks as f64)
            .sum::<f64>()
            / (steps as f64 * self.nranks as f64)
    }

    fn crossing(&self, target: f64, f: impl Fn(&StepRecord) -> f64) -> Option<f64> {
        interpolate_crossing(
            self.records.iter().map(|rec| (f(rec), rec.residual_norm)),
            target,
        )
    }

    /// Parallel steps to reach `target` (log-interpolated, Table 2 rule).
    pub fn steps_to_reach(&self, target: f64) -> Option<f64> {
        self.crossing(target, |r| r.step as f64)
    }

    /// Modelled wall-clock seconds to reach `target`.
    pub fn time_to_reach(&self, target: f64) -> Option<f64> {
        self.crossing(target, |r| r.time)
    }

    /// Communication cost (msgs/rank) expended to reach `target`.
    pub fn comm_to_reach(&self, target: f64) -> Option<f64> {
        self.crossing(target, |r| r.msgs as f64 / self.nranks as f64)
    }

    /// Relaxations per unknown expended to reach `target`.
    pub fn relaxations_to_reach(&self, target: f64) -> Option<f64> {
        self.crossing(target, |r| r.relaxations as f64 / self.n as f64)
    }

    /// Mean per-step load imbalance (slowest rank / mean rank measured
    /// compute time; 1.0 = balanced). Reflects the paper's regime where
    /// most ranks idle while the winning ranks relax.
    pub fn mean_imbalance(&self) -> f64 {
        self.stats.mean_imbalance()
    }

    /// Executor worker utilization: busy time / (dispatch span × workers).
    /// 0.0 when timing was not measured.
    pub fn worker_utilization(&self) -> f64 {
        self.stats.worker_utilization()
    }
}

/// Distributes `(a, b, x0)` over `partition` and runs `method`.
///
/// The global residual is evaluated out-of-band after every parallel step —
/// the same measurement the paper's harness performs — and is *not*
/// counted as solver communication.
pub fn run_method(
    method: Method,
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    partition: &Partition,
    opts: &DistOptions,
) -> DistReport {
    if let Some(red) = opts.redundancy {
        let map = ReplicaMap::try_new(partition.nparts(), red)
            .unwrap_or_else(|e| panic!("DistOptions::redundancy: {e}"));
        if map.r() > 1 {
            return run_method_redundant(method, a, b, x0, partition, opts, &map);
        }
        // `r = 1` is the identity placement: run the uncoded path. The
        // wrapper at r = 1 would be message-for-message identical except
        // that its slot reconciliation absorbs chaos *duplicates* before
        // the solver's own sequencing sees them — so the uncoded path is
        // the one that keeps `Some(Redundancy::new(1))` bit-identical to
        // `None` under every chaos mix.
    }
    let locals = distribute(a, b, x0, partition).expect("valid distribution");
    let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
    match method {
        Method::BlockJacobi => {
            let ranks = BlockJacobiRank::build_with_solver(locals, opts.ds_config.local_solver);
            drive(method, ranks, |r| &r.ls, a, b, opts)
        }
        Method::ParallelSouthwell => {
            let ranks =
                ParallelSouthwellRank::build_cfg(locals, &norms, true, opts.ds_config.local_solver);
            drive(method, ranks, |r| &r.ls, a, b, opts)
        }
        Method::ParallelSouthwellPiggybackOnly => {
            let ranks = ParallelSouthwellRank::build_cfg(
                locals,
                &norms,
                false,
                opts.ds_config.local_solver,
            );
            drive(method, ranks, |r| &r.ls, a, b, opts)
        }
        Method::DistributedSouthwell => {
            let r0 = a.residual(b, x0);
            let ranks = DistributedSouthwellRank::build_with(locals, &norms, &r0, opts.ds_config);
            drive(method, ranks, |r| &r.ls, a, b, opts)
        }
    }
}

/// The redundancy-coded run: builds `r` bit-identical solver sets, deals
/// each block's instances out to its replica hosts, and drives the
/// [`RedundantHost`] wrappers through the standard loops with a
/// [`ReplicaView`].
fn run_method_redundant(
    method: Method,
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    partition: &Partition,
    opts: &DistOptions,
    map: &ReplicaMap,
) -> DistReport {
    match method {
        Method::BlockJacobi => drive_redundant(
            method,
            a,
            b,
            opts,
            map,
            |locals| BlockJacobiRank::build_with_solver(locals, opts.ds_config.local_solver),
            |r: &BlockJacobiRank| &r.ls,
            || distribute(a, b, x0, partition).expect("valid distribution"),
        ),
        Method::ParallelSouthwell | Method::ParallelSouthwellPiggybackOnly => {
            let explicit = method == Method::ParallelSouthwell;
            drive_redundant(
                method,
                a,
                b,
                opts,
                map,
                |locals| {
                    let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
                    ParallelSouthwellRank::build_cfg(
                        locals,
                        &norms,
                        explicit,
                        opts.ds_config.local_solver,
                    )
                },
                |r: &ParallelSouthwellRank| &r.ls,
                || distribute(a, b, x0, partition).expect("valid distribution"),
            )
        }
        Method::DistributedSouthwell => {
            let r0 = a.residual(b, x0);
            drive_redundant(
                method,
                a,
                b,
                opts,
                map,
                |locals| {
                    let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
                    DistributedSouthwellRank::build_with(locals, &norms, &r0, opts.ds_config)
                },
                |r: &DistributedSouthwellRank| &r.ls,
                || distribute(a, b, x0, partition).expect("valid distribution"),
            )
        }
    }
}

/// Assembles and drives the coded rank set for one solver type.
///
/// Every replica of a block must start from identical state, so `r` full
/// solver sets are built from `r` identical distributions; block `b`'s
/// `j`-th replica instance goes to host `map.hosts_of(b)[j]`. The DS
/// deadlock-avoidance protocol needs no changes: the wrapper translates
/// physical ↔ logical addresses, so Γ̃-set negotiation and recovery audits
/// run purely in logical block space and see a replica set as one owner.
#[allow(clippy::too_many_arguments)]
fn drive_redundant<R, F, G, D>(
    method: Method,
    a: &CsrMatrix,
    b: &[f64],
    opts: &DistOptions,
    map: &ReplicaMap,
    build: F,
    local_of: G,
    distribute_once: D,
) -> DistReport
where
    R: RankAlgorithm + Recoverable,
    RedundantHost<R>: Recoverable,
    F: Fn(Vec<LocalSystem>) -> Vec<R>,
    G: Fn(&R) -> &LocalSystem,
    D: Fn() -> Vec<LocalSystem>,
{
    let nblocks = map.nblocks();
    let mut sets: Vec<Vec<Option<R>>> = (0..map.r())
        .map(|_| build(distribute_once()).into_iter().map(Some).collect())
        .collect();
    let mut per_host: Vec<Vec<(usize, R)>> = (0..nblocks).map(|_| Vec::new()).collect();
    for (b_id, hosts) in (0..nblocks).map(|b| (b, map.hosts_of(b))) {
        for (j, &h) in hosts.iter().enumerate() {
            per_host[h].push((
                b_id,
                sets[j][b_id].take().expect("each instance dealt once"),
            ));
        }
    }
    let replicas_u32: Vec<Vec<u32>> = map
        .replicas()
        .iter()
        .map(|hs| hs.iter().map(|&h| h as u32).collect())
        .collect();
    let hosts: Vec<RedundantHost<R>> = per_host
        .into_iter()
        .enumerate()
        .map(|(p, solvers)| RedundantHost::new(p, replicas_u32.clone(), solvers))
        .collect();
    let view = ReplicaView {
        replicas: map.replicas().to_vec(),
        local_of,
    };
    drive_view(method, hosts, &view, a, b, opts)
}

/// The generic run loop over any solver rank type, on either substrate
/// ([`DistOptions::backend`]).
///
/// When the run hits a globally idle step (zero relaxations, zero
/// messages, residual above target) while no rank is stalled, the freeze
/// watchdog first [`Recoverable::nudge`]s every rank — a nudged solver
/// forces an explicit residual-norm rebroadcast next step, which restores
/// exact norms and un-freezes estimate-induced deadlocks. Only when no
/// rank reacts, or repeated nudges fail to produce a relaxation, is the
/// run declared deadlocked.
pub fn drive<R>(
    method: Method,
    ranks: Vec<R>,
    local_of: impl Fn(&R) -> &LocalSystem,
    a: &CsrMatrix,
    b: &[f64],
    opts: &DistOptions,
) -> DistReport
where
    R: RankAlgorithm + Recoverable,
{
    drive_view(method, ranks, &DirectView(local_of), a, b, opts)
}

/// The backend dispatch over an arbitrary state view (uncoded or coded).
fn drive_view<R, V>(
    method: Method,
    ranks: Vec<R>,
    view: &V,
    a: &CsrMatrix,
    b: &[f64],
    opts: &DistOptions,
) -> DistReport
where
    R: RankAlgorithm + Recoverable,
    V: NormView<R>,
{
    match opts.backend {
        ExecBackend::Superstep(mode) => drive_superstep(method, ranks, view, a, b, opts, mode),
        ExecBackend::Async(aopts) => drive_async(method, ranks, view, a, b, opts, aopts),
    }
}

/// The step-0 record: the exactly measured initial state, zero counters.
pub(crate) fn initial_record(initial: f64) -> StepRecord {
    StepRecord {
        step: 0,
        residual_norm: initial,
        relaxations: 0,
        msgs: 0,
        msgs_solve: 0,
        msgs_residual: 0,
        msgs_recovery: 0,
        msgs_redundancy: 0,
        bytes: 0,
        bytes_solve: 0,
        bytes_residual: 0,
        bytes_recovery: 0,
        bytes_redundancy: 0,
        time: 0.0,
        active_ranks: 0,
        compute_ns: 0,
        imbalance: 1.0,
    }
}

/// Appends the cumulative record for one boundary (a parallel step on the
/// superstep backend, a scheduler tick on the async one).
pub(crate) fn push_record(
    records: &mut Vec<StepRecord>,
    step: usize,
    norm: f64,
    s: &dsw_rma::StepStats,
    nranks: usize,
) {
    let prev = *records
        .last()
        .expect("push_record runs after the step-0 record is seeded");
    records.push(StepRecord {
        step,
        residual_norm: norm,
        relaxations: prev.relaxations + s.relaxations,
        msgs: prev.msgs + s.msgs,
        msgs_solve: prev.msgs_solve + s.msgs_solve,
        msgs_residual: prev.msgs_residual + s.msgs_residual,
        msgs_recovery: prev.msgs_recovery + s.msgs_recovery,
        msgs_redundancy: prev.msgs_redundancy + s.msgs_redundancy,
        bytes: prev.bytes + s.bytes,
        bytes_solve: prev.bytes_solve + s.bytes_solve,
        bytes_residual: prev.bytes_residual + s.bytes_residual,
        bytes_recovery: prev.bytes_recovery + s.bytes_recovery,
        bytes_redundancy: prev.bytes_redundancy + s.bytes_redundancy,
        time: prev.time + s.time,
        active_ranks: s.active_ranks,
        compute_ns: prev.compute_ns + s.compute_ns,
        imbalance: s.imbalance(nranks),
    });
}

/// Measures one boundary: the `O(P)` maintained sum where possible, the
/// exact `O(n + nnz)` recompute where the mode or a pending verdict
/// demands it. Returns `(norm, verified)` — `norm` is what the record
/// carries; `verified` says whether it is the exact norm (verdicts
/// require that). `boundary` is the cadence counter (step or tick) and
/// `last` marks the final boundary of the run, which is always exact.
#[allow(clippy::too_many_arguments)]
pub(crate) fn measure_boundary<R: RankAlgorithm>(
    monitor: &mut MonitorCore,
    a: &CsrMatrix,
    b: &[f64],
    ranks: &[R],
    view: &impl NormView<R>,
    opts: &DistOptions,
    initial: f64,
    boundary: usize,
    idle: bool,
    last: bool,
) -> (f64, bool) {
    match opts.monitor {
        MonitorMode::Exact => (monitor.exact_view(a, b, ranks, view), true),
        MonitorMode::Maintained { verify_every } => match monitor.maintained_view(ranks, view) {
            Some(m) => {
                let due = verify_every > 0 && boundary.is_multiple_of(verify_every);
                // Trigger on a *possible* convergence claim: on a
                // reliable link the true norm is within `slack` of the
                // maintained one (plus a relative margin for summation
                // round-off), so only `norm − slack ≤ t` can hide a
                // converged state.
                let claims_convergence = opts
                    .target_residual
                    .is_some_and(|t| m.norm - m.slack <= t * (1.0 + 1e-9));
                let claims_divergence = !m.norm.is_finite()
                    || opts
                        .divergence_cutoff
                        .is_some_and(|cut| m.norm > cut * initial.max(1e-300));
                if due || claims_convergence || claims_divergence || idle || last {
                    let e = monitor.exact_view(a, b, ranks, view);
                    monitor.stats.record_drift(e, m.norm);
                    (e, true)
                } else {
                    (m.norm, false)
                }
            }
            // The algorithm maintains no norms: fall back to exact.
            None => (monitor.exact_view(a, b, ranks, view), true),
        },
    }
}

/// The lock-step run loop (the original `drive` body).
fn drive_superstep<R, V>(
    method: Method,
    ranks: Vec<R>,
    view: &V,
    a: &CsrMatrix,
    b: &[f64],
    opts: &DistOptions,
    mode: ExecMode,
) -> DistReport
where
    R: RankAlgorithm + Recoverable,
    V: NormView<R>,
{
    let n = a.nrows();
    let nranks = ranks.len();
    let mut ex = Executor::with_chaos(ranks, opts.cost_model, mode, opts.chaos);
    ex.set_close_mode(opts.close_mode);
    let mut monitor = MonitorCore::new(n);

    // The initial state is measured exactly in both modes (one-time cost).
    let initial = monitor.exact_view(a, b, ex.ranks(), view);
    let mut records = vec![initial_record(initial)];
    let mut converged_at = None;
    let mut deadlocked = false;
    let mut diverged = false;
    let mut watchdog_nudges = 0u64;
    // Nudges issued since the last step with an actual relaxation; two
    // fruitless nudges in a row mean nudging cannot help.
    let mut nudges_since_relax = 0u32;

    for step in 1..=opts.max_steps {
        let s = ex.step();
        // A step with no relaxations, no messages, and no stalled rank is
        // globally idle: nothing can change anymore, so a deadlock verdict
        // is imminent and the norm must be exact.
        let idle = s.relaxations == 0 && s.msgs == 0 && s.faults.stalled_ranks == 0;

        let (norm, verified) = measure_boundary(
            &mut monitor,
            a,
            b,
            ex.ranks(),
            view,
            opts,
            initial,
            step,
            idle,
            step == opts.max_steps,
        );
        push_record(&mut records, step, norm, &s, nranks);
        if s.relaxations > 0 {
            nudges_since_relax = 0;
        }
        // Every verdict below requires the exact norm; an unverified step
        // can neither converge, deadlock, nor diverge (the triggers above
        // guarantee `verified` whenever a verdict is actually possible).
        if verified && converged_at.is_none() {
            if let Some(t) = opts.target_residual {
                if norm <= t {
                    converged_at = Some(step);
                    break;
                }
            }
        }
        if idle {
            // Nothing moved and nothing is in flight (a stalled rank could
            // still hold undelivered puts, hence the stall condition).
            let frozen = norm > opts.target_residual.unwrap_or(0.0).max(1e-300);
            if frozen && nudges_since_relax < 2 {
                let mut any = false;
                for r in ex.ranks_mut() {
                    any |= r.nudge();
                }
                if any {
                    watchdog_nudges += 1;
                    nudges_since_relax += 1;
                    continue;
                }
            }
            deadlocked = frozen;
            break;
        }
        if verified {
            if !norm.is_finite() {
                diverged = true;
                break;
            }
            if let Some(cut) = opts.divergence_cutoff {
                if norm > cut * initial.max(1e-300) {
                    diverged = true;
                    break;
                }
            }
        }
    }

    let x = monitor.gather_view(ex.ranks(), view);
    ex.stats.monitor = monitor.stats;
    let drift_repairs = ex.ranks().iter().map(|r| r.drift_repairs()).sum();
    let stale_discards = ex.ranks().iter().map(|r| r.stale_discards()).sum();
    DistReport {
        method,
        n,
        nranks,
        records,
        stats: ex.stats,
        converged_at,
        deadlocked,
        diverged,
        watchdog_nudges,
        drift_repairs,
        stale_discards,
        x,
    }
}

/// The asynchronous run loop: one scheduler tick per iteration.
///
/// Everything the superstep loop reports is reported here at tick
/// granularity — each tick gets a cumulative [`StepRecord`] (so
/// `converged_at` and the `*_to_reach` interpolations are in ticks), the
/// maintained norm is summed every tick, and the exact `b − Ax` recompute
/// fires on the same triggers (possible claims, the `verify_every`
/// cadence counted in ticks, idle windows, the final tick). The run ends
/// when the *slowest* rank has completed `max_steps` full parallel steps,
/// or on a verdict, or when a generous tick budget derived from the
/// realized advance probabilities runs out.
///
/// Freeze detection cannot use single boundaries (a tick where every coin
/// flip fails is idle by accident): the loop instead accumulates
/// relaxations and messages over a *sweep window* — the span in which
/// *every* rank advances through at least one full step's worth of
/// phases — and treats a window with no work and nothing in flight as the
/// superstep loop treats an idle step (nudge, then deadlock). That is the
/// superstep idle guarantee verbatim: each rank ran all its phases on
/// empty inboxes and neither relaxed nor sent, so rerunning them can only
/// repeat the silence.
fn drive_async<R, V>(
    method: Method,
    ranks: Vec<R>,
    view: &V,
    a: &CsrMatrix,
    b: &[f64],
    opts: &DistOptions,
    aopts: AsyncOptions,
) -> DistReport
where
    R: RankAlgorithm + Recoverable,
    V: NormView<R>,
{
    let n = a.nrows();
    let nranks = ranks.len();
    let nphases = ranks[0].phases();
    let mut ex = match AsyncExecutor::with_chaos(ranks, aopts, opts.chaos) {
        Ok(ex) => ex,
        Err(e) => panic!("ExecBackend::Async: {e}"),
    };
    // Under a coded placement the replica sets progress as logical owners:
    // the lag bound and the run goal track each block's freshest replica,
    // so a replica-covered straggler no longer gates the whole run.
    if let Some(groups) = view.lag_groups() {
        ex.set_lag_groups(groups);
    }
    let mut monitor = MonitorCore::new(n);

    let initial = monitor.exact_view(a, b, ex.ranks(), view);
    let mut records = vec![initial_record(initial)];
    let mut converged_at = None;
    let mut deadlocked = false;
    let mut diverged = false;
    let mut watchdog_nudges = 0u64;
    let mut nudges_since_relax = 0u32;

    // Clock goal: the slowest logical owner completes `max_steps` full
    // steps (per-rank clocks without lag groups, per-replica-set freshest
    // clocks with them).
    let goal = opts.max_steps * nphases;
    // Tick budget: expected ticks to the goal are `goal / p`, where `p` is
    // the pacing probability of the slowest logical owner; eight times
    // that (plus slack for tiny runs) is unreachable unless the scheduler
    // genuinely cannot make progress.
    let p_min = ex.pacing_probability().max(1e-3);
    let budget = ((goal as f64 / p_min) * 8.0).ceil() as usize + 64;

    // Sweep-window accumulators for freeze detection; the window closes
    // when every logical owner has advanced `nphases` clocks past its
    // checkpoint.
    let mut window_relax = 0u64;
    let mut window_msgs = 0u64;
    let mut window_start: Vec<usize> = ex.logical_clocks();

    for tick in 1..=budget {
        ex.tick();
        let s = *ex.stats.steps.last().expect("tick pushes a step record");
        window_relax += s.relaxations;
        window_msgs += s.msgs;

        let clocks = ex.logical_clocks();
        let swept = clocks
            .iter()
            .zip(&window_start)
            .all(|(&c, &from)| c - from >= nphases);
        let mut idle = false;
        if swept {
            idle = window_relax == 0 && window_msgs == 0 && ex.in_flight() == 0;
            window_start = clocks.clone();
            window_relax = 0;
            window_msgs = 0;
        }
        let last = tick == budget || clocks.iter().all(|&c| c >= goal);

        let (norm, verified) = measure_boundary(
            &mut monitor,
            a,
            b,
            ex.ranks(),
            view,
            opts,
            initial,
            tick,
            idle,
            last,
        );
        push_record(&mut records, tick, norm, &s, nranks);
        if s.relaxations > 0 {
            nudges_since_relax = 0;
        }
        if verified && converged_at.is_none() {
            if let Some(t) = opts.target_residual {
                if norm <= t {
                    converged_at = Some(tick);
                    break;
                }
            }
        }
        if idle {
            let frozen = norm > opts.target_residual.unwrap_or(0.0).max(1e-300);
            if frozen && nudges_since_relax < 2 {
                let mut any = false;
                for r in ex.ranks_mut() {
                    any |= r.nudge();
                }
                if any {
                    watchdog_nudges += 1;
                    nudges_since_relax += 1;
                    continue;
                }
            }
            deadlocked = frozen;
            break;
        }
        if verified {
            if !norm.is_finite() {
                diverged = true;
                break;
            }
            if let Some(cut) = opts.divergence_cutoff {
                if norm > cut * initial.max(1e-300) {
                    diverged = true;
                    break;
                }
            }
        }
        if last {
            break;
        }
    }

    let x = monitor.gather_view(ex.ranks(), view);
    ex.stats.monitor = monitor.stats;
    let drift_repairs = ex.ranks().iter().map(|r| r.drift_repairs()).sum();
    let stale_discards = ex.ranks().iter().map(|r| r.stale_discards()).sum();
    DistReport {
        method,
        n,
        nranks,
        records,
        stats: ex.stats,
        converged_at,
        deadlocked,
        diverged,
        watchdog_nudges,
        drift_repairs,
        stale_discards,
        x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsw_partition::{partition_multilevel, Graph, MultilevelOptions};
    use dsw_sparse::gen;

    fn poisson_setup(nx: usize, ny: usize, p: usize) -> (CsrMatrix, Vec<f64>, Vec<f64>, Partition) {
        let mut a = gen::grid2d_poisson(nx, ny);
        a.scale_unit_diagonal().unwrap();
        let n = a.nrows();
        let b = vec![0.0; n];
        // Random guess scaled so the initial residual has unit norm (§4.2).
        let mut x0 = gen::random_guess(n, 11);
        let r0 = a.residual(&b, &x0);
        let scale = 1.0 / dsw_sparse::vecops::norm2(&r0);
        for v in x0.iter_mut() {
            *v *= scale;
        }
        let g = Graph::from_matrix(&a);
        let part = partition_multilevel(&g, p, MultilevelOptions::default());
        (a, b, x0, part)
    }

    #[test]
    fn initial_residual_is_unit() {
        let (a, b, x0, _) = poisson_setup(16, 16, 4);
        let r0 = a.residual(&b, &x0);
        assert!((dsw_sparse::vecops::norm2(&r0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_methods_reach_point_one_on_poisson() {
        let (a, b, x0, part) = poisson_setup(16, 16, 4);
        let opts = DistOptions {
            max_steps: 50,
            ..DistOptions::default()
        };
        for m in [
            Method::BlockJacobi,
            Method::ParallelSouthwell,
            Method::DistributedSouthwell,
        ] {
            let rep = run_method(m, &a, &b, &x0, &part, &opts);
            assert!(
                rep.converged_at.is_some(),
                "{} failed: final {}",
                m.label(),
                rep.final_residual()
            );
            assert!(!rep.deadlocked && !rep.diverged);
        }
    }

    #[test]
    fn ds_beats_ps_on_communication() {
        let (a, b, x0, part) = poisson_setup(24, 24, 8);
        let opts = DistOptions {
            max_steps: 200,
            ..DistOptions::default()
        };
        let ds = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &opts);
        let ps = run_method(Method::ParallelSouthwell, &a, &b, &x0, &part, &opts);
        let dsc = ds.comm_to_reach(0.1).expect("DS converged");
        let psc = ps.comm_to_reach(0.1).expect("PS converged");
        assert!(dsc < psc, "DS comm {dsc} !< PS comm {psc}");
    }

    #[test]
    fn piggyback_only_deadlocks_and_is_reported() {
        let (a, b, x0, part) = poisson_setup(16, 16, 8);
        let opts = DistOptions {
            max_steps: 300,
            target_residual: Some(1e-6),
            ..DistOptions::default()
        };
        let rep = run_method(
            Method::ParallelSouthwellPiggybackOnly,
            &a,
            &b,
            &x0,
            &part,
            &opts,
        );
        assert!(rep.deadlocked, "expected deadlock report");
        assert!(rep.converged_at.is_none());
    }

    #[test]
    fn report_metrics_are_consistent() {
        let (a, b, x0, part) = poisson_setup(12, 12, 4);
        let opts = DistOptions::default();
        let rep = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &opts);
        let last = rep.records.last().unwrap();
        assert_eq!(
            last.msgs,
            last.msgs_solve + last.msgs_residual + last.msgs_recovery + last.msgs_redundancy
        );
        assert_eq!(rep.stats.total_msgs(), last.msgs);
        assert_eq!(
            last.bytes,
            last.bytes_solve + last.bytes_residual + last.bytes_recovery + last.bytes_redundancy
        );
        assert_eq!(rep.stats.total_bytes(), last.bytes);
        assert_eq!(
            last.msgs_redundancy, 0,
            "uncoded runs have no redundancy traffic"
        );
        assert!(last.bytes > 0, "messages carry payload bytes");
        assert!((rep.byte_cost() - last.bytes as f64 / rep.nranks as f64).abs() < 1e-12);
        assert!((rep.stats.total_time() - last.time).abs() < 1e-12);
        assert!(rep.active_fraction() > 0.0 && rep.active_fraction() <= 1.0);
        // Crossing metrics are monotone sensible.
        let s = rep.steps_to_reach(0.1).unwrap();
        assert!(s > 0.0 && s <= rep.records.len() as f64);
        // Measured-timing observables populate and are sane.
        assert!(rep.records.last().unwrap().compute_ns > 0);
        assert!(rep.mean_imbalance() >= 1.0);
        assert!(rep.worker_utilization() > 0.0 && rep.worker_utilization() <= 1.0);
        assert!(rep.records[1..].iter().all(|r| r.imbalance >= 1.0));
    }

    #[test]
    fn watchdog_unfreezes_the_no_avoidance_variant() {
        // Without deadlock avoidance DS freezes on this setup (see
        // `no_deadlock_avoidance_can_freeze`). The freeze watchdog's forced
        // rebroadcast restores exact norms, so the run converges anyway.
        let (a, b, x0, part) = poisson_setup(16, 16, 8);
        let base = DistOptions {
            max_steps: 400,
            target_residual: Some(1e-6),
            ds_config: DsConfig {
                deadlock_avoidance: false,
                ..DsConfig::default()
            },
            ..DistOptions::default()
        };
        let frozen = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &base);
        assert!(frozen.deadlocked, "expected the foil to freeze");
        assert_eq!(frozen.watchdog_nudges, 0);

        let mut healed_opts = base;
        healed_opts.ds_config.recovery = crate::dist::RecoveryConfig {
            watchdog: true,
            ..crate::dist::RecoveryConfig::off()
        };
        let healed = run_method(
            Method::DistributedSouthwell,
            &a,
            &b,
            &x0,
            &part,
            &healed_opts,
        );
        assert!(
            healed.converged_at.is_some(),
            "watchdog should rescue the run: final {}, deadlocked {}",
            healed.final_residual(),
            healed.deadlocked
        );
        assert!(healed.watchdog_nudges > 0);
        assert!(healed.stats.total_msgs_recovery() > 0);
    }

    #[test]
    fn threaded_matches_sequential() {
        let (a, b, x0, part) = poisson_setup(16, 16, 6);
        let o1 = DistOptions {
            max_steps: 20,
            target_residual: None,
            ..DistOptions::default()
        };
        let o2 = DistOptions {
            backend: ExecBackend::Superstep(ExecMode::Threaded(3)),
            ..o1
        };
        let r1 = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &o1);
        let r2 = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &o2);
        assert_eq!(r1.x, r2.x, "threaded and sequential must be bit-identical");
        assert_eq!(
            r1.records.last().unwrap().msgs,
            r2.records.last().unwrap().msgs
        );
    }

    #[test]
    fn async_backend_converges_with_populated_report() {
        let (a, b, x0, part) = poisson_setup(16, 16, 4);
        let opts = DistOptions {
            max_steps: 200,
            backend: ExecBackend::Async(AsyncOptions {
                advance_probability: 0.6,
                max_lag: 6,
                seed: 5,
                straggler_skew: 0.5,
            }),
            ..DistOptions::default()
        };
        for m in [
            Method::BlockJacobi,
            Method::ParallelSouthwell,
            Method::DistributedSouthwell,
        ] {
            let rep = run_method(m, &a, &b, &x0, &part, &opts);
            assert!(
                rep.converged_at.is_some(),
                "{} failed under async scheduling: final {}",
                m.label(),
                rep.final_residual()
            );
            assert!(!rep.deadlocked && !rep.diverged);
            // The report is as observable as a superstep run: per-class
            // counters, monitor accounting, consistent cumulative records.
            let last = rep.records.last().unwrap();
            assert!(last.msgs_solve > 0, "{}", m.label());
            assert!(last.bytes > 0);
            assert_eq!(
                last.msgs,
                last.msgs_solve + last.msgs_residual + last.msgs_recovery + last.msgs_redundancy
            );
            assert_eq!(rep.stats.total_msgs(), last.msgs);
            let mon = rep.monitor_stats();
            assert!(mon.evals > 0, "maintained sums must drive the records");
            assert!(mon.verifications > 0, "verdicts must be verified");
            // Final record is exact (the last boundary always verifies).
            let true_norm = dsw_sparse::vecops::norm2(&a.residual(&b, &rep.x));
            assert!(
                (true_norm - rep.final_residual()).abs() <= 1e-12 * true_norm.max(1.0),
                "{}: final record {} vs true {}",
                m.label(),
                rep.final_residual(),
                true_norm
            );
        }
    }

    #[test]
    fn async_backend_is_deterministic_per_seed() {
        let (a, b, x0, part) = poisson_setup(12, 12, 4);
        let opts = DistOptions {
            max_steps: 60,
            backend: ExecBackend::Async(AsyncOptions {
                straggler_skew: 0.7,
                ..AsyncOptions::default()
            }),
            ..DistOptions::default()
        };
        let r1 = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &opts);
        let r2 = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &opts);
        assert_eq!(r1.x, r2.x);
        assert_eq!(r1.converged_at, r2.converged_at);
        assert_eq!(
            r1.records.last().unwrap().msgs,
            r2.records.last().unwrap().msgs
        );
    }

    #[test]
    fn async_backend_accepts_stall_injection() {
        // Tick-window stalls on the async backend: accepted (they freeze
        // whole scheduler windows), counted, and deterministic per seed.
        let (a, b, x0, part) = poisson_setup(12, 12, 4);
        let opts = DistOptions {
            max_steps: 120,
            backend: ExecBackend::Async(AsyncOptions::default()),
            chaos: ChaosConfig {
                stall_rate: 0.2,
                stall_steps: 2,
                seed: 9,
                ..ChaosConfig::none()
            },
            ..DistOptions::default()
        };
        let r1 = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &opts);
        let r2 = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &opts);
        assert_eq!(r1.x, r2.x);
        assert_eq!(r1.converged_at, r2.converged_at);
        assert!(
            r1.stats.total_faults().stalled_ranks > 0,
            "stall windows must be drawn and counted"
        );
        assert!(!r1.deadlocked && !r1.diverged);
    }

    /// A coded placement on the lock-step backend: converges, pays a
    /// visible redundancy overhead in its own comm class, reconciles every
    /// extra copy exactly, and stays bit-identical per seed.
    #[test]
    fn redundant_superstep_converges_with_accounted_overhead() {
        let (a, b, x0, part) = poisson_setup(16, 16, 6);
        let base = DistOptions {
            max_steps: 80,
            ..DistOptions::default()
        };
        let uncoded = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &base);
        for r in [2, 3] {
            let opts = DistOptions {
                redundancy: Some(Redundancy::new(r)),
                ..base
            };
            let rep = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &opts);
            assert!(
                rep.converged_at.is_some(),
                "r = {r} failed: final {}",
                rep.final_residual()
            );
            let last = rep.records.last().unwrap();
            assert!(last.msgs_redundancy > 0, "replica fan-out must be counted");
            assert!(last.bytes_redundancy > 0);
            assert_eq!(
                last.msgs,
                last.msgs_solve + last.msgs_residual + last.msgs_recovery + last.msgs_redundancy
            );
            assert_eq!(
                last.bytes,
                last.bytes_solve
                    + last.bytes_residual
                    + last.bytes_recovery
                    + last.bytes_redundancy
            );
            assert!(rep.byte_cost_redundancy() > 0.0);
            assert!(
                rep.stale_discards > 0,
                "first-arrival reconciliation must discard replica copies"
            );
            // Lock-step replicas are bit-identical, so the representative
            // solution is exactly the uncoded one and convergence lands on
            // the same step.
            assert_eq!(rep.x, uncoded.x, "r = {r}");
            assert_eq!(rep.converged_at, uncoded.converged_at);
            // Same seed ⇒ same report, for every r.
            let again = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &opts);
            assert_eq!(rep.x, again.x);
            assert_eq!(
                rep.records.last().unwrap().msgs,
                again.records.last().unwrap().msgs
            );
        }
    }

    /// `Some(Redundancy::new(1))` is the identity placement and must stay
    /// bit-identical to `None` — including under chaos, where the r = 1
    /// dispatch keeps chaos duplicates visible to the solver's sequencing.
    #[test]
    fn redundancy_r1_is_bit_identical_to_uncoded() {
        let (a, b, x0, part) = poisson_setup(12, 12, 4);
        for chaos in [
            ChaosConfig::none(),
            ChaosConfig {
                drop_rate: 0.1,
                duplicate_rate: 0.1,
                seed: 3,
                ..ChaosConfig::none()
            },
        ] {
            let base = DistOptions {
                max_steps: 40,
                chaos,
                ds_config: DsConfig {
                    recovery: crate::dist::RecoveryConfig::standard(),
                    ..DsConfig::default()
                },
                ..DistOptions::default()
            };
            let coded = DistOptions {
                redundancy: Some(Redundancy::new(1)),
                ..base
            };
            let r1 = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &base);
            let r2 = run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &coded);
            assert_eq!(r1.x, r2.x);
            // Deterministic record fields only (`compute_ns` / `imbalance`
            // are measured wall-time observables).
            let key = |rep: &DistReport| {
                rep.records
                    .iter()
                    .map(|r| {
                        (
                            r.step,
                            r.residual_norm.to_bits(),
                            r.relaxations,
                            r.msgs,
                            r.msgs_solve,
                            r.msgs_residual,
                            r.msgs_recovery,
                            r.msgs_redundancy,
                            r.bytes,
                            r.active_ranks,
                        )
                    })
                    .collect::<Vec<_>>()
            };
            assert_eq!(key(&r1), key(&r2));
            assert_eq!(r1.converged_at, r2.converged_at);
        }
    }

    /// Coded placements on the async backend: all methods converge, the
    /// run is deterministic per seed, and with replica lag groups a
    /// heavily skewed straggler no longer stalls the run.
    #[test]
    fn redundant_async_converges_and_is_deterministic() {
        let (a, b, x0, part) = poisson_setup(16, 16, 6);
        let opts = DistOptions {
            max_steps: 200,
            backend: ExecBackend::Async(AsyncOptions {
                advance_probability: 0.6,
                max_lag: 6,
                seed: 5,
                straggler_skew: 0.7,
            }),
            redundancy: Some(Redundancy::new(2)),
            ..DistOptions::default()
        };
        for m in [
            Method::BlockJacobi,
            Method::ParallelSouthwell,
            Method::DistributedSouthwell,
        ] {
            let rep = run_method(m, &a, &b, &x0, &part, &opts);
            assert!(
                rep.converged_at.is_some(),
                "{} (r = 2, async) failed: final {}",
                m.label(),
                rep.final_residual()
            );
            assert!(!rep.deadlocked && !rep.diverged);
            assert!(rep.records.last().unwrap().msgs_redundancy > 0);
            let again = run_method(m, &a, &b, &x0, &part, &opts);
            assert_eq!(rep.x, again.x, "{}", m.label());
            assert_eq!(rep.converged_at, again.converged_at);
            // The final record is exact for the representative solution.
            let true_norm = dsw_sparse::vecops::norm2(&a.residual(&b, &rep.x));
            assert!(
                (true_norm - rep.final_residual()).abs() <= 1e-12 * true_norm.max(1.0),
                "{}: final record {} vs true {}",
                m.label(),
                rep.final_residual(),
                true_norm
            );
        }
    }

    /// Degenerate redundancy factors fail fast with the partition error.
    #[test]
    #[should_panic(expected = "redundancy")]
    fn invalid_redundancy_factor_panics_with_clear_message() {
        let (a, b, x0, part) = poisson_setup(12, 12, 4);
        let opts = DistOptions {
            redundancy: Some(Redundancy::new(9)),
            ..DistOptions::default()
        };
        run_method(Method::DistributedSouthwell, &a, &b, &x0, &part, &opts);
    }
}
