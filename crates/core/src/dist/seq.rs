//! Per-link sequence tracking for fault-tolerant delivery.
//!
//! The simulated RMA transport can drop, duplicate, or delay puts (see
//! `dsw_rma::fault`). The paper's protocol assumes exactly-once in-order
//! delivery, so the recovery layer wraps every put in a
//! [`SeqMsg`](super::msg::SeqMsg) carrying a per-(sender, receiver)
//! monotone sequence number, and the receiver classifies each arrival with
//! [`SeqIn::judge`]:
//!
//! * **`FreshNewest`** — never seen, and newer than everything seen from
//!   this sender: apply fully (additive deltas *and* state overwrites).
//! * **`FreshStale`** — never seen, but an even newer message was already
//!   applied (reordering): apply only the *additive* content; the state
//!   overwrites (ghost layer, norm estimates) would rewind fresher data.
//! * **`Duplicate`** — already applied (or expired): discard, which makes
//!   redelivery idempotent.
//!
//! A gap (sequence numbers skipped by a `FreshNewest` arrival) is
//! remembered so a late original can still be recognized as `FreshStale`
//! rather than `Duplicate`. Gap memory is bounded: under sustained drops
//! the oldest outstanding gaps are forgotten, after which an extremely late
//! original is treated as a duplicate — by then the periodic audit has
//! re-synchronized the state it would have patched.

/// Verdict for one arriving sequenced message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqVerdict {
    /// First delivery, newest from this sender: apply everything.
    FreshNewest,
    /// First delivery, but out of order: apply additive content only.
    FreshStale,
    /// Redelivery (or expired gap): discard.
    Duplicate,
}

/// Maximum remembered outstanding gaps per link. Oldest entries are
/// forgotten beyond this, bounding memory under sustained message loss.
const MAX_GAPS: usize = 1024;

/// Receiver-side sequence state for one (sender → receiver) link.
#[derive(Debug, Clone, Default)]
pub struct SeqIn {
    /// Highest sequence number applied so far (0 = nothing yet).
    max_seen: u64,
    /// Sequence numbers below `max_seen` that never arrived.
    gaps: Vec<u64>,
}

impl SeqIn {
    /// Fresh link state.
    pub fn new() -> Self {
        SeqIn::default()
    }

    /// Classifies sequence number `seq` (must be > 0) and updates the
    /// link state.
    pub fn judge(&mut self, seq: u64) -> SeqVerdict {
        debug_assert!(seq > 0, "sequence numbers start at 1");
        if seq > self.max_seen {
            for missing in self.max_seen + 1..seq {
                self.gaps.push(missing);
            }
            if self.gaps.len() > MAX_GAPS {
                let excess = self.gaps.len() - MAX_GAPS;
                self.gaps.drain(..excess);
            }
            self.max_seen = seq;
            SeqVerdict::FreshNewest
        } else if let Some(pos) = self.gaps.iter().position(|&g| g == seq) {
            self.gaps.swap_remove(pos);
            SeqVerdict::FreshStale
        } else {
            SeqVerdict::Duplicate
        }
    }

    /// Highest sequence number applied so far.
    pub fn max_seen(&self) -> u64 {
        self.max_seen
    }

    /// Outstanding gaps: messages known lost or still in flight.
    pub fn outstanding(&self) -> usize {
        self.gaps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_is_always_fresh_newest() {
        let mut s = SeqIn::new();
        for seq in 1..=10 {
            assert_eq!(s.judge(seq), SeqVerdict::FreshNewest);
        }
        assert_eq!(s.max_seen(), 10);
        assert_eq!(s.outstanding(), 0);
    }

    #[test]
    fn duplicates_are_flagged() {
        let mut s = SeqIn::new();
        assert_eq!(s.judge(1), SeqVerdict::FreshNewest);
        assert_eq!(s.judge(1), SeqVerdict::Duplicate);
        assert_eq!(s.judge(2), SeqVerdict::FreshNewest);
        assert_eq!(s.judge(2), SeqVerdict::Duplicate);
        assert_eq!(s.judge(1), SeqVerdict::Duplicate);
    }

    #[test]
    fn late_original_fills_gap_exactly_once() {
        let mut s = SeqIn::new();
        assert_eq!(s.judge(1), SeqVerdict::FreshNewest);
        // 2 and 3 skipped.
        assert_eq!(s.judge(4), SeqVerdict::FreshNewest);
        assert_eq!(s.outstanding(), 2);
        // The delayed originals surface out of order.
        assert_eq!(s.judge(3), SeqVerdict::FreshStale);
        assert_eq!(s.judge(2), SeqVerdict::FreshStale);
        assert_eq!(s.outstanding(), 0);
        // ... and their duplicates are rejected.
        assert_eq!(s.judge(3), SeqVerdict::Duplicate);
        assert_eq!(s.judge(2), SeqVerdict::Duplicate);
    }

    #[test]
    fn dropped_message_stays_an_outstanding_gap() {
        let mut s = SeqIn::new();
        s.judge(1);
        s.judge(3);
        assert_eq!(s.outstanding(), 1);
        s.judge(4);
        assert_eq!(s.outstanding(), 1, "gap 2 never arrives");
    }

    #[test]
    fn gap_memory_is_bounded() {
        let mut s = SeqIn::new();
        // One huge jump: far more gaps than the cap.
        assert_eq!(s.judge(2 * MAX_GAPS as u64), SeqVerdict::FreshNewest);
        assert_eq!(s.outstanding(), MAX_GAPS);
        // The oldest gaps were forgotten: their late originals now read as
        // duplicates (idempotent discard), the youngest are still tracked.
        assert_eq!(s.judge(1), SeqVerdict::Duplicate);
        assert_eq!(s.judge(2 * MAX_GAPS as u64 - 1), SeqVerdict::FreshStale);
    }
}

#[cfg(test)]
mod prop_tests {
    //! Property tests: against *any* adversarial delivery schedule made of
    //! duplication, reordering, and delay (but fewer outstanding gaps than
    //! the memory cap), [`SeqIn`] reconstructs exactly-once semantics — the
    //! set of fresh-applied messages equals the set of distinct delivered
    //! ones, and `FreshNewest` verdicts are strictly newest-first.

    use super::*;
    use proptest::prelude::*;

    /// Builds a delivery schedule from per-sequence copy counts (0 =
    /// dropped entirely) and shuffles it with a deterministic xorshift, so
    /// each case is an arbitrary interleaving of duplicates and delays.
    fn schedule(copies: &[usize], shuffle_seed: u64) -> Vec<u64> {
        let mut deliveries: Vec<u64> = Vec::new();
        for (i, &c) in copies.iter().enumerate() {
            for _ in 0..c {
                deliveries.push(i as u64 + 1);
            }
        }
        let mut state = shuffle_seed | 1;
        let mut rand = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in (1..deliveries.len()).rev() {
            deliveries.swap(i, (rand() % (i as u64 + 1)) as usize);
        }
        deliveries
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn any_interleaving_yields_exactly_once(
            copies in collection::vec(0usize..4, 1..48),
            shuffle_seed in 0u64..u64::MAX,
        ) {
            let deliveries = schedule(&copies, shuffle_seed);
            let mut link = SeqIn::new();
            let mut fresh_count = vec![0usize; copies.len()];
            let mut applied_sum = 0u64; // models an additive delta payload
            let mut last_newest = 0u64;
            for &seq in &deliveries {
                match link.judge(seq) {
                    SeqVerdict::FreshNewest => {
                        prop_assert!(
                            seq > last_newest,
                            "FreshNewest must be strictly newest-first: {seq} after {last_newest}"
                        );
                        last_newest = seq;
                        fresh_count[seq as usize - 1] += 1;
                        applied_sum += seq;
                    }
                    SeqVerdict::FreshStale => {
                        fresh_count[seq as usize - 1] += 1;
                        applied_sum += seq;
                    }
                    SeqVerdict::Duplicate => {}
                }
            }
            // Exactly-once: every delivered message is applied once, every
            // dropped one not at all, regardless of the interleaving.
            for (i, &c) in copies.iter().enumerate() {
                let expect = usize::from(c > 0);
                prop_assert_eq!(
                    fresh_count[i], expect,
                    "seq {} delivered {} times applied {} times",
                    i + 1, c, fresh_count[i]
                );
            }
            // The applied state equals in-order exactly-once delivery of
            // the messages that survived at all.
            let in_order: u64 = copies
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, _)| i as u64 + 1)
                .sum();
            prop_assert_eq!(applied_sum, in_order);
            prop_assert_eq!(link.max_seen(), last_newest);
        }

        #[test]
        fn outstanding_counts_the_undelivered_below_newest(
            copies in collection::vec(0usize..3, 1..40),
            shuffle_seed in 0u64..u64::MAX,
        ) {
            let deliveries = schedule(&copies, shuffle_seed);
            let mut link = SeqIn::new();
            for &seq in &deliveries {
                link.judge(seq);
            }
            let newest = deliveries.iter().copied().max().unwrap_or(0);
            let lost = copies
                .iter()
                .enumerate()
                .filter(|&(i, &c)| c == 0 && (i as u64 + 1) < newest)
                .count();
            prop_assert_eq!(link.outstanding(), lost);
            prop_assert_eq!(link.max_seen(), newest);
        }
    }
}
