//! Block (subdomain) solvers on the simulated one-sided RMA substrate —
//! Algorithms 1–3 of the paper.
//!
//! * [`layout`] — partitioning a system over ranks, ghost maps, the local
//!   Gauss–Seidel sweep,
//! * [`block_jacobi`] — Algorithm 1,
//! * [`parallel_southwell`] — Algorithm 2 (and the deadlock-prone ICCS'16
//!   piggyback-only variant),
//! * [`distributed_southwell`] — Algorithm 3, the paper's contribution,
//! * [`driver`] — the run loop with out-of-band residual measurement,
//!   convergence / divergence / deadlock detection, and the per-step
//!   records every table and figure of the evaluation is built from,
//! * [`seq`] / [`recovery`] — the fault-tolerant delivery and protocol
//!   self-healing layer this reproduction adds for unreliable transports
//!   (sequence numbers, periodic invariant audits, freeze watchdog),
//! * [`session`] — persistent solve sessions: warm-started repeated
//!   solves with evolving right-hand sides, the building block of the
//!   `dsw-serve` multi-tenant serving layer.

pub mod block_jacobi;
pub mod distributed_southwell;
pub mod driver;
pub mod layout;
pub mod local_solver;
pub mod msg;
pub mod parallel_southwell;
pub mod recovery;
pub mod seq;
pub mod session;

pub use block_jacobi::BlockJacobiRank;
pub use distributed_southwell::{DistributedSouthwellRank, DsConfig};
pub use driver::{
    drive, run_method, DistOptions, DistReport, ExecBackend, MaintainedNorm, Method, Monitor,
    MonitorCore, MonitorMode, StepRecord,
};
pub use layout::{distribute, gather_r, gather_x, LocalSystem};
pub use local_solver::{LocalSolver, LocalSolverImpl};
pub use msg::{DistMsg, SeqMsg};
pub use parallel_southwell::ParallelSouthwellRank;
pub use recovery::{Recoverable, RecoveryConfig};
pub use seq::{SeqIn, SeqVerdict};
pub use session::{SolveSession, TenantSession, WarmStart};

/// Re-exported so callers can request a coded placement
/// ([`DistOptions::redundancy`](driver::DistOptions)) without depending on
/// `dsw-partition` directly.
pub use dsw_partition::{Redundancy, ReplicaMap};
