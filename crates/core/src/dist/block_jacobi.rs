//! Block Jacobi (Algorithm 1 of the paper).

use super::layout::LocalSystem;
use super::local_solver::{LocalSolver, LocalSolverImpl};
use super::msg::{DistMsg, SlabVec};
use dsw_rma::{CommClass, Envelope, PhaseCtx, RankAlgorithm};

/// One rank of the Block Jacobi iteration: every parallel step, relax the
/// local subdomain with one Gauss–Seidel sweep (the paper's "Hybrid
/// Gauss–Seidel"), put the induced residual deltas into every neighbor's
/// window, and apply the neighbor updates in a second epoch of the same
/// step.
///
/// The two-phase layout (relax+send, then apply) is mathematically
/// identical to the classic one-phase form (apply previous step's deltas,
/// then relax): nothing touches the residual between the end of one step
/// and the next sweep, so the sweep sees the same state either way — the
/// same floating-point operations in the same order, bit for bit. What the
/// second epoch buys is an invariant the one-phase form lacks: at every
/// parallel-step boundary all deltas are applied and the locally
/// maintained residual `r` equals `b − Ax` exactly, so the driver can
/// monitor global convergence from the per-rank maintained norms
/// ([`RankAlgorithm::maintained_norm_sq`]) instead of a gather + SpMV.
pub struct BlockJacobiRank {
    /// The local piece of the system (exposed for the driver's gather).
    pub ls: LocalSystem,
    /// ‖r_p‖² as of the last step boundary (monitoring cache; Block Jacobi
    /// itself never consults norms).
    norm_sq: f64,
    solver: LocalSolverImpl,
    ghost_dr: Vec<f64>,
}

impl BlockJacobiRank {
    /// Wraps distributed local systems into Block Jacobi ranks with the
    /// default Gauss–Seidel local solver.
    pub fn build(locals: Vec<LocalSystem>) -> Vec<Self> {
        Self::build_with_solver(locals, LocalSolver::GaussSeidel)
    }

    /// As [`build`](Self::build) with an explicit local solver
    /// (the artifact's `-loc_solver` switch).
    pub fn build_with_solver(locals: Vec<LocalSystem>, solver: LocalSolver) -> Vec<Self> {
        locals
            .into_iter()
            .map(|ls| {
                let g = ls.ext_cols.len();
                BlockJacobiRank {
                    solver: LocalSolverImpl::new(solver, &ls),
                    norm_sq: ls.residual_norm_sq(),
                    ls,
                    ghost_dr: vec![0.0; g],
                }
            })
            .collect()
    }

    /// Applies incoming neighbor deltas to the maintained residual.
    fn apply_inbox(&mut self, inbox: &[Envelope<DistMsg>]) {
        for env in inbox {
            let s = self.ls.neighbor_slot(env.src);
            if let DistMsg::Solve { dr, .. } = &env.payload {
                for (&li, &d) in self.ls.boundary_rows_to[s].iter().zip(dr) {
                    self.ls.r[li as usize] += d;
                }
            }
        }
    }
}

impl super::recovery::Recoverable for BlockJacobiRank {}

impl super::session::WarmStart for BlockJacobiRank {
    fn local(&self) -> &LocalSystem {
        &self.ls
    }

    fn reseed_rhs(&mut self, delta_b: &[f64]) -> f64 {
        // r = b − Ax: a change in b shifts the residual by the same amount,
        // purely locally — x is untouched, so Ax is untouched.
        for (li, &g) in self.ls.rows.iter().enumerate() {
            self.ls.b[li] += delta_b[g];
            self.ls.r[li] += delta_b[g];
        }
        self.norm_sq = self.ls.residual_norm_sq();
        self.norm_sq
    }

    fn reseed_estimates(&mut self, _norms_sq: &[f64]) {
        // Block Jacobi keeps no cross-rank estimates: every rank relaxes
        // every step regardless of norms. Nothing to re-seed.
    }
}

impl RankAlgorithm for BlockJacobiRank {
    type Msg = DistMsg;

    fn phases(&self) -> usize {
        2
    }

    fn put_targets(&self) -> Option<Vec<usize>> {
        // All communication goes to the static subdomain neighbor set, so
        // the executor can build its reverse-neighbor routing index and
        // close epochs target-major on the worker pool.
        Some(self.ls.neighbors.clone())
    }

    fn phase(&mut self, phase: usize, inbox: &[Envelope<DistMsg>], ctx: &mut PhaseCtx<DistMsg>) {
        match phase {
            0 => {
                // Empty on a reliable link (all deltas were applied in the
                // previous step's phase 1); chaos-delayed messages can
                // still land here and must not be lost.
                self.apply_inbox(inbox);
                // Relax the local subdomain.
                self.ghost_dr.iter_mut().for_each(|v| *v = 0.0);
                let flops = self.solver.relax(&mut self.ls, &mut self.ghost_dr);
                ctx.add_flops(flops);
                ctx.record_relaxations(self.ls.nrows() as u64);
                // Write updates to every neighbor's window.
                for s in 0..self.ls.nneighbors() {
                    let dr: SlabVec = self.ls.ghosts_of[s]
                        .iter()
                        .map(|&slot| self.ghost_dr[slot as usize])
                        .collect();
                    let msg = DistMsg::Solve {
                        dr,
                        boundary_r: SlabVec::new(),
                        norm_sq: 0.0,
                        est_of_target_sq: 0.0,
                    };
                    let bytes = msg.wire_bytes();
                    ctx.put(self.ls.neighbors[s], CommClass::Solve, msg, bytes);
                }
            }
            1 => {
                // Apply this step's deltas, restoring `r = b − Ax` at the
                // boundary, and refresh the monitoring cache. The norm is
                // not charged to the cost model: Block Jacobi's iteration
                // never consults it, it exists purely for the monitor.
                self.apply_inbox(inbox);
                self.norm_sq = self.ls.residual_norm_sq();
            }
            _ => unreachable!("Block Jacobi has two phases"),
        }
    }

    fn maintained_norm_sq(&self) -> Option<f64> {
        Some(self.norm_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::layout::{distribute, gather_x};
    use dsw_partition::partition_strip;
    use dsw_rma::{CostModel, ExecMode, Executor};
    use dsw_sparse::gen;

    #[test]
    fn block_jacobi_converges_on_poisson() {
        let a = gen::grid2d_poisson(12, 12);
        let n = a.nrows();
        let b = gen::random_rhs(n, 1);
        let x0 = vec![0.0; n];
        let part = partition_strip(n, 6);
        let locals = distribute(&a, &b, &x0, &part).unwrap();
        let ranks = BlockJacobiRank::build(locals);
        let mut ex = Executor::new(ranks, CostModel::default(), ExecMode::Sequential);
        for _ in 0..400 {
            ex.step();
        }
        let x = gather_x(
            &ex.ranks().iter().map(|r| r.ls.clone()).collect::<Vec<_>>(),
            n,
        );
        let r = a.residual(&b, &x);
        let norm = dsw_sparse::vecops::norm2(&r);
        assert!(norm < 1e-7, "residual {norm}");
    }

    #[test]
    fn one_rank_equals_plain_gauss_seidel() {
        // With a single process, Block Jacobi is exactly sequential GS.
        let a = gen::grid2d_poisson(6, 6);
        let n = a.nrows();
        let b = gen::random_rhs(n, 2);
        let x0 = gen::random_guess(n, 3);
        let part = partition_strip(n, 1);
        let locals = distribute(&a, &b, &x0, &part).unwrap();
        let ranks = BlockJacobiRank::build(locals);
        let mut ex = Executor::new(ranks, CostModel::default(), ExecMode::Sequential);
        ex.step();
        let xd = ex.ranks()[0].ls.x.clone();

        let opts = crate::scalar::ScalarOptions::sweeps(n, 1.0);
        let (xs, _) = crate::scalar::gauss_seidel(&a, &b, &x0, &opts);
        for (d, s) in xd.iter().zip(&xs) {
            assert!((d - s).abs() < 1e-14);
        }
        assert_eq!(ex.stats.total_msgs(), 0);
    }

    #[test]
    fn every_rank_active_every_step() {
        let a = gen::grid2d_poisson(10, 10);
        let n = a.nrows();
        let b = gen::random_rhs(n, 1);
        let part = partition_strip(n, 5);
        let locals = distribute(&a, &b, &vec![0.0; n], &part).unwrap();
        let mut ex = Executor::new(
            BlockJacobiRank::build(locals),
            CostModel::default(),
            ExecMode::Sequential,
        );
        for _ in 0..5 {
            let s = ex.step();
            assert_eq!(s.active_ranks, 5);
            assert_eq!(s.relaxations, n as u64);
            assert_eq!(s.msgs_residual, 0, "BJ never sends explicit updates");
        }
        assert!((ex.stats.mean_active_fraction() - 1.0).abs() < 1e-15);
    }
}
