//! Distribution of a sparse system over simulated ranks.
//!
//! Mirrors the paper's setup (§2.4): rows are partitioned into
//! non-overlapping subdomains, one per process; each process stores its
//! block rows, the right-hand side and solution pieces, and enough matrix
//! data to compute — *locally, without communication* — the contribution of
//! its own relaxations to the residuals of neighboring processes (possible
//! because the matrix is symmetric: the process owning row `i` effectively
//! owns column `i` too).
//!
//! Index conventions inside one [`LocalSystem`]:
//! * *local row* `0..m` — the process's own rows, sorted by global id;
//! * *ghost slot* `0..g` — off-process columns touched by local rows,
//!   sorted by global id;
//! * *neighbor slot* — index into the sorted neighbor-rank list.
//!
//! Message payloads use **agreed orderings** instead of indices: the ghost
//! slots of rank `q` owned by rank `p` (in global order) are exactly the
//! boundary rows of `p` adjacent to `q` (in global order), so both sides
//! address a plain `Vec<f64>` the same way.

use dsw_partition::Partition;
use dsw_sparse::{CsrMatrix, SparseError};
use std::collections::HashMap;

/// A struct-of-arrays arena of per-neighbor index lists.
///
/// All lists live back-to-back in one flat `data` buffer addressed by
/// `offsets` (length `nlists + 1`), replacing the `Vec<Vec<u32>>` soup:
/// a rank's entire ghost layer (or boundary map) is one contiguous
/// allocation, walked slot-major with no per-list pointer chasing.
/// Indexing with `arena[s]` yields the list for neighbor slot `s` as a
/// plain `&[u32]`, so call sites read exactly like the nested-vec form.
#[derive(Debug, Clone, Default)]
pub struct SlotArena {
    offsets: Vec<u32>,
    data: Vec<u32>,
}

impl SlotArena {
    /// Flattens per-slot lists into the arena form.
    pub fn from_lists(lists: &[Vec<u32>]) -> Self {
        let total: usize = lists.iter().map(Vec::len).sum();
        assert!(total <= u32::MAX as usize, "slot arena exceeds u32 offsets");
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        let mut data = Vec::with_capacity(total);
        offsets.push(0u32);
        for l in lists {
            data.extend_from_slice(l);
            data_offsets_push(&mut offsets, data.len());
        }
        SlotArena { offsets, data }
    }

    /// Number of per-slot lists.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Whether the arena holds no lists at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The list for slot `s`.
    #[inline]
    pub fn get(&self, s: usize) -> &[u32] {
        &self.data[self.offsets[s] as usize..self.offsets[s + 1] as usize]
    }

    /// Iterates the lists in slot order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        self.offsets
            .windows(2)
            .map(|w| &self.data[w[0] as usize..w[1] as usize])
    }

    /// Total entries across all lists (the flat buffer length).
    #[inline]
    pub fn total_len(&self) -> usize {
        self.data.len()
    }
}

#[inline]
fn data_offsets_push(offsets: &mut Vec<u32>, len: usize) {
    offsets.push(len as u32);
}

impl std::ops::Index<usize> for SlotArena {
    type Output = [u32];
    #[inline]
    fn index(&self, s: usize) -> &[u32] {
        self.get(s)
    }
}

/// The per-rank piece of a distributed system.
#[derive(Debug, Clone)]
pub struct LocalSystem {
    /// This rank's id.
    pub rank: usize,
    /// Owned global rows, sorted.
    pub rows: Vec<usize>,
    /// Local block `A(rows, rows)` in local indices (symmetric).
    pub a_int: CsrMatrix,
    /// Off-process part of the owned rows in CSR-like form:
    /// `a_ext_ptr[i]..a_ext_ptr[i+1]` indexes the ghost entries of local
    /// row `i` in `a_ext_idx` (ghost slots) and `a_ext_val`.
    pub a_ext_ptr: Vec<usize>,
    /// Ghost-slot index per external entry.
    pub a_ext_idx: Vec<u32>,
    /// Matrix value per external entry.
    pub a_ext_val: Vec<f64>,
    /// Global column id of each ghost slot, sorted.
    pub ext_cols: Vec<usize>,
    /// Neighbor ranks (sorted). A neighbor is any rank owning a ghost column.
    pub neighbors: Vec<usize>,
    /// Per neighbor slot: the ghost slots owned by that neighbor
    /// (in increasing global order), flat in one arena.
    pub ghosts_of: SlotArena,
    /// Per neighbor slot: local rows adjacent to that neighbor
    /// (in increasing global order — the agreed message ordering),
    /// flat in one arena.
    pub boundary_rows_to: SlotArena,
    /// Reciprocal of the diagonal of `a_int`, one entry per owned row
    /// (validated nonzero and finite at [`distribute`] time so the sweeps
    /// never binary-search the diagonal or divide by zero mid-iteration).
    pub inv_diag: Vec<f64>,
    /// Local right-hand side.
    pub b: Vec<f64>,
    /// Local solution piece.
    pub x: Vec<f64>,
    /// Local residual piece (kept exact at parallel-step boundaries).
    pub r: Vec<f64>,
}

impl LocalSystem {
    /// Number of owned rows.
    pub fn nrows(&self) -> usize {
        self.rows.len()
    }

    /// Number of neighbors.
    pub fn nneighbors(&self) -> usize {
        self.neighbors.len()
    }

    /// Neighbor slot of rank `q`.
    pub fn neighbor_slot(&self, q: usize) -> usize {
        self.neighbors
            .binary_search(&q)
            .expect("message from a non-neighbor rank")
    }

    /// Squared 2-norm of the local residual (4-lane kernel; the chunked
    /// accumulation folds in index order, bit-identical to the naive sum).
    pub fn residual_norm_sq(&self) -> f64 {
        dsw_sparse::vecops::norm2_sq(&self.r)
    }

    /// One Gauss–Seidel sweep over the owned rows (the paper's local
    /// solver). Updates `x` and `r` in place and *accumulates* into
    /// `ghost_dr` — aligned with `ext_cols` — the additive residual deltas
    /// this sweep induces on off-process rows. Returns the flop count.
    ///
    /// `ghost_dr` must be zeroed by the caller before the first sweep.
    pub fn gs_sweep(&mut self, ghost_dr: &mut [f64]) -> u64 {
        debug_assert_eq!(ghost_dr.len(), self.ext_cols.len());
        let m = self.nrows();
        let mut flops = 0u64;
        for i in 0..m {
            let delta = self.r[i] * self.inv_diag[i];
            self.x[i] += delta;
            // In-block residual updates through the symmetric local row.
            // Column indices within a row are distinct, so the scatter is
            // order-free; the zipped slices drop per-element bounds checks.
            let cols = self.a_int.row_cols(i);
            for (&j, &aij) in cols.iter().zip(self.a_int.row_values(i)) {
                self.r[j] -= aij * delta;
            }
            // Off-block contributions: a_{ji} = a_{ij}.
            let ext = self.a_ext_ptr[i]..self.a_ext_ptr[i + 1];
            let ext_n = ext.len() as u64;
            for (&slot, &v) in self.a_ext_idx[ext.clone()].iter().zip(&self.a_ext_val[ext]) {
                ghost_dr[slot as usize] -= v * delta;
            }
            flops += 2 * (cols.len() as u64 + ext_n) + 1;
        }
        flops
    }

    /// A Gauss–Seidel sweep visiting the owned rows in `order` (each local
    /// row exactly once) — the Multicolor local-solver path. Semantics
    /// otherwise identical to [`LocalSystem::gs_sweep`].
    pub fn gs_sweep_ordered(&mut self, order: &[u32], ghost_dr: &mut [f64]) -> u64 {
        debug_assert_eq!(order.len(), self.nrows());
        let mut flops = 0u64;
        for &iu in order {
            let i = iu as usize;
            let delta = self.r[i] * self.inv_diag[i];
            self.x[i] += delta;
            let cols = self.a_int.row_cols(i);
            for (&j, &aij) in cols.iter().zip(self.a_int.row_values(i)) {
                self.r[j] -= aij * delta;
            }
            let ext = self.a_ext_ptr[i]..self.a_ext_ptr[i + 1];
            let ext_n = ext.len() as u64;
            for (&slot, &v) in self.a_ext_idx[ext.clone()].iter().zip(&self.a_ext_val[ext]) {
                ghost_dr[slot as usize] -= v * delta;
            }
            flops += 2 * (cols.len() as u64 + ext_n) + 1;
        }
        flops
    }

    /// The residual values at the boundary rows facing neighbor slot `s`,
    /// in the agreed ordering. Collected straight into the message slab, so
    /// typical boundary sizes (≤ 8 rows) never touch the heap.
    pub fn boundary_residuals(&self, s: usize) -> super::msg::SlabVec {
        self.boundary_rows_to[s]
            .iter()
            .map(|&i| self.r[i as usize])
            .collect()
    }

    /// Gathers the values of `src` at the slots listed for neighbor `s` in
    /// `arena` into the recycled `out` buffer (cleared first). The scratch
    /// variant of [`LocalSystem::boundary_residuals`]-style gathers: hot
    /// paths reuse one allocation per rank across epochs instead of
    /// allocating a fresh `Vec` per message.
    #[inline]
    pub fn gather_slots(arena: &SlotArena, s: usize, src: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(arena[s].iter().map(|&i| src[i as usize]));
    }
}

/// Splits `(A, b, x0)` over the parts of `partition`.
///
/// The matrix must be square and structurally symmetric (the solvers rely
/// on `a_{ji} = a_{ij}`). The initial residual `r = b − A x0` is computed
/// globally and scattered — the setup phase of the paper's artifact, not
/// counted as solver communication.
pub fn distribute(
    a: &CsrMatrix,
    b: &[f64],
    x0: &[f64],
    partition: &Partition,
) -> Result<Vec<LocalSystem>, SparseError> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(SparseError::Shape(
            "distribute: matrix must be square".into(),
        ));
    }
    if b.len() != n || x0.len() != n {
        return Err(SparseError::Shape(
            "distribute: vector length mismatch".into(),
        ));
    }
    if partition.assignment().len() != n {
        return Err(SparseError::Shape(
            "distribute: partition length mismatch".into(),
        ));
    }
    let nparts = partition.nparts();
    let r_global = a.residual(b, x0);
    let owner = partition.assignment();
    let part_rows = partition.part_rows();

    let mut out = Vec::with_capacity(nparts);
    for (p, rows) in part_rows.iter().enumerate() {
        if rows.is_empty() {
            return Err(SparseError::Shape(format!(
                "distribute: part {p} owns no rows"
            )));
        }
        // Local index of each owned global row.
        let local_of: HashMap<usize, usize> =
            rows.iter().enumerate().map(|(l, &g)| (g, l)).collect();

        // Ghost columns: off-process columns of owned rows, sorted global.
        let mut ext_cols: Vec<usize> = Vec::new();
        for &g in rows {
            for (c, _) in a.row(g) {
                if owner[c] != p {
                    ext_cols.push(c);
                }
            }
        }
        ext_cols.sort_unstable();
        ext_cols.dedup();
        let ghost_of_global: HashMap<usize, u32> = ext_cols
            .iter()
            .enumerate()
            .map(|(s, &g)| (g, s as u32))
            .collect();

        // Neighbors and per-neighbor ghost slots.
        let mut neighbors: Vec<usize> = ext_cols.iter().map(|&c| owner[c]).collect();
        neighbors.sort_unstable();
        neighbors.dedup();
        let neighbor_slot: HashMap<usize, usize> =
            neighbors.iter().enumerate().map(|(s, &q)| (q, s)).collect();
        let mut ghosts_of = vec![Vec::new(); neighbors.len()];
        for (slot, &c) in ext_cols.iter().enumerate() {
            ghosts_of[neighbor_slot[&owner[c]]].push(slot as u32);
        }

        // Local interior block and external entries.
        let mut bld = dsw_sparse::CooBuilder::new(rows.len(), rows.len());
        let mut a_ext_ptr = Vec::with_capacity(rows.len() + 1);
        let mut a_ext_idx: Vec<u32> = Vec::new();
        let mut a_ext_val: Vec<f64> = Vec::new();
        a_ext_ptr.push(0);
        // Boundary rows per neighbor: local rows with any entry owned by q.
        let mut boundary_sets: Vec<Vec<u32>> = vec![Vec::new(); neighbors.len()];
        for (li, &g) in rows.iter().enumerate() {
            let mut touched: Vec<usize> = Vec::new();
            for (c, v) in a.row(g) {
                match local_of.get(&c) {
                    Some(&lc) => bld.push(li, lc, v),
                    None => {
                        a_ext_idx.push(ghost_of_global[&c]);
                        a_ext_val.push(v);
                        let q = neighbor_slot[&owner[c]];
                        if !touched.contains(&q) {
                            touched.push(q);
                        }
                    }
                }
            }
            a_ext_ptr.push(a_ext_idx.len());
            for q in touched {
                boundary_sets[q].push(li as u32);
            }
        }
        // `rows` is sorted, so local order == global order: the boundary
        // lists are already in the agreed (global) ordering.
        let a_int = bld.build()?;

        // Cache the reciprocal diagonal for the sweeps; a zero or missing
        // diagonal must fail here, at setup, not divide by zero mid-sweep.
        let mut inv_diag = Vec::with_capacity(rows.len());
        for (li, &g) in rows.iter().enumerate() {
            let aii = a_int.get(li, li);
            if aii == 0.0 || !aii.is_finite() {
                return Err(SparseError::Numeric(format!(
                    "distribute: row {g} has a zero or non-finite diagonal ({aii})"
                )));
            }
            inv_diag.push(1.0 / aii);
        }

        out.push(LocalSystem {
            rank: p,
            rows: rows.clone(),
            a_int,
            a_ext_ptr,
            a_ext_idx,
            a_ext_val,
            ext_cols,
            neighbors,
            ghosts_of: SlotArena::from_lists(&ghosts_of),
            boundary_rows_to: SlotArena::from_lists(&boundary_sets),
            inv_diag,
            b: rows.iter().map(|&g| b[g]).collect(),
            x: rows.iter().map(|&g| x0[g]).collect(),
            r: rows.iter().map(|&g| r_global[g]).collect(),
        });
    }
    Ok(out)
}

/// Gathers the global solution from local pieces (measurement hook).
pub fn gather_x(locals: &[LocalSystem], n: usize) -> Vec<f64> {
    let mut x = vec![0.0; n];
    for ls in locals {
        for (li, &g) in ls.rows.iter().enumerate() {
            x[g] = ls.x[li];
        }
    }
    x
}

/// Gathers the global residual from the locally maintained pieces.
pub fn gather_r(locals: &[LocalSystem], n: usize) -> Vec<f64> {
    let mut r = vec![0.0; n];
    for ls in locals {
        for (li, &g) in ls.rows.iter().enumerate() {
            r[g] = ls.r[li];
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsw_partition::partition_strip;
    use dsw_sparse::gen;

    fn setup(nx: usize, ny: usize, p: usize) -> (CsrMatrix, Vec<f64>, Vec<f64>, Vec<LocalSystem>) {
        let a = gen::grid2d_poisson(nx, ny);
        let n = a.nrows();
        let b = gen::random_rhs(n, 5);
        let x0 = gen::random_guess(n, 6);
        let part = partition_strip(n, p);
        let locals = distribute(&a, &b, &x0, &part).unwrap();
        (a, b, x0, locals)
    }

    #[test]
    fn distribute_covers_all_rows() {
        let (a, _, _, locals) = setup(6, 6, 4);
        let total: usize = locals.iter().map(|l| l.nrows()).sum();
        assert_eq!(total, a.nrows());
        let mut all: Vec<usize> = locals.iter().flat_map(|l| l.rows.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..36).collect::<Vec<_>>());
    }

    #[test]
    fn initial_residual_is_exact() {
        let (a, b, x0, locals) = setup(6, 6, 4);
        let r_true = a.residual(&b, &x0);
        let r = gather_r(&locals, a.nrows());
        for (m, t) in r.iter().zip(&r_true) {
            assert!((m - t).abs() < 1e-14);
        }
        let x = gather_x(&locals, a.nrows());
        assert_eq!(x, x0);
    }

    #[test]
    fn agreed_orderings_match_across_ranks() {
        let (_, _, _, locals) = setup(8, 5, 3);
        for ls in &locals {
            for (s, &q) in ls.neighbors.iter().enumerate() {
                let other = &locals[q];
                let back = other.neighbor_slot(ls.rank);
                // My ghost slots owned by q map to exactly q's boundary rows
                // facing me, in the same (global) order.
                let my_ghost_globals: Vec<usize> = ls.ghosts_of[s]
                    .iter()
                    .map(|&slot| ls.ext_cols[slot as usize])
                    .collect();
                let their_boundary_globals: Vec<usize> = other.boundary_rows_to[back]
                    .iter()
                    .map(|&li| other.rows[li as usize])
                    .collect();
                assert_eq!(my_ghost_globals, their_boundary_globals);
            }
        }
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let (_, _, _, locals) = setup(7, 7, 5);
        for ls in &locals {
            for &q in &ls.neighbors {
                assert!(
                    locals[q].neighbors.contains(&ls.rank),
                    "asymmetric neighbor relation {} -> {}",
                    ls.rank,
                    q
                );
            }
        }
    }

    #[test]
    fn gs_sweep_matches_global_semantics() {
        // One sweep on every rank (sequentially, applying ghost updates
        // afterwards) must equal block Gauss-Seidel: verify the maintained
        // residuals equal b - A x after cross-rank deltas are exchanged.
        let (a, b, _, mut locals) = setup(6, 6, 3);
        let n = a.nrows();
        // Every rank sweeps against the same initial state.
        let mut all_ghost_dr: Vec<Vec<f64>> = Vec::new();
        for ls in locals.iter_mut() {
            let mut gdr = vec![0.0; ls.ext_cols.len()];
            ls.gs_sweep(&mut gdr);
            all_ghost_dr.push(gdr);
        }
        // Deliver ghost deltas.
        let owners: Vec<usize> = (0..locals.len()).collect();
        for &p in &owners {
            let (ext_cols, gdr) = (locals[p].ext_cols.clone(), all_ghost_dr[p].clone());
            for (slot, &gcol) in ext_cols.iter().enumerate() {
                let q = locals.iter().position(|l| l.rows.contains(&gcol)).unwrap();
                let li = locals[q].rows.binary_search(&gcol).unwrap();
                locals[q].r[li] += gdr[slot];
            }
        }
        let x = gather_x(&locals, n);
        let r_true = a.residual(&b, &x);
        let r = gather_r(&locals, n);
        for (m, t) in r.iter().zip(&r_true) {
            assert!((m - t).abs() < 1e-12, "residual mismatch {m} vs {t}");
        }
    }

    #[test]
    fn single_part_has_no_neighbors() {
        let (a, _, _, locals) = setup(4, 4, 1);
        assert_eq!(locals.len(), 1);
        assert!(locals[0].neighbors.is_empty());
        assert!(locals[0].ext_cols.is_empty());
        assert_eq!(locals[0].a_int.nnz(), a.nnz());
    }

    #[test]
    fn inv_diag_matches_local_blocks() {
        let (_, _, _, locals) = setup(7, 6, 4);
        for ls in &locals {
            assert_eq!(ls.inv_diag.len(), ls.nrows());
            for i in 0..ls.nrows() {
                let aii = ls.a_int.get(i, i);
                assert!((ls.inv_diag[i] - 1.0 / aii).abs() <= f64::EPSILON * ls.inv_diag[i].abs());
            }
        }
    }

    #[test]
    fn zero_or_missing_diagonal_is_rejected_at_distribute_time() {
        // A 3×3 matrix whose middle row has no diagonal entry at all; the
        // old code would have hit it as a divide-by-zero mid-sweep.
        let mut bld = dsw_sparse::CooBuilder::new(3, 3);
        bld.push(0, 0, 2.0);
        bld.push(0, 1, -1.0);
        bld.push(1, 0, -1.0);
        bld.push(1, 2, -1.0);
        bld.push(2, 1, -1.0);
        bld.push(2, 2, 2.0);
        let a = bld.build().unwrap();
        let part = partition_strip(3, 1);
        let err = distribute(&a, &[0.0; 3], &[0.0; 3], &part).unwrap_err();
        assert!(
            matches!(err, SparseError::Numeric(_)),
            "expected a numeric setup error, got {err:?}"
        );

        // An explicit zero diagonal is rejected the same way.
        let mut bld = dsw_sparse::CooBuilder::new(2, 2);
        bld.push(0, 0, 1.0);
        bld.push(1, 1, 0.0);
        let a = bld.build().unwrap();
        let part = partition_strip(2, 2);
        assert!(matches!(
            distribute(&a, &[0.0; 2], &[0.0; 2], &part),
            Err(SparseError::Numeric(_))
        ));
    }

    #[test]
    fn rejects_bad_inputs() {
        let a = gen::grid2d_poisson(3, 3);
        let part = partition_strip(9, 2);
        assert!(distribute(&a, &[0.0; 5], &[0.0; 9], &part).is_err());
        let part_bad = partition_strip(5, 2);
        assert!(distribute(&a, &[0.0; 9], &[0.0; 9], &part_bad).is_err());
    }
}
