//! Configuration and driver hooks for the self-healing layer.
//!
//! The paper's protocol assumes a reliable transport; this reproduction's
//! recovery layer makes Distributed Southwell converge on an unreliable one
//! (message drops, duplicates, delays, rank stalls — see `dsw_rma::fault`).
//! It has three independent mechanisms:
//!
//! 1. **Sequencing** — every put carries a per-link monotone sequence
//!    number ([`super::seq`]); receivers discard duplicates idempotently
//!    and apply reordered messages additively-only.
//! 2. **Periodic invariant audit** — every `audit_every` parallel steps
//!    each rank snapshots its boundary solution and residual values to all
//!    neighbors ([`super::msg::DistMsg::Audit`]). Receivers resync their
//!    ghost layer and *recompute* their boundary residual rows from the
//!    snapshots, overwriting when the drift exceeds `audit_tol` — healing
//!    whatever state dropped messages corrupted.
//! 3. **Freeze watchdog** — when the driver observes a globally idle step
//!    (no relaxations, no messages, residual above target) it calls
//!    [`Recoverable::nudge`]; nudged ranks force an explicit residual-norm
//!    rebroadcast next step, restoring exact norms so the Southwell
//!    tie-break elects a winner. Deadlock is declared only if nudging
//!    fails to restore progress.
//!
//! All recovery traffic is counted under `CommClass::Recovery`, so its
//! overhead stays separable from the paper's Table 3 message classes.

/// Knobs of the self-healing layer. Lives in
/// [`DsConfig`](super::distributed_southwell::DsConfig).
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// Wrap every put in a per-link sequence number (8 modelled bytes) and
    /// gate application on the receiver's [`super::seq::SeqIn`] verdict.
    pub sequencing: bool,
    /// Broadcast an audit snapshot to all neighbors every this many
    /// parallel steps (`None` disables the audit).
    pub audit_every: Option<usize>,
    /// Relative drift tolerance of the audit: a recomputed boundary
    /// residual row overwrites the maintained value only when they differ
    /// by more than `audit_tol * (1 + |recomputed|)`, so a fault-free run
    /// is never perturbed.
    pub audit_tol: f64,
    /// React to the driver's freeze watchdog (see [`Recoverable::nudge`]).
    pub watchdog: bool,
}

impl RecoveryConfig {
    /// Everything off — the paper's exact protocol and metrics.
    pub fn off() -> Self {
        RecoveryConfig {
            sequencing: false,
            audit_every: None,
            audit_tol: 1e-9,
            watchdog: false,
        }
    }

    /// The standard self-healing preset: sequencing on, audit every 8
    /// steps, watchdog on.
    pub fn standard() -> Self {
        RecoveryConfig {
            sequencing: true,
            audit_every: Some(8),
            audit_tol: 1e-9,
            watchdog: true,
        }
    }

    /// Whether any mechanism is enabled.
    pub fn is_active(&self) -> bool {
        self.sequencing || self.audit_every.is_some() || self.watchdog
    }
}

impl Default for RecoveryConfig {
    /// Defaults to [`RecoveryConfig::off`]: recovery never changes the
    /// paper's measurements unless asked for.
    fn default() -> Self {
        RecoveryConfig::off()
    }
}

/// Driver-side hooks a rank algorithm may implement to participate in
/// recovery. Every method has a no-op default, so solvers without a
/// self-healing layer (Block Jacobi, Parallel Southwell) satisfy the trait
/// as-is.
pub trait Recoverable {
    /// Called by the driver after a globally idle step (zero relaxations,
    /// zero messages, residual above target). A rank that can react — e.g.
    /// by forcing a residual-norm rebroadcast next step — returns `true`;
    /// the driver declares deadlock only when no rank reacts or repeated
    /// nudges fail to restore progress.
    fn nudge(&mut self) -> bool {
        false
    }

    /// Boundary residual rows overwritten by the invariant audit so far.
    fn drift_repairs(&self) -> u64 {
        0
    }

    /// Messages discarded as duplicate / stale / subsumed so far.
    fn stale_discards(&self) -> u64 {
        0
    }
}

/// A redundancy-coded host participates in recovery through its hosted
/// solver instances: a nudge fans out to every instance (any reaction
/// counts), and the counters sum physical events across instances — plus,
/// for `stale_discards`, the duplicates the wrapper's first-arrival
/// reconciliation itself discarded.
impl<A> Recoverable for dsw_rma::RedundantHost<A>
where
    A: dsw_rma::RankAlgorithm + Recoverable,
{
    fn nudge(&mut self) -> bool {
        let mut any = false;
        for (_, solver) in self.solvers_mut() {
            any |= solver.nudge();
        }
        any
    }

    fn drift_repairs(&self) -> u64 {
        self.solvers().map(|(_, s)| s.drift_repairs()).sum()
    }

    fn stale_discards(&self) -> u64 {
        self.reconciled() + self.solvers().map(|(_, s)| s.stale_discards()).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(!RecoveryConfig::off().is_active());
        assert!(!RecoveryConfig::default().is_active());
        let std = RecoveryConfig::standard();
        assert!(std.is_active());
        assert!(std.sequencing && std.watchdog);
        assert_eq!(std.audit_every, Some(8));
    }

    #[test]
    fn default_hooks_are_noops() {
        struct Plain;
        impl Recoverable for Plain {}
        let mut p = Plain;
        assert!(!p.nudge());
        assert_eq!(p.drift_repairs(), 0);
        assert_eq!(p.stale_discards(), 0);
    }
}
