//! Message payloads exchanged by the distributed solvers.

/// Inline capacity of a [`SlabVec`]: boundary payloads at paper-scale rank
/// counts (thousands of ranks, a dozen rows per subdomain) are almost
/// always this short, so the common case rides in the message itself.
const INLINE: usize = 8;

/// A small-buffer-optimized f64 payload slab.
///
/// Up to [`INLINE`] values are stored inline in the message; longer
/// payloads spill to a heap `Vec`. Replaces `Vec<f64>` in [`DistMsg`] so
/// the per-message malloc/free churn on the epoch-close hot path
/// disappears for typical boundary sizes. Derefs to `&[f64]`, so
/// receivers read it exactly like the old `Vec<f64>` fields; modelled
/// wire size stays a pure function of `len()`.
#[derive(Clone)]
pub enum SlabVec {
    /// The short form: `buf[..len]` is the payload.
    Inline {
        /// Number of live values in `buf`.
        len: u8,
        /// Inline storage.
        buf: [f64; INLINE],
    },
    /// The spilled form for payloads longer than [`INLINE`].
    Heap(Vec<f64>),
}

impl SlabVec {
    /// An empty payload (no heap allocation).
    #[inline]
    pub fn new() -> Self {
        SlabVec::Inline {
            len: 0,
            buf: [0.0; INLINE],
        }
    }

    /// Copies a slice, staying inline when it fits.
    pub fn from_slice(s: &[f64]) -> Self {
        if s.len() <= INLINE {
            let mut buf = [0.0; INLINE];
            buf[..s.len()].copy_from_slice(s);
            SlabVec::Inline {
                len: s.len() as u8,
                buf,
            }
        } else {
            SlabVec::Heap(s.to_vec())
        }
    }
}

impl Default for SlabVec {
    fn default() -> Self {
        SlabVec::new()
    }
}

impl std::ops::Deref for SlabVec {
    type Target = [f64];
    #[inline]
    fn deref(&self) -> &[f64] {
        match self {
            SlabVec::Inline { len, buf } => &buf[..*len as usize],
            SlabVec::Heap(v) => v,
        }
    }
}

impl std::fmt::Debug for SlabVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl From<Vec<f64>> for SlabVec {
    fn from(v: Vec<f64>) -> Self {
        if v.len() <= INLINE {
            SlabVec::from_slice(&v)
        } else {
            SlabVec::Heap(v)
        }
    }
}

impl<'a> IntoIterator for &'a SlabVec {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<f64> for SlabVec {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut buf = [0.0; INLINE];
        let mut len = 0usize;
        let mut it = iter.into_iter();
        for v in &mut it {
            if len == INLINE {
                // Spill: move the inline prefix to the heap, finish there.
                let mut heap = Vec::with_capacity(INLINE * 2);
                heap.extend_from_slice(&buf);
                heap.push(v);
                heap.extend(it);
                return SlabVec::Heap(heap);
            }
            buf[len] = v;
            len += 1;
        }
        SlabVec::Inline {
            len: len as u8,
            buf,
        }
    }
}

/// What one rank puts into a neighbor's memory window.
///
/// Vectors use the *agreed ordering* of [`super::layout`]: the receiver's
/// boundary rows facing the sender (for `dr`) and the receiver's ghost
/// slots owned by the sender (for `boundary_r`) — both in increasing global
/// order, so no index arrays travel on the wire.
#[derive(Debug, Clone)]
pub enum DistMsg {
    /// Sent by a rank that relaxed its subdomain (Alg. 1 l.8, Alg. 2 l.10,
    /// Alg. 3 l.17).
    Solve {
        /// Additive residual deltas for the receiver's boundary rows.
        dr: SlabVec,
        /// The sender's boundary residuals facing the receiver — the ghost
        /// layer (`z`) overwrite. Empty for methods without ghost layers.
        boundary_r: SlabVec,
        /// Piggybacked ‖r_sender‖² (costs bytes, not an extra message).
        norm_sq: f64,
        /// The sender's current estimate of ‖r_receiver‖² (Distributed
        /// Southwell's `Γ` piggyback; 0 where unused).
        est_of_target_sq: f64,
    },
    /// An explicit residual update ("Res comm" in Table 3): Parallel
    /// Southwell's changed-norm broadcast (Alg. 2 l.20) or Distributed
    /// Southwell's deadlock-avoidance message (Alg. 3 l.29).
    Residual {
        /// The sender's boundary residuals facing the receiver
        /// (empty for Parallel Southwell, which keeps no ghost layer).
        boundary_r: SlabVec,
        /// ‖r_sender‖².
        norm_sq: f64,
        /// The sender's estimate of ‖r_receiver‖².
        est_of_target_sq: f64,
    },
    /// A state snapshot for the periodic invariant audit (recovery traffic —
    /// this reproduction's self-healing extension, not part of the paper's
    /// protocol). Carries everything the receiver needs to *recompute* its
    /// boundary residual rows from scratch instead of trusting the additive
    /// delta history: the sender's current solution and residual values at
    /// the boundary facing the receiver, in the agreed ordering.
    Audit {
        /// The sender's `x` at its boundary rows facing the receiver — the
        /// receiver's ghost solution values for the slots the sender owns.
        boundary_x: SlabVec,
        /// The sender's boundary residuals (ghost-layer `z` resync).
        boundary_r: SlabVec,
        /// ‖r_sender‖².
        norm_sq: f64,
        /// The sender's estimate of ‖r_receiver‖².
        est_of_target_sq: f64,
    },
}

impl DistMsg {
    /// Modelled wire size in bytes.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            DistMsg::Solve { dr, boundary_r, .. } => 8 * (dr.len() + boundary_r.len()) as u64 + 16,
            DistMsg::Residual { boundary_r, .. } => 8 * boundary_r.len() as u64 + 16,
            DistMsg::Audit {
                boundary_x,
                boundary_r,
                ..
            } => 8 * (boundary_x.len() + boundary_r.len()) as u64 + 16,
        }
    }
}

/// A [`DistMsg`] wrapped with a per-(sender, receiver) monotone sequence
/// number, so receivers can detect gaps, duplicates, and reordering caused
/// by an unreliable transport (see `dist::seq`).
///
/// `seq == 0` means *unsequenced*: the sender runs with the sequencing
/// layer disabled and the receiver applies the body unconditionally —
/// exactly the paper's protocol, at zero wire overhead. Real sequence
/// numbers start at 1 and cost 8 modelled bytes.
#[derive(Debug, Clone)]
pub struct SeqMsg {
    /// Monotone per-link sequence number (0 = unsequenced).
    pub seq: u64,
    /// The protocol payload.
    pub body: DistMsg,
}

impl SeqMsg {
    /// Wraps `body` without a sequence number (sequencing disabled).
    pub fn unsequenced(body: DistMsg) -> Self {
        SeqMsg { seq: 0, body }
    }

    /// Modelled wire size: the body plus 8 bytes when sequenced.
    pub fn wire_bytes(&self) -> u64 {
        self.body.wire_bytes() + if self.seq > 0 { 8 } else { 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_vec_is_inline_up_to_capacity_and_spills_beyond() {
        for n in 0..=INLINE + 5 {
            let vals: Vec<f64> = (0..n).map(|i| i as f64 * 1.5 - 2.0).collect();
            for sv in [
                vals.iter().copied().collect::<SlabVec>(),
                SlabVec::from_slice(&vals),
                SlabVec::from(vals.clone()),
            ] {
                assert_eq!(&*sv, &vals[..], "payload at n = {n}");
                assert_eq!(
                    matches!(sv, SlabVec::Inline { .. }),
                    n <= INLINE,
                    "storage class at n = {n}"
                );
                let cloned = sv.clone();
                assert_eq!(&*cloned, &vals[..], "clone at n = {n}");
            }
        }
        assert!(SlabVec::new().is_empty());
        assert!(SlabVec::default().is_empty());
    }

    #[test]
    fn wire_bytes_counts_payload() {
        let m = DistMsg::Solve {
            dr: vec![1.0; 3].into(),
            boundary_r: vec![2.0; 2].into(),
            norm_sq: 1.0,
            est_of_target_sq: 0.5,
        };
        assert_eq!(m.wire_bytes(), 8 * 5 + 16);
        let r = DistMsg::Residual {
            boundary_r: SlabVec::new(),
            norm_sq: 1.0,
            est_of_target_sq: 0.0,
        };
        assert_eq!(r.wire_bytes(), 16);
        let a = DistMsg::Audit {
            boundary_x: vec![0.0; 4].into(),
            boundary_r: vec![0.0; 4].into(),
            norm_sq: 1.0,
            est_of_target_sq: 0.5,
        };
        assert_eq!(a.wire_bytes(), 8 * 8 + 16);
    }

    #[test]
    fn seq_wrapper_costs_bytes_only_when_sequenced() {
        let body = DistMsg::Residual {
            boundary_r: SlabVec::new(),
            norm_sq: 1.0,
            est_of_target_sq: 0.0,
        };
        assert_eq!(SeqMsg::unsequenced(body.clone()).wire_bytes(), 16);
        assert_eq!(SeqMsg { seq: 7, body }.wire_bytes(), 24);
    }
}
