//! Distributed Southwell, block form (Algorithm 3 — the paper's
//! contribution).
//!
//! The premise (§3): neighbor residual norms "do not need to be known
//! exactly". Each rank keeps
//!
//! * `Γ` (`gamma_sq`) — *estimates* of the neighbors' residual norms,
//! * `z` — a ghost layer holding its copy of the residual values at the
//!   neighbors' boundary points,
//! * `Γ̃` (`tilde_sq`) — its record of what each neighbor currently believes
//!   *its own* norm to be.
//!
//! When a rank relaxes, formula (3) of the paper lets it compute the effect
//! of its relaxation on each neighbor's boundary residuals from purely local
//! data (`a_{ηj,i} = a_{i,ηj}` is stored with row `i`), so it refreshes `z`
//! and `Γ` **without communication**. `Γ̃` is what makes the scheme safe:
//! if `‖r_p‖ < Γ̃_p[q]`, neighbor `q` overestimates `p` and might wait on
//! `p` forever — `p` then sends `q` one explicit residual update. That is
//! the *only* explicit communication, which is why DS needs roughly a third
//! of Parallel Southwell's messages (Tables 2–3).
//!
//! ### Crossing-message rule
//!
//! Algorithm 3 overwrites `Γ̃` with the estimate piggybacked on every
//! incoming message. When two neighbors send to each other in the *same*
//! epoch, the piggybacked estimates are mutually stale: `q`'s own piggyback
//! overwrites `p`'s estimate of `q` after `q` computed the estimate field it
//! sent. To keep `Γ̃` exact — the property the paper relies on ("this value
//! is always exactly known") — the receiver ignores the estimate field from
//! a sender it itself messaged in that epoch; its own piggyback, which it
//! already recorded at send time, is the sender's final word. The
//! `gamma_tilde_is_exact` integration test checks the invariant globally.

use super::layout::LocalSystem;
use super::local_solver::{LocalSolver, LocalSolverImpl};
use super::msg::{DistMsg, SeqMsg, SlabVec};
use super::recovery::{Recoverable, RecoveryConfig};
use super::seq::{SeqIn, SeqVerdict};
use crate::scalar::beats;
use dsw_rma::{CommClass, Envelope, PhaseCtx, RankAlgorithm};

/// Toggles for the ablation studies (see DESIGN.md).
#[derive(Debug, Clone, Copy)]
pub struct DsConfig {
    /// Refine `Γ` and `z` locally when relaxing (the paper's scheme).
    /// Disabled, estimates change only via incoming messages, and far more
    /// explicit updates are needed (`ablation_ghost` bench).
    pub refine_estimates: bool,
    /// Send deadlock-avoidance messages (Alg. 3 lines 27–30). Disabled, the
    /// method can freeze exactly like the ICCS'16 scheme.
    pub deadlock_avoidance: bool,
    /// Local subdomain solver (the artifact's `-loc_solver` switch).
    pub local_solver: LocalSolver,
    /// Variable-threshold message coalescing — the further
    /// communication-reduction possibility the paper points to in §5
    /// (de Jager & Bradley's asynchronous variable-threshold scheme).
    /// After relaxing, the residual deltas for neighbor `q` are sent only
    /// once their accumulated 2-norm reaches `threshold · ‖r_p‖`; smaller
    /// contributions stay in a local pending buffer and ride along with the
    /// next flush. `0.0` (default) reproduces Algorithm 3 exactly. The
    /// receiver's maintained residual lags by the pending amount — an
    /// additional, bounded estimate error the protocol already tolerates —
    /// and because the threshold is relative to the sender's shrinking
    /// residual norm, every contribution is eventually delivered.
    pub solve_msg_threshold: f64,
    /// Self-healing layer for unreliable transports (sequencing, periodic
    /// invariant audit, freeze watchdog — see [`RecoveryConfig`]). Off by
    /// default, which reproduces the paper's protocol and metrics exactly.
    pub recovery: RecoveryConfig,
}

impl Default for DsConfig {
    fn default() -> Self {
        DsConfig {
            refine_estimates: true,
            deadlock_avoidance: true,
            local_solver: LocalSolver::GaussSeidel,
            solve_msg_threshold: 0.0,
            recovery: RecoveryConfig::off(),
        }
    }
}

/// One rank of block Distributed Southwell.
pub struct DistributedSouthwellRank {
    /// The local piece of the system.
    pub ls: LocalSystem,
    /// `Γ`: estimated neighbor residual norms (squared), per neighbor slot.
    pub gamma_sq: Vec<f64>,
    /// `Γ̃`: per neighbor slot, the (exact) record of that neighbor's
    /// estimate of *this* rank's norm (squared).
    pub tilde_sq: Vec<f64>,
    /// Ghost residual layer, aligned with `ls.ext_cols`.
    pub z: Vec<f64>,
    /// ‖r_p‖² cache.
    my_norm_sq: f64,
    /// Whether `ls.r` changed since `my_norm_sq` was last computed (solve
    /// deltas, audit repairs, or a local relaxation). While clean, the
    /// cached norm is bit-identical to a recomputation — the norm is a
    /// pure function of `r` — so the per-phase recompute is skipped.
    norm_dirty: bool,
    /// Which neighbors this rank messaged in the previous phase
    /// (for the crossing-message rule).
    sent_prev_phase: Vec<bool>,
    /// Whether this rank relaxed in the most recent parallel step
    /// (observability hook for tests and the harness).
    pub relaxed_last_step: bool,
    cfg: DsConfig,
    solver: LocalSolverImpl,
    ghost_dr: Vec<f64>,
    /// Residual deltas not yet delivered under the variable-threshold
    /// extension (always zero when `solve_msg_threshold == 0`).
    pending_dr: Vec<f64>,
    /// Σ dr² of solve messages flushed in the current step's phase 1 —
    /// still in flight at the step boundary (delivered at the receivers'
    /// next phase 0). Feeds [`RankAlgorithm::undelivered_delta_sq`].
    in_flight_flush_sq: f64,
    /// Cached Σ (parked + in-flight) delta² at the last step boundary.
    undelivered_sq: f64,
    // --- self-healing layer (see `super::recovery`) -------------------
    /// Next outgoing sequence number per neighbor link (sequencing).
    seq_out: Vec<u64>,
    /// Incoming sequence state per neighbor link.
    seq_in: Vec<SeqIn>,
    /// Sequence number of the last *applied* audit per neighbor; older
    /// messages from that neighbor are subsumed by the audit snapshot.
    last_audit_seq: Vec<u64>,
    /// Ghost *solution* values from audit snapshots, aligned with
    /// `ls.ext_cols`. Only meaningful where `audit_fresh` holds.
    ghost_x: Vec<f64>,
    /// Per neighbor slot: `ghost_x` currently equals that neighbor's true
    /// boundary solution (set by an applied audit, cleared by any applied
    /// solve message — the neighbor relaxed after the snapshot).
    audit_fresh: Vec<bool>,
    /// Neighbor slot owning each ghost slot (repair coverage check).
    owner_of_slot: Vec<u32>,
    /// Parallel steps this rank has executed (audit cadence).
    steps_done: usize,
    /// Watchdog flag: force a residual rebroadcast to all neighbors in the
    /// next phase 1 (set by [`Recoverable::nudge`]).
    force_rebroadcast: bool,
    /// Boundary residual rows overwritten by the invariant audit.
    pub drift_repairs: u64,
    /// Messages discarded as duplicate / stale / subsumed.
    pub stale_discards: u64,
}

impl DistributedSouthwellRank {
    /// Wraps local systems into Distributed Southwell ranks with the
    /// default configuration. `norms_sq` holds every rank's initial ‖r‖²
    /// and `r_global` the initial global residual (the setup exchange that
    /// fills the ghost layers exactly).
    pub fn build(locals: Vec<LocalSystem>, norms_sq: &[f64], r_global: &[f64]) -> Vec<Self> {
        Self::build_with(locals, norms_sq, r_global, DsConfig::default())
    }

    /// As [`build`](Self::build) with explicit configuration.
    pub fn build_with(
        locals: Vec<LocalSystem>,
        norms_sq: &[f64],
        r_global: &[f64],
        cfg: DsConfig,
    ) -> Vec<Self> {
        locals
            .into_iter()
            .map(|ls| {
                let gamma_sq: Vec<f64> = ls.neighbors.iter().map(|&q| norms_sq[q]).collect();
                let tilde_sq = vec![norms_sq[ls.rank]; ls.neighbors.len()];
                let z: Vec<f64> = ls.ext_cols.iter().map(|&g| r_global[g]).collect();
                let my = norms_sq[ls.rank];
                let nb = ls.neighbors.len();
                let g = ls.ext_cols.len();
                let mut owner_of_slot = vec![0u32; g];
                for (s, slots) in ls.ghosts_of.iter().enumerate() {
                    for &slot in slots {
                        owner_of_slot[slot as usize] = s as u32;
                    }
                }
                DistributedSouthwellRank {
                    solver: LocalSolverImpl::new(cfg.local_solver, &ls),
                    ls,
                    gamma_sq,
                    tilde_sq,
                    z,
                    my_norm_sq: my,
                    norm_dirty: true,
                    sent_prev_phase: vec![false; nb],
                    relaxed_last_step: false,
                    cfg,
                    ghost_dr: vec![0.0; g],
                    pending_dr: vec![0.0; g],
                    in_flight_flush_sq: 0.0,
                    undelivered_sq: 0.0,
                    seq_out: vec![0; nb],
                    seq_in: vec![SeqIn::new(); nb],
                    last_audit_seq: vec![0; nb],
                    ghost_x: vec![0.0; g],
                    audit_fresh: vec![false; nb],
                    owner_of_slot,
                    steps_done: 0,
                    force_rebroadcast: false,
                    drift_repairs: 0,
                    stale_discards: 0,
                }
            })
            .collect()
    }

    /// The Southwell criterion against the local *estimates*.
    fn wins(&self) -> bool {
        if self.my_norm_sq == 0.0 {
            return false;
        }
        self.ls
            .neighbors
            .iter()
            .zip(&self.gamma_sq)
            .all(|(&q, &g)| beats(self.my_norm_sq, self.ls.rank, g, q))
    }

    /// Recomputes `my_norm_sq` only if `ls.r` changed since the last
    /// computation. Skipping the recompute over an unchanged `r` yields
    /// the exact same bits, so protocol decisions are unaffected.
    #[inline]
    fn refresh_norm(&mut self) {
        if self.norm_dirty {
            self.my_norm_sq = self.ls.residual_norm_sq();
            self.norm_dirty = false;
        }
    }

    /// Declares that `ls` was mutated out-of-band (test harnesses, fault
    /// simulations), so the cached ‖r‖² must be recomputed at the next
    /// phase. Protocol-internal mutations set the flag themselves.
    pub fn invalidate_norm_cache(&mut self) {
        self.norm_dirty = true;
    }

    /// Sequences (when enabled) and puts one protocol message to the
    /// neighbor in slot `s`.
    fn send(&mut self, ctx: &mut PhaseCtx<SeqMsg>, s: usize, class: CommClass, body: DistMsg) {
        let seq = if self.cfg.recovery.sequencing {
            self.seq_out[s] += 1;
            self.seq_out[s]
        } else {
            0
        };
        let msg = SeqMsg { seq, body };
        let bytes = msg.wire_bytes();
        ctx.put(self.ls.neighbors[s], class, msg, bytes);
    }

    /// Applies one inbox batch with the sequencing verdicts of
    /// [`super::seq`], then runs the invariant audit repair if any audit
    /// snapshot was applied.
    ///
    /// Without recovery every message judges `FreshNewest` and this is
    /// exactly Algorithm 3's handling: residual deltas (solve only), ghost
    /// overwrite, `Γ` overwrite, and — subject to the crossing rule — `Γ̃`
    /// overwrite. Under sequencing, duplicates are discarded (idempotent
    /// redelivery), reordered stale messages contribute only their additive
    /// deltas, and messages older than an applied audit snapshot are
    /// discarded entirely (the snapshot subsumes their effect).
    fn apply_inbox(&mut self, inbox: &[Envelope<SeqMsg>], ctx: &mut PhaseCtx<SeqMsg>) {
        let mut any_audit = false;
        for env in inbox {
            let s = self.ls.neighbor_slot(env.src);
            let seq = env.payload.seq;
            let verdict = if seq > 0 {
                self.seq_in[s].judge(seq)
            } else {
                SeqVerdict::FreshNewest
            };
            if verdict == SeqVerdict::Duplicate || (seq > 0 && seq < self.last_audit_seq[s]) {
                self.stale_discards += 1;
                continue;
            }
            let newest = verdict == SeqVerdict::FreshNewest;
            match &env.payload.body {
                DistMsg::Solve {
                    dr,
                    boundary_r,
                    norm_sq,
                    est_of_target_sq,
                } => {
                    // Additive deltas apply exactly once whatever the order.
                    for (&li, &d) in self.ls.boundary_rows_to[s].iter().zip(dr) {
                        self.ls.r[li as usize] += d;
                    }
                    self.norm_dirty = true;
                    // The sender relaxed after its last audit snapshot, so
                    // the recorded ghost solution no longer matches.
                    self.audit_fresh[s] = false;
                    if newest {
                        for (&slot, &v) in self.ls.ghosts_of[s].iter().zip(boundary_r) {
                            self.z[slot as usize] = v;
                        }
                        self.gamma_sq[s] = *norm_sq;
                        if !self.sent_prev_phase[s] {
                            self.tilde_sq[s] = *est_of_target_sq;
                        }
                    }
                }
                DistMsg::Residual {
                    boundary_r,
                    norm_sq,
                    est_of_target_sq,
                } => {
                    if newest {
                        for (&slot, &v) in self.ls.ghosts_of[s].iter().zip(boundary_r) {
                            self.z[slot as usize] = v;
                        }
                        self.gamma_sq[s] = *norm_sq;
                        if !self.sent_prev_phase[s] {
                            self.tilde_sq[s] = *est_of_target_sq;
                        }
                    } else {
                        // Purely state-carrying and outdated: discard.
                        self.stale_discards += 1;
                    }
                }
                DistMsg::Audit {
                    boundary_x,
                    boundary_r,
                    norm_sq,
                    est_of_target_sq,
                } => {
                    if newest {
                        for ((&slot, &xv), &rv) in
                            self.ls.ghosts_of[s].iter().zip(boundary_x).zip(boundary_r)
                        {
                            self.ghost_x[slot as usize] = xv;
                            self.z[slot as usize] = rv;
                        }
                        self.gamma_sq[s] = *norm_sq;
                        if !self.sent_prev_phase[s] {
                            self.tilde_sq[s] = *est_of_target_sq;
                        }
                        if seq > 0 {
                            self.last_audit_seq[s] = seq;
                        }
                        self.audit_fresh[s] = true;
                        any_audit = true;
                    } else {
                        self.stale_discards += 1;
                    }
                }
            }
        }
        if any_audit {
            self.audit_repair(ctx);
        }
    }

    /// The invariant audit: recompute every boundary residual row whose
    /// external entries are all covered by fresh audit snapshots, and
    /// overwrite the maintained value when the drift exceeds the tolerance.
    /// Interior rows never drift (their residuals change only through the
    /// exact local relaxation), so the audit is boundary-only.
    fn audit_repair(&mut self, ctx: &mut PhaseCtx<SeqMsg>) {
        let tol = self.cfg.recovery.audit_tol;
        let mut flops = 0u64;
        for i in 0..self.ls.nrows() {
            let (k0, k1) = (self.ls.a_ext_ptr[i], self.ls.a_ext_ptr[i + 1]);
            if k0 == k1 {
                continue;
            }
            let covered = (k0..k1).all(|k| {
                self.audit_fresh[self.owner_of_slot[self.ls.a_ext_idx[k] as usize] as usize]
            });
            if !covered {
                continue;
            }
            let mut r_new = self.ls.b[i];
            for (j, aij) in self.ls.a_int.row(i) {
                r_new -= aij * self.ls.x[j];
            }
            for k in k0..k1 {
                r_new -= self.ls.a_ext_val[k] * self.ghost_x[self.ls.a_ext_idx[k] as usize];
            }
            flops += 2 * (self.ls.a_int.row_cols(i).len() + (k1 - k0)) as u64;
            if (r_new - self.ls.r[i]).abs() > tol * (1.0 + r_new.abs()) {
                self.ls.r[i] = r_new;
                self.drift_repairs += 1;
                self.norm_dirty = true;
            }
        }
        ctx.add_flops(flops);
    }

    /// The sender-side audit payload for neighbor slot `s`: boundary
    /// solution and residual values in the agreed ordering.
    fn audit_body(&self, s: usize) -> DistMsg {
        DistMsg::Audit {
            boundary_x: self.ls.boundary_rows_to[s]
                .iter()
                .map(|&i| self.ls.x[i as usize])
                .collect(),
            boundary_r: self.ls.boundary_residuals(s),
            norm_sq: self.my_norm_sq,
            est_of_target_sq: self.gamma_sq[s],
        }
    }
}

impl RankAlgorithm for DistributedSouthwellRank {
    type Msg = SeqMsg;

    fn phases(&self) -> usize {
        2
    }

    fn put_targets(&self) -> Option<Vec<usize>> {
        // Every message class (solve, residual, recovery) flows only along
        // the static subdomain neighbor set (enables the executor's
        // target-major parallel close).
        Some(self.ls.neighbors.clone())
    }

    fn phase(&mut self, phase: usize, inbox: &[Envelope<SeqMsg>], ctx: &mut PhaseCtx<SeqMsg>) {
        match phase {
            0 => {
                // The previous step's phase-1 flushes are delivered during
                // this epoch; they are no longer in flight.
                self.in_flight_flush_sq = 0.0;
                // Read the deadlock-avoidance updates of the previous step.
                self.apply_inbox(inbox, ctx);
                self.sent_prev_phase.iter_mut().for_each(|f| *f = false);
                self.refresh_norm();
                self.relaxed_last_step = self.wins();
                if self.relaxed_last_step {
                    self.ghost_dr.iter_mut().for_each(|v| *v = 0.0);
                    let flops = self.solver.relax(&mut self.ls, &mut self.ghost_dr);
                    ctx.add_flops(flops);
                    ctx.record_relaxations(self.ls.nrows() as u64);
                    self.my_norm_sq = self.ls.residual_norm_sq();
                    self.norm_dirty = false;
                    // Local refinement: fold this relaxation's contribution
                    // into the ghost layer and the Γ estimates — no
                    // communication needed (formula (3) of the paper).
                    if self.cfg.refine_estimates {
                        for s in 0..self.ls.nneighbors() {
                            let mut est = self.gamma_sq[s];
                            for &slot in &self.ls.ghosts_of[s] {
                                let old = self.z[slot as usize];
                                let new = old + self.ghost_dr[slot as usize];
                                est += new * new - old * old;
                                self.z[slot as usize] = new;
                            }
                            self.gamma_sq[s] = est.max(0.0);
                        }
                        ctx.add_flops(4 * self.ls.ext_cols.len() as u64);
                    }
                    for s in 0..self.ls.nneighbors() {
                        // Accumulate this relaxation's contributions into
                        // the pending buffer and measure the total.
                        let mut acc_sq = 0.0;
                        for &slot in &self.ls.ghosts_of[s] {
                            let p = &mut self.pending_dr[slot as usize];
                            *p += self.ghost_dr[slot as usize];
                            acc_sq += *p * *p;
                        }
                        // Variable-threshold coalescing (§5 extension):
                        // defer the message while the accumulated deltas
                        // stay small relative to our residual norm.
                        let thresh = self.cfg.solve_msg_threshold;
                        if thresh > 0.0 && acc_sq < thresh * thresh * self.my_norm_sq {
                            continue;
                        }
                        let dr: SlabVec = self.ls.ghosts_of[s]
                            .iter()
                            .map(|&slot| {
                                let slot = slot as usize;
                                let v = self.pending_dr[slot];
                                self.pending_dr[slot] = 0.0;
                                v
                            })
                            .collect();
                        let body = DistMsg::Solve {
                            dr,
                            boundary_r: self.ls.boundary_residuals(s),
                            norm_sq: self.my_norm_sq,
                            est_of_target_sq: self.gamma_sq[s],
                        };
                        self.send(ctx, s, CommClass::Solve, body);
                        // Record the piggyback: q's estimate of us becomes
                        // our freshly sent norm.
                        self.tilde_sq[s] = self.my_norm_sq;
                        self.sent_prev_phase[s] = true;
                    }
                }
            }
            1 => {
                // Read solve updates from neighbors that relaxed.
                self.apply_inbox(inbox, ctx);
                self.sent_prev_phase.iter_mut().for_each(|f| *f = false);
                if self.norm_dirty {
                    self.my_norm_sq = self.ls.residual_norm_sq();
                    self.norm_dirty = false;
                    ctx.add_flops(2 * self.ls.nrows() as u64);
                }
                // Coalescing leak fix: deltas parked in `pending_dr` by the
                // variable-threshold rule were only reconsidered on the
                // rank's *next* relaxation — a rank that stopped winning
                // (or converged) left its neighbors' ghost residuals
                // permanently stale. Re-evaluate the parked deltas against
                // the current norm every step: because the threshold is
                // relative to our own shrinking residual, everything
                // pending flushes as we approach convergence.
                let thresh = self.cfg.solve_msg_threshold;
                if thresh > 0.0 {
                    for s in 0..self.ls.nneighbors() {
                        let mut acc_sq = 0.0;
                        for &slot in &self.ls.ghosts_of[s] {
                            let p = self.pending_dr[slot as usize];
                            acc_sq += p * p;
                        }
                        if acc_sq == 0.0 || acc_sq < thresh * thresh * self.my_norm_sq {
                            continue;
                        }
                        let dr: SlabVec = self.ls.ghosts_of[s]
                            .iter()
                            .map(|&slot| {
                                let slot = slot as usize;
                                let v = self.pending_dr[slot];
                                self.pending_dr[slot] = 0.0;
                                v
                            })
                            .collect();
                        // A phase-1 flush crosses the step boundary in
                        // flight (applied at the receiver's next phase 0).
                        self.in_flight_flush_sq += dr.iter().map(|v| v * v).sum::<f64>();
                        let body = DistMsg::Solve {
                            dr,
                            boundary_r: self.ls.boundary_residuals(s),
                            norm_sq: self.my_norm_sq,
                            est_of_target_sq: self.gamma_sq[s],
                        };
                        self.send(ctx, s, CommClass::Solve, body);
                        self.tilde_sq[s] = self.my_norm_sq;
                        self.sent_prev_phase[s] = true;
                    }
                }
                if self.force_rebroadcast {
                    // Watchdog response: unconditionally rebroadcast exact
                    // boundary residuals and norms to every neighbor. This
                    // restores exact Γ everywhere, so the Southwell
                    // tie-break elects a winner next step unless the system
                    // is genuinely converged.
                    self.force_rebroadcast = false;
                    for s in 0..self.ls.nneighbors() {
                        let body = DistMsg::Residual {
                            boundary_r: self.ls.boundary_residuals(s),
                            norm_sq: self.my_norm_sq,
                            est_of_target_sq: self.gamma_sq[s],
                        };
                        self.send(ctx, s, CommClass::Recovery, body);
                        self.tilde_sq[s] = self.my_norm_sq;
                        self.sent_prev_phase[s] = true;
                    }
                } else if self.cfg.deadlock_avoidance {
                    // Deadlock check: any neighbor overestimating us gets
                    // one explicit residual update.
                    for s in 0..self.ls.nneighbors() {
                        if self.my_norm_sq < self.tilde_sq[s] {
                            let body = DistMsg::Residual {
                                boundary_r: self.ls.boundary_residuals(s),
                                norm_sq: self.my_norm_sq,
                                est_of_target_sq: self.gamma_sq[s],
                            };
                            self.send(ctx, s, CommClass::Residual, body);
                            self.tilde_sq[s] = self.my_norm_sq;
                            self.sent_prev_phase[s] = true;
                        }
                    }
                }
                // Periodic invariant audit: snapshot the boundary state to
                // every neighbor. Sent last in the phase so that on a
                // reliable link it is the newest message on the wire.
                if let Some(every) = self.cfg.recovery.audit_every {
                    if self.steps_done % every == every - 1 {
                        for s in 0..self.ls.nneighbors() {
                            let body = self.audit_body(s);
                            self.send(ctx, s, CommClass::Recovery, body);
                            self.tilde_sq[s] = self.my_norm_sq;
                            self.sent_prev_phase[s] = true;
                        }
                    }
                }
                self.steps_done += 1;
                // Refresh the undelivered-delta cache for the monitor: the
                // coalescing extension is the only source of residual
                // deltas that outlive the step boundary.
                self.undelivered_sq = if self.cfg.solve_msg_threshold > 0.0 {
                    self.pending_dr.iter().map(|p| p * p).sum::<f64>() + self.in_flight_flush_sq
                } else {
                    0.0
                };
            }
            _ => unreachable!("Distributed Southwell has two phases"),
        }
    }

    /// DS keeps `my_norm_sq` exact at step boundaries on a reliable link
    /// with coalescing off; with coalescing on, parked and in-flight
    /// deltas are reported through
    /// [`RankAlgorithm::undelivered_delta_sq`].
    fn maintained_norm_sq(&self) -> Option<f64> {
        Some(self.my_norm_sq)
    }

    fn undelivered_delta_sq(&self) -> f64 {
        self.undelivered_sq
    }
}

impl Recoverable for DistributedSouthwellRank {
    fn nudge(&mut self) -> bool {
        if !self.cfg.recovery.watchdog {
            return false;
        }
        self.force_rebroadcast = true;
        true
    }

    fn drift_repairs(&self) -> u64 {
        self.drift_repairs
    }

    fn stale_discards(&self) -> u64 {
        self.stale_discards
    }
}

impl super::session::WarmStart for DistributedSouthwellRank {
    fn local(&self) -> &LocalSystem {
        &self.ls
    }

    fn reseed_rhs(&mut self, delta_b: &[f64]) -> f64 {
        // r = b − Ax shifts purely locally under a b change; the ghost
        // layer `z` mirrors the neighbors' residuals at the boundary rows,
        // which shift by the same per-row deltas on the owning ranks.
        for (li, &g) in self.ls.rows.iter().enumerate() {
            self.ls.b[li] += delta_b[g];
            self.ls.r[li] += delta_b[g];
        }
        for (slot, &g) in self.ls.ext_cols.iter().enumerate() {
            self.z[slot] += delta_b[g];
        }
        self.my_norm_sq = self.ls.residual_norm_sq();
        // The cache is exact as of this recompute — leaving it dirty would
        // be correct too, but the session's warm-start audit requires the
        // reseed itself to re-establish the clean-cache invariant.
        self.norm_dirty = false;
        self.my_norm_sq
    }

    fn reseed_estimates(&mut self, norms_sq: &[f64]) {
        // Out-of-band exact exchange, mirroring `build_with`'s setup: Γ
        // gets each neighbor's exact post-reseed norm, and Γ̃ records that
        // every neighbor was handed this rank's exact norm.
        for (s, &q) in self.ls.neighbors.iter().enumerate() {
            self.gamma_sq[s] = norms_sq[q];
        }
        for t in &mut self.tilde_sq {
            *t = self.my_norm_sq;
        }
        // Any flushed-but-undelivered deltas are discarded alongside the
        // executor's in-flight queues (the session only reseeds at a step
        // boundary with `solve_msg_threshold == 0`, where the pending
        // buffer is empty and in-flight messages carry norms only).
        for p in &mut self.pending_dr {
            *p = 0.0;
        }
        self.in_flight_flush_sq = 0.0;
        self.undelivered_sq = 0.0;
        for s in &mut self.sent_prev_phase {
            *s = false;
        }
        self.relaxed_last_step = false;
        self.force_rebroadcast = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::layout::{distribute, gather_x};
    use dsw_partition::partition_strip;
    use dsw_rma::{CostModel, ExecMode, Executor};
    use dsw_sparse::gen;

    fn build_ds(
        nx: usize,
        ny: usize,
        p: usize,
        cfg: DsConfig,
    ) -> (
        dsw_sparse::CsrMatrix,
        Vec<f64>,
        Executor<DistributedSouthwellRank>,
    ) {
        build_ds_part(nx, ny, p, cfg, false)
    }

    fn build_ds_part(
        nx: usize,
        ny: usize,
        p: usize,
        cfg: DsConfig,
        multilevel: bool,
    ) -> (
        dsw_sparse::CsrMatrix,
        Vec<f64>,
        Executor<DistributedSouthwellRank>,
    ) {
        let a = gen::grid2d_poisson(nx, ny);
        let n = a.nrows();
        let b = gen::random_rhs(n, 1);
        let x0 = vec![0.0; n];
        let part = if multilevel {
            dsw_partition::partition_multilevel(
                &dsw_partition::Graph::from_matrix(&a),
                p,
                dsw_partition::MultilevelOptions::default(),
            )
        } else {
            partition_strip(n, p)
        };
        let locals = distribute(&a, &b, &x0, &part).unwrap();
        let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
        let r0 = a.residual(&b, &x0);
        let ranks = DistributedSouthwellRank::build_with(locals, &norms, &r0, cfg);
        let ex = Executor::new(ranks, CostModel::default(), ExecMode::Sequential);
        (a, b, ex)
    }

    fn global_norm(
        ex: &Executor<DistributedSouthwellRank>,
        a: &dsw_sparse::CsrMatrix,
        b: &[f64],
    ) -> f64 {
        let locals: Vec<_> = ex.ranks().iter().map(|r| r.ls.clone()).collect();
        let x = gather_x(&locals, a.nrows());
        dsw_sparse::vecops::norm2(&a.residual(b, &x))
    }

    #[test]
    fn ds_converges_on_poisson() {
        let (a, b, mut ex) = build_ds(12, 12, 6, DsConfig::default());
        for _ in 0..2000 {
            ex.step();
            if global_norm(&ex, &a, &b) < 1e-8 {
                return;
            }
        }
        panic!("did not converge; residual {}", global_norm(&ex, &a, &b));
    }

    #[test]
    fn gamma_tilde_is_exact() {
        // The Γ̃ invariant: rank p's record of "q's estimate of ‖r_p‖"
        // equals q's actual Γ entry for p — checked at every step boundary
        // after which no messages are in flight. (Explicit updates are sent
        // in phase 1 and land at the next step's phase 0, so on steps that
        // sent them the records legitimately lead the receiver's state.)
        let (_, _, mut ex) = build_ds_part(16, 16, 8, DsConfig::default(), true);
        let mut checked = 0;
        for step in 0..80 {
            let s = ex.step();
            if s.msgs_residual != 0 {
                continue;
            }
            checked += 1;
            for p in ex.ranks() {
                for (slot, &q) in p.ls.neighbors.iter().enumerate() {
                    let qrank = &ex.ranks()[q];
                    let back = qrank.ls.neighbor_slot(p.ls.rank);
                    let actual = qrank.gamma_sq[back];
                    assert!(
                        (p.tilde_sq[slot] - actual).abs() <= 1e-12 * actual.max(1.0),
                        "step {step}: rank {} tilde[{q}]={} but q's gamma={}",
                        p.ls.rank,
                        p.tilde_sq[slot],
                        actual
                    );
                }
            }
        }
        assert!(checked > 0, "no quiescent steps to check");
    }

    #[test]
    fn maintained_residuals_exact_at_step_boundaries() {
        // After each full parallel step all solve deltas are applied, so the
        // locally maintained r equals b - Ax globally.
        let (a, b, mut ex) = build_ds(10, 10, 5, DsConfig::default());
        for _ in 0..30 {
            ex.step();
            let locals: Vec<_> = ex.ranks().iter().map(|r| r.ls.clone()).collect();
            let x = gather_x(&locals, a.nrows());
            let r_true = a.residual(&b, &x);
            let r_kept = crate::dist::layout::gather_r(&locals, a.nrows());
            for (k, t) in r_kept.iter().zip(&r_true) {
                assert!((k - t).abs() < 1e-10, "kept {k} vs true {t}");
            }
        }
    }

    #[test]
    fn coalesced_deltas_flush_when_rank_converges() {
        // Regression for the variable-threshold residual leak: deltas
        // parked in `pending_dr` were only reconsidered on the rank's
        // *next relaxation*, so a rank whose residual collapsed (it
        // converged, or incoming deltas solved its subdomain) never won
        // again and left its neighbors' ghost residuals permanently stale.
        // The phase-1 flush re-evaluates parked deltas against the current
        // norm every step, so a converged rank delivers them.
        let cfg = DsConfig {
            solve_msg_threshold: 0.9,
            ..DsConfig::default()
        };
        let (_a, _b, mut ex) = build_ds(12, 12, 4, cfg);
        // Run until some rank has deltas parked by the coalescing rule.
        let mut victim = None;
        for _ in 0..200 {
            ex.step();
            if let Some(p) = ex
                .ranks()
                .iter()
                .position(|r| r.pending_dr.iter().any(|&v| v != 0.0))
            {
                victim = Some(p);
                break;
            }
        }
        let p = victim.expect("θ = 0.9 must park deltas within 200 steps");
        let parked: Vec<f64> = ex.ranks()[p].pending_dr.clone();
        // Simulate the rank converging: its maintained residual hits zero
        // while the parked deltas are still undelivered.
        ex.ranks_mut()[p].ls.r.iter_mut().for_each(|v| *v = 0.0);
        ex.ranks_mut()[p].invalidate_norm_cache();
        let neighbors = ex.ranks()[p].ls.neighbors.clone();
        let ghost_r_before: Vec<Vec<f64>> = neighbors
            .iter()
            .map(|&q| ex.ranks()[q].ls.r.clone())
            .collect();
        let msgs_before = ex.stats.total_msgs_solve();
        // Two steps: phase 1 of the first flushes (visible to neighbors at
        // the next epoch), phase 0 of the second applies the deltas.
        ex.step();
        ex.step();
        assert!(
            ex.ranks()[p].pending_dr.iter().all(|&v| v == 0.0),
            "parked deltas must flush once the rank's norm collapses: {:?}",
            ex.ranks()[p].pending_dr
        );
        assert!(
            ex.stats.total_msgs_solve() > msgs_before,
            "the flush must go out as a Solve message"
        );
        // The neighbors' maintained residuals moved by the delivered
        // deltas (ghost state repaired, not silently discarded).
        let moved = neighbors
            .iter()
            .zip(&ghost_r_before)
            .any(|(&q, before)| ex.ranks()[q].ls.r != *before);
        assert!(moved, "flushed deltas must land in neighbor residuals");
        assert!(
            parked.iter().any(|&v| v != 0.0),
            "sanity: the victim really had parked deltas"
        );
    }

    #[test]
    fn ds_sends_fewer_messages_than_ps() {
        // The headline of Table 2: DS needs far less communication than PS
        // for the same accuracy.
        let a = gen::grid2d_poisson(20, 20);
        let n = a.nrows();
        let b = gen::random_rhs(n, 1);
        let x0 = vec![0.0; n];
        let part = partition_strip(n, 10);
        let r0 = a.residual(&b, &x0);
        let locals = distribute(&a, &b, &x0, &part).unwrap();
        let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();

        let target = 0.1 * dsw_sparse::vecops::norm2(&r0);
        let mut ds_ex = Executor::new(
            DistributedSouthwellRank::build(locals.clone(), &norms, &r0),
            CostModel::default(),
            ExecMode::Sequential,
        );
        let mut ds_msgs = None;
        for _ in 0..500 {
            ds_ex.step();
            if global_norm(&ds_ex, &a, &b) <= target {
                ds_msgs = Some(ds_ex.stats.total_msgs());
                break;
            }
        }
        let ps_ranks =
            crate::dist::parallel_southwell::ParallelSouthwellRank::build(locals, &norms);
        let mut ps_ex = Executor::new(ps_ranks, CostModel::default(), ExecMode::Sequential);
        let mut ps_msgs = None;
        for _ in 0..500 {
            ps_ex.step();
            let loc: Vec<_> = ps_ex.ranks().iter().map(|r| r.ls.clone()).collect();
            let x = gather_x(&loc, n);
            if dsw_sparse::vecops::norm2(&a.residual(&b, &x)) <= target {
                ps_msgs = Some(ps_ex.stats.total_msgs());
                break;
            }
        }
        let (ds, ps) = (
            ds_msgs.expect("DS converged"),
            ps_msgs.expect("PS converged"),
        );
        assert!(ds < ps, "DS msgs {ds} should be below PS msgs {ps}");
    }

    #[test]
    fn no_deadlock_avoidance_can_freeze() {
        // Disable Alg. 3 lines 27-30 and reproduce the deadlock under the
        // paper's setup (unit-diagonal scaling, b = 0, random scaled guess).
        let mut a = gen::grid2d_poisson(16, 16);
        a.scale_unit_diagonal().unwrap();
        let n = a.nrows();
        let b = vec![0.0; n];
        let mut x0 = gen::random_guess(n, 11);
        let s = 1.0 / dsw_sparse::vecops::norm2(&a.residual(&b, &x0));
        x0.iter_mut().for_each(|v| *v *= s);
        let part = dsw_partition::partition_multilevel(
            &dsw_partition::Graph::from_matrix(&a),
            8,
            dsw_partition::MultilevelOptions::default(),
        );
        let locals = distribute(&a, &b, &x0, &part).unwrap();
        let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
        let r0 = a.residual(&b, &x0);
        let cfg = DsConfig {
            refine_estimates: true,
            deadlock_avoidance: false,
            ..DsConfig::default()
        };
        let ranks = DistributedSouthwellRank::build_with(locals, &norms, &r0, cfg);
        let mut ex = Executor::new(ranks, CostModel::default(), ExecMode::Sequential);
        let mut frozen = false;
        for _ in 0..500 {
            let s = ex.step();
            if s.relaxations == 0 && s.msgs == 0 && global_norm(&ex, &a, &b) > 1e-6 {
                frozen = true;
                break;
            }
        }
        assert!(
            frozen,
            "expected the no-avoidance variant to freeze before converging"
        );
    }

    #[test]
    fn recovery_standard_is_transparent_on_a_reliable_link() {
        // Full self-healing enabled, but no injected faults: the sequencing
        // layer must judge every message fresh, and the audit's tolerance
        // gate must never fire (the maintained residuals are exact, so the
        // recomputed rows agree to round-off).
        let cfg = DsConfig {
            recovery: RecoveryConfig::standard(),
            ..DsConfig::default()
        };
        let (a, b, mut ex) = build_ds(12, 12, 6, cfg);
        for _ in 0..60 {
            ex.step();
        }
        for r in ex.ranks() {
            assert_eq!(r.drift_repairs, 0, "rank {}", r.ls.rank);
            assert_eq!(r.stale_discards, 0, "rank {}", r.ls.rank);
        }
        assert!(
            ex.stats.total_msgs_recovery() > 0,
            "periodic audits should have been sent"
        );
        // The protocol still works: maintained residuals stay exact.
        let locals: Vec<_> = ex.ranks().iter().map(|r| r.ls.clone()).collect();
        let x = gather_x(&locals, a.nrows());
        let r_true = a.residual(&b, &x);
        let r_kept = crate::dist::layout::gather_r(&locals, a.nrows());
        for (k, t) in r_kept.iter().zip(&r_true) {
            assert!((k - t).abs() < 1e-10, "kept {k} vs true {t}");
        }
        for _ in 0..1500 {
            ex.step();
            if global_norm(&ex, &a, &b) < 1e-8 {
                return;
            }
        }
        panic!("did not converge with recovery on");
    }

    #[test]
    fn sequencing_adds_eight_wire_bytes_per_message() {
        let base = DsConfig::default();
        let seq_cfg = DsConfig {
            recovery: RecoveryConfig {
                sequencing: true,
                ..RecoveryConfig::off()
            },
            ..DsConfig::default()
        };
        let (_, _, mut plain) = build_ds(10, 10, 5, base);
        let (_, _, mut seq) = build_ds(10, 10, 5, seq_cfg);
        for _ in 0..10 {
            plain.step();
            seq.step();
        }
        // Sequencing never changes what is sent, only how it is framed.
        assert_eq!(plain.stats.total_msgs(), seq.stats.total_msgs());
        let (pb, sb): (u64, u64) = (
            plain.stats.steps.iter().map(|s| s.bytes).sum(),
            seq.stats.steps.iter().map(|s| s.bytes).sum(),
        );
        assert_eq!(sb, pb + 8 * seq.stats.total_msgs());
    }

    #[test]
    fn ds_converges_on_strong_coupling() {
        let mut a = gen::clique_grid2d(
            12,
            12,
            gen::CliqueOptions {
                coupling: 0.7,
                weight_jump: 0.2,
                seed: 1,
                hot_fraction: 0.0,
                hot_coupling: 0.0,
            },
        );
        a.scale_unit_diagonal().unwrap();
        let n = a.nrows();
        let b = vec![0.0; n];
        let x0 = gen::random_guess(n, 4);
        let part = partition_strip(n, 8);
        let locals = distribute(&a, &b, &x0, &part).unwrap();
        let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
        let r0 = a.residual(&b, &x0);
        let mut ex = Executor::new(
            DistributedSouthwellRank::build(locals, &norms, &r0),
            CostModel::default(),
            ExecMode::Sequential,
        );
        let start = global_norm(&ex, &a, &b);
        for _ in 0..3000 {
            ex.step();
            if global_norm(&ex, &a, &b) < 0.01 * start {
                return;
            }
        }
        panic!(
            "no convergence on strong coupling; residual {}",
            global_norm(&ex, &a, &b) / start
        );
    }
}
