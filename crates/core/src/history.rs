//! Convergence histories shared by the scalar and distributed solvers.

/// One sample of a scalar-method convergence curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarSample {
    /// Cumulative number of row relaxations when the sample was taken.
    pub relaxations: u64,
    /// Global residual 2-norm at that point.
    pub residual_norm: f64,
}

/// The convergence record of a scalar-method run, in the shape the paper
/// plots: residual norm against the number of relaxations, with markers at
/// parallel-step boundaries (Figures 2 and 5).
#[derive(Debug, Clone, Default)]
pub struct ScalarHistory {
    /// Residual samples in relaxation order (one per parallel step for
    /// parallel methods; subsampled for one-at-a-time methods).
    pub samples: Vec<ScalarSample>,
    /// Cumulative relaxation counts at the end of each parallel step
    /// (the markers along the paper's curves).
    pub step_boundaries: Vec<u64>,
    /// Total relaxations performed.
    pub total_relaxations: u64,
    /// Final residual norm.
    pub final_residual: f64,
}

impl ScalarHistory {
    /// Number of parallel steps taken.
    pub fn parallel_steps(&self) -> usize {
        self.step_boundaries.len()
    }

    /// The first sample at which the residual norm fell to `target` or
    /// below, as `(relaxations, norm)`, if any.
    pub fn first_below(&self, target: f64) -> Option<ScalarSample> {
        self.samples
            .iter()
            .copied()
            .find(|s| s.residual_norm <= target)
    }

    /// Relaxations needed to reach `target`, by linear interpolation on
    /// `log10` of the residual norm between the bracketing samples —
    /// the extraction rule the paper uses for Table 2.
    pub fn relaxations_to_reach(&self, target: f64) -> Option<f64> {
        interpolate_crossing(
            self.samples
                .iter()
                .map(|s| (s.relaxations as f64, s.residual_norm)),
            target,
        )
    }
}

/// Linear interpolation on `log10(residual)` over a monotone x-axis:
/// returns the x at which the residual first crosses `target`.
pub fn interpolate_crossing(
    points: impl IntoIterator<Item = (f64, f64)>,
    target: f64,
) -> Option<f64> {
    let mut prev: Option<(f64, f64)> = None;
    for (x, r) in points {
        if r <= target {
            match prev {
                None => return Some(x),
                Some((px, pr)) => {
                    if pr <= target {
                        return Some(px);
                    }
                    // log-linear interpolation between (px, pr) and (x, r).
                    if r <= 0.0 {
                        return Some(x);
                    }
                    let lt = target.log10();
                    let lp = pr.log10();
                    let lc = r.log10();
                    let frac = if (lc - lp).abs() < 1e-300 {
                        1.0
                    } else {
                        (lt - lp) / (lc - lp)
                    };
                    return Some(px + frac * (x - px));
                }
            }
        }
        prev = Some((x, r));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_below_and_steps() {
        let h = ScalarHistory {
            samples: vec![
                ScalarSample {
                    relaxations: 0,
                    residual_norm: 1.0,
                },
                ScalarSample {
                    relaxations: 10,
                    residual_norm: 0.5,
                },
                ScalarSample {
                    relaxations: 20,
                    residual_norm: 0.05,
                },
            ],
            step_boundaries: vec![10, 20],
            total_relaxations: 20,
            final_residual: 0.05,
        };
        assert_eq!(h.parallel_steps(), 2);
        assert_eq!(h.first_below(0.5).unwrap().relaxations, 10);
        assert!(h.first_below(0.01).is_none());
    }

    #[test]
    fn interpolation_is_log_linear() {
        // Residual falls 1.0 -> 0.01 between x = 0 and x = 2; the log-linear
        // crossing of 0.1 is exactly x = 1.
        let x = interpolate_crossing([(0.0, 1.0), (2.0, 0.01)], 0.1).unwrap();
        assert!((x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interpolation_none_if_never_reached() {
        assert!(interpolate_crossing([(0.0, 1.0), (1.0, 0.5)], 0.1).is_none());
    }

    #[test]
    fn interpolation_at_first_sample() {
        let x = interpolate_crossing([(5.0, 0.05), (6.0, 0.01)], 0.1).unwrap();
        assert_eq!(x, 5.0);
    }

    #[test]
    fn interpolation_handles_zero_residual() {
        let x = interpolate_crossing([(0.0, 1.0), (3.0, 0.0)], 0.1).unwrap();
        assert_eq!(x, 3.0);
    }
}
