//! The Southwell family of iterative methods — the paper's contribution.
//!
//! Two layers:
//!
//! * [`scalar`] — shared-memory *scalar* forms (one equation per "process"),
//!   used for the convergence studies of Figures 2 and 5 and as multigrid
//!   smoothers (§4.1): Jacobi, Gauss–Seidel, Multicolor Gauss–Seidel,
//!   Sequential Southwell, Parallel Southwell, and Distributed Southwell.
//! * [`dist`] — *block/subdomain* forms running on the simulated one-sided
//!   RMA substrate of `dsw-rma`, exactly following Algorithms 1–3 of the
//!   paper: Block Jacobi, Parallel Southwell, and Distributed Southwell,
//!   plus the deadlock-prone ICCS'16 piggyback-only variant the paper uses
//!   as a foil.
//!
//! Terminology (paper §2.1): *relaxing row i* updates `x_i` by `r_i / a_ii`;
//! a *sweep* is `n` row relaxations; a *parallel step* is one phase of
//! simultaneous relaxations.

// `unwrap()` is banned in non-test code (clippy `disallowed-methods`, see
// clippy.toml): use `expect` naming the invariant, or propagate the error.
#![cfg_attr(not(test), deny(clippy::disallowed_methods))]

pub mod dist;
pub mod history;
pub mod scalar;

pub use history::{ScalarHistory, ScalarSample};
