//! Redundancy-coded block placement: every logical block is hosted by
//! `r` ranks, so a straggling (or stalled) host no longer gates the
//! block's progress — the first replica to arrive wins, after Haddadpour
//! et al.'s straggler-resilient coded iterative solvers (PAPERS.md).
//!
//! The placement is a deterministic function of `(nparts, r, seed)`:
//! replica sets are cyclic shifts of the identity placement by `r − 1`
//! distinct nonzero offsets drawn from a SplitMix64-seeded Fisher–Yates
//! shuffle. Shift placements keep the load exactly balanced — every rank
//! hosts exactly `r` blocks and every block has exactly `r` hosts — and
//! `replicas(b)[0] == b` always, so `r = 1` degenerates to the identity
//! (uncoded) placement bit-for-bit.

use crate::partitioner::PartitionError;

/// A coded-placement request: replicate every block on `r` ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Redundancy {
    /// Hosts per block (`1` = uncoded, `nparts` = full replication).
    pub r: usize,
    /// Seed for the shift-offset draw (the "partition seed" of the
    /// placement; independent of solver and scheduler seeds).
    pub seed: u64,
}

impl Redundancy {
    /// A factor-`r` placement with the default seed.
    pub fn new(r: usize) -> Self {
        Redundancy { r, seed: 0 }
    }
}

impl Default for Redundancy {
    fn default() -> Self {
        Redundancy::new(1)
    }
}

/// SplitMix64 finalizer — the same mixer the fault injector and async
/// scheduler use for their seed-derived draws.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The realized replica-set placement for `nblocks` logical blocks over
/// `nblocks` physical ranks (block `b`'s primary host is rank `b`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaMap {
    nblocks: usize,
    r: usize,
    /// `replicas[b]` — the hosts of logical block `b`, primary first
    /// (`replicas[b][0] == b`), the shifted hosts in draw order after.
    replicas: Vec<Vec<usize>>,
    /// `hosted[p]` — the logical blocks rank `p` hosts, ascending.
    hosted: Vec<Vec<usize>>,
}

impl ReplicaMap {
    /// Builds the deterministic placement. `Err` when `r` is zero or
    /// exceeds the rank count (a single-rank run therefore admits only
    /// `r = 1`; `r = nblocks` is full replication and is allowed).
    pub fn try_new(nblocks: usize, red: Redundancy) -> Result<Self, PartitionError> {
        if red.r == 0 || red.r > nblocks {
            return Err(PartitionError::InvalidRedundancy {
                r: red.r,
                nparts: nblocks,
            });
        }
        // Fisher–Yates over the nonzero shifts 1..nblocks, seeded from the
        // placement seed; the first r − 1 entries are the offsets. Distinct
        // nonzero offsets guarantee distinct hosts per block.
        let mut shifts: Vec<usize> = (1..nblocks).collect();
        let mut state = red.seed ^ 0x5851f42d4c957f2d;
        for i in (1..shifts.len()).rev() {
            state = mix64(state);
            let j = (state % (i as u64 + 1)) as usize;
            shifts.swap(i, j);
        }
        let offsets = &shifts[..red.r - 1];
        let replicas: Vec<Vec<usize>> = (0..nblocks)
            .map(|b| {
                let mut hosts = Vec::with_capacity(red.r);
                hosts.push(b);
                hosts.extend(offsets.iter().map(|&o| (b + o) % nblocks));
                hosts
            })
            .collect();
        let mut hosted: Vec<Vec<usize>> = vec![Vec::with_capacity(red.r); nblocks];
        for (b, hosts) in replicas.iter().enumerate() {
            for &h in hosts {
                hosted[h].push(b);
            }
        }
        for blocks in &mut hosted {
            blocks.sort_unstable();
        }
        Ok(ReplicaMap {
            nblocks,
            r: red.r,
            replicas,
            hosted,
        })
    }

    /// Number of logical blocks (= physical ranks).
    pub fn nblocks(&self) -> usize {
        self.nblocks
    }

    /// The replication factor.
    pub fn r(&self) -> usize {
        self.r
    }

    /// The hosts of logical block `b`, primary (`== b`) first.
    pub fn hosts_of(&self, b: usize) -> &[usize] {
        &self.replicas[b]
    }

    /// All replica sets, indexed by logical block.
    pub fn replicas(&self) -> &[Vec<usize>] {
        &self.replicas
    }

    /// The logical blocks rank `p` hosts, ascending (always `r` of them).
    pub fn hosted_by(&self, p: usize) -> &[usize] {
        &self.hosted[p]
    }

    /// The replica sets as lag groups for an asynchronous scheduler: one
    /// group per logical block, members are the block's hosts.
    pub fn lag_groups(&self) -> Vec<Vec<u32>> {
        self.replicas
            .iter()
            .map(|hosts| hosts.iter().map(|&h| h as u32).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_balanced_and_deterministic() {
        for (p, r) in [(8, 1), (8, 2), (8, 3), (5, 5), (2, 2), (1, 1)] {
            let m = ReplicaMap::try_new(p, Redundancy { r, seed: 42 }).unwrap();
            assert_eq!(m.nblocks(), p);
            assert_eq!(m.r(), r);
            for b in 0..p {
                let hosts = m.hosts_of(b);
                assert_eq!(hosts.len(), r, "block {b} of ({p}, {r})");
                assert_eq!(hosts[0], b, "primary host is the block's own rank");
                let mut uniq = hosts.to_vec();
                uniq.sort_unstable();
                uniq.dedup();
                assert_eq!(uniq.len(), r, "hosts must be distinct: {hosts:?}");
                assert_eq!(m.hosted_by(b).len(), r, "every rank hosts exactly r");
                for &h in hosts {
                    assert!(m.hosted_by(h).contains(&b));
                }
            }
            let again = ReplicaMap::try_new(p, Redundancy { r, seed: 42 }).unwrap();
            assert_eq!(m, again, "same seed, same placement");
        }
        // Different seeds move the shifted hosts (visible once r >= 3 over
        // enough ranks for more than one offset choice).
        let a = ReplicaMap::try_new(16, Redundancy { r: 3, seed: 1 }).unwrap();
        let b = ReplicaMap::try_new(16, Redundancy { r: 3, seed: 2 }).unwrap();
        assert_ne!(a, b, "seed must steer the placement");
    }

    #[test]
    fn r1_is_the_identity_placement() {
        let m = ReplicaMap::try_new(6, Redundancy::new(1)).unwrap();
        for b in 0..6 {
            assert_eq!(m.hosts_of(b), &[b]);
            assert_eq!(m.hosted_by(b), &[b]);
        }
        assert_eq!(
            m.lag_groups(),
            (0..6).map(|b| vec![b as u32]).collect::<Vec<_>>()
        );
    }

    #[test]
    fn invalid_factors_err() {
        assert_eq!(
            ReplicaMap::try_new(4, Redundancy::new(0)),
            Err(PartitionError::InvalidRedundancy { r: 0, nparts: 4 })
        );
        assert_eq!(
            ReplicaMap::try_new(4, Redundancy::new(5)),
            Err(PartitionError::InvalidRedundancy { r: 5, nparts: 4 })
        );
        // A single-rank run admits only r = 1.
        assert_eq!(
            ReplicaMap::try_new(1, Redundancy::new(2)),
            Err(PartitionError::InvalidRedundancy { r: 2, nparts: 1 })
        );
        assert!(ReplicaMap::try_new(1, Redundancy::new(1)).is_ok());
        let msg = ReplicaMap::try_new(4, Redundancy::new(9))
            .unwrap_err()
            .to_string();
        assert!(msg.contains("1 <= r <= nparts"), "{msg}");
    }
}
