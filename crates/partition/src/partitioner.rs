//! Row-to-process partitioners, from trivial strips to a METIS-style
//! multilevel scheme.

use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Why a partition (or a coded placement over one) is unusable, reported
/// as a value instead of a panic so drivers can surface configuration
/// mistakes cleanly (degenerate block counts, zero-row blocks, replica
/// factors the placement cannot satisfy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// `nparts` is zero or exceeds the row count (`need 1 <= nparts <= n`).
    InvalidParts {
        /// The requested part count.
        nparts: usize,
        /// The row count.
        n: usize,
    },
    /// An assignment entry names a part `>= nparts`.
    PartIndexOutOfRange {
        /// The offending part index.
        index: usize,
        /// The part count.
        nparts: usize,
    },
    /// A part owns no rows (solvers cannot host an empty subdomain).
    EmptyPart {
        /// The zero-row part.
        part: usize,
    },
    /// A redundancy factor the placement cannot satisfy
    /// (`need 1 <= r <= nparts`; `r = nparts` is full replication).
    InvalidRedundancy {
        /// The requested replication factor.
        r: usize,
        /// The part count.
        nparts: usize,
    },
    /// The part-weight vector is empty or carries no weight, so a
    /// balance ratio over it is undefined.
    DegenerateWeights {
        /// The part count.
        nparts: usize,
        /// Total vertex weight seen.
        total: u64,
    },
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::InvalidParts { nparts, n } => {
                write!(f, "need 1 <= nparts <= n (got nparts = {nparts}, n = {n})")
            }
            PartitionError::PartIndexOutOfRange { index, nparts } => {
                write!(f, "part index out of range ({index} >= nparts = {nparts})")
            }
            PartitionError::EmptyPart { part } => {
                write!(
                    f,
                    "part {part} owns no rows (zero-row blocks are degenerate)"
                )
            }
            PartitionError::InvalidRedundancy { r, nparts } => {
                write!(
                    f,
                    "redundancy r must satisfy 1 <= r <= nparts (got r = {r}, nparts = {nparts})"
                )
            }
            PartitionError::DegenerateWeights { nparts, total } => {
                write!(
                    f,
                    "imbalance undefined: no part weights (nparts = {nparts}, \
                     total vertex weight = {total})"
                )
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// An assignment of `n` rows to `nparts` parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    nparts: usize,
    assignment: Vec<usize>,
}

impl Partition {
    /// Wraps an assignment, validating part indices.
    ///
    /// # Panics
    /// On an invalid part count or out-of-range index; use
    /// [`Partition::try_new`] for a recoverable error.
    pub fn new(nparts: usize, assignment: Vec<usize>) -> Self {
        match Self::try_new(nparts, assignment) {
            Ok(p) => p,
            Err(PartitionError::InvalidParts { .. }) => panic!("nparts must be positive"),
            Err(e) => panic!("part index out of range: {e}"),
        }
    }

    /// Wraps an assignment, validating part indices; the non-panicking
    /// form of [`Partition::new`].
    pub fn try_new(nparts: usize, assignment: Vec<usize>) -> Result<Self, PartitionError> {
        if nparts == 0 {
            return Err(PartitionError::InvalidParts {
                nparts,
                n: assignment.len(),
            });
        }
        if let Some(&bad) = assignment.iter().find(|&&p| p >= nparts) {
            return Err(PartitionError::PartIndexOutOfRange { index: bad, nparts });
        }
        Ok(Partition { nparts, assignment })
    }

    /// Errs with the first zero-row part, if any — the recoverable form of
    /// asserting [`Partition::all_parts_nonempty`] before distribution.
    pub fn validate_nonempty(&self) -> Result<(), PartitionError> {
        match self.sizes().iter().position(|&s| s == 0) {
            Some(part) => Err(PartitionError::EmptyPart { part }),
            None => Ok(()),
        }
    }

    /// Number of parts.
    #[inline]
    pub fn nparts(&self) -> usize {
        self.nparts
    }

    /// The part of row `i`.
    #[inline]
    pub fn part_of(&self, i: usize) -> usize {
        self.assignment[i]
    }

    /// The full assignment slice.
    #[inline]
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Rows of each part, sorted increasingly.
    pub fn part_rows(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.nparts];
        for (i, &p) in self.assignment.iter().enumerate() {
            out[p].push(i);
        }
        out
    }

    /// Row count per part.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.nparts];
        for &p in &self.assignment {
            s[p] += 1;
        }
        s
    }

    /// Total weight of cut edges (each undirected edge counted once).
    pub fn edge_cut(&self, g: &Graph) -> f64 {
        let mut cut = 0.0;
        for v in 0..g.nvertices() {
            for (w, ew) in g.edges(v) {
                if w > v && self.assignment[v] != self.assignment[w] {
                    cut += ew;
                }
            }
        }
        cut
    }

    /// Maximum part weight divided by the average part weight (≥ 1; 1 is
    /// perfectly balanced).
    ///
    /// Errs instead of panicking when the ratio is undefined: an empty
    /// part-weight slice (degenerate `nparts`) or a graph whose assigned
    /// vertices carry zero total weight (which would divide by zero).
    pub fn imbalance(&self, g: &Graph) -> Result<f64, PartitionError> {
        let mut wgt = vec![0u64; self.nparts];
        for (v, &p) in self.assignment.iter().enumerate() {
            wgt[p] += g.vertex_weight(v);
        }
        let max = match wgt.iter().max() {
            Some(&m) => m as f64,
            None => {
                return Err(PartitionError::DegenerateWeights {
                    nparts: self.nparts,
                    total: 0,
                })
            }
        };
        let total = g.total_vertex_weight();
        if total == 0 {
            return Err(PartitionError::DegenerateWeights {
                nparts: self.nparts,
                total,
            });
        }
        Ok(max / (total as f64 / self.nparts as f64))
    }

    /// Whether every part has at least one row.
    pub fn all_parts_nonempty(&self) -> bool {
        self.sizes().iter().all(|&s| s > 0)
    }
}

/// Splits rows `0..n` into `nparts` contiguous strips of near-equal size.
///
/// # Panics
/// Unless `1 <= nparts <= n`; use [`try_partition_strip`] for a
/// recoverable error.
pub fn partition_strip(n: usize, nparts: usize) -> Partition {
    assert!(nparts > 0 && nparts <= n, "need 1 <= nparts <= n");
    try_partition_strip(n, nparts).expect("bounds checked above")
}

/// The non-panicking form of [`partition_strip`]: `Err` when `nparts` is
/// zero or exceeds `n` (which would force zero-row strips).
pub fn try_partition_strip(n: usize, nparts: usize) -> Result<Partition, PartitionError> {
    if nparts == 0 || nparts > n {
        return Err(PartitionError::InvalidParts { nparts, n });
    }
    let mut assignment = vec![0usize; n];
    let base = n / nparts;
    let extra = n % nparts;
    let mut row = 0;
    for p in 0..nparts {
        let len = base + usize::from(p < extra);
        for _ in 0..len {
            assignment[row] = p;
            row += 1;
        }
    }
    Partition::try_new(nparts, assignment)
}

/// Greedy graph growing: parts are grown one at a time by BFS from a
/// pseudo-peripheral seed until they reach the target vertex weight.
pub fn partition_greedy_growing(g: &Graph, nparts: usize, seed: u64) -> Partition {
    let n = g.nvertices();
    assert!(nparts > 0 && nparts <= n, "need 1 <= nparts <= n");
    let mut rng = StdRng::seed_from_u64(seed);
    let total = g.total_vertex_weight();
    let mut assignment = vec![usize::MAX; n];
    let mut assigned_weight = 0u64;

    for p in 0..nparts {
        let remaining_parts = (nparts - p) as u64;
        let target = (total - assigned_weight).div_ceil(remaining_parts);
        // Find a seed: a pseudo-peripheral unassigned vertex (BFS twice).
        let start = match first_unassigned(&assignment, &mut rng) {
            Some(s) => s,
            None => break,
        };
        let far = bfs_last_unassigned(g, &assignment, start);
        let mut grown = 0u64;
        let mut queue = std::collections::VecDeque::new();
        assignment[far] = p;
        grown += g.vertex_weight(far);
        queue.push_back(far);
        'grow: while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if assignment[w] == usize::MAX {
                    assignment[w] = p;
                    grown += g.vertex_weight(w);
                    queue.push_back(w);
                    if grown >= target && p + 1 < nparts {
                        break 'grow;
                    }
                }
            }
        }
        // The frontier may be exhausted (disconnected remainder); restart
        // BFS from another unassigned vertex until the target is met.
        while grown < target && p + 1 < nparts {
            match first_unassigned(&assignment, &mut rng) {
                Some(s) => {
                    assignment[s] = p;
                    grown += g.vertex_weight(s);
                    let mut q = std::collections::VecDeque::new();
                    q.push_back(s);
                    'grow2: while let Some(v) = q.pop_front() {
                        for &w in g.neighbors(v) {
                            if assignment[w] == usize::MAX {
                                assignment[w] = p;
                                grown += g.vertex_weight(w);
                                q.push_back(w);
                                if grown >= target {
                                    break 'grow2;
                                }
                            }
                        }
                    }
                }
                None => break,
            }
        }
        assigned_weight += grown;
    }
    // Sweep up any stragglers into the last part.
    for a in assignment.iter_mut() {
        if *a == usize::MAX {
            *a = nparts - 1;
        }
    }
    let mut part = Partition::new(nparts, assignment);
    fix_empty_parts(g, &mut part);
    part
}

fn first_unassigned(assignment: &[usize], rng: &mut StdRng) -> Option<usize> {
    let unassigned: Vec<usize> = assignment
        .iter()
        .enumerate()
        .filter(|(_, &a)| a == usize::MAX)
        .map(|(i, _)| i)
        .collect();
    if unassigned.is_empty() {
        None
    } else {
        Some(unassigned[rng.gen_range(0..unassigned.len())])
    }
}

/// Last vertex reached by a BFS over unassigned vertices from `start`
/// (a cheap pseudo-peripheral vertex).
fn bfs_last_unassigned(g: &Graph, assignment: &[usize], start: usize) -> usize {
    let mut seen = vec![false; g.nvertices()];
    let mut queue = std::collections::VecDeque::new();
    seen[start] = true;
    queue.push_back(start);
    let mut last = start;
    while let Some(v) = queue.pop_front() {
        last = v;
        for &w in g.neighbors(v) {
            if !seen[w] && assignment[w] == usize::MAX {
                seen[w] = true;
                queue.push_back(w);
            }
        }
    }
    last
}

/// Moves one boundary vertex into each empty part so the solvers never see
/// an empty subdomain.
fn fix_empty_parts(g: &Graph, part: &mut Partition) {
    loop {
        let sizes = part.sizes();
        let Some(empty) = sizes.iter().position(|&s| s == 0) else {
            return;
        };
        // Steal a vertex from the largest part (prefer one with a small
        // degree to keep the donor connected-ish).
        let donor = sizes
            .iter()
            .enumerate()
            .max_by_key(|&(_, &s)| s)
            .map(|(p, _)| p)
            .expect("sizes() has one entry per part and nparts > 0");
        let victim = (0..g.nvertices())
            .filter(|&v| part.assignment[v] == donor)
            .min_by_key(|&v| g.degree(v))
            .expect("donor part is nonempty");
        part.assignment[victim] = empty;
    }
}

/// Options for the multilevel partitioner.
#[derive(Debug, Clone, Copy)]
pub struct MultilevelOptions {
    /// Stop coarsening once the graph has at most
    /// `max(coarsen_to, 8 × nparts)` vertices.
    pub coarsen_to: usize,
    /// Boundary-refinement passes per level.
    pub refine_passes: usize,
    /// Allowed imbalance (max part weight / average), e.g. `1.1`.
    pub balance_tol: f64,
    /// RNG seed (matching order, seed vertices).
    pub seed: u64,
}

impl Default for MultilevelOptions {
    fn default() -> Self {
        MultilevelOptions {
            coarsen_to: 200,
            refine_passes: 4,
            balance_tol: 1.10,
            seed: 0,
        }
    }
}

/// METIS-style multilevel k-way partitioning:
/// heavy-edge-matching coarsening, greedy-growing initial partition on the
/// coarsest graph, and greedy boundary (KL/FM-style) refinement while
/// uncoarsening.
pub fn partition_multilevel(g: &Graph, nparts: usize, opts: MultilevelOptions) -> Partition {
    let n = g.nvertices();
    assert!(nparts > 0 && nparts <= n, "need 1 <= nparts <= n");
    if nparts == 1 {
        return Partition::new(1, vec![0; n]);
    }

    // Coarsening phase: levels[0] is the input graph.
    let mut levels: Vec<Graph> = vec![g.clone()];
    let mut maps: Vec<Vec<usize>> = Vec::new(); // fine vertex -> coarse vertex
    let stop = opts.coarsen_to.max(8 * nparts);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    while levels.last().is_some_and(|l| l.nvertices() > stop) {
        let cur = levels.last().expect("levels starts with the input graph");
        let (coarse, map) = coarsen_hem(cur, &mut rng);
        // Stalled coarsening (highly irregular graphs): stop.
        if coarse.nvertices() as f64 > 0.95 * cur.nvertices() as f64 {
            break;
        }
        levels.push(coarse);
        maps.push(map);
    }

    // Initial partition on the coarsest level.
    let coarsest = levels.last().expect("levels starts with the input graph");
    let mut part = partition_greedy_growing(coarsest, nparts, opts.seed ^ 0x9e3779b9);
    refine_boundary(coarsest, &mut part, opts.refine_passes, opts.balance_tol);

    // Uncoarsening with refinement.
    for lvl in (0..maps.len()).rev() {
        let fine = &levels[lvl];
        let map = &maps[lvl];
        let assignment: Vec<usize> = (0..fine.nvertices())
            .map(|v| part.assignment[map[v]])
            .collect();
        part = Partition::new(nparts, assignment);
        refine_boundary(fine, &mut part, opts.refine_passes, opts.balance_tol);
    }
    fix_empty_parts(g, &mut part);
    part
}

/// One round of heavy-edge matching; returns the coarse graph and the
/// fine→coarse vertex map.
fn coarsen_hem(g: &Graph, rng: &mut StdRng) -> (Graph, Vec<usize>) {
    let n = g.nvertices();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut mate = vec![usize::MAX; n];
    for &v in &order {
        if mate[v] != usize::MAX {
            continue;
        }
        // Heaviest unmatched neighbor.
        let mut best: Option<(usize, f64)> = None;
        for (w, ew) in g.edges(v) {
            if mate[w] == usize::MAX && w != v {
                match best {
                    Some((_, bw)) if ew <= bw => {}
                    _ => best = Some((w, ew)),
                }
            }
        }
        match best {
            Some((w, _)) => {
                mate[v] = w;
                mate[w] = v;
            }
            None => mate[v] = v, // matched with itself
        }
    }

    // Assign coarse ids.
    let mut coarse_of = vec![usize::MAX; n];
    let mut nc = 0;
    for v in 0..n {
        if coarse_of[v] != usize::MAX {
            continue;
        }
        coarse_of[v] = nc;
        let m = mate[v];
        if m != v && m != usize::MAX {
            coarse_of[m] = nc;
        }
        nc += 1;
    }

    // Build the coarse graph with aggregated weights.
    let mut vwgt = vec![0u64; nc];
    for v in 0..n {
        vwgt[coarse_of[v]] += g.vertex_weight(v);
    }
    // Accumulate coarse adjacency; use a scratch map keyed by coarse id.
    let mut xadj = Vec::with_capacity(nc + 1);
    let mut adjncy = Vec::new();
    let mut ewgt = Vec::new();
    xadj.push(0);
    // members[c] lists fine vertices of coarse vertex c.
    let mut members = vec![Vec::with_capacity(2); nc];
    for v in 0..n {
        members[coarse_of[v]].push(v);
    }
    let mut scratch_pos = vec![usize::MAX; nc]; // coarse neighbor -> slot
    for (c, mem) in members.iter().enumerate() {
        let start = adjncy.len();
        for &v in mem {
            for (w, ew) in g.edges(v) {
                let cw = coarse_of[w];
                if cw == c {
                    continue;
                }
                let pos = scratch_pos[cw];
                if pos >= start && pos < adjncy.len() && adjncy[pos] == cw {
                    ewgt[pos] += ew;
                } else {
                    scratch_pos[cw] = adjncy.len();
                    adjncy.push(cw);
                    ewgt.push(ew);
                }
            }
        }
        xadj.push(adjncy.len());
    }
    (Graph::from_parts(xadj, adjncy, ewgt, vwgt), coarse_of)
}

/// Greedy boundary refinement: repeatedly move boundary vertices to the
/// neighboring part with the largest positive edge-cut gain, subject to the
/// balance constraint. A lightweight stand-in for full FM with buckets.
fn refine_boundary(g: &Graph, part: &mut Partition, passes: usize, balance_tol: f64) {
    let n = g.nvertices();
    let nparts = part.nparts;
    let mut wgt = vec![0u64; nparts];
    for v in 0..n {
        wgt[part.assignment[v]] += g.vertex_weight(v);
    }
    let avg = g.total_vertex_weight() as f64 / nparts as f64;
    let max_w = (avg * balance_tol).ceil() as u64;

    // Per-part connection weights of one vertex, reset between vertices.
    let mut conn = vec![0.0f64; nparts];
    let mut touched: Vec<usize> = Vec::new();

    for _ in 0..passes {
        let mut moved = 0usize;
        for v in 0..n {
            let home = part.assignment[v];
            let mut is_boundary = false;
            for (w, ew) in g.edges(v) {
                let pw = part.assignment[w];
                if conn[pw] == 0.0 {
                    touched.push(pw);
                }
                conn[pw] += ew;
                if pw != home {
                    is_boundary = true;
                }
            }
            if is_boundary {
                let internal = conn[home];
                let mut best: Option<(usize, f64)> = None;
                for &p in &touched {
                    if p == home {
                        continue;
                    }
                    let gain = conn[p] - internal;
                    if gain > 0.0
                        && wgt[p] + g.vertex_weight(v) <= max_w
                        && wgt[home] > g.vertex_weight(v)
                    {
                        match best {
                            Some((_, bg)) if gain <= bg => {}
                            _ => best = Some((p, gain)),
                        }
                    }
                }
                if let Some((p, _)) = best {
                    wgt[home] -= g.vertex_weight(v);
                    wgt[p] += g.vertex_weight(v);
                    part.assignment[v] = p;
                    moved += 1;
                }
            }
            for &p in &touched {
                conn[p] = 0.0;
            }
            touched.clear();
        }
        if moved == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsw_sparse::gen::{grid2d_poisson, grid3d_poisson};

    #[test]
    fn strip_partition_balanced() {
        let p = partition_strip(10, 3);
        assert_eq!(p.sizes(), vec![4, 3, 3]);
        assert!(p.all_parts_nonempty());
        assert_eq!(p.part_of(0), 0);
        assert_eq!(p.part_of(9), 2);
    }

    #[test]
    fn greedy_growing_covers_and_balances() {
        let a = grid2d_poisson(20, 20);
        let g = Graph::from_matrix(&a);
        let p = partition_greedy_growing(&g, 8, 1);
        assert!(p.all_parts_nonempty());
        let imb = p.imbalance(&g).unwrap();
        assert!(imb < 1.5, "imbalance {imb}");
    }

    #[test]
    fn multilevel_beats_strip_on_edge_cut() {
        let a = grid2d_poisson(32, 32);
        let g = Graph::from_matrix(&a);
        let strip = partition_strip(g.nvertices(), 16);
        let ml = partition_multilevel(&g, 16, MultilevelOptions::default());
        assert!(ml.all_parts_nonempty());
        let imb = ml.imbalance(&g).unwrap();
        assert!(imb <= 1.25, "imbalance {imb}");
        assert!(
            ml.edge_cut(&g) < strip.edge_cut(&g),
            "ml cut {} !< strip cut {}",
            ml.edge_cut(&g),
            strip.edge_cut(&g)
        );
    }

    #[test]
    fn multilevel_3d() {
        let a = grid3d_poisson(10, 10, 10);
        let g = Graph::from_matrix(&a);
        let p = partition_multilevel(&g, 8, MultilevelOptions::default());
        assert!(p.all_parts_nonempty());
        let imb = p.imbalance(&g).unwrap();
        assert!(imb <= 1.3, "imbalance {imb}");
        // A decent 8-way cut of a 10^3 grid is well under the worst case.
        assert!(p.edge_cut(&g) < 600.0, "cut {}", p.edge_cut(&g));
    }

    #[test]
    fn multilevel_single_part() {
        let a = grid2d_poisson(4, 4);
        let g = Graph::from_matrix(&a);
        let p = partition_multilevel(&g, 1, MultilevelOptions::default());
        assert_eq!(p.sizes(), vec![16]);
        assert_eq!(p.edge_cut(&g), 0.0);
    }

    #[test]
    fn multilevel_nparts_equals_n() {
        let a = grid2d_poisson(3, 3);
        let g = Graph::from_matrix(&a);
        let p = partition_multilevel(&g, 9, MultilevelOptions::default());
        assert!(p.all_parts_nonempty());
        assert_eq!(p.sizes(), vec![1; 9]);
    }

    #[test]
    fn partition_is_deterministic() {
        let a = grid2d_poisson(16, 16);
        let g = Graph::from_matrix(&a);
        let o = MultilevelOptions::default();
        let p1 = partition_multilevel(&g, 7, o);
        let p2 = partition_multilevel(&g, 7, o);
        assert_eq!(p1, p2);
    }

    #[test]
    #[should_panic(expected = "need 1 <= nparts <= n")]
    fn too_many_parts_panics() {
        partition_strip(3, 5);
    }

    #[test]
    fn degenerate_partitions_err_instead_of_panicking() {
        // Too many (or zero) parts: clear Err from the try_ API.
        assert_eq!(
            try_partition_strip(3, 5),
            Err(PartitionError::InvalidParts { nparts: 5, n: 3 })
        );
        assert_eq!(
            try_partition_strip(3, 0),
            Err(PartitionError::InvalidParts { nparts: 0, n: 3 })
        );
        assert!(try_partition_strip(3, 5)
            .unwrap_err()
            .to_string()
            .contains("need 1 <= nparts <= n"));
        // Out-of-range assignment entries.
        assert_eq!(
            Partition::try_new(2, vec![0, 2, 1]),
            Err(PartitionError::PartIndexOutOfRange {
                index: 2,
                nparts: 2
            })
        );
        assert_eq!(
            Partition::try_new(0, vec![]),
            Err(PartitionError::InvalidParts { nparts: 0, n: 0 })
        );
        // Zero-row blocks are named by the validator.
        let lopsided = Partition::try_new(3, vec![0, 0, 2]).unwrap();
        assert_eq!(
            lopsided.validate_nonempty(),
            Err(PartitionError::EmptyPart { part: 1 })
        );
        assert!(lopsided
            .validate_nonempty()
            .unwrap_err()
            .to_string()
            .contains("owns no rows"));
        // Healthy inputs pass.
        let ok = try_partition_strip(10, 3).unwrap();
        assert_eq!(ok.sizes(), vec![4, 3, 3]);
        assert_eq!(ok.validate_nonempty(), Ok(()));
        // Single-rank runs are valid, not degenerate.
        let single = try_partition_strip(4, 1).unwrap();
        assert_eq!(single.sizes(), vec![4]);
        assert_eq!(single.validate_nonempty(), Ok(()));
    }

    #[test]
    fn imbalance_errs_on_degenerate_weights_instead_of_panicking() {
        // A graph whose vertices carry zero weight makes the max/avg ratio
        // undefined; previously the empty/zero-weight part slice aborted on
        // `max().unwrap()` or silently divided by zero.
        let g = Graph::from_parts(vec![0, 0, 0], vec![], vec![], vec![0, 0]);
        let p = Partition::try_new(2, vec![0, 1]).unwrap();
        assert_eq!(
            p.imbalance(&g),
            Err(PartitionError::DegenerateWeights {
                nparts: 2,
                total: 0
            })
        );
        assert!(p
            .imbalance(&g)
            .unwrap_err()
            .to_string()
            .contains("imbalance undefined"));
        // Healthy inputs still produce the plain ratio.
        let a = grid2d_poisson(4, 4);
        let gg = Graph::from_matrix(&a);
        let ok = partition_strip(16, 4);
        assert!((ok.imbalance(&gg).unwrap() - 1.0).abs() < 1e-12);
    }
}
