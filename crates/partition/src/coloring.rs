//! Greedy graph multicoloring for Multicolor Gauss–Seidel.
//!
//! The paper (Figures 2 and 5) colors the FE graph greedily in
//! breadth-first order and notes that its 3081-row test problem needs six
//! colors with a very unbalanced color distribution — both properties are
//! reproduced by this implementation.

use crate::graph::Graph;

/// A vertex coloring: vertices of the same color are pairwise non-adjacent,
/// so all rows of one color can be relaxed in a single parallel step.
#[derive(Debug, Clone)]
pub struct Coloring {
    /// Color index per vertex.
    pub color_of: Vec<usize>,
    /// Number of colors used.
    pub ncolors: usize,
}

impl Coloring {
    /// The vertices of each color, in increasing vertex order.
    pub fn classes(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.ncolors];
        for (v, &c) in self.color_of.iter().enumerate() {
            out[c].push(v);
        }
        out
    }

    /// Sizes of the color classes.
    pub fn class_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.ncolors];
        for &c in &self.color_of {
            sizes[c] += 1;
        }
        sizes
    }

    /// Checks the coloring is proper on `g`.
    pub fn is_proper(&self, g: &Graph) -> bool {
        (0..g.nvertices()).all(|v| {
            g.neighbors(v)
                .iter()
                .all(|&w| w == v || self.color_of[w] != self.color_of[v])
        })
    }
}

/// Greedy coloring in breadth-first traversal order: each vertex takes the
/// smallest color not used by an already-colored neighbor.
pub fn greedy_coloring_bfs(g: &Graph) -> Coloring {
    greedy_coloring_in_order(g, &g.bfs_order_all())
}

/// Greedy coloring in an arbitrary vertex order.
pub fn greedy_coloring_in_order(g: &Graph, order: &[usize]) -> Coloring {
    let n = g.nvertices();
    assert_eq!(order.len(), n, "order must cover every vertex");
    let mut color_of = vec![usize::MAX; n];
    let mut ncolors = 0;
    // `forbidden[c] == v` marks color c as used by a neighbor of v.
    let mut forbidden: Vec<usize> = Vec::new();
    for &v in order {
        for &w in g.neighbors(v) {
            let c = color_of[w];
            if c != usize::MAX {
                if c >= forbidden.len() {
                    forbidden.resize(c + 1, usize::MAX);
                }
                forbidden[c] = v;
            }
        }
        let c = (0..forbidden.len())
            .find(|&c| forbidden[c] != v)
            .unwrap_or(forbidden.len());
        color_of[v] = c;
        ncolors = ncolors.max(c + 1);
    }
    Coloring { color_of, ncolors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsw_sparse::gen::fe::{fe_poisson, FeMeshOptions};
    use dsw_sparse::gen::grid2d_poisson;

    #[test]
    fn poisson_grid_needs_two_colors() {
        let a = grid2d_poisson(8, 8);
        let g = Graph::from_matrix(&a);
        let c = greedy_coloring_bfs(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.ncolors, 2, "5-point stencil is bipartite");
        assert_eq!(c.class_sizes().iter().sum::<usize>(), 64);
    }

    #[test]
    fn fe_mesh_needs_several_colors() {
        // The paper's irregular FE problem needs 6 colors with unbalanced
        // classes; a small instance of the same generator should need >= 4.
        let a = fe_poisson(FeMeshOptions {
            nx: 20,
            ny: 20,
            jitter: 0.25,
            seed: 1,
        });
        let g = Graph::from_matrix(&a);
        let c = greedy_coloring_bfs(&g);
        assert!(c.is_proper(&g));
        assert!(c.ncolors >= 4, "got {} colors", c.ncolors);
        let sizes = c.class_sizes();
        assert!(sizes.iter().max() > sizes.iter().min());
    }

    #[test]
    fn classes_partition_vertices() {
        let a = grid2d_poisson(5, 4);
        let g = Graph::from_matrix(&a);
        let c = greedy_coloring_bfs(&g);
        let classes = c.classes();
        let total: usize = classes.iter().map(|cl| cl.len()).sum();
        assert_eq!(total, 20);
        let mut all: Vec<usize> = classes.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn singleton_graph() {
        let a = dsw_sparse::CsrMatrix::identity(1);
        let g = Graph::from_matrix(&a);
        let c = greedy_coloring_bfs(&g);
        assert_eq!(c.ncolors, 1);
        assert!(c.is_proper(&g));
    }
}
