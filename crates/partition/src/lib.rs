//! Graph partitioning and coloring for the Distributed Southwell solvers.
//!
//! The paper partitions each test matrix over MPI processes with METIS and
//! colors rows for Multicolor Gauss–Seidel with a breadth-first traversal.
//! This crate provides both from scratch:
//!
//! * [`graph::Graph`] — an undirected weighted adjacency structure derived
//!   from a sparse matrix,
//! * [`coloring::greedy_coloring_bfs`] — greedy multicoloring in BFS order
//!   (the scheme the paper uses for MC-GS in Figures 2 and 5),
//! * [`Partition`] — a `rows → parts` assignment with quality metrics,
//! * partitioners in increasing sophistication: [`partition_strip`]
//!   (contiguous row blocks), [`partition_greedy_growing`] (BFS region
//!   growing), and [`partition_multilevel`] — a METIS-style multilevel
//!   scheme (heavy-edge matching coarsening, greedy initial partition,
//!   boundary Kernighan–Lin/FM refinement on every level),
//! * [`Redundancy`] / [`ReplicaMap`] — deterministic redundancy-coded
//!   block placement (each block hosted by `r` ranks) for straggler
//!   resilience, with [`PartitionError`] covering degenerate requests.

// `unwrap()` is banned in non-test code (clippy `disallowed-methods`, see
// clippy.toml): use `expect` naming the invariant, or propagate the error.
#![cfg_attr(not(test), deny(clippy::disallowed_methods))]

pub mod coloring;
pub mod graph;
pub mod partitioner;
pub mod redundancy;

pub use coloring::{greedy_coloring_bfs, Coloring};
pub use graph::Graph;
pub use partitioner::{
    partition_greedy_growing, partition_multilevel, partition_strip, try_partition_strip,
    MultilevelOptions, Partition, PartitionError,
};
pub use redundancy::{Redundancy, ReplicaMap};
