//! Undirected weighted graphs derived from sparse matrices.

use dsw_sparse::CsrMatrix;

/// An undirected graph in CSR adjacency form with edge and vertex weights.
///
/// Self-loops are never stored. For a symmetric matrix, the graph of
/// `A` has an edge `{i, j}` for every off-diagonal nonzero `a_ij`, with
/// weight `|a_ij|`.
#[derive(Debug, Clone)]
pub struct Graph {
    xadj: Vec<usize>,
    adjncy: Vec<usize>,
    /// Edge weights, parallel to `adjncy`.
    ewgt: Vec<f64>,
    /// Vertex weights (1 for matrix-derived graphs; aggregated when coarsened).
    vwgt: Vec<u64>,
}

impl Graph {
    /// Builds the adjacency graph of a square matrix, dropping the diagonal.
    /// The matrix should be structurally symmetric; if it is not, the union
    /// pattern is *not* formed — the row pattern is used as-is, so callers
    /// should symmetrize first if needed.
    pub fn from_matrix(a: &CsrMatrix) -> Self {
        assert_eq!(a.nrows(), a.ncols(), "graph of non-square matrix");
        let n = a.nrows();
        let mut xadj = Vec::with_capacity(n + 1);
        let mut adjncy = Vec::with_capacity(a.nnz());
        let mut ewgt = Vec::with_capacity(a.nnz());
        xadj.push(0);
        for i in 0..n {
            for (j, v) in a.row(i) {
                if j != i {
                    adjncy.push(j);
                    ewgt.push(v.abs());
                }
            }
            xadj.push(adjncy.len());
        }
        Graph {
            xadj,
            adjncy,
            ewgt,
            vwgt: vec![1; n],
        }
    }

    /// Builds a graph from raw parts (used by the coarsener).
    pub(crate) fn from_parts(
        xadj: Vec<usize>,
        adjncy: Vec<usize>,
        ewgt: Vec<f64>,
        vwgt: Vec<u64>,
    ) -> Self {
        debug_assert_eq!(xadj.len(), vwgt.len() + 1);
        debug_assert_eq!(adjncy.len(), ewgt.len());
        Graph {
            xadj,
            adjncy,
            ewgt,
            vwgt,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn nvertices(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of directed adjacency entries (twice the undirected edges).
    #[inline]
    pub fn nadj(&self) -> usize {
        self.adjncy.len()
    }

    /// Neighbors of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adjncy[self.xadj[v]..self.xadj[v + 1]]
    }

    /// `(neighbor, edge weight)` pairs of vertex `v`.
    #[inline]
    pub fn edges(&self, v: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let r = self.xadj[v]..self.xadj[v + 1];
        self.adjncy[r.clone()]
            .iter()
            .copied()
            .zip(self.ewgt[r].iter().copied())
    }

    /// Vertex weight of `v`.
    #[inline]
    pub fn vertex_weight(&self, v: usize) -> u64 {
        self.vwgt[v]
    }

    /// Total vertex weight.
    pub fn total_vertex_weight(&self) -> u64 {
        self.vwgt.iter().sum()
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    /// Breadth-first traversal order from `start`, restricted to the
    /// connected component of `start`.
    pub fn bfs_order(&self, start: usize) -> Vec<usize> {
        let mut seen = vec![false; self.nvertices()];
        let mut order = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        seen[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &w in self.neighbors(v) {
                if !seen[w] {
                    seen[w] = true;
                    queue.push_back(w);
                }
            }
        }
        order
    }

    /// Full BFS order covering all components (each component started from
    /// its lowest-index unvisited vertex).
    pub fn bfs_order_all(&self) -> Vec<usize> {
        let n = self.nvertices();
        let mut seen = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::new();
        for s in 0..n {
            if seen[s] {
                continue;
            }
            seen[s] = true;
            queue.push_back(s);
            while let Some(v) = queue.pop_front() {
                order.push(v);
                for &w in self.neighbors(v) {
                    if !seen[w] {
                        seen[w] = true;
                        queue.push_back(w);
                    }
                }
            }
        }
        order
    }

    /// Connected components: returns `(ncomponents, component id per vertex)`.
    pub fn connected_components(&self) -> (usize, Vec<usize>) {
        let n = self.nvertices();
        let mut comp = vec![usize::MAX; n];
        let mut ncomp = 0;
        let mut stack = Vec::new();
        for s in 0..n {
            if comp[s] != usize::MAX {
                continue;
            }
            comp[s] = ncomp;
            stack.push(s);
            while let Some(v) = stack.pop() {
                for &w in self.neighbors(v) {
                    if comp[w] == usize::MAX {
                        comp[w] = ncomp;
                        stack.push(w);
                    }
                }
            }
            ncomp += 1;
        }
        (ncomp, comp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsw_sparse::gen::grid2d_poisson;
    use dsw_sparse::CooBuilder;

    #[test]
    fn graph_from_poisson_drops_diagonal() {
        let a = grid2d_poisson(3, 3);
        let g = Graph::from_matrix(&a);
        assert_eq!(g.nvertices(), 9);
        assert_eq!(g.degree(4), 4); // interior point
        assert_eq!(g.degree(0), 2); // corner
        assert!(g.neighbors(4).iter().all(|&w| w != 4));
        assert_eq!(g.total_vertex_weight(), 9);
    }

    #[test]
    fn edge_weights_are_absolute_values() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, 1.0);
        b.push(1, 1, 1.0);
        b.push_sym(0, 1, -0.5);
        let a = b.build().unwrap();
        let g = Graph::from_matrix(&a);
        let (n, w) = g.edges(0).next().unwrap();
        assert_eq!(n, 1);
        assert_eq!(w, 0.5);
    }

    #[test]
    fn bfs_visits_component_in_breadth_order() {
        let a = grid2d_poisson(3, 3);
        let g = Graph::from_matrix(&a);
        let order = g.bfs_order(0);
        assert_eq!(order.len(), 9);
        assert_eq!(order[0], 0);
        // Distance-1 vertices (1 and 3) come before distance-2 ones.
        let pos = |v: usize| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(1) < pos(4));
        assert!(pos(3) < pos(4));
    }

    #[test]
    fn components_of_disconnected_graph() {
        let mut b = CooBuilder::new(4, 4);
        for i in 0..4 {
            b.push(i, i, 1.0);
        }
        b.push_sym(0, 1, -1.0);
        b.push_sym(2, 3, -1.0);
        let a = b.build().unwrap();
        let g = Graph::from_matrix(&a);
        let (nc, comp) = g.connected_components();
        assert_eq!(nc, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_eq!(g.bfs_order_all().len(), 4);
    }
}
