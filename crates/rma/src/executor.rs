//! The superstep executor: epochs, puts, delivery, counters.

use crate::stats::{CommClass, CostModel, RunStats, StepStats};

/// A message as it sits in a target rank's memory window.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Origin rank of the put.
    pub src: usize,
    /// Message class (for the Table 3 breakdown).
    pub class: CommClass,
    /// Payload.
    pub payload: M,
}

/// The per-phase context handed to a rank: issue puts, report work.
///
/// Every `put` is one message, exactly as in the paper's counting (one
/// `MPI_Put` per target per phase; piggybacked data rides in the same
/// message at zero extra message cost but nonzero bytes).
pub struct PhaseCtx<M> {
    rank: usize,
    outbox: Vec<(usize, Envelope<M>)>,
    msgs: u64,
    msgs_solve: u64,
    msgs_residual: u64,
    bytes: u64,
    flops: u64,
    relaxations: u64,
    active: bool,
}

impl<M> PhaseCtx<M> {
    fn new(rank: usize) -> Self {
        PhaseCtx {
            rank,
            outbox: Vec::new(),
            msgs: 0,
            msgs_solve: 0,
            msgs_residual: 0,
            bytes: 0,
            flops: 0,
            relaxations: 0,
            active: false,
        }
    }

    /// The calling rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Constructor for alternate executors in this crate.
    pub(crate) fn new_for_async(rank: usize) -> Self {
        Self::new(rank)
    }

    /// Consumes the context, yielding the outbox and the message count
    /// (alternate executors only track messages).
    pub(crate) fn into_outbox_and_count(self) -> (Vec<(usize, Envelope<M>)>, u64) {
        (self.outbox, self.msgs)
    }

    /// Puts `payload` into `target`'s window. Visible to `target` at the
    /// next phase (after the epoch closes). `bytes` is the modelled payload
    /// size used by the β term of the cost model.
    pub fn put(&mut self, target: usize, class: CommClass, payload: M, bytes: u64) {
        assert_ne!(target, self.rank, "a rank must not put to itself");
        self.outbox.push((
            target,
            Envelope {
                src: self.rank,
                class,
                payload,
            },
        ));
        self.msgs += 1;
        match class {
            CommClass::Solve => self.msgs_solve += 1,
            CommClass::Residual => self.msgs_residual += 1,
        }
        self.bytes += bytes;
    }

    /// Reports computational work for the γ term of the cost model.
    #[inline]
    pub fn add_flops(&mut self, flops: u64) {
        self.flops += flops;
    }

    /// Reports that this rank relaxed `rows` of its equations this step
    /// (feeds the "relaxations" and "active processes" columns of Table 2).
    #[inline]
    pub fn record_relaxations(&mut self, rows: u64) {
        self.relaxations += rows;
        self.active = true;
    }
}

/// A per-rank program, written as phases of a parallel step.
///
/// Phase semantics: in phase `k` the rank sees exactly the messages that
/// were put during phase `k − 1` (for `k = 0`: during the *last* phase of
/// the previous parallel step). This is the one-sided epoch visibility rule.
pub trait RankAlgorithm: Send {
    /// Payload type of the messages this algorithm puts.
    type Msg: Send + Sync + Clone;

    /// Number of communication phases (epochs) per parallel step.
    fn phases(&self) -> usize;

    /// Executes one phase. `inbox` holds the envelopes delivered at the
    /// close of the previous epoch, ordered by origin rank.
    fn phase(&mut self, phase: usize, inbox: &[Envelope<Self::Msg>], ctx: &mut PhaseCtx<Self::Msg>);
}

/// How the executor schedules rank phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// All ranks run on the calling thread, in rank order.
    Sequential,
    /// Ranks are sharded over `n` crossbeam-scoped threads. Results are
    /// bit-identical to [`ExecMode::Sequential`] because ranks interact
    /// only at epoch boundaries, which the executor serializes.
    Threaded(usize),
}

/// Fault injection: drop messages at the epoch boundary.
///
/// Real one-sided MPI guarantees delivery once the epoch closes; the
/// solvers in this workspace *rely* on that (lost solve updates corrupt
/// the receiver's maintained residual; lost explicit residual updates
/// disable Distributed Southwell's deadlock avoidance). Chaos mode makes
/// those failure modes observable and testable.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Probability that an eligible message is dropped, in `[0, 1]`.
    pub drop_rate: f64,
    /// Restrict dropping to one message class (`None` = any class).
    pub drop_class: Option<CommClass>,
    /// Seed of the deterministic drop sequence.
    pub seed: u64,
}

impl ChaosConfig {
    /// No faults.
    pub fn none() -> Self {
        ChaosConfig {
            drop_rate: 0.0,
            drop_class: None,
            seed: 0,
        }
    }
}

/// A tiny deterministic PRNG (xorshift64*) so the substrate does not need
/// a rand dependency for fault injection.
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.wrapping_mul(0x9e3779b97f4a7c15) | 1)
    }

    fn next_f64(&mut self) -> f64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runs a set of [`RankAlgorithm`] instances in lock-step parallel steps.
pub struct Executor<A: RankAlgorithm> {
    ranks: Vec<A>,
    /// Inboxes holding envelopes visible at the next phase.
    inboxes: Vec<Vec<Envelope<A::Msg>>>,
    model: CostModel,
    mode: ExecMode,
    chaos: ChaosConfig,
    chaos_rng: XorShift,
    /// Messages dropped by fault injection over the run.
    pub msgs_dropped: u64,
    /// Optional delivery log (see [`Executor::enable_trace`]).
    pub trace: Option<crate::trace::Trace>,
    steps_executed: usize,
    /// Statistics accumulated over all executed steps.
    pub stats: RunStats,
}

impl<A: RankAlgorithm> Executor<A> {
    /// Creates an executor over `ranks` with the given cost model.
    pub fn new(ranks: Vec<A>, model: CostModel, mode: ExecMode) -> Self {
        Self::with_chaos(ranks, model, mode, ChaosConfig::none())
    }

    /// As [`new`](Self::new), with fault injection at epoch boundaries.
    pub fn with_chaos(ranks: Vec<A>, model: CostModel, mode: ExecMode, chaos: ChaosConfig) -> Self {
        assert!(!ranks.is_empty(), "need at least one rank");
        assert!(
            (0.0..=1.0).contains(&chaos.drop_rate),
            "drop_rate must be a probability"
        );
        if let ExecMode::Threaded(n) = mode {
            assert!(n > 0, "threaded mode needs at least one thread");
        }
        let n = ranks.len();
        Executor {
            ranks,
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            model,
            mode,
            chaos_rng: XorShift::new(chaos.seed),
            chaos,
            msgs_dropped: 0,
            trace: None,
            steps_executed: 0,
            stats: RunStats::new(n),
        }
    }

    /// Starts logging every delivered message (up to `capacity` events)
    /// into [`Executor::trace`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(crate::trace::Trace::new(capacity));
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    /// Immutable access to the rank programs (for the harness to read
    /// local solution vectors etc. — out-of-band, not counted as
    /// communication, exactly like the paper's measurement hooks).
    pub fn ranks(&self) -> &[A] {
        &self.ranks
    }

    /// Mutable access to the rank programs.
    pub fn ranks_mut(&mut self) -> &mut [A] {
        &mut self.ranks
    }

    /// Executes one parallel step (all phases); returns its stats.
    pub fn step(&mut self) -> StepStats {
        let nphases = self.ranks[0].phases();
        debug_assert!(
            self.ranks.iter().all(|r| r.phases() == nphases),
            "all ranks must agree on the phase count"
        );
        let mut step = StepStats::default();
        for phase in 0..nphases {
            let (outboxes, phase_stats) = self.run_phase(phase);
            // Epoch close: deliver puts. Outboxes are concatenated in origin
            // rank order, so delivery is deterministic regardless of mode.
            for inbox in self.inboxes.iter_mut() {
                inbox.clear();
            }
            for (origin, outbox) in outboxes.into_iter().enumerate() {
                self.stats.msgs_per_rank[origin] += outbox.len() as u64;
                for (target, env) in outbox {
                    if self.chaos.drop_rate > 0.0
                        && self.chaos.drop_class.map_or(true, |c| c == env.class)
                        && self.chaos_rng.next_f64() < self.chaos.drop_rate
                    {
                        self.msgs_dropped += 1;
                        continue;
                    }
                    if let Some(trace) = &mut self.trace {
                        trace.record(crate::trace::TraceEvent {
                            step: self.steps_executed,
                            phase,
                            src: env.src,
                            dst: target,
                            class: env.class,
                        });
                    }
                    self.inboxes[target].push(env);
                }
            }
            // Time: the slowest rank gates the computation; message and
            // byte volume are charged at the per-rank average (congestion /
            // epoch-overhead model — see `CostModel`).
            let mut max_flops = 0u64;
            let mut total_msgs = 0u64;
            let mut total_bytes = 0u64;
            for ps in &phase_stats {
                max_flops = max_flops.max(ps.2);
                total_msgs += ps.0;
                total_bytes += ps.1;
            }
            let p = self.ranks.len() as f64;
            step.time += self.model.sync
                + self.model.gamma * max_flops as f64
                + self.model.alpha * total_msgs as f64 / p
                + self.model.beta * total_bytes as f64 / p;
            for ps in &phase_stats {
                step.msgs += ps.0;
                step.bytes += ps.1;
                step.flops += ps.2;
                step.msgs_solve += ps.3;
                step.msgs_residual += ps.4;
                step.relaxations += ps.5;
                step.active_ranks += u64::from(ps.6);
            }
        }
        self.stats.steps.push(step);
        self.steps_executed += 1;
        step
    }

    /// Runs `phase` on every rank; returns outboxes and per-rank
    /// `(msgs, bytes, flops, solve, residual, relaxations, active)`.
    #[allow(clippy::type_complexity)]
    fn run_phase(
        &mut self,
        phase: usize,
    ) -> (
        Vec<Vec<(usize, Envelope<A::Msg>)>>,
        Vec<(u64, u64, u64, u64, u64, u64, bool)>,
    ) {
        let n = self.ranks.len();
        let run_one = |rank_id: usize, rank: &mut A, inbox: &[Envelope<A::Msg>]| {
            let mut ctx = PhaseCtx::new(rank_id);
            rank.phase(phase, inbox, &mut ctx);
            let stats = (
                ctx.msgs,
                ctx.bytes,
                ctx.flops,
                ctx.msgs_solve,
                ctx.msgs_residual,
                ctx.relaxations,
                ctx.active,
            );
            (ctx.outbox, stats)
        };

        match self.mode {
            ExecMode::Sequential => {
                let mut outboxes = Vec::with_capacity(n);
                let mut stats = Vec::with_capacity(n);
                for (i, (rank, inbox)) in self.ranks.iter_mut().zip(&self.inboxes).enumerate() {
                    let (o, s) = run_one(i, rank, inbox);
                    outboxes.push(o);
                    stats.push(s);
                }
                (outboxes, stats)
            }
            ExecMode::Threaded(nthreads) => {
                let nthreads = nthreads.min(n);
                let chunk = n.div_ceil(nthreads);
                let mut results: Vec<
                    Option<(Vec<(usize, Envelope<A::Msg>)>, (u64, u64, u64, u64, u64, u64, bool))>,
                > = (0..n).map(|_| None).collect();
                let ranks = &mut self.ranks;
                let inboxes = &self.inboxes;
                crossbeam::thread::scope(|scope| {
                    let mut rank_chunks = ranks.chunks_mut(chunk);
                    let mut inbox_chunks = inboxes.chunks(chunk);
                    let mut result_chunks = results.chunks_mut(chunk);
                    let mut base = 0usize;
                    for _ in 0..nthreads {
                        let (Some(rc), Some(ic), Some(out)) = (
                            rank_chunks.next(),
                            inbox_chunks.next(),
                            result_chunks.next(),
                        ) else {
                            break;
                        };
                        let start = base;
                        base += rc.len();
                        scope.spawn(move |_| {
                            for (k, (rank, inbox)) in rc.iter_mut().zip(ic).enumerate() {
                                let mut ctx = PhaseCtx::new(start + k);
                                rank.phase(phase, inbox, &mut ctx);
                                out[k] = Some((
                                    ctx.outbox,
                                    (
                                        ctx.msgs,
                                        ctx.bytes,
                                        ctx.flops,
                                        ctx.msgs_solve,
                                        ctx.msgs_residual,
                                        ctx.relaxations,
                                        ctx.active,
                                    ),
                                ));
                            }
                        });
                    }
                })
                .expect("superstep worker panicked");
                let mut outboxes = Vec::with_capacity(n);
                let mut stats = Vec::with_capacity(n);
                for r in results {
                    let (o, s) = r.expect("every rank executed");
                    outboxes.push(o);
                    stats.push(s);
                }
                (outboxes, stats)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy algorithm on a ring: each rank holds a value; every step it puts
    /// the value to its right neighbor in phase 0 and adds what it received
    /// (visible in phase 0 of the *next* step, per the epoch rule).
    struct Ring {
        id: usize,
        n: usize,
        value: u64,
        received_this_phase: Vec<u64>,
    }

    impl RankAlgorithm for Ring {
        type Msg = u64;
        fn phases(&self) -> usize {
            1
        }
        fn phase(&mut self, _phase: usize, inbox: &[Envelope<u64>], ctx: &mut PhaseCtx<u64>) {
            self.received_this_phase = inbox.iter().map(|e| e.payload).collect();
            for e in inbox {
                self.value += e.payload;
            }
            let target = (self.id + 1) % self.n;
            ctx.put(target, CommClass::Solve, self.value, 8);
            ctx.add_flops(1);
            ctx.record_relaxations(1);
        }
    }

    fn ring(n: usize) -> Vec<Ring> {
        (0..n)
            .map(|id| Ring {
                id,
                n,
                value: id as u64 + 1,
                received_this_phase: Vec::new(),
            })
            .collect()
    }

    #[test]
    fn messages_delivered_next_phase_not_same() {
        let mut ex = Executor::new(ring(3), CostModel::default(), ExecMode::Sequential);
        let s1 = ex.step();
        // Nothing was in flight during the first step's phase 0.
        assert!(ex.ranks()[0].received_this_phase.is_empty());
        assert_eq!(s1.msgs, 3);
        let _s2 = ex.step();
        // Now each rank saw exactly the value its left neighbor sent.
        assert_eq!(ex.ranks()[1].received_this_phase, vec![1]);
        assert_eq!(ex.ranks()[0].received_this_phase, vec![3]);
    }

    #[test]
    fn sequential_and_threaded_agree() {
        let mut a = Executor::new(ring(7), CostModel::default(), ExecMode::Sequential);
        let mut b = Executor::new(ring(7), CostModel::default(), ExecMode::Threaded(3));
        for _ in 0..5 {
            a.step();
            b.step();
        }
        let va: Vec<u64> = a.ranks().iter().map(|r| r.value).collect();
        let vb: Vec<u64> = b.ranks().iter().map(|r| r.value).collect();
        assert_eq!(va, vb);
        assert_eq!(a.stats.total_msgs(), b.stats.total_msgs());
        assert_eq!(a.stats.msgs_per_rank, b.stats.msgs_per_rank);
    }

    #[test]
    fn counters_and_cost_model() {
        let model = CostModel {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            sync: 0.5,
        };
        let mut ex = Executor::new(ring(4), model, ExecMode::Sequential);
        let s = ex.step();
        assert_eq!(s.msgs, 4);
        assert_eq!(s.msgs_solve, 4);
        assert_eq!(s.msgs_residual, 0);
        assert_eq!(s.bytes, 32);
        assert_eq!(s.flops, 4);
        assert_eq!(s.active_ranks, 4);
        assert_eq!(s.relaxations, 4);
        // Each rank sends one message: max over ranks = 1 message * alpha,
        // plus the sync charge.
        assert!((s.time - 1.5).abs() < 1e-12);
        assert!((ex.stats.comm_cost() - 1.0).abs() < 1e-12);
    }

    /// Two-phase algorithm verifying that phase-1 messages arrive in
    /// phase 0 of the next step and phase-0 messages arrive in phase 1.
    struct TwoPhase {
        id: usize,
        log: Vec<(usize, Vec<u64>)>,
    }

    impl RankAlgorithm for TwoPhase {
        type Msg = u64;
        fn phases(&self) -> usize {
            2
        }
        fn phase(&mut self, phase: usize, inbox: &[Envelope<u64>], ctx: &mut PhaseCtx<u64>) {
            self.log
                .push((phase, inbox.iter().map(|e| e.payload).collect()));
            let peer = 1 - self.id;
            // Tag the message with 10*phase so the receiver can tell which
            // phase it was sent in.
            ctx.put(peer, CommClass::Residual, (10 * phase) as u64, 8);
        }
    }

    #[test]
    fn two_phase_visibility() {
        let ranks = vec![
            TwoPhase { id: 0, log: vec![] },
            TwoPhase { id: 1, log: vec![] },
        ];
        let mut ex = Executor::new(ranks, CostModel::default(), ExecMode::Sequential);
        ex.step();
        ex.step();
        let log = &ex.ranks()[0].log;
        // Step 1: phase 0 sees nothing; phase 1 sees the phase-0 put (0).
        assert_eq!(log[0], (0, vec![]));
        assert_eq!(log[1], (1, vec![0]));
        // Step 2: phase 0 sees the phase-1 put (10) of step 1.
        assert_eq!(log[2], (0, vec![10]));
        assert_eq!(log[3], (1, vec![0]));
        assert_eq!(ex.stats.total_msgs_residual(), 8);
    }

    #[test]
    fn trace_records_deliveries() {
        let mut ex = Executor::new(ring(3), CostModel::default(), ExecMode::Sequential);
        ex.enable_trace(100);
        ex.step();
        ex.step();
        let trace = ex.trace.as_ref().unwrap();
        // First step's puts are delivered at its epoch close (3 events),
        // second step likewise.
        assert_eq!(trace.len(), 6);
        let m = trace.traffic_matrix(3);
        assert_eq!(m[0][1], 2);
        assert_eq!(m[2][0], 2);
        assert_eq!(m[0][2], 0);
        assert!(trace.to_csv().contains("0,0,0,1,Solve"));
    }

    #[test]
    #[should_panic(expected = "must not put to itself")]
    fn self_put_panics() {
        struct SelfPut;
        impl RankAlgorithm for SelfPut {
            type Msg = ();
            fn phases(&self) -> usize {
                1
            }
            fn phase(&mut self, _p: usize, _i: &[Envelope<()>], ctx: &mut PhaseCtx<()>) {
                ctx.put(0, CommClass::Solve, (), 0);
            }
        }
        let mut ex = Executor::new(vec![SelfPut], CostModel::default(), ExecMode::Sequential);
        ex.step();
    }

    #[test]
    fn inbox_ordered_by_origin_rank() {
        // Every rank sends to rank 0 in one phase; rank 0 must see origins
        // in increasing order both sequentially and threaded.
        struct AllToZero {
            id: usize,
            seen: Vec<usize>,
        }
        impl RankAlgorithm for AllToZero {
            type Msg = ();
            fn phases(&self) -> usize {
                1
            }
            fn phase(&mut self, _p: usize, inbox: &[Envelope<()>], ctx: &mut PhaseCtx<()>) {
                if self.id == 0 {
                    self.seen = inbox.iter().map(|e| e.src).collect();
                } else {
                    ctx.put(0, CommClass::Solve, (), 1);
                }
            }
        }
        for mode in [ExecMode::Sequential, ExecMode::Threaded(4)] {
            let ranks: Vec<AllToZero> = (0..9).map(|id| AllToZero { id, seen: vec![] }).collect();
            let mut ex = Executor::new(ranks, CostModel::default(), mode);
            ex.step();
            ex.step();
            assert_eq!(ex.ranks()[0].seen, (1..9).collect::<Vec<_>>());
        }
    }
}
