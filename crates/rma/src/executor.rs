//! The superstep executor: epochs, puts, delivery, counters.
//!
//! # Epoch close
//!
//! Delivering the puts of a phase — deciding fault fates, routing
//! envelopes into target inboxes, expiring delayed puts, folding the
//! per-rank counters — used to be a serial section that grew with total
//! message volume, the Amdahl bottleneck of large-P runs. The executor
//! now has two routing strategies:
//!
//! * **origin-major (flat)**: the original path, used when the rank
//!   topology is unknown. Each origin's outbox is scanned in rank order
//!   on the calling thread.
//! * **target-major (bucketed)**: when every rank declares its possible
//!   put targets up front ([`RankAlgorithm::put_targets`]), the executor
//!   builds a *reverse-neighbor index* once at construction — for every
//!   target, the ordered list of origins that may message it, each with a
//!   dedicated outbox bucket. [`PhaseCtx::put`] appends into the
//!   per-(origin, target) bucket; at the close, each target drains its
//!   senders' buckets in origin order, so delivery is origin-major *by
//!   construction* and no post-hoc sort is needed on the fault-free path.
//!   Because distinct targets touch disjoint buckets, inboxes, and
//!   delayed queues, the close parallelizes over the worker pool
//!   ([`CloseMode`]), folding the per-rank [`PhaseTotals`] and the
//!   modelled-time reduction in the same pass.
//!
//! Both strategies, serial or pooled, at any worker count or grain,
//! produce bit-identical results: fault fates are pure functions of
//! `(epoch, origin, target, index, class)` (see
//! [`FaultInjector::fate_at`]), per-target work is independent, and the
//! chunk partials combine with exact integer arithmetic.

use crate::fault::{ChaosConfig, Fate, FaultInjector};
use crate::pool::{SharedPool, WorkerPool};
use crate::stats::{CommClass, CostModel, FaultStats, RunStats, StepStats};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A message as it sits in a target rank's memory window.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Origin rank of the put.
    pub src: usize,
    /// Message class (for the Table 3 breakdown).
    pub class: CommClass,
    /// Modelled payload size of the originating put (the β-term bytes).
    /// Carried on the wire so a forwarding layer (the redundancy wrapper)
    /// can re-charge exact byte counts for its fan-out copies.
    pub bytes: u64,
    /// Payload.
    pub payload: M,
}

/// Per-rank, per-phase counters the executor folds into [`StepStats`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PhaseTotals {
    pub msgs: u64,
    pub msgs_solve: u64,
    pub msgs_residual: u64,
    pub msgs_recovery: u64,
    pub msgs_redundancy: u64,
    pub bytes: u64,
    pub bytes_solve: u64,
    pub bytes_residual: u64,
    pub bytes_recovery: u64,
    pub bytes_redundancy: u64,
    pub flops: u64,
    pub relaxations: u64,
    pub active: bool,
    /// Measured wall-clock ns of this rank's phase callback (set by the
    /// executor, not the rank; feeds the load-imbalance observables only —
    /// never the deterministic counters).
    pub wall_ns: u64,
}

/// A flat per-origin outbox: `(target, envelope)` pairs in put order.
type FlatOutbox<M> = Vec<(usize, Envelope<M>)>;

/// Where a [`PhaseCtx`]'s puts go.
enum Sink<M> {
    /// Dynamic routing: `(target, envelope)` pairs in put order, drained
    /// origin-major at the epoch close.
    Flat(Vec<(usize, Envelope<M>)>),
    /// Static routing: this origin's `(target, bucket id)` edge list plus
    /// the base of the executor's shared bucket storage. Each put lands
    /// directly in its `(origin, target)` bucket.
    Bucketed {
        edges: *const (u32, u32),
        nedges: usize,
        base: *mut Vec<Envelope<M>>,
        /// Per-target dirty flags: set on a bucket's empty→non-empty
        /// transition so the close can skip targets nobody messaged.
        touched: *const AtomicBool,
    },
}

/// The per-phase context handed to a rank: issue puts, report work.
///
/// Every `put` is one message, exactly as in the paper's counting (one
/// `MPI_Put` per target per phase; piggybacked data rides in the same
/// message at zero extra message cost but nonzero bytes).
pub struct PhaseCtx<M> {
    rank: usize,
    sink: Sink<M>,
    totals: PhaseTotals,
}

impl<M> PhaseCtx<M> {
    /// Constructor reusing a preallocated (cleared) outbox buffer, so the
    /// hot path stops reallocating every phase.
    fn with_outbox(rank: usize, outbox: Vec<(usize, Envelope<M>)>) -> Self {
        debug_assert!(outbox.is_empty());
        PhaseCtx {
            rank,
            sink: Sink::Flat(outbox),
            totals: PhaseTotals::default(),
        }
    }

    /// Constructor for the bucketed (reverse-neighbor-indexed) path.
    ///
    /// # Safety contract (upheld by the executor)
    /// `edges` must point at `nedges` valid `(target, bucket id)` pairs
    /// that outlive the context, every bucket id must be in bounds of the
    /// storage at `base`, and no other thread may touch those buckets
    /// while the context lives (each `(origin, target)` bucket belongs to
    /// exactly one origin, and one origin runs on exactly one worker).
    fn bucketed(
        rank: usize,
        edges: *const (u32, u32),
        nedges: usize,
        base: *mut Vec<Envelope<M>>,
        touched: *const AtomicBool,
    ) -> Self {
        PhaseCtx {
            rank,
            sink: Sink::Bucketed {
                edges,
                nedges,
                base,
                touched,
            },
            totals: PhaseTotals::default(),
        }
    }

    /// The calling rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Constructor for alternate executors in this crate.
    pub(crate) fn new_for_async(rank: usize) -> Self {
        Self::with_outbox(rank, Vec::new())
    }

    /// Consumes the context, yielding the outbox and the counters
    /// (flat-sink contexts only — the async executor's path).
    pub(crate) fn into_outbox_and_totals(self) -> (Vec<(usize, Envelope<M>)>, PhaseTotals) {
        match self.sink {
            Sink::Flat(outbox) => (outbox, self.totals),
            Sink::Bucketed { .. } => unreachable!("bucketed contexts have no flat outbox"),
        }
    }

    /// Consumes the context, yielding the flat outbox (if any) and the
    /// counters.
    fn finish(self) -> (Option<FlatOutbox<M>>, PhaseTotals) {
        match self.sink {
            Sink::Flat(outbox) => (Some(outbox), self.totals),
            Sink::Bucketed { .. } => (None, self.totals),
        }
    }

    /// Puts `payload` into `target`'s window. Visible to `target` at the
    /// next phase (after the epoch closes). `bytes` is the modelled payload
    /// size used by the β term of the cost model.
    ///
    /// # Panics
    /// If `target` is the calling rank, or — on the statically routed path
    /// — if `target` is not in the set this rank declared via
    /// [`RankAlgorithm::put_targets`].
    pub fn put(&mut self, target: usize, class: CommClass, payload: M, bytes: u64) {
        assert_ne!(target, self.rank, "a rank must not put to itself");
        let env = Envelope {
            src: self.rank,
            class,
            bytes,
            payload,
        };
        match &mut self.sink {
            Sink::Flat(outbox) => outbox.push((target, env)),
            Sink::Bucketed {
                edges,
                nedges,
                base,
                touched,
            } => {
                // SAFETY: see `PhaseCtx::bucketed`.
                let edges = unsafe { std::slice::from_raw_parts(*edges, *nedges) };
                let Some(&(_, bid)) = edges.iter().find(|&&(t, _)| t as usize == target) else {
                    panic!(
                        "rank {} put to rank {target}, which is not in its declared put_targets",
                        self.rank
                    );
                };
                // SAFETY: this origin's buckets are exclusively owned (see
                // `PhaseCtx::bucketed`); the touched flags are atomic, so
                // concurrent origins marking the same target are fine
                // (Relaxed suffices — the close runs after the phase
                // barrier, which orders these stores before its loads).
                unsafe {
                    let bucket = &mut *base.add(bid as usize);
                    if bucket.is_empty() {
                        (*touched.add(target)).store(true, Ordering::Relaxed);
                    }
                    bucket.push(env);
                }
            }
        }
        self.totals.msgs += 1;
        match class {
            CommClass::Solve => {
                self.totals.msgs_solve += 1;
                self.totals.bytes_solve += bytes;
            }
            CommClass::Residual => {
                self.totals.msgs_residual += 1;
                self.totals.bytes_residual += bytes;
            }
            CommClass::Recovery => {
                self.totals.msgs_recovery += 1;
                self.totals.bytes_recovery += bytes;
            }
            CommClass::Redundancy => {
                self.totals.msgs_redundancy += 1;
                self.totals.bytes_redundancy += bytes;
            }
        }
        self.totals.bytes += bytes;
    }

    /// Reports computational work for the γ term of the cost model.
    #[inline]
    pub fn add_flops(&mut self, flops: u64) {
        self.totals.flops += flops;
    }

    /// Reports that this rank relaxed `rows` of its equations this step
    /// (feeds the "relaxations" and "active processes" columns of Table 2).
    #[inline]
    pub fn record_relaxations(&mut self, rows: u64) {
        self.totals.relaxations += rows;
        self.totals.active = true;
    }
}

/// A per-rank program, written as phases of a parallel step.
///
/// Phase semantics: in phase `k` the rank sees exactly the messages that
/// were put during phase `k − 1` (for `k = 0`: during the *last* phase of
/// the previous parallel step). This is the one-sided epoch visibility rule.
pub trait RankAlgorithm: Send {
    /// Payload type of the messages this algorithm puts.
    type Msg: Send + Sync + Clone;

    /// Number of communication phases (epochs) per parallel step.
    fn phases(&self) -> usize;

    /// Executes one phase. `inbox` holds the envelopes delivered at the
    /// close of the previous epoch, ordered by origin rank.
    fn phase(&mut self, phase: usize, inbox: &[Envelope<Self::Msg>], ctx: &mut PhaseCtx<Self::Msg>);

    /// The static set of ranks this rank may ever `put` to, if known up
    /// front (for the solvers: the subdomain neighbor set).
    ///
    /// Returning `Some` from **every** rank lets the executor build a
    /// reverse-neighbor routing index at construction and close epochs
    /// target-major — in parallel on the worker pool — instead of
    /// scanning origin outboxes serially; a put to a rank outside the
    /// declared set then panics. `None` (the default) keeps dynamic
    /// origin-major routing; if any rank returns `None` the whole
    /// executor falls back to it.
    fn put_targets(&self) -> Option<Vec<usize>> {
        None
    }

    /// The squared 2-norm of this rank's locally maintained residual, kept
    /// current at parallel-step boundaries, if the algorithm maintains one.
    ///
    /// Returning `Some` lets a driver monitor global convergence as an
    /// `O(P)` sum of per-rank scalars instead of gathering the solution and
    /// recomputing `‖b − Ax‖₂` every step. `None` (the default) declares
    /// that the algorithm has no maintained norm and the driver must fall
    /// back to exact recomputation.
    fn maintained_norm_sq(&self) -> Option<f64> {
        None
    }

    /// The squared 2-norm of residual deltas this rank has produced but
    /// whose delivery is still outstanding at the step boundary (parked by
    /// message coalescing, or sent in the step's final epoch and not yet
    /// applied by the receiver). By the triangle inequality the true global
    /// norm lies within `√Σ undelivered` of the maintained one, so a
    /// monitor widens its convergence trigger by this slack. `0.0` when
    /// every delta is applied at the boundary (the default).
    fn undelivered_delta_sq(&self) -> f64 {
        0.0
    }
}

/// How the executor schedules rank phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// All ranks run on the calling thread, in rank order.
    Sequential,
    /// Rank phases are dispatched to a **persistent pool** of `n` worker
    /// threads (created once per executor), which self-schedule batches of
    /// ranks from a shared atomic cursor (work stealing — see
    /// [`crate::pool`]). Results are bit-identical to
    /// [`ExecMode::Sequential`] for any `n` and any steal order: ranks
    /// interact only at epoch boundaries, which the executor routes either
    /// serially or over disjoint per-target state, and fault decisions are
    /// pure functions of per-message keys.
    Threaded(usize),
    /// The legacy scheduler: a fresh `crossbeam::thread::scope` of `n`
    /// threads per phase, ranks statically chunked contiguously. Same
    /// bit-identical results, strictly worse performance (spawn/join per
    /// phase, hot ranks cluster on one chunk). Kept so the `kernels`
    /// criterion bench can measure the pool against it; prefer
    /// [`ExecMode::Threaded`].
    ThreadedSpawn(usize),
}

/// How the executor closes epochs (routes the phase's puts into inboxes).
///
/// Every mode produces bit-identical results; this knob only chooses
/// *where* the routing work runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CloseMode {
    /// Close on the worker pool when it pays: the routing index exists
    /// ([`RankAlgorithm::put_targets`]), the executor has a pool with ≥ 2
    /// workers, tracing is off, and the phase's message volume clears
    /// [`Executor::set_parallel_close_threshold`]. Serial otherwise.
    #[default]
    Auto,
    /// Always close on the calling thread (the reference path).
    Serial,
    /// Close on the worker pool whenever structurally possible (routing
    /// index + pool present, tracing off), regardless of volume.
    Parallel,
}

/// A put whose delivery was deferred by fault injection, parked in its
/// target's delayed queue.
struct DelayedEnv<M> {
    /// Global epoch index at whose close the put becomes visible.
    due_epoch: u64,
    env: Envelope<M>,
}

/// The static routing index: one bucket per directed `(origin, target)`
/// edge, plus both orientations of the edge list.
struct Topology {
    /// origin → `(target, bucket id)`, target-ascending.
    out_edges: Vec<Vec<(u32, u32)>>,
    /// target → `(origin, bucket id)`, origin-ascending — the
    /// reverse-neighbor index the target-major close scans.
    in_edges: Vec<Vec<(u32, u32)>>,
}

/// Builds the routing index if every rank declares its put targets.
fn build_topology<A: RankAlgorithm>(ranks: &[A]) -> Option<(Topology, usize)> {
    let n = ranks.len();
    assert!(n < u32::MAX as usize, "rank count must fit in u32");
    let mut out_edges = Vec::with_capacity(n);
    let mut nbuckets = 0usize;
    for (i, r) in ranks.iter().enumerate() {
        let mut ts = r.put_targets()?;
        ts.sort_unstable();
        ts.dedup();
        assert!(
            ts.iter().all(|&t| t < n && t != i),
            "rank {i} declared an out-of-range or self put target"
        );
        let edges: Vec<(u32, u32)> = ts
            .iter()
            .map(|&t| {
                let bid = nbuckets as u32;
                nbuckets += 1;
                (t as u32, bid)
            })
            .collect();
        out_edges.push(edges);
    }
    let mut in_edges: Vec<Vec<(u32, u32)>> = (0..n).map(|_| Vec::new()).collect();
    for (o, edges) in out_edges.iter().enumerate() {
        for &(t, bid) in edges {
            in_edges[t as usize].push((o as u32, bid));
        }
    }
    Some((
        Topology {
            out_edges,
            in_edges,
        },
        nbuckets,
    ))
}

/// Per-chunk partial of the epoch-close fold: fault outcomes of the
/// chunk's targets plus the [`PhaseTotals`] reduction over the chunk's
/// origins. Chunks combine with exact integer arithmetic (sums and maxes),
/// so the fold is bit-identical for any chunk count.
#[derive(Debug, Clone, Copy, Default)]
struct ClosePartial {
    faults: FaultStats,
    msgs: u64,
    msgs_solve: u64,
    msgs_residual: u64,
    msgs_recovery: u64,
    msgs_redundancy: u64,
    bytes: u64,
    bytes_solve: u64,
    bytes_residual: u64,
    bytes_recovery: u64,
    bytes_redundancy: u64,
    flops: u64,
    max_flops: u64,
    relaxations: u64,
    active: u64,
    compute_ns: u64,
}

impl ClosePartial {
    fn absorb_rank(&mut self, t: &PhaseTotals) {
        self.msgs += t.msgs;
        self.msgs_solve += t.msgs_solve;
        self.msgs_residual += t.msgs_residual;
        self.msgs_recovery += t.msgs_recovery;
        self.msgs_redundancy += t.msgs_redundancy;
        self.bytes += t.bytes;
        self.bytes_solve += t.bytes_solve;
        self.bytes_residual += t.bytes_residual;
        self.bytes_recovery += t.bytes_recovery;
        self.bytes_redundancy += t.bytes_redundancy;
        self.flops += t.flops;
        self.max_flops = self.max_flops.max(t.flops);
        self.relaxations += t.relaxations;
        self.active += u64::from(t.active);
        self.compute_ns += t.wall_ns;
    }

    fn merge(&mut self, other: &ClosePartial) {
        self.faults.accumulate(&other.faults);
        self.msgs += other.msgs;
        self.msgs_solve += other.msgs_solve;
        self.msgs_residual += other.msgs_residual;
        self.msgs_recovery += other.msgs_recovery;
        self.msgs_redundancy += other.msgs_redundancy;
        self.bytes += other.bytes;
        self.bytes_solve += other.bytes_solve;
        self.bytes_residual += other.bytes_residual;
        self.bytes_recovery += other.bytes_recovery;
        self.bytes_redundancy += other.bytes_redundancy;
        self.flops += other.flops;
        self.max_flops = self.max_flops.max(other.max_flops);
        self.relaxations += other.relaxations;
        self.active += other.active;
        self.compute_ns += other.compute_ns;
    }
}

/// Runs a set of [`RankAlgorithm`] instances in lock-step parallel steps.
pub struct Executor<A: RankAlgorithm> {
    ranks: Vec<A>,
    /// Inboxes holding envelopes visible at the next phase.
    inboxes: Vec<Vec<Envelope<A::Msg>>>,
    /// Per-rank counters of the current phase, refilled every phase.
    phase_totals: Vec<PhaseTotals>,
    /// Preallocated per-origin outboxes (flat routing only), drained in
    /// place at the close so the hot path stops reallocating.
    flat_out: Vec<Vec<(usize, Envelope<A::Msg>)>>,
    /// The static routing index (`None` = flat routing).
    topo: Option<Topology>,
    /// Bucket storage, one slot per directed `(origin, target)` edge.
    buckets: Vec<Vec<Envelope<A::Msg>>>,
    /// Per-target queues of delay-injected puts, in deferral order.
    delayed_q: Vec<Vec<DelayedEnv<A::Msg>>>,
    /// Delay-injected puts currently parked (flat path bookkeeping).
    delayed_pending: usize,
    /// Per-target flag: a fault perturbed this inbox's origin order this
    /// phase, so it needs the stable re-sort (and only then).
    unsorted: Vec<bool>,
    /// Per-target dirty flags for the bucketed close: [`PhaseCtx::put`]
    /// marks a target when one of its inbound buckets goes empty →
    /// non-empty, and the close skips unmarked targets entirely (atomic
    /// because concurrent origins may mark the same target).
    touched: Vec<AtomicBool>,
    /// Per-(origin, target) put indices for the flat path's fate keys.
    fate_seq: Vec<u32>,
    /// Targets touched in `fate_seq` by the current origin.
    seq_touched: Vec<usize>,
    /// Per-chunk partials of the close fold.
    partials: Vec<ClosePartial>,
    /// Per-rank compute-ns scratch for the current step (reset each step).
    step_rank_ns: Vec<u64>,
    /// Persistent worker pool ([`ExecMode::Threaded`], owned exclusively)
    /// or a service-shared pool ([`Executor::with_shared_pool`]).
    pool: Option<Arc<WorkerPool>>,
    /// Work-stealing batch size override (`None` = auto; see
    /// [`Executor::set_grain`]).
    grain: Option<usize>,
    /// Last observed cumulative per-worker busy ns (for per-step deltas).
    worker_busy_seen: Vec<u64>,
    model: CostModel,
    mode: ExecMode,
    close_mode: CloseMode,
    /// Minimum phase message volume before [`CloseMode::Auto`] dispatches
    /// the close to the pool.
    parallel_close_min_msgs: u64,
    /// Fault decisions (drops / duplicates / delays / stalls).
    injector: FaultInjector,
    /// Global epoch (phase) counter, for delay due-dates and fate keys.
    epochs_executed: u64,
    /// Optional delivery log (see [`Executor::enable_trace`]).
    pub trace: Option<crate::trace::Trace>,
    steps_executed: usize,
    /// Statistics accumulated over all executed steps.
    pub stats: RunStats,
}

/// A raw pointer the pool closure may share across workers. Sound because
/// each worker dereferences only the indices it claimed from the atomic
/// cursor, and those claims are disjoint.
struct SyncPtr<T>(*mut T);
unsafe impl<T> Send for SyncPtr<T> {}
unsafe impl<T> Sync for SyncPtr<T> {}

/// Everything the target-major close touches, shared across close workers.
/// Raw pointers cover the per-target state (inboxes, delayed queues, sort
/// flags, chunk partials) and the per-origin state (`msgs_per_rank`,
/// `step_rank_ns`); a worker only dereferences indices inside its chunk,
/// and chunks are disjoint. Buckets are indexed per `(origin, target)`
/// edge, and every edge belongs to exactly one target chunk.
struct CloseShared<'a, M> {
    inboxes: *mut Vec<Envelope<M>>,
    buckets: *mut Vec<Envelope<M>>,
    delayed: *mut Vec<DelayedEnv<M>>,
    unsorted: *mut bool,
    touched: &'a [AtomicBool],
    partials: *mut ClosePartial,
    msgs_per_rank: *mut u64,
    step_rank_ns: *mut u64,
    in_edges: &'a [Vec<(u32, u32)>],
    totals: &'a [PhaseTotals],
    stalled: &'a [bool],
    injector: &'a FaultInjector,
    epoch: u64,
    /// Ranks per chunk (the last chunk may be short).
    chunk: usize,
    n: usize,
}
unsafe impl<M: Send> Send for CloseShared<'_, M> {}
unsafe impl<M: Send> Sync for CloseShared<'_, M> {}

impl<A: RankAlgorithm> Executor<A> {
    /// Creates an executor over `ranks` with the given cost model.
    pub fn new(ranks: Vec<A>, model: CostModel, mode: ExecMode) -> Self {
        Self::with_chaos(ranks, model, mode, ChaosConfig::none())
    }

    /// As [`new`](Self::new), with fault injection at epoch boundaries.
    ///
    /// # Panics
    /// If `chaos` fails [`ChaosConfig::validate`].
    pub fn with_chaos(ranks: Vec<A>, model: CostModel, mode: ExecMode, chaos: ChaosConfig) -> Self {
        assert!(!ranks.is_empty(), "need at least one rank");
        if let ExecMode::Threaded(t) | ExecMode::ThreadedSpawn(t) = mode {
            assert!(t > 0, "threaded mode needs at least one thread");
        }
        let n = ranks.len();
        // Workers are created once, here, and live for the executor's
        // lifetime; `step` only parks/unparks them.
        let pool = match mode {
            ExecMode::Threaded(t) => Some(Arc::new(WorkerPool::new(t.min(n)))),
            _ => None,
        };
        let nworkers = match mode {
            ExecMode::Sequential => 1,
            ExecMode::Threaded(t) | ExecMode::ThreadedSpawn(t) => t.min(n),
        };
        let mut stats = RunStats::new(n);
        stats.worker_busy_ns = vec![0; nworkers];
        let (topo, nbuckets) = match build_topology(&ranks) {
            Some((t, nb)) => (Some(t), nb),
            None => (None, 0),
        };
        Executor {
            injector: FaultInjector::new(chaos, n),
            ranks,
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            phase_totals: vec![PhaseTotals::default(); n],
            flat_out: (0..n).map(|_| Vec::new()).collect(),
            topo,
            buckets: (0..nbuckets).map(|_| Vec::new()).collect(),
            delayed_q: (0..n).map(|_| Vec::new()).collect(),
            delayed_pending: 0,
            unsorted: vec![false; n],
            touched: (0..n).map(|_| AtomicBool::new(false)).collect(),
            fate_seq: vec![0; n],
            seq_touched: Vec::new(),
            partials: Vec::new(),
            step_rank_ns: vec![0; n],
            pool,
            grain: None,
            worker_busy_seen: vec![0; nworkers],
            model,
            mode,
            close_mode: CloseMode::Auto,
            parallel_close_min_msgs: 256,
            epochs_executed: 0,
            trace: None,
            steps_executed: 0,
            stats,
        }
    }

    /// As [`with_chaos`](Self::with_chaos), but dispatching phases onto a
    /// [`SharedPool`] instead of spawning a private one — the serving
    /// layer's constructor, letting many executors (one per tenant)
    /// multiplex over one set of worker threads.
    ///
    /// Results are bit-identical to every other mode (ranks interact only
    /// at epoch boundaries). Dispatches from different executors must not
    /// overlap in time — the pool runs one dispatch at a time, and a
    /// service scheduler interleaves whole supersteps — but interleaving
    /// *steps* of different executors on one pool is fully supported:
    /// per-step worker-busy accounting brackets each step with its own
    /// baseline, so no tenant's busy time bleeds into another's stats.
    pub fn with_shared_pool(
        ranks: Vec<A>,
        model: CostModel,
        chaos: ChaosConfig,
        pool: &SharedPool,
    ) -> Self {
        let nworkers = pool.nworkers();
        let mut ex = Self::with_chaos(ranks, model, ExecMode::Sequential, chaos);
        ex.mode = ExecMode::Threaded(nworkers);
        ex.pool = Some(Arc::clone(pool.inner()));
        ex.stats.worker_busy_ns = vec![0; nworkers];
        // Baseline at the pool's *current* cumulative counters: a shared
        // pool has usually been busy before this executor existed, and
        // that history must not be charged to this executor's first step.
        ex.worker_busy_seen = (0..nworkers).map(|w| pool.inner().busy_ns(w)).collect();
        ex
    }

    /// Overrides the work-stealing batch size (ranks claimed per cursor
    /// fetch) for [`ExecMode::Threaded`]. The default grain targets ~8
    /// batches per worker so tiny subdomains amortize cursor traffic while
    /// hot ranks still spread; set `1` for maximal stealing granularity.
    /// Scheduling-only: results are bit-identical for every grain.
    pub fn set_grain(&mut self, grain: usize) {
        assert!(grain >= 1, "grain must be at least 1");
        self.grain = Some(grain);
    }

    /// Chooses where epoch closes run (see [`CloseMode`]). Results are
    /// bit-identical in every mode.
    pub fn set_close_mode(&mut self, mode: CloseMode) {
        self.close_mode = mode;
    }

    /// The close strategy in force.
    pub fn close_mode(&self) -> CloseMode {
        self.close_mode
    }

    /// Minimum per-phase message volume before [`CloseMode::Auto`]
    /// dispatches the close to the pool (default 256 — below that the
    /// pool's wake/quiesce latency outweighs the routing work).
    pub fn set_parallel_close_threshold(&mut self, msgs: u64) {
        self.parallel_close_min_msgs = msgs;
    }

    /// Whether the reverse-neighbor routing index exists (every rank
    /// declared [`RankAlgorithm::put_targets`]).
    pub fn has_routing_index(&self) -> bool {
        self.topo.is_some()
    }

    /// The number of compute workers (1 for [`ExecMode::Sequential`]).
    pub fn nworkers(&self) -> usize {
        self.worker_busy_seen.len()
    }

    /// Direct access to the fault injector, e.g. to force targeted
    /// stragglers with [`FaultInjector::inject_stall`].
    pub fn injector_mut(&mut self) -> &mut FaultInjector {
        &mut self.injector
    }

    /// Starts logging every delivered message (up to `capacity` events)
    /// into [`Executor::trace`]. Tracing serializes the epoch close (the
    /// log is ordered), so it overrides [`CloseMode::Parallel`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(crate::trace::Trace::new(capacity));
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    /// Immutable access to the rank programs (for the harness to read
    /// local solution vectors etc. — out-of-band, not counted as
    /// communication, exactly like the paper's measurement hooks).
    pub fn ranks(&self) -> &[A] {
        &self.ranks
    }

    /// Mutable access to the rank programs.
    pub fn ranks_mut(&mut self) -> &mut [A] {
        &mut self.ranks
    }

    /// Drops every undelivered envelope: pending inboxes and chaos-delayed
    /// queues. The warm-start reseed of the serving layer uses this as an
    /// out-of-band epoch boundary — when a tenant's right-hand side
    /// changes between solves, estimate messages still in flight describe
    /// the old system and are superseded by the reseed's exact exchange,
    /// exactly as the initial setup exchange supersedes nothing.
    ///
    /// Callers must ensure no in-flight message carries state that cannot
    /// be reconstructed (the solvers guarantee this at step boundaries on
    /// a reliable link with coalescing off: all residual *deltas* are
    /// applied before the boundary; only norm estimates remain in flight).
    pub fn discard_in_flight(&mut self) {
        for inbox in &mut self.inboxes {
            inbox.clear();
        }
        for q in &mut self.delayed_q {
            q.clear();
        }
        self.delayed_pending = 0;
        for u in &mut self.unsorted {
            *u = false;
        }
    }

    /// Executes one parallel step (all phases); returns its stats.
    ///
    /// With fault injection active, the epoch close additionally: drops,
    /// duplicates, or defers puts per [`FaultInjector::fate_at`]; surfaces
    /// deferred puts whose delay expired; and skips the compute phases of
    /// stalled ranks (their inboxes keep accumulating until they resume).
    /// Fates are pure functions of per-message keys, so the fault pattern
    /// is identical under every [`ExecMode`] and [`CloseMode`].
    pub fn step(&mut self) -> StepStats {
        let nphases = self.ranks[0].phases();
        debug_assert!(
            self.ranks.iter().all(|r| r.phases() == nphases),
            "all ranks must agree on the phase count"
        );
        let mut step = StepStats::default();
        // Re-baseline the per-worker busy counters at the step *start*: on
        // a shared pool other executors may have dispatched since this
        // executor's previous step, and their busy time must not be
        // attributed to this step's delta below.
        if let Some(pool) = &self.pool {
            for (w, seen) in self.worker_busy_seen.iter_mut().enumerate() {
                *seen = pool.busy_ns(w);
            }
        }
        // Stall decisions hold for every phase of this step.
        let stalled = self.injector.step_stalls();
        step.faults.stalled_ranks += stalled.iter().filter(|&&s| s).count() as u64;
        // Covers configured faults and targeted `inject_stall` calls.
        let faults_possible = self.injector.config().is_active() || stalled.contains(&true);
        for phase in 0..nphases {
            let t_dispatch = Instant::now();
            self.run_phase(phase, &stalled);
            step.span_ns += t_dispatch.elapsed().as_nanos() as u64;
            let t_close = Instant::now();
            if self.topo.is_some() {
                self.close_bucketed(phase, &stalled, &mut step);
            } else {
                self.close_flat(phase, &stalled, faults_possible, &mut step);
            }
            step.route_ns += t_close.elapsed().as_nanos() as u64;
            self.epochs_executed += 1;
        }
        // Fold the measured timing of this step (observables only — none of
        // this feeds the deterministic counters or the modelled clock).
        step.workers = self.nworkers() as u32;
        for (i, ns) in self.step_rank_ns.iter_mut().enumerate() {
            step.compute_ns_max_rank = step.compute_ns_max_rank.max(*ns);
            self.stats.rank_time_ns[i] += *ns;
            *ns = 0;
        }
        if let Some(pool) = &self.pool {
            for w in 0..pool.nworkers() {
                let cum = pool.busy_ns(w);
                self.stats.worker_busy_ns[w] += cum - self.worker_busy_seen[w];
                self.worker_busy_seen[w] = cum;
            }
        }
        self.stats.steps.push(step);
        self.steps_executed += 1;
        step
    }

    /// Applies one phase's combined close partial to the step counters and
    /// the modelled clock. Shared by every close path, so the arithmetic —
    /// and therefore the `f64` result — is identical across them.
    fn apply_phase_partial(&self, ph: &ClosePartial, step: &mut StepStats) {
        step.faults.accumulate(&ph.faults);
        step.msgs += ph.msgs;
        step.msgs_solve += ph.msgs_solve;
        step.msgs_residual += ph.msgs_residual;
        step.msgs_recovery += ph.msgs_recovery;
        step.msgs_redundancy += ph.msgs_redundancy;
        step.bytes += ph.bytes;
        step.bytes_solve += ph.bytes_solve;
        step.bytes_residual += ph.bytes_residual;
        step.bytes_recovery += ph.bytes_recovery;
        step.bytes_redundancy += ph.bytes_redundancy;
        step.flops += ph.flops;
        step.relaxations += ph.relaxations;
        step.active_ranks += ph.active;
        step.compute_ns += ph.compute_ns;
        // Time: the slowest rank gates the computation; message and byte
        // volume are charged at the per-rank average (congestion /
        // epoch-overhead model — see `CostModel`).
        let p = self.ranks.len() as f64;
        step.time += self.model.sync
            + self.model.gamma * ph.max_flops as f64
            + self.model.alpha * ph.msgs as f64 / p
            + self.model.beta * ph.bytes as f64 / p;
    }

    /// The origin-major close for topology-unknown algorithms: scan every
    /// origin's outbox in rank order on the calling thread.
    fn close_flat(
        &mut self,
        phase: usize,
        stalled: &[bool],
        faults_possible: bool,
        step: &mut StepStats,
    ) {
        let n = self.ranks.len();
        // A stalled rank has not read its inbox, so it keeps accumulating
        // until the rank next executes a phase.
        for (inbox, &is_stalled) in self.inboxes.iter_mut().zip(stalled) {
            if !is_stalled {
                inbox.clear();
            }
        }
        let message_faults = self.injector.config().message_faults_active();
        let epoch = self.epochs_executed;
        let mut ph = ClosePartial::default();
        // Detach the outboxes so `deliver` can borrow `self`; `drain`
        // keeps every slot's capacity for the next phase.
        let mut slots = std::mem::take(&mut self.flat_out);
        for (origin, outbox) in slots.iter_mut().enumerate() {
            self.stats.msgs_per_rank[origin] += outbox.len() as u64;
            for (target, env) in outbox.drain(..) {
                let fate = if message_faults {
                    // Per-(origin, target) put index for the fate key.
                    let idx = self.fate_seq[target];
                    self.fate_seq[target] += 1;
                    if idx == 0 {
                        self.seq_touched.push(target);
                    }
                    self.injector
                        .fate_at(epoch, origin as u32, target as u32, idx, env.class)
                } else {
                    Fate::DELIVER
                };
                if fate.dropped {
                    ph.faults.dropped.add(env.class, 1);
                    continue;
                }
                if fate.duplicated {
                    ph.faults.duplicated.add(env.class, 1);
                    if stalled[target] {
                        self.unsorted[target] = true;
                    }
                    self.deliver(phase, target, env.clone());
                }
                if fate.delay > 0 {
                    ph.faults.delayed.add(env.class, 1);
                    self.delayed_q[target].push(DelayedEnv {
                        due_epoch: epoch + fate.delay as u64,
                        env,
                    });
                    self.delayed_pending += 1;
                } else {
                    if stalled[target] {
                        self.unsorted[target] = true;
                    }
                    self.deliver(phase, target, env);
                }
            }
            for &t in &self.seq_touched {
                self.fate_seq[t] = 0;
            }
            self.seq_touched.clear();
        }
        self.flat_out = slots;
        // Surface deferred puts whose delay expired at this close, per
        // target in the order they were deferred (a single order-preserving
        // partition pass — `extract_if` keeps both the extraction order and
        // the retained order).
        if self.delayed_pending > 0 {
            for t in 0..n {
                if self.delayed_q[t].is_empty() {
                    continue;
                }
                let mut dq = std::mem::take(&mut self.delayed_q[t]);
                for d in dq.extract_if(.., |d| d.due_epoch <= epoch) {
                    self.deliver(phase, t, d.env);
                    self.delayed_pending -= 1;
                    // A late arrival interleaves origins: this inbox needs
                    // the re-sort.
                    self.unsorted[t] = true;
                }
                self.delayed_q[t] = dq;
            }
        }
        // Restore the "ordered by origin rank" inbox contract — but only
        // where a fate actually perturbed delivery this phase (late
        // arrival, or appends behind a stalled rank's accumulation). The
        // sort is stable, so within one origin the delivery order (which
        // delays may have scrambled — that is the injected fault) is
        // preserved.
        if faults_possible {
            for t in 0..n {
                if self.unsorted[t] {
                    self.inboxes[t].sort_by_key(|env| env.src);
                    self.unsorted[t] = false;
                }
            }
        }
        // Fold the per-rank counters (serially here; the bucketed close
        // folds them in its parallel pass).
        for (i, totals) in self.phase_totals.iter().enumerate() {
            ph.absorb_rank(totals);
            self.step_rank_ns[i] += totals.wall_ns;
        }
        self.apply_phase_partial(&ph, step);
    }

    /// The target-major close over the reverse-neighbor index: each target
    /// drains its senders' buckets in origin order. Runs on the calling
    /// thread or chunked across the worker pool ([`CloseMode`]); both
    /// produce bit-identical results because distinct targets touch
    /// disjoint state and chunk partials combine exactly.
    fn close_bucketed(&mut self, phase: usize, stalled: &[bool], step: &mut StepStats) {
        let n = self.ranks.len();
        let use_pool = match self.close_mode {
            CloseMode::Serial => false,
            CloseMode::Parallel => self.pool.is_some() && self.trace.is_none(),
            CloseMode::Auto => {
                self.pool.as_ref().is_some_and(|p| p.nworkers() >= 2)
                    && self.trace.is_none()
                    && self.phase_totals.iter().map(|t| t.msgs).sum::<u64>()
                        >= self.parallel_close_min_msgs
            }
        };
        let nchunks = if use_pool {
            let pool = self.pool.as_ref().expect("use_pool implies a pool");
            (pool.nworkers() * 4).min(n)
        } else {
            1
        };
        let chunk = n.div_ceil(nchunks);
        self.partials.clear();
        self.partials.resize(nchunks, ClosePartial::default());
        let topo = self.topo.as_ref().expect("bucketed close has a topology");
        let sh = CloseShared {
            inboxes: self.inboxes.as_mut_ptr(),
            buckets: self.buckets.as_mut_ptr(),
            delayed: self.delayed_q.as_mut_ptr(),
            unsorted: self.unsorted.as_mut_ptr(),
            touched: &self.touched,
            partials: self.partials.as_mut_ptr(),
            msgs_per_rank: self.stats.msgs_per_rank.as_mut_ptr(),
            step_rank_ns: self.step_rank_ns.as_mut_ptr(),
            in_edges: &topo.in_edges,
            totals: &self.phase_totals,
            stalled,
            injector: &self.injector,
            epoch: self.epochs_executed,
            chunk,
            n,
        };
        if use_pool {
            let pool = self.pool.as_ref().expect("pool exists");
            // SAFETY: chunk `c` touches only targets/origins in
            // `[c*chunk, (c+1)*chunk)`, ranges are disjoint across chunks,
            // and `pool.run` blocks until every chunk is done.
            pool.run(nchunks, 1, &|c| unsafe {
                close_chunk(&sh, c, None, phase, 0);
            });
        } else {
            let step_idx = self.steps_executed;
            let mut trace = self.trace.as_mut();
            for c in 0..nchunks {
                // SAFETY: serial execution — no aliasing at all.
                unsafe {
                    close_chunk(&sh, c, trace.as_deref_mut(), phase, step_idx);
                }
            }
        }
        // Combine the chunk partials in chunk order. Integer sums and
        // maxes are exact, so the result is independent of the chunking.
        let mut ph = ClosePartial::default();
        for c in 0..nchunks {
            ph.merge(&self.partials[c]);
        }
        self.apply_phase_partial(&ph, step);
    }

    /// Delivers one envelope to `target` (trace + inbox push) — flat path.
    fn deliver(&mut self, phase: usize, target: usize, env: Envelope<A::Msg>) {
        if let Some(trace) = &mut self.trace {
            trace.record(crate::trace::TraceEvent {
                step: self.steps_executed,
                phase,
                src: env.src,
                dst: target,
                class: env.class,
            });
        }
        self.inboxes[target].push(env);
    }

    /// Runs `phase` on every non-stalled rank, filling the preallocated
    /// `self.phase_totals` slots and either the per-origin flat outboxes or
    /// the per-edge buckets (every container is empty on entry — the
    /// previous epoch close drained it in place). Stalled ranks contribute
    /// no puts and zero counters (they perform no work at all this phase).
    fn run_phase(&mut self, phase: usize, stalled: &[bool]) {
        let n = self.ranks.len();

        match self.mode {
            ExecMode::Sequential => {
                let buckets_base = self.buckets.as_mut_ptr();
                let touched_base = self.touched.as_ptr();
                let mut busy = 0u64;
                // Chained timing: one clock read per rank boundary instead
                // of two per rank — the delta between consecutive reads is
                // the rank's wall time (plus a few ns of loop overhead,
                // fine for a load-imbalance observable that never feeds the
                // deterministic counters). At thousands of ranks the saved
                // clock reads are a measurable slice of the phase.
                let mut t_prev = Instant::now();
                for (i, &is_stalled) in stalled.iter().enumerate().take(n) {
                    if is_stalled {
                        self.phase_totals[i] = PhaseTotals::default();
                        continue;
                    }
                    let mut ctx = match &self.topo {
                        Some(tp) => {
                            let edges = &tp.out_edges[i];
                            PhaseCtx::bucketed(
                                i,
                                edges.as_ptr(),
                                edges.len(),
                                buckets_base,
                                touched_base,
                            )
                        }
                        None => PhaseCtx::with_outbox(i, std::mem::take(&mut self.flat_out[i])),
                    };
                    self.ranks[i].phase(phase, &self.inboxes[i], &mut ctx);
                    let now = Instant::now();
                    let wall_ns = now.duration_since(t_prev).as_nanos() as u64;
                    t_prev = now;
                    let (flat, mut totals) = ctx.finish();
                    totals.wall_ns = wall_ns;
                    self.phase_totals[i] = totals;
                    if let Some(buf) = flat {
                        self.flat_out[i] = buf;
                    }
                    busy += wall_ns;
                }
                self.stats.worker_busy_ns[0] += busy;
            }
            ExecMode::Threaded(_) => {
                let pool = self.pool.as_ref().expect("pool exists in Threaded mode");
                // Default grain: ~8 batches per worker balances steal
                // granularity (hot ranks spread) against cursor traffic
                // (tiny subdomains amortize).
                let grain = self
                    .grain
                    .unwrap_or_else(|| (n / (8 * pool.nworkers())).max(1));
                let ranks = SyncPtr(self.ranks.as_mut_ptr());
                let slots = SyncPtr(self.phase_totals.as_mut_ptr());
                let flat = SyncPtr(self.flat_out.as_mut_ptr());
                let buckets = SyncPtr(self.buckets.as_mut_ptr());
                let touched = &self.touched;
                let inboxes = &self.inboxes;
                let topo = self.topo.as_ref();
                pool.run(n, grain, &|i| {
                    // Capture the `SyncPtr` wrappers whole (precise capture
                    // would otherwise grab the raw-pointer fields, which are
                    // not `Sync`).
                    let (ranks, slots, flat, buckets) = (&ranks, &slots, &flat, &buckets);
                    // SAFETY: the pool hands each index to exactly one
                    // worker, so `ranks[i]`, `slots[i]`, `flat[i]` — and,
                    // through the edge list, origin `i`'s buckets — are
                    // accessed exclusively; `inboxes` is only read.
                    let rank = unsafe { &mut *ranks.0.add(i) };
                    let slot = unsafe { &mut *slots.0.add(i) };
                    if stalled[i] {
                        *slot = PhaseTotals::default();
                        return;
                    }
                    let ctx = match topo {
                        Some(tp) => {
                            let edges = &tp.out_edges[i];
                            PhaseCtx::bucketed(
                                i,
                                edges.as_ptr(),
                                edges.len(),
                                buckets.0,
                                touched.as_ptr(),
                            )
                        }
                        None => {
                            let buf = unsafe { std::mem::take(&mut *flat.0.add(i)) };
                            PhaseCtx::with_outbox(i, buf)
                        }
                    };
                    if let Some(buf) = run_one_rank(rank, phase, &inboxes[i], ctx, slot) {
                        unsafe {
                            *flat.0.add(i) = buf;
                        }
                    }
                });
            }
            ExecMode::ThreadedSpawn(nthreads) => {
                let nthreads = nthreads.min(n);
                let chunk = n.div_ceil(nthreads);
                let buckets = SyncPtr(self.buckets.as_mut_ptr());
                let touched = &self.touched;
                let topo = self.topo.as_ref();
                let ranks = &mut self.ranks;
                let inboxes = &self.inboxes;
                let results = &mut self.phase_totals;
                let flat_out = &mut self.flat_out;
                let mut chunk_busy = vec![0u64; nthreads];
                crossbeam::thread::scope(|scope| {
                    let mut rank_chunks = ranks.chunks_mut(chunk);
                    let mut inbox_chunks = inboxes.chunks(chunk);
                    let mut result_chunks = results.chunks_mut(chunk);
                    let mut flat_chunks = flat_out.chunks_mut(chunk);
                    let mut busy_slots = chunk_busy.iter_mut();
                    let mut base = 0usize;
                    let buckets = &buckets;
                    for _ in 0..nthreads {
                        let (Some(rc), Some(ic), Some(out), Some(fc), Some(busy)) = (
                            rank_chunks.next(),
                            inbox_chunks.next(),
                            result_chunks.next(),
                            flat_chunks.next(),
                            busy_slots.next(),
                        ) else {
                            break;
                        };
                        let start = base;
                        base += rc.len();
                        scope.spawn(move |_| {
                            let t0 = Instant::now();
                            for (k, (((rank, inbox), slot), fbuf)) in rc
                                .iter_mut()
                                .zip(ic)
                                .zip(out.iter_mut())
                                .zip(fc.iter_mut())
                                .enumerate()
                            {
                                let i = start + k;
                                if stalled[i] {
                                    *slot = PhaseTotals::default();
                                    continue;
                                }
                                let ctx = match topo {
                                    Some(tp) => {
                                        let edges = &tp.out_edges[i];
                                        // SAFETY: origin i's buckets are
                                        // touched only by this thread (the
                                        // chunks are disjoint).
                                        PhaseCtx::bucketed(
                                            i,
                                            edges.as_ptr(),
                                            edges.len(),
                                            buckets.0,
                                            touched.as_ptr(),
                                        )
                                    }
                                    None => PhaseCtx::with_outbox(i, std::mem::take(fbuf)),
                                };
                                if let Some(buf) = run_one_rank(rank, phase, inbox, ctx, slot) {
                                    *fbuf = buf;
                                }
                            }
                            *busy = t0.elapsed().as_nanos() as u64;
                        });
                    }
                })
                .expect("superstep worker panicked");
                for (w, b) in chunk_busy.into_iter().enumerate() {
                    self.stats.worker_busy_ns[w] += b;
                }
            }
        }
    }
}

/// Closes one chunk of targets: routes their inbound buckets, expires
/// their delayed queues, re-sorts the inboxes a fault perturbed, and folds
/// the chunk's origin counters into its [`ClosePartial`].
///
/// # Safety
/// The caller must guarantee that no other thread touches any state of
/// targets/origins in chunk `c`'s range (see [`CloseShared`]).
unsafe fn close_chunk<M: Clone + Send>(
    sh: &CloseShared<'_, M>,
    c: usize,
    mut trace: Option<&mut crate::trace::Trace>,
    phase: usize,
    step_idx: usize,
) {
    let lo = c * sh.chunk;
    let hi = ((c + 1) * sh.chunk).min(sh.n);
    let mut part = ClosePartial::default();
    for t in lo..hi {
        close_one_target(
            sh,
            t,
            trace.as_deref_mut(),
            &mut part.faults,
            phase,
            step_idx,
        );
    }
    for i in lo..hi {
        let totals = &sh.totals[i];
        part.absorb_rank(totals);
        *sh.msgs_per_rank.add(i) += totals.msgs;
        *sh.step_rank_ns.add(i) += totals.wall_ns;
    }
    *sh.partials.add(c) = part;
}

/// Routes everything addressed to target `t`: clears the inbox (unless the
/// target is stalled), drains the inbound buckets in origin order deciding
/// per-message fates, delivers expired delayed puts in deferral order (an
/// order-preserving partition pass), and stable-sorts the inbox only if a
/// fate perturbed its origin order.
///
/// # Safety
/// Exclusive access to target `t`'s inbox, delayed queue, sort flag, and
/// every bucket in `in_edges[t]`.
unsafe fn close_one_target<M: Clone>(
    sh: &CloseShared<'_, M>,
    t: usize,
    mut trace: Option<&mut crate::trace::Trace>,
    faults: &mut FaultStats,
    phase: usize,
    step_idx: usize,
) {
    let inbox = &mut *sh.inboxes.add(t);
    let is_stalled = sh.stalled[t];
    // Dirty-target fast path: if no put touched any of `t`'s inbound
    // buckets this phase and no delayed put is parked, there is nothing to
    // route — skip the per-edge bucket scan entirely. The inbox still
    // empties (the target read it this phase) unless the target is
    // stalled, and `unsorted[t]` cannot be pending here (the bucketed
    // close always clears it before returning).
    let touched = sh.touched[t].load(Ordering::Relaxed);
    if !touched && (*sh.delayed.add(t)).is_empty() {
        if !is_stalled {
            inbox.clear();
        }
        return;
    }
    if touched {
        sh.touched[t].store(false, Ordering::Relaxed);
    }
    if !is_stalled {
        inbox.clear();
    }
    let message_faults = sh.injector.config().message_faults_active();
    let mut appended = false;
    let mut late = false;
    for &(origin, bid) in &sh.in_edges[t] {
        let bucket = &mut *sh.buckets.add(bid as usize);
        if bucket.is_empty() {
            continue;
        }
        appended = true;
        if !message_faults {
            // Fault-free fast path: a straight ordered move.
            if let Some(tr) = trace.as_deref_mut() {
                for env in bucket.iter() {
                    tr.record(crate::trace::TraceEvent {
                        step: step_idx,
                        phase,
                        src: env.src,
                        dst: t,
                        class: env.class,
                    });
                }
            }
            inbox.append(bucket);
            continue;
        }
        for (idx, env) in bucket.drain(..).enumerate() {
            let fate = sh
                .injector
                .fate_at(sh.epoch, origin, t as u32, idx as u32, env.class);
            if fate.dropped {
                faults.dropped.add(env.class, 1);
                continue;
            }
            if fate.duplicated {
                faults.duplicated.add(env.class, 1);
                if let Some(tr) = trace.as_deref_mut() {
                    tr.record(crate::trace::TraceEvent {
                        step: step_idx,
                        phase,
                        src: env.src,
                        dst: t,
                        class: env.class,
                    });
                }
                inbox.push(env.clone());
            }
            if fate.delay > 0 {
                faults.delayed.add(env.class, 1);
                (*sh.delayed.add(t)).push(DelayedEnv {
                    due_epoch: sh.epoch + fate.delay as u64,
                    env,
                });
            } else {
                if let Some(tr) = trace.as_deref_mut() {
                    tr.record(crate::trace::TraceEvent {
                        step: step_idx,
                        phase,
                        src: env.src,
                        dst: t,
                        class: env.class,
                    });
                }
                inbox.push(env);
            }
        }
    }
    // Deliver expired delayed puts in deferral order.
    let dq = &mut *sh.delayed.add(t);
    if !dq.is_empty() {
        let due = sh.epoch;
        for d in dq.extract_if(.., |d| d.due_epoch <= due) {
            if let Some(tr) = trace.as_deref_mut() {
                tr.record(crate::trace::TraceEvent {
                    step: step_idx,
                    phase,
                    src: d.env.src,
                    dst: t,
                    class: d.env.class,
                });
            }
            inbox.push(d.env);
            late = true;
        }
    }
    // Re-sort only when a fate perturbed origin order: a late arrival, or
    // appends behind a stalled target's accumulated content. The fresh
    // fault-free fill is origin-major by construction (buckets are drained
    // origin-ascending), so it needs no sort at all.
    let unsorted = &mut *sh.unsorted.add(t);
    if late || (is_stalled && appended) {
        *unsorted = true;
    }
    if *unsorted {
        inbox.sort_by_key(|env| env.src);
        *unsorted = false;
    }
}

/// Executes one rank's phase, timing the callback for the load-imbalance
/// observables. Returns the flat outbox buffer for recycling (flat path
/// only — bucketed puts already sit in their buckets).
fn run_one_rank<A: RankAlgorithm>(
    rank: &mut A,
    phase: usize,
    inbox: &[Envelope<A::Msg>],
    mut ctx: PhaseCtx<A::Msg>,
    slot: &mut PhaseTotals,
) -> Option<Vec<(usize, Envelope<A::Msg>)>> {
    let t0 = Instant::now();
    rank.phase(phase, inbox, &mut ctx);
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let (flat, mut totals) = ctx.finish();
    totals.wall_ns = wall_ns;
    *slot = totals;
    flat
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy algorithm on a ring: each rank holds a value; every step it puts
    /// the value to its right neighbor in phase 0 and adds what it received
    /// (visible in phase 0 of the *next* step, per the epoch rule).
    /// With `declare` set the rank advertises its put target up front,
    /// switching the executor to the bucketed (reverse-neighbor-indexed)
    /// routing path.
    struct Ring {
        id: usize,
        n: usize,
        value: u64,
        declare: bool,
        received_this_phase: Vec<u64>,
    }

    impl RankAlgorithm for Ring {
        type Msg = u64;
        fn phases(&self) -> usize {
            1
        }
        fn phase(&mut self, _phase: usize, inbox: &[Envelope<u64>], ctx: &mut PhaseCtx<u64>) {
            self.received_this_phase = inbox.iter().map(|e| e.payload).collect();
            for e in inbox {
                self.value += e.payload;
            }
            let target = (self.id + 1) % self.n;
            ctx.put(target, CommClass::Solve, self.value, 8);
            ctx.add_flops(1);
            ctx.record_relaxations(1);
        }
        fn put_targets(&self) -> Option<Vec<usize>> {
            self.declare.then(|| vec![(self.id + 1) % self.n])
        }
    }

    fn ring_with(n: usize, declare: bool) -> Vec<Ring> {
        (0..n)
            .map(|id| Ring {
                id,
                n,
                value: id as u64 + 1,
                declare,
                received_this_phase: Vec::new(),
            })
            .collect()
    }

    fn ring(n: usize) -> Vec<Ring> {
        ring_with(n, false)
    }

    #[test]
    fn messages_delivered_next_phase_not_same() {
        let mut ex = Executor::new(ring(3), CostModel::default(), ExecMode::Sequential);
        let s1 = ex.step();
        // Nothing was in flight during the first step's phase 0.
        assert!(ex.ranks()[0].received_this_phase.is_empty());
        assert_eq!(s1.msgs, 3);
        let _s2 = ex.step();
        // Now each rank saw exactly the value its left neighbor sent.
        assert_eq!(ex.ranks()[1].received_this_phase, vec![1]);
        assert_eq!(ex.ranks()[0].received_this_phase, vec![3]);
    }

    #[test]
    fn sequential_and_threaded_agree() {
        let mut a = Executor::new(ring(7), CostModel::default(), ExecMode::Sequential);
        let mut b = Executor::new(ring(7), CostModel::default(), ExecMode::Threaded(3));
        for _ in 0..5 {
            a.step();
            b.step();
        }
        let va: Vec<u64> = a.ranks().iter().map(|r| r.value).collect();
        let vb: Vec<u64> = b.ranks().iter().map(|r| r.value).collect();
        assert_eq!(va, vb);
        assert_eq!(a.stats.total_msgs(), b.stats.total_msgs());
        assert_eq!(a.stats.msgs_per_rank, b.stats.msgs_per_rank);
    }

    #[test]
    fn all_modes_and_grains_agree() {
        let mut reference = Executor::new(ring(13), CostModel::default(), ExecMode::Sequential);
        for _ in 0..6 {
            reference.step();
        }
        let vref: Vec<u64> = reference.ranks().iter().map(|r| r.value).collect();
        for declare in [false, true] {
            for (mode, grain) in [
                (ExecMode::Sequential, None),
                (ExecMode::Threaded(2), None),
                (ExecMode::Threaded(4), Some(1)),
                (ExecMode::Threaded(7), Some(3)),
                (ExecMode::Threaded(32), Some(1000)),
                (ExecMode::ThreadedSpawn(3), None),
            ] {
                let mut ex = Executor::new(ring_with(13, declare), CostModel::default(), mode);
                assert_eq!(ex.has_routing_index(), declare);
                if let Some(g) = grain {
                    ex.set_grain(g);
                }
                for _ in 0..6 {
                    ex.step();
                }
                let v: Vec<u64> = ex.ranks().iter().map(|r| r.value).collect();
                assert_eq!(v, vref, "{mode:?} grain {grain:?} declare {declare}");
                assert_eq!(ex.stats.msgs_per_rank, reference.stats.msgs_per_rank);
                for (sa, sb) in reference.stats.steps.iter().zip(&ex.stats.steps) {
                    assert_eq!(sa, sb, "{mode:?} grain {grain:?} declare {declare}");
                }
            }
        }
    }

    #[test]
    fn close_modes_agree_bit_for_bit() {
        // The close strategy is a pure scheduling knob: Serial, Parallel,
        // and Auto (with a zero threshold, forcing the pool at this tiny
        // size) must all match the flat-path sequential reference.
        let mut reference = Executor::new(ring(13), CostModel::default(), ExecMode::Sequential);
        for _ in 0..6 {
            reference.step();
        }
        let vref: Vec<u64> = reference.ranks().iter().map(|r| r.value).collect();
        for close in [CloseMode::Serial, CloseMode::Parallel, CloseMode::Auto] {
            let mut ex = Executor::new(
                ring_with(13, true),
                CostModel::default(),
                ExecMode::Threaded(3),
            );
            ex.set_close_mode(close);
            ex.set_parallel_close_threshold(0);
            for _ in 0..6 {
                ex.step();
            }
            let v: Vec<u64> = ex.ranks().iter().map(|r| r.value).collect();
            assert_eq!(v, vref, "{close:?}");
            assert_eq!(ex.stats.msgs_per_rank, reference.stats.msgs_per_rank);
            for (sa, sb) in reference.stats.steps.iter().zip(&ex.stats.steps) {
                assert_eq!(sa, sb, "{close:?}");
            }
        }
    }

    #[test]
    fn timing_observables_populate() {
        for mode in [
            ExecMode::Sequential,
            ExecMode::Threaded(2),
            ExecMode::ThreadedSpawn(2),
        ] {
            let mut ex = Executor::new(ring(5), CostModel::default(), mode);
            let s = ex.step();
            assert_eq!(s.workers, ex.nworkers() as u32, "{mode:?}");
            assert!(s.compute_ns > 0, "{mode:?}: per-rank wall time measured");
            assert!(s.compute_ns_max_rank > 0, "{mode:?}");
            assert!(s.compute_ns_max_rank <= s.compute_ns, "{mode:?}");
            assert!(s.span_ns >= s.compute_ns_max_rank, "{mode:?}");
            assert!(s.imbalance(5) >= 1.0, "{mode:?}");
            assert!(
                ex.stats.rank_time_ns.iter().all(|&ns| ns > 0),
                "{mode:?}: every rank accumulated wall time"
            );
            assert!(
                ex.stats.worker_busy_ns.iter().sum::<u64>() > 0,
                "{mode:?}: workers accumulated busy time"
            );
            assert!(ex.stats.worker_utilization() > 0.0, "{mode:?}");
        }
    }

    /// Regression for pool-lifetime smear: two executors sharing one
    /// `SharedPool` back-to-back must each see only their own busy time.
    /// Before per-solve baselining, the second run's `worker_busy_ns`
    /// (and hence `worker_utilization`) absorbed the first run's work.
    #[test]
    fn shared_pool_busy_time_is_per_run() {
        use crate::pool::SharedPool;
        let pool = SharedPool::new(2);

        let mut first = Executor::with_shared_pool(
            ring(64),
            CostModel::default(),
            ChaosConfig::default(),
            &pool,
        );
        for _ in 0..20 {
            first.step();
        }
        let first_busy: u64 = first.stats.worker_busy_ns.iter().sum();
        assert!(first_busy > 0, "first run accumulated busy time");

        let mut second = Executor::with_shared_pool(
            ring(64),
            CostModel::default(),
            ChaosConfig::default(),
            &pool,
        );
        let second_initial: u64 = second.stats.worker_busy_ns.iter().sum();
        assert_eq!(second_initial, 0, "fresh executor starts at zero busy");
        second.step();
        let second_busy: u64 = second.stats.worker_busy_ns.iter().sum();
        assert!(second_busy > 0);
        // One step on the same workload cannot plausibly cost as much as
        // the first executor's 20 steps — unless lifetime busy smeared in.
        assert!(
            second_busy < first_busy,
            "second run's busy ({second_busy}ns) must exclude the first \
             run's 20 steps ({first_busy}ns)"
        );
        assert!(second.stats.worker_utilization() <= 1.0);

        // Interleaved epochs: re-baselining at step start keeps each
        // executor's accounting isolated even when their steps alternate
        // on the shared pool. After a second.step() ran in between,
        // first.step() must still charge first only for its own work —
        // i.e. a single step's worth, not first's step plus second's.
        let before: u64 = first.stats.worker_busy_ns.iter().sum();
        second.step();
        first.step();
        let grew = first.stats.worker_busy_ns.iter().sum::<u64>() - before;
        assert!(grew > 0, "first's own interleaved step is charged");
        assert!(
            grew < first_busy,
            "one interleaved step ({grew}ns) charges less than 20 steps \
             ({first_busy}ns): second's work did not smear into first"
        );
    }

    /// `RunStats::take_epoch` drains per-solve accumulators and resets
    /// them in place, so consecutive harvests partition the run.
    #[test]
    fn run_stats_take_epoch_partitions_accumulators() {
        let mut ex = Executor::new(ring(8), CostModel::default(), ExecMode::Sequential);
        ex.step();
        ex.step();
        let lifetime_msgs: u64 = ex.stats.msgs_per_rank.iter().sum();
        let lifetime_rank_ns: u64 = ex.stats.rank_time_ns.iter().sum();

        let epoch1 = ex.stats.take_epoch();
        assert_eq!(epoch1.nsteps(), 2);
        assert_eq!(epoch1.msgs_per_rank.iter().sum::<u64>(), lifetime_msgs);
        assert_eq!(epoch1.rank_time_ns.iter().sum::<u64>(), lifetime_rank_ns);
        assert_eq!(ex.stats.nsteps(), 0);
        assert_eq!(ex.stats.msgs_per_rank.iter().sum::<u64>(), 0);
        assert_eq!(ex.stats.rank_time_ns.iter().sum::<u64>(), 0);
        assert_eq!(ex.stats.msgs_per_rank.len(), 8, "shape preserved");

        ex.step();
        let epoch2 = ex.stats.take_epoch();
        assert_eq!(epoch2.nsteps(), 1);
        assert!(epoch2.msgs_per_rank.iter().sum::<u64>() > 0);
    }

    #[test]
    fn counters_and_cost_model() {
        let model = CostModel {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            sync: 0.5,
        };
        let mut ex = Executor::new(ring(4), model, ExecMode::Sequential);
        let s = ex.step();
        assert_eq!(s.msgs, 4);
        assert_eq!(s.msgs_solve, 4);
        assert_eq!(s.msgs_residual, 0);
        assert_eq!(s.bytes, 32);
        assert_eq!(s.bytes_solve, 32);
        assert_eq!(s.bytes_residual, 0);
        assert_eq!(s.bytes_recovery, 0);
        assert_eq!(s.flops, 4);
        assert_eq!(s.active_ranks, 4);
        assert_eq!(s.relaxations, 4);
        // Each rank sends one message: max over ranks = 1 message * alpha,
        // plus the sync charge.
        assert!((s.time - 1.5).abs() < 1e-12);
        assert!((ex.stats.comm_cost() - 1.0).abs() < 1e-12);
    }

    /// Two-phase algorithm verifying that phase-1 messages arrive in
    /// phase 0 of the next step and phase-0 messages arrive in phase 1.
    struct TwoPhase {
        id: usize,
        log: Vec<(usize, Vec<u64>)>,
    }

    impl RankAlgorithm for TwoPhase {
        type Msg = u64;
        fn phases(&self) -> usize {
            2
        }
        fn phase(&mut self, phase: usize, inbox: &[Envelope<u64>], ctx: &mut PhaseCtx<u64>) {
            self.log
                .push((phase, inbox.iter().map(|e| e.payload).collect()));
            let peer = 1 - self.id;
            // Tag the message with 10*phase so the receiver can tell which
            // phase it was sent in.
            ctx.put(peer, CommClass::Residual, (10 * phase) as u64, 8);
        }
    }

    #[test]
    fn two_phase_visibility() {
        let ranks = vec![
            TwoPhase { id: 0, log: vec![] },
            TwoPhase { id: 1, log: vec![] },
        ];
        let mut ex = Executor::new(ranks, CostModel::default(), ExecMode::Sequential);
        ex.step();
        ex.step();
        let log = &ex.ranks()[0].log;
        // Step 1: phase 0 sees nothing; phase 1 sees the phase-0 put (0).
        assert_eq!(log[0], (0, vec![]));
        assert_eq!(log[1], (1, vec![0]));
        // Step 2: phase 0 sees the phase-1 put (10) of step 1.
        assert_eq!(log[2], (0, vec![10]));
        assert_eq!(log[3], (1, vec![0]));
        assert_eq!(ex.stats.total_msgs_residual(), 8);
    }

    #[test]
    fn trace_records_deliveries() {
        for declare in [false, true] {
            let mut ex = Executor::new(
                ring_with(3, declare),
                CostModel::default(),
                ExecMode::Sequential,
            );
            ex.enable_trace(100);
            ex.step();
            ex.step();
            let trace = ex.trace.as_ref().unwrap();
            // First step's puts are delivered at its epoch close (3 events),
            // second step likewise.
            assert_eq!(trace.len(), 6);
            let m = trace.traffic_matrix(3);
            assert_eq!(m[0][1], 2);
            assert_eq!(m[2][0], 2);
            assert_eq!(m[0][2], 0);
            assert!(trace.to_csv().contains("0,0,0,1,Solve"));
        }
    }

    #[test]
    #[should_panic(expected = "must not put to itself")]
    fn self_put_panics() {
        struct SelfPut;
        impl RankAlgorithm for SelfPut {
            type Msg = ();
            fn phases(&self) -> usize {
                1
            }
            fn phase(&mut self, _p: usize, _i: &[Envelope<()>], ctx: &mut PhaseCtx<()>) {
                ctx.put(0, CommClass::Solve, (), 0);
            }
        }
        let ranks = vec![SelfPut, SelfPut];
        let mut ex = Executor::new(ranks, CostModel::default(), ExecMode::Sequential);
        ex.step();
    }

    #[test]
    #[should_panic(expected = "not in its declared put_targets")]
    fn undeclared_target_put_panics() {
        struct Liar {
            id: usize,
        }
        impl RankAlgorithm for Liar {
            type Msg = ();
            fn phases(&self) -> usize {
                1
            }
            fn phase(&mut self, _p: usize, _i: &[Envelope<()>], ctx: &mut PhaseCtx<()>) {
                // Declared only the right neighbor; puts left.
                ctx.put((self.id + 2) % 3, CommClass::Solve, (), 0);
            }
            fn put_targets(&self) -> Option<Vec<usize>> {
                Some(vec![(self.id + 1) % 3])
            }
        }
        let ranks = (0..3).map(|id| Liar { id }).collect();
        let mut ex = Executor::new(ranks, CostModel::default(), ExecMode::Sequential);
        ex.step();
    }

    #[test]
    fn inbox_ordered_by_origin_rank() {
        // Every rank sends to rank 0 in one phase; rank 0 must see origins
        // in increasing order in every exec mode, with and without the
        // routing index.
        struct AllToZero {
            id: usize,
            declare: bool,
            seen: Vec<usize>,
        }
        impl RankAlgorithm for AllToZero {
            type Msg = ();
            fn phases(&self) -> usize {
                1
            }
            fn phase(&mut self, _p: usize, inbox: &[Envelope<()>], ctx: &mut PhaseCtx<()>) {
                if self.id == 0 {
                    self.seen = inbox.iter().map(|e| e.src).collect();
                } else {
                    ctx.put(0, CommClass::Solve, (), 1);
                }
            }
            fn put_targets(&self) -> Option<Vec<usize>> {
                self.declare
                    .then(|| if self.id == 0 { vec![] } else { vec![0] })
            }
        }
        for declare in [false, true] {
            for mode in [ExecMode::Sequential, ExecMode::Threaded(4)] {
                let ranks: Vec<AllToZero> = (0..9)
                    .map(|id| AllToZero {
                        id,
                        declare,
                        seen: vec![],
                    })
                    .collect();
                let mut ex = Executor::new(ranks, CostModel::default(), mode);
                ex.set_close_mode(CloseMode::Parallel);
                ex.step();
                ex.step();
                assert_eq!(ex.ranks()[0].seen, (1..9).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn drops_counted_per_class_in_stats() {
        let chaos = ChaosConfig {
            drop_rate: 1.0,
            seed: 3,
            ..ChaosConfig::none()
        };
        let mut ex =
            Executor::with_chaos(ring(3), CostModel::default(), ExecMode::Sequential, chaos);
        ex.step();
        ex.step();
        // Everything dropped: nothing ever arrives.
        assert!(ex.ranks()[1].received_this_phase.is_empty());
        assert_eq!(ex.stats.total_msgs_dropped(), 6);
        assert_eq!(ex.stats.total_faults().dropped.of(CommClass::Solve), 6);
        // Send-side accounting is unaffected by delivery faults.
        assert_eq!(ex.stats.total_msgs(), 6);
        assert_eq!(ex.stats.msgs_per_rank, vec![2, 2, 2]);
    }

    #[test]
    fn duplicates_are_delivered_twice() {
        let chaos = ChaosConfig {
            duplicate_rate: 1.0,
            seed: 3,
            ..ChaosConfig::none()
        };
        let mut ex =
            Executor::with_chaos(ring(3), CostModel::default(), ExecMode::Sequential, chaos);
        ex.step();
        ex.step();
        // Rank 1 sees its left neighbor's step-1 value twice.
        assert_eq!(ex.ranks()[1].received_this_phase, vec![1, 1]);
        assert_eq!(ex.stats.total_faults().duplicated.total(), 6);
    }

    #[test]
    fn delays_defer_delivery_by_configured_epochs() {
        let chaos = ChaosConfig {
            delay_rate: 1.0,
            max_delay_epochs: 1,
            seed: 3,
            ..ChaosConfig::none()
        };
        let mut ex =
            Executor::with_chaos(ring(3), CostModel::default(), ExecMode::Sequential, chaos);
        ex.step();
        ex.step();
        // One-epoch delay: the step-1 put (normally visible in step 2) is
        // still in flight during step 2...
        assert!(ex.ranks()[1].received_this_phase.is_empty());
        ex.step();
        // ...and lands for step 3.
        assert_eq!(ex.ranks()[1].received_this_phase, vec![1]);
        assert_eq!(ex.stats.total_faults().delayed.total(), 9);
    }

    #[test]
    fn same_epoch_expirations_keep_deferral_order() {
        // Regression for the delayed-put drain: several puts from one
        // origin to one target, all deferred at the same epoch to the same
        // due epoch, must surface in their original put order (the drain is
        // a single order-preserving partition pass, not an index-shifting
        // remove loop).
        struct Burst {
            id: usize,
            declare: bool,
            step: u64,
            seen: Vec<u64>,
        }
        impl RankAlgorithm for Burst {
            type Msg = u64;
            fn phases(&self) -> usize {
                1
            }
            fn phase(&mut self, _p: usize, inbox: &[Envelope<u64>], ctx: &mut PhaseCtx<u64>) {
                if self.id == 0 {
                    for k in 0..3 {
                        ctx.put(1, CommClass::Solve, self.step * 10 + k, 8);
                    }
                } else {
                    self.seen.extend(inbox.iter().map(|e| e.payload));
                }
                self.step += 1;
            }
            fn put_targets(&self) -> Option<Vec<usize>> {
                self.declare
                    .then(|| if self.id == 0 { vec![1] } else { vec![] })
            }
        }
        let chaos = ChaosConfig {
            delay_rate: 1.0,
            max_delay_epochs: 1,
            seed: 7,
            ..ChaosConfig::none()
        };
        for declare in [false, true] {
            for mode in [ExecMode::Sequential, ExecMode::Threaded(2)] {
                let ranks = (0..2)
                    .map(|id| Burst {
                        id,
                        declare,
                        step: 0,
                        seen: vec![],
                    })
                    .collect();
                let mut ex = Executor::with_chaos(ranks, CostModel::default(), mode, chaos);
                ex.set_close_mode(CloseMode::Parallel);
                for _ in 0..5 {
                    ex.step();
                }
                // Every step's burst is delayed one epoch, then arrives
                // intact and in put order.
                assert_eq!(
                    ex.ranks()[1].seen,
                    vec![0, 1, 2, 10, 11, 12, 20, 21, 22],
                    "declare {declare} {mode:?}"
                );
            }
        }
    }

    #[test]
    fn stalled_rank_skips_compute_and_keeps_inbox() {
        for declare in [false, true] {
            let mut ex = Executor::new(
                ring_with(3, declare),
                CostModel::default(),
                ExecMode::Sequential,
            );
            ex.injector_mut().inject_stall(1, 2);
            let s1 = ex.step();
            assert_eq!(s1.faults.stalled_ranks, 1);
            assert_eq!(s1.relaxations, 2, "stalled rank does no work");
            assert_eq!(s1.active_ranks, 2);
            let s2 = ex.step();
            assert_eq!(s2.faults.stalled_ranks, 1);
            let s3 = ex.step();
            assert_eq!(s3.faults.stalled_ranks, 0);
            // While stalled, rank 1's inbox accumulated rank 0's puts from both
            // steps (values 1, then 1+3 after rank 0 absorbed rank 2's put);
            // nothing was lost, only late.
            assert_eq!(ex.ranks()[1].received_this_phase, vec![1, 4]);
            assert_eq!(ex.ranks()[1].value, 2 + 1 + 4);
        }
    }

    #[test]
    fn full_chaos_identical_across_modes_and_routing_paths() {
        let chaos = ChaosConfig {
            drop_rate: 0.15,
            duplicate_rate: 0.15,
            delay_rate: 0.2,
            max_delay_epochs: 2,
            stall_rate: 0.1,
            stall_steps: 2,
            seed: 1234,
            ..ChaosConfig::none()
        };
        let mut a =
            Executor::with_chaos(ring(7), CostModel::default(), ExecMode::Sequential, chaos);
        let mut bs: Vec<Executor<Ring>> = vec![
            Executor::with_chaos(ring(7), CostModel::default(), ExecMode::Threaded(3), chaos),
            Executor::with_chaos(
                ring_with(7, true),
                CostModel::default(),
                ExecMode::Sequential,
                chaos,
            ),
            Executor::with_chaos(
                ring_with(7, true),
                CostModel::default(),
                ExecMode::Threaded(3),
                chaos,
            ),
        ];
        bs[2].set_close_mode(CloseMode::Parallel);
        for _ in 0..12 {
            let sa = a.step();
            for b in &mut bs {
                let sb = b.step();
                assert_eq!(sa, sb, "per-step stats must match bit-for-bit");
            }
        }
        let va: Vec<u64> = a.ranks().iter().map(|r| r.value).collect();
        for b in &bs {
            let vb: Vec<u64> = b.ranks().iter().map(|r| r.value).collect();
            assert_eq!(va, vb);
            assert_eq!(a.stats.msgs_per_rank, b.stats.msgs_per_rank);
        }
        let fa = a.stats.total_faults();
        assert!(
            fa.dropped.total() > 0,
            "chaos should have dropped something"
        );
        assert!(fa.duplicated.total() > 0);
        assert!(fa.delayed.total() > 0);
        assert!(fa.stalled_ranks > 0);
    }

    #[test]
    fn zero_rate_chaos_identical_to_no_chaos() {
        let mut a = Executor::new(ring(5), CostModel::default(), ExecMode::Sequential);
        let mut b = Executor::with_chaos(
            ring(5),
            CostModel::default(),
            ExecMode::Sequential,
            ChaosConfig {
                seed: 99,
                ..ChaosConfig::none()
            },
        );
        for _ in 0..6 {
            assert_eq!(a.step(), b.step());
        }
        let va: Vec<u64> = a.ranks().iter().map(|r| r.value).collect();
        let vb: Vec<u64> = b.ranks().iter().map(|r| r.value).collect();
        assert_eq!(va, vb);
    }
}
