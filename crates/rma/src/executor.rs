//! The superstep executor: epochs, puts, delivery, counters.

use crate::fault::{ChaosConfig, FaultInjector};
use crate::pool::WorkerPool;
use crate::stats::{CommClass, CostModel, RunStats, StepStats};
use std::time::Instant;

/// A message as it sits in a target rank's memory window.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Origin rank of the put.
    pub src: usize,
    /// Message class (for the Table 3 breakdown).
    pub class: CommClass,
    /// Payload.
    pub payload: M,
}

/// The per-phase context handed to a rank: issue puts, report work.
///
/// Every `put` is one message, exactly as in the paper's counting (one
/// `MPI_Put` per target per phase; piggybacked data rides in the same
/// message at zero extra message cost but nonzero bytes).
pub struct PhaseCtx<M> {
    rank: usize,
    outbox: Vec<(usize, Envelope<M>)>,
    totals: PhaseTotals,
}

/// Per-rank, per-phase counters the executor folds into [`StepStats`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PhaseTotals {
    pub msgs: u64,
    pub msgs_solve: u64,
    pub msgs_residual: u64,
    pub msgs_recovery: u64,
    pub bytes: u64,
    pub flops: u64,
    pub relaxations: u64,
    pub active: bool,
    /// Measured wall-clock ns of this rank's phase callback (set by the
    /// executor, not the rank; feeds the load-imbalance observables only —
    /// never the deterministic counters).
    pub wall_ns: u64,
}

impl<M> PhaseCtx<M> {
    fn new(rank: usize) -> Self {
        Self::with_outbox(rank, Vec::new())
    }

    /// Constructor reusing a preallocated (cleared) outbox buffer, so the
    /// hot path stops reallocating every phase.
    fn with_outbox(rank: usize, outbox: Vec<(usize, Envelope<M>)>) -> Self {
        debug_assert!(outbox.is_empty());
        PhaseCtx {
            rank,
            outbox,
            totals: PhaseTotals::default(),
        }
    }

    /// The calling rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Constructor for alternate executors in this crate.
    pub(crate) fn new_for_async(rank: usize) -> Self {
        Self::new(rank)
    }

    /// Consumes the context, yielding the outbox and the counters.
    pub(crate) fn into_outbox_and_totals(self) -> (Vec<(usize, Envelope<M>)>, PhaseTotals) {
        (self.outbox, self.totals)
    }

    /// Puts `payload` into `target`'s window. Visible to `target` at the
    /// next phase (after the epoch closes). `bytes` is the modelled payload
    /// size used by the β term of the cost model.
    pub fn put(&mut self, target: usize, class: CommClass, payload: M, bytes: u64) {
        assert_ne!(target, self.rank, "a rank must not put to itself");
        self.outbox.push((
            target,
            Envelope {
                src: self.rank,
                class,
                payload,
            },
        ));
        self.totals.msgs += 1;
        match class {
            CommClass::Solve => self.totals.msgs_solve += 1,
            CommClass::Residual => self.totals.msgs_residual += 1,
            CommClass::Recovery => self.totals.msgs_recovery += 1,
        }
        self.totals.bytes += bytes;
    }

    /// Reports computational work for the γ term of the cost model.
    #[inline]
    pub fn add_flops(&mut self, flops: u64) {
        self.totals.flops += flops;
    }

    /// Reports that this rank relaxed `rows` of its equations this step
    /// (feeds the "relaxations" and "active processes" columns of Table 2).
    #[inline]
    pub fn record_relaxations(&mut self, rows: u64) {
        self.totals.relaxations += rows;
        self.totals.active = true;
    }
}

/// A per-rank program, written as phases of a parallel step.
///
/// Phase semantics: in phase `k` the rank sees exactly the messages that
/// were put during phase `k − 1` (for `k = 0`: during the *last* phase of
/// the previous parallel step). This is the one-sided epoch visibility rule.
pub trait RankAlgorithm: Send {
    /// Payload type of the messages this algorithm puts.
    type Msg: Send + Sync + Clone;

    /// Number of communication phases (epochs) per parallel step.
    fn phases(&self) -> usize;

    /// Executes one phase. `inbox` holds the envelopes delivered at the
    /// close of the previous epoch, ordered by origin rank.
    fn phase(&mut self, phase: usize, inbox: &[Envelope<Self::Msg>], ctx: &mut PhaseCtx<Self::Msg>);

    /// The squared 2-norm of this rank's locally maintained residual, kept
    /// current at parallel-step boundaries, if the algorithm maintains one.
    ///
    /// Returning `Some` lets a driver monitor global convergence as an
    /// `O(P)` sum of per-rank scalars instead of gathering the solution and
    /// recomputing `‖b − Ax‖₂` every step. `None` (the default) declares
    /// that the algorithm has no maintained norm and the driver must fall
    /// back to exact recomputation.
    fn maintained_norm_sq(&self) -> Option<f64> {
        None
    }

    /// The squared 2-norm of residual deltas this rank has produced but
    /// whose delivery is still outstanding at the step boundary (parked by
    /// message coalescing, or sent in the step's final epoch and not yet
    /// applied by the receiver). By the triangle inequality the true global
    /// norm lies within `√Σ undelivered` of the maintained one, so a
    /// monitor widens its convergence trigger by this slack. `0.0` when
    /// every delta is applied at the boundary (the default).
    fn undelivered_delta_sq(&self) -> f64 {
        0.0
    }
}

/// How the executor schedules rank phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// All ranks run on the calling thread, in rank order.
    Sequential,
    /// Rank phases are dispatched to a **persistent pool** of `n` worker
    /// threads (created once per executor), which self-schedule batches of
    /// ranks from a shared atomic cursor (work stealing — see
    /// [`crate::pool`]). Results are bit-identical to
    /// [`ExecMode::Sequential`] for any `n` and any steal order: ranks
    /// interact only at epoch boundaries, which the executor serializes in
    /// rank order, and fault decisions are drawn there too.
    Threaded(usize),
    /// The legacy scheduler: a fresh `crossbeam::thread::scope` of `n`
    /// threads per phase, ranks statically chunked contiguously. Same
    /// bit-identical results, strictly worse performance (spawn/join per
    /// phase, hot ranks cluster on one chunk). Kept so the `kernels`
    /// criterion bench can measure the pool against it; prefer
    /// [`ExecMode::Threaded`].
    ThreadedSpawn(usize),
}

/// A per-rank phase result slot: the rank's outbox plus its counters.
type PhaseSlot<M> = (Vec<(usize, Envelope<M>)>, PhaseTotals);

/// A put whose delivery was deferred by fault injection.
struct DelayedPut<M> {
    /// Global epoch index at whose close the put becomes visible.
    due_epoch: u64,
    target: usize,
    env: Envelope<M>,
}

/// Runs a set of [`RankAlgorithm`] instances in lock-step parallel steps.
pub struct Executor<A: RankAlgorithm> {
    ranks: Vec<A>,
    /// Inboxes holding envelopes visible at the next phase.
    inboxes: Vec<Vec<Envelope<A::Msg>>>,
    /// Preallocated per-rank result slots (outbox, counters), refilled in
    /// place every phase so the epoch close stops reallocating.
    phase_out: Vec<PhaseSlot<A::Msg>>,
    /// Per-rank compute-ns scratch for the current step (reset each step).
    step_rank_ns: Vec<u64>,
    /// Persistent worker pool ([`ExecMode::Threaded`] only).
    pool: Option<WorkerPool>,
    /// Work-stealing batch size override (`None` = auto; see
    /// [`Executor::set_grain`]).
    grain: Option<usize>,
    /// Last observed cumulative per-worker busy ns (for per-step deltas).
    worker_busy_seen: Vec<u64>,
    model: CostModel,
    mode: ExecMode,
    /// Fault decisions (drops / duplicates / delays / stalls).
    injector: FaultInjector,
    /// Puts in flight past their epoch (delay injection).
    delayed: Vec<DelayedPut<A::Msg>>,
    /// Global epoch (phase) counter, for delay due-dates.
    epochs_executed: u64,
    /// Optional delivery log (see [`Executor::enable_trace`]).
    pub trace: Option<crate::trace::Trace>,
    steps_executed: usize,
    /// Statistics accumulated over all executed steps.
    pub stats: RunStats,
}

/// A raw pointer the pool closure may share across workers. Sound because
/// each worker dereferences only the indices it claimed from the atomic
/// cursor, and those claims are disjoint.
struct SyncPtr<T>(*mut T);
unsafe impl<T> Send for SyncPtr<T> {}
unsafe impl<T> Sync for SyncPtr<T> {}

impl<A: RankAlgorithm> Executor<A> {
    /// Creates an executor over `ranks` with the given cost model.
    pub fn new(ranks: Vec<A>, model: CostModel, mode: ExecMode) -> Self {
        Self::with_chaos(ranks, model, mode, ChaosConfig::none())
    }

    /// As [`new`](Self::new), with fault injection at epoch boundaries.
    ///
    /// # Panics
    /// If `chaos` fails [`ChaosConfig::validate`].
    pub fn with_chaos(ranks: Vec<A>, model: CostModel, mode: ExecMode, chaos: ChaosConfig) -> Self {
        assert!(!ranks.is_empty(), "need at least one rank");
        if let ExecMode::Threaded(t) | ExecMode::ThreadedSpawn(t) = mode {
            assert!(t > 0, "threaded mode needs at least one thread");
        }
        let n = ranks.len();
        // Workers are created once, here, and live for the executor's
        // lifetime; `step` only parks/unparks them.
        let pool = match mode {
            ExecMode::Threaded(t) => Some(WorkerPool::new(t.min(n))),
            _ => None,
        };
        let nworkers = match mode {
            ExecMode::Sequential => 1,
            ExecMode::Threaded(t) | ExecMode::ThreadedSpawn(t) => t.min(n),
        };
        let mut stats = RunStats::new(n);
        stats.worker_busy_ns = vec![0; nworkers];
        Executor {
            injector: FaultInjector::new(chaos, n),
            ranks,
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            phase_out: (0..n)
                .map(|_| (Vec::new(), PhaseTotals::default()))
                .collect(),
            step_rank_ns: vec![0; n],
            pool,
            grain: None,
            worker_busy_seen: vec![0; nworkers],
            model,
            mode,
            delayed: Vec::new(),
            epochs_executed: 0,
            trace: None,
            steps_executed: 0,
            stats,
        }
    }

    /// Overrides the work-stealing batch size (ranks claimed per cursor
    /// fetch) for [`ExecMode::Threaded`]. The default grain targets ~8
    /// batches per worker so tiny subdomains amortize cursor traffic while
    /// hot ranks still spread; set `1` for maximal stealing granularity.
    /// Scheduling-only: results are bit-identical for every grain.
    pub fn set_grain(&mut self, grain: usize) {
        assert!(grain >= 1, "grain must be at least 1");
        self.grain = Some(grain);
    }

    /// The number of compute workers (1 for [`ExecMode::Sequential`]).
    pub fn nworkers(&self) -> usize {
        self.worker_busy_seen.len()
    }

    /// Direct access to the fault injector, e.g. to force targeted
    /// stragglers with [`FaultInjector::inject_stall`].
    pub fn injector_mut(&mut self) -> &mut FaultInjector {
        &mut self.injector
    }

    /// Starts logging every delivered message (up to `capacity` events)
    /// into [`Executor::trace`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(crate::trace::Trace::new(capacity));
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    /// Immutable access to the rank programs (for the harness to read
    /// local solution vectors etc. — out-of-band, not counted as
    /// communication, exactly like the paper's measurement hooks).
    pub fn ranks(&self) -> &[A] {
        &self.ranks
    }

    /// Mutable access to the rank programs.
    pub fn ranks_mut(&mut self) -> &mut [A] {
        &mut self.ranks
    }

    /// Executes one parallel step (all phases); returns its stats.
    ///
    /// With fault injection active, the epoch close additionally: drops,
    /// duplicates, or defers puts per [`FaultInjector::fate`]; surfaces
    /// deferred puts whose delay expired; and skips the compute phases of
    /// stalled ranks (their inboxes keep accumulating until they resume).
    /// All of that happens in this serialized section, so the fault
    /// pattern is identical under [`ExecMode::Sequential`] and
    /// [`ExecMode::Threaded`].
    pub fn step(&mut self) -> StepStats {
        let nphases = self.ranks[0].phases();
        debug_assert!(
            self.ranks.iter().all(|r| r.phases() == nphases),
            "all ranks must agree on the phase count"
        );
        let mut step = StepStats::default();
        // Stall decisions hold for every phase of this step.
        let stalled = self.injector.step_stalls();
        step.faults.stalled_ranks += stalled.iter().filter(|&&s| s).count() as u64;
        // Covers configured faults and targeted `inject_stall` calls.
        let faults_possible = self.injector.config().is_active() || stalled.contains(&true);
        for phase in 0..nphases {
            let t_dispatch = Instant::now();
            self.run_phase(phase, &stalled);
            step.span_ns += t_dispatch.elapsed().as_nanos() as u64;
            // Epoch close: deliver puts. Result slots are visited in origin
            // rank order, so delivery is deterministic regardless of mode
            // (and of the pool's steal order), and the fault RNG is
            // consulted here — per message, never per worker — so the
            // chaos pattern is identical across modes too. A stalled rank
            // has not read its inbox, so it keeps accumulating until the
            // rank next executes a phase.
            for (inbox, &is_stalled) in self.inboxes.iter_mut().zip(&stalled) {
                if !is_stalled {
                    inbox.clear();
                }
            }
            // Detach the slots so `deliver` can borrow `self`; `drain`
            // keeps every slot's capacity for the next phase.
            let mut slots = std::mem::take(&mut self.phase_out);
            for (origin, (outbox, _)) in slots.iter_mut().enumerate() {
                self.stats.msgs_per_rank[origin] += outbox.len() as u64;
                for (target, env) in outbox.drain(..) {
                    let fate = self.injector.fate(env.class);
                    if fate.dropped {
                        step.faults.dropped.add(env.class, 1);
                        continue;
                    }
                    if fate.duplicated {
                        step.faults.duplicated.add(env.class, 1);
                        self.deliver(phase, target, env.clone());
                    }
                    if fate.delay > 0 {
                        step.faults.delayed.add(env.class, 1);
                        self.delayed.push(DelayedPut {
                            due_epoch: self.epochs_executed + fate.delay as u64,
                            target,
                            env,
                        });
                    } else {
                        self.deliver(phase, target, env);
                    }
                }
            }
            // Surface deferred puts whose delay expired at this close, in
            // the order they were deferred.
            if !self.delayed.is_empty() {
                let due_now = self.epochs_executed;
                let mut i = 0;
                while i < self.delayed.len() {
                    if self.delayed[i].due_epoch <= due_now {
                        let DelayedPut { target, env, .. } = self.delayed.remove(i);
                        self.deliver(phase, target, env);
                    } else {
                        i += 1;
                    }
                }
            }
            // Late arrivals and stall accumulation can interleave origins;
            // restore the "ordered by origin rank" inbox contract. The sort
            // is stable, so within one origin the delivery order (which
            // delays may have scrambled — that is the injected fault)
            // is preserved.
            if faults_possible {
                for inbox in self.inboxes.iter_mut() {
                    inbox.sort_by_key(|env| env.src);
                }
            }
            self.epochs_executed += 1;
            // Time: the slowest rank gates the computation; message and
            // byte volume are charged at the per-rank average (congestion /
            // epoch-overhead model — see `CostModel`).
            let mut max_flops = 0u64;
            let mut total_msgs = 0u64;
            let mut total_bytes = 0u64;
            for (_, ps) in &slots {
                max_flops = max_flops.max(ps.flops);
                total_msgs += ps.msgs;
                total_bytes += ps.bytes;
            }
            let p = self.ranks.len() as f64;
            step.time += self.model.sync
                + self.model.gamma * max_flops as f64
                + self.model.alpha * total_msgs as f64 / p
                + self.model.beta * total_bytes as f64 / p;
            for (i, (_, ps)) in slots.iter().enumerate() {
                step.msgs += ps.msgs;
                step.bytes += ps.bytes;
                step.flops += ps.flops;
                step.msgs_solve += ps.msgs_solve;
                step.msgs_residual += ps.msgs_residual;
                step.msgs_recovery += ps.msgs_recovery;
                step.relaxations += ps.relaxations;
                step.active_ranks += u64::from(ps.active);
                step.compute_ns += ps.wall_ns;
                self.step_rank_ns[i] += ps.wall_ns;
            }
            self.phase_out = slots;
        }
        // Fold the measured timing of this step (observables only — none of
        // this feeds the deterministic counters or the modelled clock).
        step.workers = self.nworkers() as u32;
        for (i, ns) in self.step_rank_ns.iter_mut().enumerate() {
            step.compute_ns_max_rank = step.compute_ns_max_rank.max(*ns);
            self.stats.rank_time_ns[i] += *ns;
            *ns = 0;
        }
        if let Some(pool) = &self.pool {
            for w in 0..pool.nworkers() {
                let cum = pool.busy_ns(w);
                self.stats.worker_busy_ns[w] += cum - self.worker_busy_seen[w];
                self.worker_busy_seen[w] = cum;
            }
        }
        self.stats.steps.push(step);
        self.steps_executed += 1;
        step
    }

    /// Delivers one envelope to `target` (trace + inbox push).
    fn deliver(&mut self, phase: usize, target: usize, env: Envelope<A::Msg>) {
        if let Some(trace) = &mut self.trace {
            trace.record(crate::trace::TraceEvent {
                step: self.steps_executed,
                phase,
                src: env.src,
                dst: target,
                class: env.class,
            });
        }
        self.inboxes[target].push(env);
    }

    /// Runs `phase` on every non-stalled rank, filling the preallocated
    /// `self.phase_out` slots (every slot's outbox is empty on entry — the
    /// previous epoch close drained it in place). Stalled ranks contribute
    /// an empty outbox and zero counters (they perform no work at all this
    /// phase).
    fn run_phase(&mut self, phase: usize, stalled: &[bool]) {
        let n = self.ranks.len();

        match self.mode {
            ExecMode::Sequential => {
                let mut busy = 0u64;
                for (i, ((rank, inbox), slot)) in self
                    .ranks
                    .iter_mut()
                    .zip(&self.inboxes)
                    .zip(self.phase_out.iter_mut())
                    .enumerate()
                {
                    if stalled[i] {
                        slot.1 = PhaseTotals::default();
                        continue;
                    }
                    run_one_rank(rank, phase, inbox, i, slot);
                    busy += slot.1.wall_ns;
                }
                self.stats.worker_busy_ns[0] += busy;
            }
            ExecMode::Threaded(_) => {
                let pool = self.pool.as_ref().expect("pool exists in Threaded mode");
                // Default grain: ~8 batches per worker balances steal
                // granularity (hot ranks spread) against cursor traffic
                // (tiny subdomains amortize).
                let grain = self
                    .grain
                    .unwrap_or_else(|| (n / (8 * pool.nworkers())).max(1));
                let ranks = SyncPtr(self.ranks.as_mut_ptr());
                let slots = SyncPtr(self.phase_out.as_mut_ptr());
                let inboxes = &self.inboxes;
                pool.run(n, grain, &|i| {
                    // Capture the `SyncPtr` wrappers whole (precise capture
                    // would otherwise grab the raw-pointer fields, which are
                    // not `Sync`).
                    let (ranks, slots) = (&ranks, &slots);
                    // SAFETY: the pool hands each index to exactly one
                    // worker, so `ranks[i]` and `slots[i]` are accessed
                    // exclusively; `inboxes` is only read.
                    let rank = unsafe { &mut *ranks.0.add(i) };
                    let slot = unsafe { &mut *slots.0.add(i) };
                    if stalled[i] {
                        slot.1 = PhaseTotals::default();
                        return;
                    }
                    run_one_rank(rank, phase, &inboxes[i], i, slot);
                });
            }
            ExecMode::ThreadedSpawn(nthreads) => {
                let nthreads = nthreads.min(n);
                let chunk = n.div_ceil(nthreads);
                let ranks = &mut self.ranks;
                let inboxes = &self.inboxes;
                let results = &mut self.phase_out;
                let mut chunk_busy = vec![0u64; nthreads];
                crossbeam::thread::scope(|scope| {
                    let mut rank_chunks = ranks.chunks_mut(chunk);
                    let mut inbox_chunks = inboxes.chunks(chunk);
                    let mut result_chunks = results.chunks_mut(chunk);
                    let mut busy_slots = chunk_busy.iter_mut();
                    let mut base = 0usize;
                    for _ in 0..nthreads {
                        let (Some(rc), Some(ic), Some(out), Some(busy)) = (
                            rank_chunks.next(),
                            inbox_chunks.next(),
                            result_chunks.next(),
                            busy_slots.next(),
                        ) else {
                            break;
                        };
                        let start = base;
                        base += rc.len();
                        scope.spawn(move |_| {
                            let t0 = Instant::now();
                            for (k, ((rank, inbox), slot)) in
                                rc.iter_mut().zip(ic).zip(out.iter_mut()).enumerate()
                            {
                                if stalled[start + k] {
                                    slot.1 = PhaseTotals::default();
                                    continue;
                                }
                                run_one_rank(rank, phase, inbox, start + k, slot);
                            }
                            *busy = t0.elapsed().as_nanos() as u64;
                        });
                    }
                })
                .expect("superstep worker panicked");
                for (w, b) in chunk_busy.into_iter().enumerate() {
                    self.stats.worker_busy_ns[w] += b;
                }
            }
        }
    }
}

/// Executes one rank's phase into its preallocated result slot, timing the
/// callback for the load-imbalance observables.
fn run_one_rank<A: RankAlgorithm>(
    rank: &mut A,
    phase: usize,
    inbox: &[Envelope<A::Msg>],
    i: usize,
    slot: &mut PhaseSlot<A::Msg>,
) {
    let mut ctx = PhaseCtx::with_outbox(i, std::mem::take(&mut slot.0));
    let t0 = Instant::now();
    rank.phase(phase, inbox, &mut ctx);
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let (outbox, mut totals) = ctx.into_outbox_and_totals();
    totals.wall_ns = wall_ns;
    *slot = (outbox, totals);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy algorithm on a ring: each rank holds a value; every step it puts
    /// the value to its right neighbor in phase 0 and adds what it received
    /// (visible in phase 0 of the *next* step, per the epoch rule).
    struct Ring {
        id: usize,
        n: usize,
        value: u64,
        received_this_phase: Vec<u64>,
    }

    impl RankAlgorithm for Ring {
        type Msg = u64;
        fn phases(&self) -> usize {
            1
        }
        fn phase(&mut self, _phase: usize, inbox: &[Envelope<u64>], ctx: &mut PhaseCtx<u64>) {
            self.received_this_phase = inbox.iter().map(|e| e.payload).collect();
            for e in inbox {
                self.value += e.payload;
            }
            let target = (self.id + 1) % self.n;
            ctx.put(target, CommClass::Solve, self.value, 8);
            ctx.add_flops(1);
            ctx.record_relaxations(1);
        }
    }

    fn ring(n: usize) -> Vec<Ring> {
        (0..n)
            .map(|id| Ring {
                id,
                n,
                value: id as u64 + 1,
                received_this_phase: Vec::new(),
            })
            .collect()
    }

    #[test]
    fn messages_delivered_next_phase_not_same() {
        let mut ex = Executor::new(ring(3), CostModel::default(), ExecMode::Sequential);
        let s1 = ex.step();
        // Nothing was in flight during the first step's phase 0.
        assert!(ex.ranks()[0].received_this_phase.is_empty());
        assert_eq!(s1.msgs, 3);
        let _s2 = ex.step();
        // Now each rank saw exactly the value its left neighbor sent.
        assert_eq!(ex.ranks()[1].received_this_phase, vec![1]);
        assert_eq!(ex.ranks()[0].received_this_phase, vec![3]);
    }

    #[test]
    fn sequential_and_threaded_agree() {
        let mut a = Executor::new(ring(7), CostModel::default(), ExecMode::Sequential);
        let mut b = Executor::new(ring(7), CostModel::default(), ExecMode::Threaded(3));
        for _ in 0..5 {
            a.step();
            b.step();
        }
        let va: Vec<u64> = a.ranks().iter().map(|r| r.value).collect();
        let vb: Vec<u64> = b.ranks().iter().map(|r| r.value).collect();
        assert_eq!(va, vb);
        assert_eq!(a.stats.total_msgs(), b.stats.total_msgs());
        assert_eq!(a.stats.msgs_per_rank, b.stats.msgs_per_rank);
    }

    #[test]
    fn all_modes_and_grains_agree() {
        let mut reference = Executor::new(ring(13), CostModel::default(), ExecMode::Sequential);
        for _ in 0..6 {
            reference.step();
        }
        let vref: Vec<u64> = reference.ranks().iter().map(|r| r.value).collect();
        for (mode, grain) in [
            (ExecMode::Threaded(2), None),
            (ExecMode::Threaded(4), Some(1)),
            (ExecMode::Threaded(7), Some(3)),
            (ExecMode::Threaded(32), Some(1000)),
            (ExecMode::ThreadedSpawn(3), None),
        ] {
            let mut ex = Executor::new(ring(13), CostModel::default(), mode);
            if let Some(g) = grain {
                ex.set_grain(g);
            }
            for _ in 0..6 {
                ex.step();
            }
            let v: Vec<u64> = ex.ranks().iter().map(|r| r.value).collect();
            assert_eq!(v, vref, "{mode:?} grain {grain:?}");
            assert_eq!(ex.stats.msgs_per_rank, reference.stats.msgs_per_rank);
            for (sa, sb) in reference.stats.steps.iter().zip(&ex.stats.steps) {
                assert_eq!(sa, sb, "{mode:?} grain {grain:?}");
            }
        }
    }

    #[test]
    fn timing_observables_populate() {
        for mode in [
            ExecMode::Sequential,
            ExecMode::Threaded(2),
            ExecMode::ThreadedSpawn(2),
        ] {
            let mut ex = Executor::new(ring(5), CostModel::default(), mode);
            let s = ex.step();
            assert_eq!(s.workers, ex.nworkers() as u32, "{mode:?}");
            assert!(s.compute_ns > 0, "{mode:?}: per-rank wall time measured");
            assert!(s.compute_ns_max_rank > 0, "{mode:?}");
            assert!(s.compute_ns_max_rank <= s.compute_ns, "{mode:?}");
            assert!(s.span_ns >= s.compute_ns_max_rank, "{mode:?}");
            assert!(s.imbalance(5) >= 1.0, "{mode:?}");
            assert!(
                ex.stats.rank_time_ns.iter().all(|&ns| ns > 0),
                "{mode:?}: every rank accumulated wall time"
            );
            assert!(
                ex.stats.worker_busy_ns.iter().sum::<u64>() > 0,
                "{mode:?}: workers accumulated busy time"
            );
            assert!(ex.stats.worker_utilization() > 0.0, "{mode:?}");
        }
    }

    #[test]
    fn counters_and_cost_model() {
        let model = CostModel {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.0,
            sync: 0.5,
        };
        let mut ex = Executor::new(ring(4), model, ExecMode::Sequential);
        let s = ex.step();
        assert_eq!(s.msgs, 4);
        assert_eq!(s.msgs_solve, 4);
        assert_eq!(s.msgs_residual, 0);
        assert_eq!(s.bytes, 32);
        assert_eq!(s.flops, 4);
        assert_eq!(s.active_ranks, 4);
        assert_eq!(s.relaxations, 4);
        // Each rank sends one message: max over ranks = 1 message * alpha,
        // plus the sync charge.
        assert!((s.time - 1.5).abs() < 1e-12);
        assert!((ex.stats.comm_cost() - 1.0).abs() < 1e-12);
    }

    /// Two-phase algorithm verifying that phase-1 messages arrive in
    /// phase 0 of the next step and phase-0 messages arrive in phase 1.
    struct TwoPhase {
        id: usize,
        log: Vec<(usize, Vec<u64>)>,
    }

    impl RankAlgorithm for TwoPhase {
        type Msg = u64;
        fn phases(&self) -> usize {
            2
        }
        fn phase(&mut self, phase: usize, inbox: &[Envelope<u64>], ctx: &mut PhaseCtx<u64>) {
            self.log
                .push((phase, inbox.iter().map(|e| e.payload).collect()));
            let peer = 1 - self.id;
            // Tag the message with 10*phase so the receiver can tell which
            // phase it was sent in.
            ctx.put(peer, CommClass::Residual, (10 * phase) as u64, 8);
        }
    }

    #[test]
    fn two_phase_visibility() {
        let ranks = vec![
            TwoPhase { id: 0, log: vec![] },
            TwoPhase { id: 1, log: vec![] },
        ];
        let mut ex = Executor::new(ranks, CostModel::default(), ExecMode::Sequential);
        ex.step();
        ex.step();
        let log = &ex.ranks()[0].log;
        // Step 1: phase 0 sees nothing; phase 1 sees the phase-0 put (0).
        assert_eq!(log[0], (0, vec![]));
        assert_eq!(log[1], (1, vec![0]));
        // Step 2: phase 0 sees the phase-1 put (10) of step 1.
        assert_eq!(log[2], (0, vec![10]));
        assert_eq!(log[3], (1, vec![0]));
        assert_eq!(ex.stats.total_msgs_residual(), 8);
    }

    #[test]
    fn trace_records_deliveries() {
        let mut ex = Executor::new(ring(3), CostModel::default(), ExecMode::Sequential);
        ex.enable_trace(100);
        ex.step();
        ex.step();
        let trace = ex.trace.as_ref().unwrap();
        // First step's puts are delivered at its epoch close (3 events),
        // second step likewise.
        assert_eq!(trace.len(), 6);
        let m = trace.traffic_matrix(3);
        assert_eq!(m[0][1], 2);
        assert_eq!(m[2][0], 2);
        assert_eq!(m[0][2], 0);
        assert!(trace.to_csv().contains("0,0,0,1,Solve"));
    }

    #[test]
    #[should_panic(expected = "must not put to itself")]
    fn self_put_panics() {
        struct SelfPut;
        impl RankAlgorithm for SelfPut {
            type Msg = ();
            fn phases(&self) -> usize {
                1
            }
            fn phase(&mut self, _p: usize, _i: &[Envelope<()>], ctx: &mut PhaseCtx<()>) {
                ctx.put(0, CommClass::Solve, (), 0);
            }
        }
        let mut ex = Executor::new(vec![SelfPut], CostModel::default(), ExecMode::Sequential);
        ex.step();
    }

    #[test]
    fn inbox_ordered_by_origin_rank() {
        // Every rank sends to rank 0 in one phase; rank 0 must see origins
        // in increasing order both sequentially and threaded.
        struct AllToZero {
            id: usize,
            seen: Vec<usize>,
        }
        impl RankAlgorithm for AllToZero {
            type Msg = ();
            fn phases(&self) -> usize {
                1
            }
            fn phase(&mut self, _p: usize, inbox: &[Envelope<()>], ctx: &mut PhaseCtx<()>) {
                if self.id == 0 {
                    self.seen = inbox.iter().map(|e| e.src).collect();
                } else {
                    ctx.put(0, CommClass::Solve, (), 1);
                }
            }
        }
        for mode in [ExecMode::Sequential, ExecMode::Threaded(4)] {
            let ranks: Vec<AllToZero> = (0..9).map(|id| AllToZero { id, seen: vec![] }).collect();
            let mut ex = Executor::new(ranks, CostModel::default(), mode);
            ex.step();
            ex.step();
            assert_eq!(ex.ranks()[0].seen, (1..9).collect::<Vec<_>>());
        }
    }

    #[test]
    fn drops_counted_per_class_in_stats() {
        let chaos = ChaosConfig {
            drop_rate: 1.0,
            seed: 3,
            ..ChaosConfig::none()
        };
        let mut ex =
            Executor::with_chaos(ring(3), CostModel::default(), ExecMode::Sequential, chaos);
        ex.step();
        ex.step();
        // Everything dropped: nothing ever arrives.
        assert!(ex.ranks()[1].received_this_phase.is_empty());
        assert_eq!(ex.stats.total_msgs_dropped(), 6);
        assert_eq!(ex.stats.total_faults().dropped.of(CommClass::Solve), 6);
        // Send-side accounting is unaffected by delivery faults.
        assert_eq!(ex.stats.total_msgs(), 6);
        assert_eq!(ex.stats.msgs_per_rank, vec![2, 2, 2]);
    }

    #[test]
    fn duplicates_are_delivered_twice() {
        let chaos = ChaosConfig {
            duplicate_rate: 1.0,
            seed: 3,
            ..ChaosConfig::none()
        };
        let mut ex =
            Executor::with_chaos(ring(3), CostModel::default(), ExecMode::Sequential, chaos);
        ex.step();
        ex.step();
        // Rank 1 sees its left neighbor's step-1 value twice.
        assert_eq!(ex.ranks()[1].received_this_phase, vec![1, 1]);
        assert_eq!(ex.stats.total_faults().duplicated.total(), 6);
    }

    #[test]
    fn delays_defer_delivery_by_configured_epochs() {
        let chaos = ChaosConfig {
            delay_rate: 1.0,
            max_delay_epochs: 1,
            seed: 3,
            ..ChaosConfig::none()
        };
        let mut ex =
            Executor::with_chaos(ring(3), CostModel::default(), ExecMode::Sequential, chaos);
        ex.step();
        ex.step();
        // One-epoch delay: the step-1 put (normally visible in step 2) is
        // still in flight during step 2...
        assert!(ex.ranks()[1].received_this_phase.is_empty());
        ex.step();
        // ...and lands for step 3.
        assert_eq!(ex.ranks()[1].received_this_phase, vec![1]);
        assert_eq!(ex.stats.total_faults().delayed.total(), 9);
    }

    #[test]
    fn stalled_rank_skips_compute_and_keeps_inbox() {
        let mut ex = Executor::new(ring(3), CostModel::default(), ExecMode::Sequential);
        ex.injector_mut().inject_stall(1, 2);
        let s1 = ex.step();
        assert_eq!(s1.faults.stalled_ranks, 1);
        assert_eq!(s1.relaxations, 2, "stalled rank does no work");
        assert_eq!(s1.active_ranks, 2);
        let s2 = ex.step();
        assert_eq!(s2.faults.stalled_ranks, 1);
        let s3 = ex.step();
        assert_eq!(s3.faults.stalled_ranks, 0);
        // While stalled, rank 1's inbox accumulated rank 0's puts from both
        // steps (values 1, then 1+3 after rank 0 absorbed rank 2's put);
        // nothing was lost, only late.
        assert_eq!(ex.ranks()[1].received_this_phase, vec![1, 4]);
        assert_eq!(ex.ranks()[1].value, 2 + 1 + 4);
    }

    #[test]
    fn full_chaos_identical_sequential_vs_threaded() {
        let chaos = ChaosConfig {
            drop_rate: 0.15,
            duplicate_rate: 0.15,
            delay_rate: 0.2,
            max_delay_epochs: 2,
            stall_rate: 0.1,
            stall_steps: 2,
            seed: 1234,
            ..ChaosConfig::none()
        };
        let mut a =
            Executor::with_chaos(ring(7), CostModel::default(), ExecMode::Sequential, chaos);
        let mut b =
            Executor::with_chaos(ring(7), CostModel::default(), ExecMode::Threaded(3), chaos);
        for _ in 0..12 {
            let sa = a.step();
            let sb = b.step();
            assert_eq!(sa, sb, "per-step stats must match bit-for-bit");
        }
        let va: Vec<u64> = a.ranks().iter().map(|r| r.value).collect();
        let vb: Vec<u64> = b.ranks().iter().map(|r| r.value).collect();
        assert_eq!(va, vb);
        assert_eq!(a.stats.msgs_per_rank, b.stats.msgs_per_rank);
        let fa = a.stats.total_faults();
        assert!(
            fa.dropped.total() > 0,
            "chaos should have dropped something"
        );
        assert!(fa.duplicated.total() > 0);
        assert!(fa.delayed.total() > 0);
        assert!(fa.stalled_ranks > 0);
    }

    #[test]
    fn zero_rate_chaos_identical_to_no_chaos() {
        let mut a = Executor::new(ring(5), CostModel::default(), ExecMode::Sequential);
        let mut b = Executor::with_chaos(
            ring(5),
            CostModel::default(),
            ExecMode::Sequential,
            ChaosConfig {
                seed: 99,
                ..ChaosConfig::none()
            },
        );
        for _ in 0..6 {
            assert_eq!(a.step(), b.step());
        }
        let va: Vec<u64> = a.ranks().iter().map(|r| r.value).collect();
        let vb: Vec<u64> = b.ranks().iter().map(|r| r.value).collect();
        assert_eq!(va, vb);
    }
}
