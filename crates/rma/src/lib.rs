//! A simulated one-sided RMA substrate.
//!
//! The paper implements its solvers with MPI-3 one-sided semantics: each
//! process exposes a *memory window*; during an *access epoch*
//! (`MPI_Win_post/start … MPI_Win_complete/wait`) origin processes `MPI_Put`
//! data into target windows, and the data is guaranteed visible only after
//! the epoch closes. Algorithms 1–3 of the paper are therefore structured as
//! *parallel steps*, each containing one or two communication epochs with
//! computation between them.
//!
//! This crate reproduces those semantics exactly, without real MPI:
//!
//! * a [`RankAlgorithm`] implements the per-process program as a sequence of
//!   *phases* per parallel step; puts issued during phase `k` are delivered
//!   into target inboxes *after* phase `k` completes (the epoch close), and
//!   are read by targets in phase `k + 1` — never earlier, which is the
//!   one-sided visibility rule;
//! * the [`Executor`] runs all ranks phase-by-phase, either sequentially or
//!   on a crossbeam thread pool ([`ExecMode`]); both modes produce
//!   bit-identical results because ranks only interact through the epoch
//!   boundary;
//! * every put is counted, per rank and per [`CommClass`] — message counts
//!   are the paper's primary communication metric ("total number of
//!   messages sent by all processes divided by the number of processes")
//!   and Table 3 splits them into solve vs. explicit-residual classes;
//! * wall-clock time is *modelled* with an α–β–γ [`CostModel`] (latency per
//!   message, inverse bandwidth per byte, time per flop, plus a per-epoch
//!   synchronization charge), since the simulator is not a supercomputer.
//!   Per phase the charge is `max` over ranks — ranks progress together
//!   through epochs, so the slowest rank gates each phase.

// `unwrap()` is banned in non-test code (clippy `disallowed-methods`, see
// clippy.toml): use `expect` naming the invariant, or propagate the error.
#![cfg_attr(not(test), deny(clippy::disallowed_methods))]

pub mod async_exec;
pub mod executor;
pub mod fault;
pub(crate) mod pool;
pub mod redundancy;
pub mod stats;
pub mod trace;

pub use async_exec::{AsyncExecutor, AsyncOptions, RunStepsResult};
pub use executor::{CloseMode, Envelope, ExecMode, Executor, PhaseCtx, RankAlgorithm};
pub use fault::{ChaosConfig, Fate, FaultInjector};
pub use pool::{PoolStats, SharedPool};
pub use redundancy::{CodedMsg, RedundantHost};
pub use stats::{ClassCounts, CommClass, CostModel, FaultStats, MonitorStats, RunStats, StepStats};
pub use trace::{Trace, TraceEvent};
