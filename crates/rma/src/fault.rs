//! Deterministic fault injection for the RMA substrate.
//!
//! Real one-sided MPI guarantees that a put is visible once the epoch
//! closes; every solver in this workspace *relies* on that (lost solve
//! updates corrupt the receiver's maintained residual, lost explicit
//! residual updates disable Distributed Southwell's deadlock avoidance).
//! Chaos mode makes those failure modes observable and testable by
//! perturbing delivery at the epoch boundary:
//!
//! * **drops** — the put never lands;
//! * **duplicates** — the put lands twice (models a retried RMA op whose
//!   first attempt actually succeeded);
//! * **delays** — the put lands `k ≥ 1` epochs late, reordered behind
//!   younger traffic from the same origin;
//! * **stalls** — a rank skips its compute phases for `k` consecutive
//!   parallel steps (an OS-jitter / straggler model). Its inbox keeps
//!   accumulating while it is stalled, so nothing is lost — only late.
//!
//! All decisions are drawn from seeded generators owned by the executor
//! and consulted only in the serialized epoch-close section, so a given
//! `ChaosConfig` produces the *same* fault pattern under
//! `ExecMode::Sequential` and `ExecMode::Threaded(_)`.
//!
//! Message-fate draws and stall draws come from two independent streams:
//! changing the message volume (e.g. by switching solvers) does not change
//! which ranks stall, and vice versa.

use crate::stats::CommClass;

/// Fault-injection configuration. All probabilities are per-message (or
/// per-rank-step for stalls) and independent.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Probability that an eligible message is dropped, in `[0, 1]`.
    pub drop_rate: f64,
    /// Restrict dropping to one message class (`None` = any class).
    pub drop_class: Option<CommClass>,
    /// Probability that a delivered message lands twice, in `[0, 1]`.
    pub duplicate_rate: f64,
    /// Probability that a delivered message is deferred, in `[0, 1]`.
    pub delay_rate: f64,
    /// Maximum deferral in epochs; each delayed message draws uniformly
    /// from `1..=max_delay_epochs`. Must be ≥ 1 when `delay_rate > 0`.
    pub max_delay_epochs: usize,
    /// Per-rank, per-parallel-step probability that an idle rank begins a
    /// stall, in `[0, 1]`.
    pub stall_rate: f64,
    /// Length of each stall in parallel steps. Must be ≥ 1 when
    /// `stall_rate > 0`.
    pub stall_steps: usize,
    /// Seed of the deterministic fault pattern.
    pub seed: u64,
}

impl ChaosConfig {
    /// No faults.
    pub fn none() -> Self {
        ChaosConfig {
            drop_rate: 0.0,
            drop_class: None,
            duplicate_rate: 0.0,
            delay_rate: 0.0,
            max_delay_epochs: 1,
            stall_rate: 0.0,
            stall_steps: 1,
            seed: 0,
        }
    }

    /// Any message-level fault configured (drop / duplicate / delay)?
    pub fn message_faults_active(&self) -> bool {
        self.drop_rate > 0.0 || self.duplicate_rate > 0.0 || self.delay_rate > 0.0
    }

    /// Any stall fault configured?
    pub fn stalls_active(&self) -> bool {
        self.stall_rate > 0.0
    }

    /// Any fault configured at all?
    pub fn is_active(&self) -> bool {
        self.message_faults_active() || self.stalls_active()
    }

    /// Checks ranges; returns a human-readable error for bad configs.
    pub fn validate(&self) -> Result<(), String> {
        let prob = |name: &str, v: f64| {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{name} must be a probability in [0, 1], got {v}"))
            }
        };
        prob("drop_rate", self.drop_rate)?;
        prob("duplicate_rate", self.duplicate_rate)?;
        prob("delay_rate", self.delay_rate)?;
        prob("stall_rate", self.stall_rate)?;
        if self.delay_rate > 0.0 && self.max_delay_epochs == 0 {
            return Err("delay_rate > 0 requires max_delay_epochs >= 1".into());
        }
        if self.stall_rate > 0.0 && self.stall_steps == 0 {
            return Err("stall_rate > 0 requires stall_steps >= 1".into());
        }
        Ok(())
    }
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// A tiny deterministic PRNG (xorshift64*) so the substrate does not need
/// a rand dependency for fault injection.
#[derive(Debug, Clone)]
pub(crate) struct XorShift(u64);

impl XorShift {
    pub(crate) fn new(seed: u64) -> Self {
        XorShift(seed.wrapping_mul(0x9e3779b97f4a7c15) | 1)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw from `1..=max`.
    pub(crate) fn next_in_1_to(&mut self, max: usize) -> usize {
        1 + (self.next_u64() % max as u64) as usize
    }
}

/// The decided fate of one about-to-be-delivered message.
///
/// Drops win over everything. A surviving message may be both delayed and
/// duplicated: the duplicate lands *now* while the original lands late,
/// which models a retransmission racing a slow original — the sharpest
/// combination of reordering and duplication a receiver can face.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fate {
    /// The message is discarded (no delivery at all, no duplicate).
    pub dropped: bool,
    /// An extra copy is delivered at the current epoch close.
    pub duplicated: bool,
    /// Epochs the original delivery is deferred by (0 = on time).
    pub delay: usize,
}

impl Fate {
    /// Normal, exactly-once, on-time delivery.
    pub const DELIVER: Fate = Fate {
        dropped: false,
        duplicated: false,
        delay: 0,
    };
}

/// Draws fault decisions for an executor. Construct once per run; consult
/// only from the serialized epoch-close section (the injector is
/// deliberately not `Sync` — sharing it across rank threads would make the
/// fault pattern schedule-dependent).
#[derive(Debug)]
pub struct FaultInjector {
    cfg: ChaosConfig,
    /// Stream for per-message fate draws.
    msg_rng: XorShift,
    /// Independent stream for per-rank stall draws.
    stall_rng: XorShift,
    /// Remaining stall steps per rank (0 = running).
    stall_left: Vec<usize>,
}

impl FaultInjector {
    /// Creates an injector for `nranks` ranks.
    ///
    /// # Panics
    /// If `cfg` fails [`ChaosConfig::validate`].
    pub fn new(cfg: ChaosConfig, nranks: usize) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid ChaosConfig: {e}");
        }
        FaultInjector {
            cfg,
            msg_rng: XorShift::new(cfg.seed),
            // Decorrelate the two streams with a fixed offset on the seed.
            stall_rng: XorShift::new(cfg.seed ^ 0xD5A6_1F2C_93B4_7E81),
            stall_left: vec![0; nranks],
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// Decides the fate of one message of class `class`.
    ///
    /// A fault type whose rate is zero consumes no randomness, so enabling
    /// one fault never perturbs the pattern of another, and a fully zero
    /// config is bit-identical to no injector at all.
    pub fn fate(&mut self, class: CommClass) -> Fate {
        let mut fate = Fate::DELIVER;
        if self.cfg.drop_rate > 0.0
            && self.cfg.drop_class.is_none_or(|c| c == class)
            && self.msg_rng.next_f64() < self.cfg.drop_rate
        {
            fate.dropped = true;
            return fate;
        }
        if self.cfg.duplicate_rate > 0.0 && self.msg_rng.next_f64() < self.cfg.duplicate_rate {
            fate.duplicated = true;
        }
        if self.cfg.delay_rate > 0.0 && self.msg_rng.next_f64() < self.cfg.delay_rate {
            fate.delay = self.msg_rng.next_in_1_to(self.cfg.max_delay_epochs);
        }
        fate
    }

    /// Advances the stall state by one parallel step and returns, per rank,
    /// whether that rank is stalled for the *whole* upcoming step. Draws
    /// happen in rank order from the stall stream only.
    pub fn step_stalls(&mut self) -> Vec<bool> {
        let n = self.stall_left.len();
        let mut stalled = vec![false; n];
        for (r, flag) in stalled.iter_mut().enumerate() {
            if self.stall_left[r] > 0 {
                self.stall_left[r] -= 1;
                *flag = true;
            } else if self.cfg.stall_rate > 0.0 && self.stall_rng.next_f64() < self.cfg.stall_rate {
                // stall_steps >= 1 (validated); this step plus k-1 more.
                self.stall_left[r] = self.cfg.stall_steps - 1;
                *flag = true;
            }
        }
        stalled
    }

    /// Forces rank `r` to stall for the next `steps` parallel steps
    /// (counting from the next `step_stalls` call). Lets tests and
    /// experiments inject targeted stragglers on top of the random model.
    pub fn inject_stall(&mut self, r: usize, steps: usize) {
        self.stall_left[r] = self.stall_left[r].max(steps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_config_draws_nothing_and_delivers() {
        let mut inj = FaultInjector::new(ChaosConfig::none(), 4);
        let before = format!("{:?}", inj.msg_rng);
        for _ in 0..100 {
            assert_eq!(inj.fate(CommClass::Solve), Fate::DELIVER);
        }
        assert_eq!(format!("{:?}", inj.msg_rng), before, "no RNG consumed");
        assert_eq!(inj.step_stalls(), vec![false; 4]);
    }

    #[test]
    fn fates_are_deterministic_per_seed() {
        let cfg = ChaosConfig {
            drop_rate: 0.2,
            duplicate_rate: 0.2,
            delay_rate: 0.2,
            max_delay_epochs: 3,
            stall_rate: 0.1,
            stall_steps: 2,
            seed: 42,
            ..ChaosConfig::none()
        };
        let run = |cfg: ChaosConfig| {
            let mut inj = FaultInjector::new(cfg, 8);
            let fates: Vec<Fate> = (0..200).map(|_| inj.fate(CommClass::Solve)).collect();
            let stalls: Vec<Vec<bool>> = (0..50).map(|_| inj.step_stalls()).collect();
            (fates, stalls)
        };
        assert_eq!(run(cfg), run(cfg));
        let mut other = cfg;
        other.seed = 43;
        assert_ne!(run(cfg).0, run(other).0);
    }

    #[test]
    fn rates_roughly_respected() {
        let cfg = ChaosConfig {
            drop_rate: 0.3,
            delay_rate: 0.5,
            max_delay_epochs: 4,
            seed: 7,
            ..ChaosConfig::none()
        };
        let mut inj = FaultInjector::new(cfg, 1);
        let fates: Vec<Fate> = (0..10_000).map(|_| inj.fate(CommClass::Residual)).collect();
        let drops = fates.iter().filter(|f| f.dropped).count() as f64 / 10_000.0;
        assert!((drops - 0.3).abs() < 0.03, "drop rate {drops}");
        let delayed: Vec<usize> = fates
            .iter()
            .filter(|f| !f.dropped && f.delay > 0)
            .map(|f| f.delay)
            .collect();
        assert!(delayed.iter().all(|&d| (1..=4).contains(&d)));
        // Dropped messages never carry secondary faults.
        assert!(fates
            .iter()
            .filter(|f| f.dropped)
            .all(|f| !f.duplicated && f.delay == 0));
    }

    #[test]
    fn drop_class_filter_respected() {
        let cfg = ChaosConfig {
            drop_rate: 1.0,
            drop_class: Some(CommClass::Residual),
            seed: 1,
            ..ChaosConfig::none()
        };
        let mut inj = FaultInjector::new(cfg, 1);
        assert!(!inj.fate(CommClass::Solve).dropped);
        assert!(inj.fate(CommClass::Residual).dropped);
        assert!(!inj.fate(CommClass::Recovery).dropped);
    }

    #[test]
    fn stalls_last_configured_steps() {
        let cfg = ChaosConfig {
            stall_rate: 1.0,
            stall_steps: 3,
            seed: 5,
            ..ChaosConfig::none()
        };
        let mut inj = FaultInjector::new(cfg, 2);
        // With rate 1.0 every rank stalls immediately and, because re-draws
        // happen as soon as the stall expires, stays stalled forever.
        for _ in 0..5 {
            assert_eq!(inj.step_stalls(), vec![true, true]);
        }
    }

    #[test]
    fn injected_stall_expires() {
        let mut inj = FaultInjector::new(ChaosConfig::none(), 3);
        inj.inject_stall(1, 2);
        assert_eq!(inj.step_stalls(), vec![false, true, false]);
        assert_eq!(inj.step_stalls(), vec![false, true, false]);
        assert_eq!(inj.step_stalls(), vec![false, false, false]);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ChaosConfig {
            drop_rate: 1.5,
            ..ChaosConfig::none()
        }
        .validate()
        .is_err());
        assert!(ChaosConfig {
            delay_rate: 0.1,
            max_delay_epochs: 0,
            ..ChaosConfig::none()
        }
        .validate()
        .is_err());
        assert!(ChaosConfig {
            stall_rate: 0.1,
            stall_steps: 0,
            ..ChaosConfig::none()
        }
        .validate()
        .is_err());
    }
}
