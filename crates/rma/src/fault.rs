//! Deterministic fault injection for the RMA substrate.
//!
//! Real one-sided MPI guarantees that a put is visible once the epoch
//! closes; every solver in this workspace *relies* on that (lost solve
//! updates corrupt the receiver's maintained residual, lost explicit
//! residual updates disable Distributed Southwell's deadlock avoidance).
//! Chaos mode makes those failure modes observable and testable by
//! perturbing delivery at the epoch boundary:
//!
//! * **drops** — the put never lands;
//! * **duplicates** — the put lands twice (models a retried RMA op whose
//!   first attempt actually succeeded);
//! * **delays** — the put lands `k ≥ 1` epochs late, reordered behind
//!   younger traffic from the same origin;
//! * **stalls** — a rank skips its compute phases for `k` consecutive
//!   parallel steps (an OS-jitter / straggler model). Its inbox keeps
//!   accumulating while it is stalled, so nothing is lost — only late.
//!
//! Message fates are **counter-based**: the draw for a message is a pure
//! hash of `(seed, epoch, origin, target, index, class)`, where `index`
//! numbers the puts an origin issued to that target within the epoch. A
//! fate therefore never depends on how many other messages exist or in
//! what order they are examined, so the epoch close may compute fates
//! concurrently — target-major, origin-major, chunked across a worker
//! pool — and a given `ChaosConfig` produces the *same* fault pattern
//! under `ExecMode::Sequential` and `ExecMode::Threaded(_)` by
//! construction. Stall draws come from an independent sequential stream
//! (drawn once per step in rank order, which is already order-fixed):
//! changing the message volume (e.g. by switching solvers) does not
//! change which ranks stall, and vice versa.

use crate::stats::CommClass;

/// Fault-injection configuration. All probabilities are per-message (or
/// per-rank-step for stalls) and independent.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Probability that an eligible message is dropped, in `[0, 1]`.
    pub drop_rate: f64,
    /// Restrict dropping to one message class (`None` = any class).
    pub drop_class: Option<CommClass>,
    /// Probability that a delivered message lands twice, in `[0, 1]`.
    pub duplicate_rate: f64,
    /// Probability that a delivered message is deferred, in `[0, 1]`.
    pub delay_rate: f64,
    /// Maximum deferral in epochs; each delayed message draws uniformly
    /// from `1..=max_delay_epochs`. Must be ≥ 1 when `delay_rate > 0`.
    pub max_delay_epochs: usize,
    /// Per-rank, per-parallel-step probability that an idle rank begins a
    /// stall, in `[0, 1]`.
    pub stall_rate: f64,
    /// Length of each stall in parallel steps. Must be ≥ 1 when
    /// `stall_rate > 0`.
    pub stall_steps: usize,
    /// Seed of the deterministic fault pattern.
    pub seed: u64,
}

impl ChaosConfig {
    /// No faults.
    pub fn none() -> Self {
        ChaosConfig {
            drop_rate: 0.0,
            drop_class: None,
            duplicate_rate: 0.0,
            delay_rate: 0.0,
            max_delay_epochs: 1,
            stall_rate: 0.0,
            stall_steps: 1,
            seed: 0,
        }
    }

    /// Any message-level fault configured (drop / duplicate / delay)?
    pub fn message_faults_active(&self) -> bool {
        self.drop_rate > 0.0 || self.duplicate_rate > 0.0 || self.delay_rate > 0.0
    }

    /// Any stall fault configured?
    pub fn stalls_active(&self) -> bool {
        self.stall_rate > 0.0
    }

    /// Any fault configured at all?
    pub fn is_active(&self) -> bool {
        self.message_faults_active() || self.stalls_active()
    }

    /// Checks ranges; returns a human-readable error for bad configs.
    pub fn validate(&self) -> Result<(), String> {
        let prob = |name: &str, v: f64| {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{name} must be a probability in [0, 1], got {v}"))
            }
        };
        prob("drop_rate", self.drop_rate)?;
        prob("duplicate_rate", self.duplicate_rate)?;
        prob("delay_rate", self.delay_rate)?;
        prob("stall_rate", self.stall_rate)?;
        if self.delay_rate > 0.0 && self.max_delay_epochs == 0 {
            return Err("delay_rate > 0 requires max_delay_epochs >= 1".into());
        }
        if self.stall_rate > 0.0 && self.stall_steps == 0 {
            return Err("stall_rate > 0 requires stall_steps >= 1".into());
        }
        Ok(())
    }
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self::none()
    }
}

/// A tiny deterministic PRNG (xorshift64*) so the substrate does not need
/// a rand dependency for fault injection.
#[derive(Debug, Clone)]
pub(crate) struct XorShift(u64);

impl XorShift {
    pub(crate) fn new(seed: u64) -> Self {
        XorShift(seed.wrapping_mul(0x9e3779b97f4a7c15) | 1)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw from `1..=max`.
    #[allow(dead_code)]
    pub(crate) fn next_in_1_to(&mut self, max: usize) -> usize {
        1 + (self.next_u64() % max as u64) as usize
    }
}

/// The splitmix64 finalizer: a full-avalanche bijection on `u64`, used to
/// turn a structured key into an independent-looking draw.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The decided fate of one about-to-be-delivered message.
///
/// Drops win over everything. A surviving message may be both delayed and
/// duplicated: the duplicate lands *now* while the original lands late,
/// which models a retransmission racing a slow original — the sharpest
/// combination of reordering and duplication a receiver can face.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fate {
    /// The message is discarded (no delivery at all, no duplicate).
    pub dropped: bool,
    /// An extra copy is delivered at the current epoch close.
    pub duplicated: bool,
    /// Epochs the original delivery is deferred by (0 = on time).
    pub delay: usize,
}

impl Fate {
    /// Normal, exactly-once, on-time delivery.
    pub const DELIVER: Fate = Fate {
        dropped: false,
        duplicated: false,
        delay: 0,
    };
}

/// Draws fault decisions for an executor. Construct once per run.
///
/// Message fates ([`FaultInjector::fate_at`]) are pure functions of their
/// key, so they may be evaluated from any thread in any order. Stall
/// state ([`FaultInjector::step_stalls`]) is sequential and advances once
/// per parallel step on the coordinating thread.
#[derive(Debug)]
pub struct FaultInjector {
    cfg: ChaosConfig,
    /// Pre-mixed seed for the counter-based message-fate hash.
    msg_key: u64,
    /// Independent stream for per-rank stall draws.
    stall_rng: XorShift,
    /// Remaining stall steps per rank (0 = running).
    stall_left: Vec<usize>,
}

impl FaultInjector {
    /// Creates an injector for `nranks` ranks.
    ///
    /// # Panics
    /// If `cfg` fails [`ChaosConfig::validate`].
    pub fn new(cfg: ChaosConfig, nranks: usize) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid ChaosConfig: {e}");
        }
        FaultInjector {
            cfg,
            msg_key: mix64(cfg.seed ^ 0x9e37_79b9_7f4a_7c15),
            // Decorrelate the two streams with a fixed offset on the seed.
            stall_rng: XorShift::new(cfg.seed ^ 0xD5A6_1F2C_93B4_7E81),
            stall_left: vec![0; nranks],
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// One uniform `[0, 1)` draw for `lane` of the keyed message. Each
    /// fault type owns a fixed lane, so its draw is independent of which
    /// other fault types are configured.
    #[inline]
    fn draw(
        &self,
        epoch: u64,
        origin: u32,
        target: u32,
        index: u32,
        class: CommClass,
        lane: u8,
    ) -> u64 {
        let h = self.msg_key ^ mix64(epoch);
        let h = mix64(h ^ (((origin as u64) << 32) | target as u64));
        mix64(h ^ (((index as u64) << 16) | ((class as u8 as u64) << 8) | lane as u64))
    }

    #[inline]
    fn draw_f64(
        &self,
        epoch: u64,
        origin: u32,
        target: u32,
        index: u32,
        class: CommClass,
        lane: u8,
    ) -> f64 {
        (self.draw(epoch, origin, target, index, class, lane) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decides the fate of one message, keyed on its delivery coordinates:
    /// the global `epoch` being closed, the `origin` and `target` ranks,
    /// the `index` of the message among the origin's puts to that target
    /// within the epoch, and its `class`.
    ///
    /// The decision is a pure hash of the key — no stream state — so it is
    /// independent of evaluation order and thread, which is what lets the
    /// epoch close route messages in parallel while reproducing the exact
    /// same fault pattern as a serial close. Each fault type draws from
    /// its own lane of the hash, so enabling one fault never perturbs the
    /// pattern of another, and a fault type whose rate is zero is never
    /// even evaluated.
    pub fn fate_at(
        &self,
        epoch: u64,
        origin: u32,
        target: u32,
        index: u32,
        class: CommClass,
    ) -> Fate {
        let mut fate = Fate::DELIVER;
        if self.cfg.drop_rate > 0.0
            && self.cfg.drop_class.is_none_or(|c| c == class)
            && self.draw_f64(epoch, origin, target, index, class, 0) < self.cfg.drop_rate
        {
            fate.dropped = true;
            return fate;
        }
        if self.cfg.duplicate_rate > 0.0
            && self.draw_f64(epoch, origin, target, index, class, 1) < self.cfg.duplicate_rate
        {
            fate.duplicated = true;
        }
        if self.cfg.delay_rate > 0.0
            && self.draw_f64(epoch, origin, target, index, class, 2) < self.cfg.delay_rate
        {
            fate.delay = 1
                + (self.draw(epoch, origin, target, index, class, 3)
                    % self.cfg.max_delay_epochs as u64) as usize;
        }
        fate
    }

    /// Advances the stall state by one parallel step and returns, per rank,
    /// whether that rank is stalled for the *whole* upcoming step. Draws
    /// happen in rank order from the stall stream only.
    pub fn step_stalls(&mut self) -> Vec<bool> {
        let n = self.stall_left.len();
        let mut stalled = vec![false; n];
        for (r, flag) in stalled.iter_mut().enumerate() {
            if self.stall_left[r] > 0 {
                self.stall_left[r] -= 1;
                *flag = true;
            } else if self.cfg.stall_rate > 0.0 && self.stall_rng.next_f64() < self.cfg.stall_rate {
                // stall_steps >= 1 (validated); this step plus k-1 more.
                self.stall_left[r] = self.cfg.stall_steps - 1;
                *flag = true;
            }
        }
        stalled
    }

    /// Forces rank `r` to stall for the next `steps` parallel steps
    /// (counting from the next `step_stalls` call). Lets tests and
    /// experiments inject targeted stragglers on top of the random model.
    pub fn inject_stall(&mut self, r: usize, steps: usize) {
        self.stall_left[r] = self.stall_left[r].max(steps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Enumerates fates over a small grid of delivery coordinates.
    fn fate_grid(inj: &FaultInjector) -> Vec<Fate> {
        let mut fates = Vec::new();
        for epoch in 0..25u64 {
            for origin in 0..4u32 {
                for target in 0..4u32 {
                    for index in 0..2u32 {
                        fates.push(inj.fate_at(epoch, origin, target, index, CommClass::Solve));
                    }
                }
            }
        }
        fates
    }

    #[test]
    fn zero_config_delivers_everything() {
        let mut inj = FaultInjector::new(ChaosConfig::none(), 4);
        assert!(fate_grid(&inj).iter().all(|&f| f == Fate::DELIVER));
        assert_eq!(inj.step_stalls(), vec![false; 4]);
    }

    #[test]
    fn fates_are_deterministic_per_seed_and_order_independent() {
        let cfg = ChaosConfig {
            drop_rate: 0.2,
            duplicate_rate: 0.2,
            delay_rate: 0.2,
            max_delay_epochs: 3,
            stall_rate: 0.1,
            stall_steps: 2,
            seed: 42,
            ..ChaosConfig::none()
        };
        let inj = FaultInjector::new(cfg, 8);
        assert_eq!(fate_grid(&inj), fate_grid(&inj), "pure function of the key");
        // Evaluating a fate repeatedly or in any order changes nothing:
        // spot-check one key before and after a full sweep.
        let probe = inj.fate_at(7, 3, 1, 0, CommClass::Solve);
        let _ = fate_grid(&inj);
        assert_eq!(probe, inj.fate_at(7, 3, 1, 0, CommClass::Solve));
        let other = FaultInjector::new(ChaosConfig { seed: 43, ..cfg }, 8);
        assert_ne!(
            fate_grid(&inj),
            fate_grid(&other),
            "seed changes the pattern"
        );
        let stalls = |cfg: ChaosConfig| {
            let mut inj = FaultInjector::new(cfg, 8);
            (0..50).map(|_| inj.step_stalls()).collect::<Vec<_>>()
        };
        assert_eq!(stalls(cfg), stalls(cfg));
    }

    #[test]
    fn rates_roughly_respected() {
        let cfg = ChaosConfig {
            drop_rate: 0.3,
            delay_rate: 0.5,
            max_delay_epochs: 4,
            seed: 7,
            ..ChaosConfig::none()
        };
        let inj = FaultInjector::new(cfg, 1);
        let fates: Vec<Fate> = (0..10_000u64)
            .map(|k| {
                inj.fate_at(
                    k / 100,
                    (k % 100 / 10) as u32,
                    (k % 10) as u32,
                    0,
                    CommClass::Residual,
                )
            })
            .collect();
        let drops = fates.iter().filter(|f| f.dropped).count() as f64 / 10_000.0;
        assert!((drops - 0.3).abs() < 0.03, "drop rate {drops}");
        let delayed: Vec<usize> = fates
            .iter()
            .filter(|f| !f.dropped && f.delay > 0)
            .map(|f| f.delay)
            .collect();
        assert!(delayed.iter().all(|&d| (1..=4).contains(&d)));
        assert!(!delayed.is_empty());
        // Dropped messages never carry secondary faults.
        assert!(fates
            .iter()
            .filter(|f| f.dropped)
            .all(|f| !f.duplicated && f.delay == 0));
    }

    #[test]
    fn lanes_are_independent_across_fault_types() {
        // Same seed, same keys: enabling drops must not change which
        // messages get duplicated (each fault type has its own hash lane).
        let dup_only = FaultInjector::new(
            ChaosConfig {
                duplicate_rate: 0.3,
                seed: 11,
                ..ChaosConfig::none()
            },
            1,
        );
        let dup_and_drop = FaultInjector::new(
            ChaosConfig {
                drop_rate: 0.5,
                duplicate_rate: 0.3,
                seed: 11,
                ..ChaosConfig::none()
            },
            1,
        );
        for epoch in 0..500u64 {
            let a = dup_only.fate_at(epoch, 0, 1, 0, CommClass::Solve);
            let b = dup_and_drop.fate_at(epoch, 0, 1, 0, CommClass::Solve);
            if !b.dropped {
                assert_eq!(a.duplicated, b.duplicated, "epoch {epoch}");
            }
        }
    }

    #[test]
    fn drop_class_filter_respected() {
        let cfg = ChaosConfig {
            drop_rate: 1.0,
            drop_class: Some(CommClass::Residual),
            seed: 1,
            ..ChaosConfig::none()
        };
        let inj = FaultInjector::new(cfg, 1);
        assert!(!inj.fate_at(0, 0, 1, 0, CommClass::Solve).dropped);
        assert!(inj.fate_at(0, 0, 1, 0, CommClass::Residual).dropped);
        assert!(!inj.fate_at(0, 0, 1, 0, CommClass::Recovery).dropped);
    }

    #[test]
    fn stalls_last_configured_steps() {
        let cfg = ChaosConfig {
            stall_rate: 1.0,
            stall_steps: 3,
            seed: 5,
            ..ChaosConfig::none()
        };
        let mut inj = FaultInjector::new(cfg, 2);
        // With rate 1.0 every rank stalls immediately and, because re-draws
        // happen as soon as the stall expires, stays stalled forever.
        for _ in 0..5 {
            assert_eq!(inj.step_stalls(), vec![true, true]);
        }
    }

    #[test]
    fn injected_stall_expires() {
        let mut inj = FaultInjector::new(ChaosConfig::none(), 3);
        inj.inject_stall(1, 2);
        assert_eq!(inj.step_stalls(), vec![false, true, false]);
        assert_eq!(inj.step_stalls(), vec![false, true, false]);
        assert_eq!(inj.step_stalls(), vec![false, false, false]);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ChaosConfig {
            drop_rate: 1.5,
            ..ChaosConfig::none()
        }
        .validate()
        .is_err());
        assert!(ChaosConfig {
            delay_rate: 0.1,
            max_delay_epochs: 0,
            ..ChaosConfig::none()
        }
        .validate()
        .is_err());
        assert!(ChaosConfig {
            stall_rate: 0.1,
            stall_steps: 0,
            ..ChaosConfig::none()
        }
        .validate()
        .is_err());
    }
}
