//! Message tracing: a bounded event log of every delivered put, for
//! debugging protocols and for visualizing communication patterns (who
//! talks to whom, in which phase, with what class).

use crate::stats::CommClass;

/// One delivered message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Parallel step index (0-based).
    pub step: usize,
    /// Phase within the step.
    pub phase: usize,
    /// Origin rank.
    pub src: usize,
    /// Target rank.
    pub dst: usize,
    /// Message class.
    pub class: CommClass,
}

/// A bounded in-memory message log.
#[derive(Debug, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    /// Events that arrived after the log filled up.
    pub overflowed: u64,
}

impl Trace {
    /// Creates a trace keeping at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            overflowed: 0,
        }
    }

    /// Records one event (drops it if the log is full).
    pub fn record(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.overflowed += 1;
        }
    }

    /// All recorded events, in delivery order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The dense `P × P` message-count matrix (`[src][dst]`) over the
    /// recorded events. `P` is `nranks` widened to cover every rank that
    /// actually appears in the log, so a caller passing a stale or
    /// too-small rank count gets a larger matrix instead of a panic.
    pub fn traffic_matrix(&self, nranks: usize) -> Vec<Vec<u64>> {
        let p = self
            .events
            .iter()
            .map(|ev| ev.src.max(ev.dst) + 1)
            .max()
            .unwrap_or(0)
            .max(nranks);
        let mut m = vec![vec![0u64; p]; p];
        for ev in &self.events {
            m[ev.src][ev.dst] += 1;
        }
        m
    }

    /// Events of one class.
    pub fn count_class(&self, class: CommClass) -> usize {
        self.events.iter().filter(|e| e.class == class).count()
    }

    /// Renders the log as CSV (`step,phase,src,dst,class`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("step,phase,src,dst,class\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{},{},{:?}\n",
                e.step, e.phase, e.src, e.dst, e.class
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(step: usize, src: usize, dst: usize, class: CommClass) -> TraceEvent {
        TraceEvent {
            step,
            phase: 0,
            src,
            dst,
            class,
        }
    }

    #[test]
    fn records_until_capacity() {
        let mut t = Trace::new(2);
        t.record(ev(0, 0, 1, CommClass::Solve));
        t.record(ev(0, 1, 0, CommClass::Solve));
        t.record(ev(1, 0, 1, CommClass::Residual));
        assert_eq!(t.len(), 2);
        assert_eq!(t.overflowed, 1);
    }

    #[test]
    fn traffic_matrix_counts() {
        let mut t = Trace::new(100);
        t.record(ev(0, 0, 1, CommClass::Solve));
        t.record(ev(0, 0, 1, CommClass::Solve));
        t.record(ev(0, 1, 2, CommClass::Residual));
        let m = t.traffic_matrix(3);
        assert_eq!(m[0][1], 2);
        assert_eq!(m[1][2], 1);
        assert_eq!(m[2][0], 0);
        assert_eq!(t.count_class(CommClass::Residual), 1);
    }

    #[test]
    fn traffic_matrix_widens_for_out_of_range_ranks() {
        // Regression: an event whose src/dst >= nranks used to panic with
        // an out-of-bounds index; the matrix must widen instead.
        let mut t = Trace::new(100);
        t.record(ev(0, 0, 1, CommClass::Solve));
        t.record(ev(0, 5, 2, CommClass::Solve));
        t.record(ev(0, 2, 7, CommClass::Residual));
        let m = t.traffic_matrix(3);
        assert_eq!(m.len(), 8, "widened to max rank seen + 1");
        assert!(m.iter().all(|row| row.len() == 8));
        assert_eq!(m[0][1], 1);
        assert_eq!(m[5][2], 1);
        assert_eq!(m[2][7], 1);
        // An empty trace still honors the requested size.
        assert_eq!(Trace::new(4).traffic_matrix(3).len(), 3);
    }

    #[test]
    fn csv_shape() {
        let mut t = Trace::new(10);
        t.record(ev(3, 1, 2, CommClass::Solve));
        let csv = t.to_csv();
        assert!(csv.starts_with("step,phase,src,dst,class\n"));
        assert!(csv.contains("3,0,1,2,Solve"));
    }
}
