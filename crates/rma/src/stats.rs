//! Communication statistics and the modelled time.

/// Classification of a message, mirroring Table 3 of the paper (plus the
/// recovery class this reproduction adds for its self-healing protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommClass {
    /// Updates sent to neighbors after a local subdomain solve
    /// ("Solve comm" in Table 3); piggybacked residual norms ride free.
    Solve,
    /// Explicit residual-norm updates ("Res comm" in Table 3): the messages
    /// Parallel Southwell sends whenever its residual changed, and the
    /// deadlock-avoidance messages of Distributed Southwell.
    Residual,
    /// Self-healing traffic that the paper's protocol does not have:
    /// periodic invariant-audit / ghost-resync epochs and the freeze
    /// watchdog's forced residual rebroadcasts. Counted separately so the
    /// resilience overhead is measurable against the paper's metrics.
    Recovery,
    /// Extra replica copies of coded (redundancy-`r`) placements: for every
    /// logical message, the copy to the primary host keeps its original
    /// class while the `r − 1` fan-out copies to the remaining replica
    /// hosts are counted here, so the wire overhead of straggler coding is
    /// measurable per class (Haddadpour et al., PAPERS.md).
    Redundancy,
}

impl CommClass {
    /// All classes, in display order.
    pub const ALL: [CommClass; 4] = [
        CommClass::Solve,
        CommClass::Residual,
        CommClass::Recovery,
        CommClass::Redundancy,
    ];
}

/// Message counts split by [`CommClass`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// [`CommClass::Solve`] messages.
    pub solve: u64,
    /// [`CommClass::Residual`] messages.
    pub residual: u64,
    /// [`CommClass::Recovery`] messages.
    pub recovery: u64,
    /// [`CommClass::Redundancy`] messages.
    pub redundancy: u64,
}

impl ClassCounts {
    /// Adds `n` to the counter of `class`.
    #[inline]
    pub fn add(&mut self, class: CommClass, n: u64) {
        match class {
            CommClass::Solve => self.solve += n,
            CommClass::Residual => self.residual += n,
            CommClass::Recovery => self.recovery += n,
            CommClass::Redundancy => self.redundancy += n,
        }
    }

    /// The counter of `class`.
    #[inline]
    pub fn of(&self, class: CommClass) -> u64 {
        match class {
            CommClass::Solve => self.solve,
            CommClass::Residual => self.residual,
            CommClass::Recovery => self.recovery,
            CommClass::Redundancy => self.redundancy,
        }
    }

    /// Sum over all classes.
    #[inline]
    pub fn total(&self) -> u64 {
        self.solve + self.residual + self.recovery + self.redundancy
    }

    /// Element-wise accumulation.
    #[inline]
    pub fn accumulate(&mut self, other: &ClassCounts) {
        self.solve += other.solve;
        self.residual += other.residual;
        self.recovery += other.recovery;
        self.redundancy += other.redundancy;
    }
}

/// Fault-injection outcomes of one parallel step (or one run), split by
/// message class so chaos experiments can report which protocol traffic
/// was hit (see `ChaosConfig` in [`crate::fault`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages dropped at the epoch boundary.
    pub dropped: ClassCounts,
    /// Messages delivered twice (the extra copy, not the original).
    pub duplicated: ClassCounts,
    /// Messages whose delivery was deferred by one or more epochs.
    pub delayed: ClassCounts,
    /// Rank-steps lost to injected stalls (a rank stalled for one whole
    /// parallel step counts once).
    pub stalled_ranks: u64,
}

impl FaultStats {
    /// Element-wise accumulation.
    pub fn accumulate(&mut self, other: &FaultStats) {
        self.dropped.accumulate(&other.dropped);
        self.duplicated.accumulate(&other.duplicated);
        self.delayed.accumulate(&other.delayed);
        self.stalled_ranks += other.stalled_ranks;
    }

    /// Total faulted messages (drops + duplicates + delays).
    pub fn total_msgs_faulted(&self) -> u64 {
        self.dropped.total() + self.duplicated.total() + self.delayed.total()
    }
}

/// α–β–γ communication/computation cost model.
///
/// The modelled time of one phase is
///
/// ```text
/// sync + gamma·max_p(flops_p) + alpha·(Σ msgs / P) + beta·(Σ bytes / P)
/// ```
///
/// and a parallel step is the sum of its phases. Computation is charged at
/// the slowest rank (it is genuinely parallel), while messages are charged
/// on the *average per-rank volume*: at scale, one-sided epoch overheads,
/// progress-engine time, and network contention make the measured
/// time-per-step track the mean message count per rank — exactly the
/// proportionality visible in the paper's Table 4 (BJ ≈ PS > DS per step,
/// in the same ratios as their message counts). Defaults: 20 µs effective
/// per message (RMA epoch + progress cost on a Cori-class system),
/// 2 ns/byte, 1 Gflop/s per core, 10 µs per epoch synchronization.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Seconds per message (effective one-sided latency + epoch share).
    pub alpha: f64,
    /// Seconds per byte (inverse effective bandwidth).
    pub beta: f64,
    /// Seconds per floating-point operation.
    pub gamma: f64,
    /// Seconds per epoch (post/start/complete/wait synchronization).
    pub sync: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alpha: 2.0e-5,
            beta: 2.0e-9,
            gamma: 1.0e-9,
            sync: 1.0e-5,
        }
    }
}

/// Per-parallel-step statistics.
///
/// Two kinds of fields live here. The *deterministic counters* (messages,
/// bytes, flops, relaxations, modelled time, fault outcomes) are
/// bit-identical across [`crate::ExecMode`]s and scheduling orders — the
/// substrate's core guarantee. The *measured timing* fields
/// (`compute_ns`, `compute_ns_max_rank`, `span_ns`, `workers`) record real
/// wall-clock behaviour of the host and naturally vary run to run; they
/// exist to make the load imbalance the paper implies (most ranks idle,
/// few relax) measurable. `PartialEq` compares **only the deterministic
/// counters**, so cross-mode equality assertions express exactly the
/// determinism contract.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepStats {
    /// Messages sent by all ranks this step.
    pub msgs: u64,
    /// ... of class [`CommClass::Solve`].
    pub msgs_solve: u64,
    /// ... of class [`CommClass::Residual`].
    pub msgs_residual: u64,
    /// ... of class [`CommClass::Recovery`].
    pub msgs_recovery: u64,
    /// ... of class [`CommClass::Redundancy`] (extra replica copies).
    pub msgs_redundancy: u64,
    /// Payload bytes sent by all ranks.
    pub bytes: u64,
    /// ... of class [`CommClass::Solve`].
    pub bytes_solve: u64,
    /// ... of class [`CommClass::Residual`].
    pub bytes_residual: u64,
    /// ... of class [`CommClass::Recovery`].
    pub bytes_recovery: u64,
    /// ... of class [`CommClass::Redundancy`] (extra replica copies).
    pub bytes_redundancy: u64,
    /// Flops reported by all ranks.
    pub flops: u64,
    /// Ranks that reported at least one relaxation.
    pub active_ranks: u64,
    /// Row relaxations reported by all ranks.
    pub relaxations: u64,
    /// Modelled wall-clock seconds of the step.
    pub time: f64,
    /// Fault-injection outcomes of this step (all zero without chaos).
    pub faults: FaultStats,
    /// Measured: wall-clock nanoseconds spent inside rank phase callbacks
    /// this step, summed over ranks (the step's total compute volume).
    pub compute_ns: u64,
    /// Measured: the largest per-rank share of [`StepStats::compute_ns`] —
    /// the critical-path rank. `compute_ns_max_rank / (compute_ns / P)` is
    /// the step's load-imbalance factor (see [`StepStats::imbalance`]).
    pub compute_ns_max_rank: u64,
    /// Measured: wall-clock nanoseconds of the step's compute dispatch
    /// windows (all phases, as seen by the executor's driving thread).
    pub span_ns: u64,
    /// Measured: wall-clock nanoseconds the executor spent closing this
    /// step's epochs — fate draws, message routing into inboxes, delayed
    /// expiry, and the stats fold. `span_ns + route_ns` is essentially the
    /// whole step; their ratio is the routing share the parallel close
    /// attacks.
    pub route_ns: u64,
    /// Workers that executed rank phases this step (1 = sequential).
    pub workers: u32,
}

impl PartialEq for StepStats {
    /// Deterministic counters only — measured timing is machine- and
    /// schedule-dependent by nature and deliberately excluded, so that
    /// `Sequential` vs `Threaded` equality assertions check the substrate's
    /// bit-determinism contract.
    fn eq(&self, other: &Self) -> bool {
        self.msgs == other.msgs
            && self.msgs_solve == other.msgs_solve
            && self.msgs_residual == other.msgs_residual
            && self.msgs_recovery == other.msgs_recovery
            && self.msgs_redundancy == other.msgs_redundancy
            && self.bytes == other.bytes
            && self.bytes_solve == other.bytes_solve
            && self.bytes_residual == other.bytes_residual
            && self.bytes_recovery == other.bytes_recovery
            && self.bytes_redundancy == other.bytes_redundancy
            && self.flops == other.flops
            && self.active_ranks == other.active_ranks
            && self.relaxations == other.relaxations
            && self.time == other.time
            && self.faults == other.faults
    }
}

impl StepStats {
    /// The step's measured load-imbalance factor: the critical-path rank's
    /// compute time over the per-rank mean (`max / mean` across `nranks`
    /// ranks). `1.0` is perfect balance; Distributed Southwell's "few ranks
    /// relax, most idle" regime pushes this toward `nranks`. Returns `1.0`
    /// when nothing was measured.
    pub fn imbalance(&self, nranks: usize) -> f64 {
        if self.compute_ns == 0 || nranks == 0 {
            return 1.0;
        }
        self.compute_ns_max_rank as f64 * nranks as f64 / self.compute_ns as f64
    }
}

/// Cost and drift observables of a run's out-of-band convergence monitor.
///
/// The monitor is a *driver* concern — it performs no solver communication
/// — but its cost is exactly what incremental monitoring exists to remove,
/// so the substrate records it alongside the run statistics. `evals` counts
/// the `O(P)` maintained-norm reductions, `verifications` the full
/// `‖b − Ax‖₂` recomputations (gather + SpMV). The `*_ns` fields are
/// measured wall-clock (machine-dependent, like the executor's timing
/// observables); `max_rel_drift` is the largest observed relative gap
/// between a maintained norm and the exact norm verified at the same step
/// boundary — the monitor's accuracy certificate.
#[derive(Debug, Clone, Copy, Default)]
pub struct MonitorStats {
    /// `O(P)` maintained-norm evaluations performed.
    pub evals: u64,
    /// Exact `‖b − Ax‖₂` recomputations performed (gather + SpMV).
    pub verifications: u64,
    /// Measured wall-clock nanoseconds spent in maintained evaluations.
    pub eval_ns: u64,
    /// Measured wall-clock nanoseconds spent in exact recomputations.
    pub verify_ns: u64,
    /// Largest observed `|exact − maintained| / max(exact, 1)` at a step
    /// boundary where both were computed. `0.0` with exact monitoring.
    pub max_rel_drift: f64,
}

impl MonitorStats {
    /// Records one exact-vs-maintained comparison.
    pub fn record_drift(&mut self, exact: f64, maintained: f64) {
        let rel = (exact - maintained).abs() / exact.max(1.0);
        if rel > self.max_rel_drift {
            self.max_rel_drift = rel;
        }
    }
}

/// Accumulated statistics for a run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// One entry per executed parallel step.
    pub steps: Vec<StepStats>,
    /// Convergence-monitor cost and drift observables (filled by the
    /// driver; all zero for raw executor runs).
    pub monitor: MonitorStats,
    /// Messages sent per rank over the whole run.
    pub msgs_per_rank: Vec<u64>,
    /// Measured wall-clock nanoseconds each rank spent in its phase
    /// callbacks over the whole run (the per-rank compute profile — the
    /// direct observable of the paper's load imbalance).
    pub rank_time_ns: Vec<u64>,
    /// Measured busy wall-clock nanoseconds per worker over the whole run
    /// (one entry per pool worker; a single entry for sequential runs).
    pub worker_busy_ns: Vec<u64>,
}

impl RunStats {
    /// Creates stats for `nranks` ranks.
    pub fn new(nranks: usize) -> Self {
        RunStats {
            steps: Vec::new(),
            monitor: MonitorStats::default(),
            msgs_per_rank: vec![0; nranks],
            rank_time_ns: vec![0; nranks],
            worker_busy_ns: Vec::new(),
        }
    }

    /// Number of executed parallel steps.
    pub fn nsteps(&self) -> usize {
        self.steps.len()
    }

    /// Harvests everything accumulated since the last harvest (or since
    /// construction) and resets the accumulators in place, keeping their
    /// shapes. The per-solve accounting primitive of a persistent
    /// executor: a session driving many solves through one executor calls
    /// this at each solve boundary, so every solve's report carries only
    /// its own steps, per-rank compute time, and worker busy time —
    /// `worker_utilization` / `rank_time_ns` stay per-solve instead of
    /// smearing across the executor's lifetime.
    pub fn take_epoch(&mut self) -> RunStats {
        let epoch = RunStats {
            steps: std::mem::take(&mut self.steps),
            monitor: std::mem::take(&mut self.monitor),
            msgs_per_rank: self.msgs_per_rank.clone(),
            rank_time_ns: self.rank_time_ns.clone(),
            worker_busy_ns: self.worker_busy_ns.clone(),
        };
        self.msgs_per_rank.iter_mut().for_each(|v| *v = 0);
        self.rank_time_ns.iter_mut().for_each(|v| *v = 0);
        self.worker_busy_ns.iter_mut().for_each(|v| *v = 0);
        epoch
    }

    /// Total messages over all steps.
    pub fn total_msgs(&self) -> u64 {
        self.steps.iter().map(|s| s.msgs).sum()
    }

    /// Total solve-class messages.
    pub fn total_msgs_solve(&self) -> u64 {
        self.steps.iter().map(|s| s.msgs_solve).sum()
    }

    /// Total residual-class messages.
    pub fn total_msgs_residual(&self) -> u64 {
        self.steps.iter().map(|s| s.msgs_residual).sum()
    }

    /// Total recovery-class messages (audit / resync / watchdog traffic).
    pub fn total_msgs_recovery(&self) -> u64 {
        self.steps.iter().map(|s| s.msgs_recovery).sum()
    }

    /// Total redundancy-class messages (extra replica copies of coded
    /// placements).
    pub fn total_msgs_redundancy(&self) -> u64 {
        self.steps.iter().map(|s| s.msgs_redundancy).sum()
    }

    /// Total payload bytes over all steps.
    pub fn total_bytes(&self) -> u64 {
        self.steps.iter().map(|s| s.bytes).sum()
    }

    /// Total solve-class payload bytes.
    pub fn total_bytes_solve(&self) -> u64 {
        self.steps.iter().map(|s| s.bytes_solve).sum()
    }

    /// Total residual-class payload bytes.
    pub fn total_bytes_residual(&self) -> u64 {
        self.steps.iter().map(|s| s.bytes_residual).sum()
    }

    /// Total recovery-class payload bytes.
    pub fn total_bytes_recovery(&self) -> u64 {
        self.steps.iter().map(|s| s.bytes_recovery).sum()
    }

    /// Total redundancy-class payload bytes (the wire overhead of coded
    /// placements over the uncoded run).
    pub fn total_bytes_redundancy(&self) -> u64 {
        self.steps.iter().map(|s| s.bytes_redundancy).sum()
    }

    /// Total measured epoch-close (routing) nanoseconds over the run.
    pub fn total_route_ns(&self) -> u64 {
        self.steps.iter().map(|s| s.route_ns).sum()
    }

    /// Fault-injection outcomes accumulated over the whole run.
    pub fn total_faults(&self) -> FaultStats {
        let mut total = FaultStats::default();
        for s in &self.steps {
            total.accumulate(&s.faults);
        }
        total
    }

    /// Total messages dropped by fault injection over the run.
    pub fn total_msgs_dropped(&self) -> u64 {
        self.steps.iter().map(|s| s.faults.dropped.total()).sum()
    }

    /// The paper's "communication cost": total messages / number of ranks.
    pub fn comm_cost(&self) -> f64 {
        self.total_msgs() as f64 / self.msgs_per_rank.len() as f64
    }

    /// Solve-class communication cost (Table 3, "Solve comm").
    pub fn comm_cost_solve(&self) -> f64 {
        self.total_msgs_solve() as f64 / self.msgs_per_rank.len() as f64
    }

    /// Residual-class communication cost (Table 3, "Res comm").
    pub fn comm_cost_residual(&self) -> f64 {
        self.total_msgs_residual() as f64 / self.msgs_per_rank.len() as f64
    }

    /// Recovery-class communication cost (overhead of self-healing).
    pub fn comm_cost_recovery(&self) -> f64 {
        self.total_msgs_recovery() as f64 / self.msgs_per_rank.len() as f64
    }

    /// Redundancy-class communication cost (overhead of coded placement).
    pub fn comm_cost_redundancy(&self) -> f64 {
        self.total_msgs_redundancy() as f64 / self.msgs_per_rank.len() as f64
    }

    /// Total modelled time.
    pub fn total_time(&self) -> f64 {
        self.steps.iter().map(|s| s.time).sum()
    }

    /// Total relaxations.
    pub fn total_relaxations(&self) -> u64 {
        self.steps.iter().map(|s| s.relaxations).sum()
    }

    /// Total measured compute nanoseconds (sum over ranks and steps).
    pub fn total_compute_ns(&self) -> u64 {
        self.steps.iter().map(|s| s.compute_ns).sum()
    }

    /// Total measured dispatch-window nanoseconds over the run.
    pub fn total_span_ns(&self) -> u64 {
        self.steps.iter().map(|s| s.span_ns).sum()
    }

    /// Mean per-step load-imbalance factor (`max / mean` of per-rank
    /// compute time), over the steps that measured any compute. `1.0` when
    /// nothing was measured.
    pub fn mean_imbalance(&self) -> f64 {
        let nranks = self.msgs_per_rank.len();
        let measured: Vec<f64> = self
            .steps
            .iter()
            .filter(|s| s.compute_ns > 0)
            .map(|s| s.imbalance(nranks))
            .collect();
        if measured.is_empty() {
            return 1.0;
        }
        measured.iter().sum::<f64>() / measured.len() as f64
    }

    /// Mean worker utilization: total busy time across workers over the
    /// total dispatch-window time they were collectively available
    /// (`span × workers`). `1.0` means every worker computed for the whole
    /// span; low values quantify how much of the pool the "few ranks
    /// relax" regime leaves idle. Returns `0.0` when nothing was measured.
    pub fn worker_utilization(&self) -> f64 {
        let span = self.total_span_ns();
        let nworkers = self.worker_busy_ns.len();
        if span == 0 || nworkers == 0 {
            return 0.0;
        }
        let busy: u64 = self.worker_busy_ns.iter().sum();
        (busy as f64 / (span as f64 * nworkers as f64)).min(1.0)
    }

    /// Mean fraction of ranks active per step (the paper's
    /// "active processes").
    pub fn mean_active_fraction(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        let p = self.msgs_per_rank.len() as f64;
        self.steps
            .iter()
            .map(|s| s.active_ranks as f64 / p)
            .sum::<f64>()
            / self.steps.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_stats_aggregation() {
        let mut rs = RunStats::new(4);
        rs.steps.push(StepStats {
            msgs: 8,
            msgs_solve: 6,
            msgs_residual: 2,
            bytes: 100,
            bytes_solve: 80,
            bytes_residual: 20,
            flops: 50,
            active_ranks: 2,
            relaxations: 20,
            time: 0.5,
            ..StepStats::default()
        });
        rs.steps.push(StepStats {
            msgs: 4,
            msgs_solve: 2,
            msgs_residual: 2,
            msgs_recovery: 1,
            bytes: 40,
            bytes_solve: 25,
            bytes_residual: 10,
            bytes_recovery: 5,
            flops: 10,
            active_ranks: 4,
            relaxations: 40,
            time: 0.25,
            faults: FaultStats {
                dropped: ClassCounts {
                    solve: 2,
                    residual: 1,
                    ..ClassCounts::default()
                },
                duplicated: ClassCounts {
                    solve: 1,
                    ..ClassCounts::default()
                },
                delayed: ClassCounts {
                    recovery: 3,
                    ..ClassCounts::default()
                },
                stalled_ranks: 2,
            },
            ..StepStats::default()
        });
        assert_eq!(rs.nsteps(), 2);
        assert_eq!(rs.total_msgs(), 12);
        assert_eq!(rs.total_msgs_solve(), 8);
        assert_eq!(rs.total_msgs_residual(), 4);
        assert!((rs.comm_cost() - 3.0).abs() < 1e-15);
        assert!((rs.comm_cost_solve() - 2.0).abs() < 1e-15);
        assert!((rs.comm_cost_residual() - 1.0).abs() < 1e-15);
        assert!((rs.total_time() - 0.75).abs() < 1e-15);
        assert_eq!(rs.total_relaxations(), 60);
        assert!((rs.mean_active_fraction() - 0.75).abs() < 1e-15);
        assert_eq!(rs.total_msgs_recovery(), 1);
        assert!((rs.comm_cost_recovery() - 0.25).abs() < 1e-15);
        assert_eq!(rs.total_bytes(), 140);
        assert_eq!(rs.total_bytes_solve(), 105);
        assert_eq!(rs.total_bytes_residual(), 30);
        assert_eq!(rs.total_bytes_recovery(), 5);
        let faults = rs.total_faults();
        assert_eq!(faults.dropped.total(), 3);
        assert_eq!(faults.duplicated.of(CommClass::Solve), 1);
        assert_eq!(faults.delayed.of(CommClass::Recovery), 3);
        assert_eq!(faults.stalled_ranks, 2);
        assert_eq!(faults.total_msgs_faulted(), 7);
        assert_eq!(rs.total_msgs_dropped(), 3);
    }

    #[test]
    fn empty_run_stats() {
        let rs = RunStats::new(2);
        assert_eq!(rs.total_msgs(), 0);
        assert_eq!(rs.mean_active_fraction(), 0.0);
        assert_eq!(rs.total_time(), 0.0);
        assert_eq!(rs.mean_imbalance(), 1.0);
        assert_eq!(rs.worker_utilization(), 0.0);
        assert_eq!(rs.rank_time_ns, vec![0, 0]);
    }

    #[test]
    fn measured_timing_excluded_from_step_equality() {
        let a = StepStats {
            msgs: 5,
            compute_ns: 1000,
            compute_ns_max_rank: 900,
            span_ns: 1200,
            workers: 4,
            ..StepStats::default()
        };
        let b = StepStats {
            msgs: 5,
            compute_ns: 77,
            compute_ns_max_rank: 77,
            span_ns: 99,
            workers: 1,
            ..StepStats::default()
        };
        // Same deterministic counters, different measured timing: equal.
        assert_eq!(a, b);
        let c = StepStats { msgs: 6, ..a };
        assert_ne!(a, c);
    }

    #[test]
    fn imbalance_and_utilization_aggregate() {
        let mut rs = RunStats::new(4);
        // A perfectly balanced step: 4 ranks × 100 ns.
        rs.steps.push(StepStats {
            compute_ns: 400,
            compute_ns_max_rank: 100,
            span_ns: 200,
            workers: 2,
            ..StepStats::default()
        });
        // A fully serial step: one rank did all 400 ns.
        rs.steps.push(StepStats {
            compute_ns: 400,
            compute_ns_max_rank: 400,
            span_ns: 600,
            workers: 2,
            ..StepStats::default()
        });
        assert!((rs.steps[0].imbalance(4) - 1.0).abs() < 1e-12);
        assert!((rs.steps[1].imbalance(4) - 4.0).abs() < 1e-12);
        assert!((rs.mean_imbalance() - 2.5).abs() < 1e-12);
        assert_eq!(rs.total_compute_ns(), 800);
        assert_eq!(rs.total_span_ns(), 800);
        rs.worker_busy_ns = vec![500, 300];
        assert!((rs.worker_utilization() - 0.5).abs() < 1e-12);
    }
}
