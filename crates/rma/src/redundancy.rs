//! Replica-set routing for redundancy-coded placements: first-arrival-wins
//! absorption with exact duplicate reconciliation.
//!
//! A coded placement (see `dsw-partition`'s `ReplicaMap`) hosts every
//! logical block on `r` physical ranks. [`RedundantHost`] makes that
//! transparent to the block solvers: each physical rank runs the solver
//! instances of all blocks it hosts, and every logical message a solver
//! emits is fanned out to *every* host of its logical target — the copy to
//! the primary host keeps the solver's message class, the `r − 1` extra
//! copies are counted as [`CommClass::Redundancy`]. On the receive side
//! each hosted block reconciles by `(logical origin, slot)`: the first
//! copy of a slot to arrive is absorbed and delivered to the inner solver,
//! later copies — whether replica fan-out, chaos duplicates of an absorbed
//! slot, or re-sends from a lagging replica — are discarded exactly, and
//! counted. Reconciliation happens wherever delivery happens: at the epoch
//! close under the superstep executor, at tick granularity under the
//! asynchronous one (the wrapper sits *inside* the executor's delivery
//! path, so it inherits each executor's boundary).
//!
//! Because the wrapper rewrites physical ↔ logical addresses, the inner
//! solver negotiates purely in logical block space: Distributed
//! Southwell's Γ̃-set bookkeeping, deadlock avoidance, sequencing, and
//! recovery audits see a replica set as **one logical owner** by
//! construction. Under lock-step execution on a fault-free link all
//! replicas of a block receive identical logical inboxes and stay
//! bit-identical; under asynchrony (or drops) they diverge into
//! independently valid estimate states, and whichever copy of a slot
//! lands first wins — the Haddadpour-style "first arrivals beat the
//! slowest rank" behaviour (PAPERS.md).
//!
//! With `r = 1` (identity placement) the wrapper is message-for-message
//! transparent: one copy per put, original class, same per-edge fate keys
//! — byte-identical inner inboxes to the uncoded run under drop/delay
//! chaos. (Chaos *duplicates* are the one observable difference: the
//! uncoded path delivers the duplicate envelope to the solver's own
//! sequencing layer, while the wrapper's slot reconciliation absorbs it —
//! which is why the driver dispatches `r = 1` to the uncoded path.)

use crate::executor::{Envelope, PhaseCtx, RankAlgorithm};
use crate::stats::CommClass;

/// A logical message on the coded wire: the inner solver's payload plus
/// the logical addressing and the per-edge slot the reconciliation keys on.
#[derive(Debug, Clone)]
pub struct CodedMsg<M> {
    /// Logical origin block.
    pub origin: u32,
    /// Logical target block.
    pub target: u32,
    /// Sequence slot on the `(origin, target)` logical edge. Replicas of
    /// the origin assign slots from the same deterministic counter, so a
    /// slot identifies "the origin block's `slot`-th message on this edge"
    /// regardless of which replica's copy arrives first.
    pub slot: u32,
    /// The solver's message.
    pub inner: M,
}

/// First-arrival bookkeeping for one logical origin: a contiguous
/// watermark plus the out-of-order slots seen beyond it. Exact — a slot is
/// absorbed exactly once no matter how its copies are delayed, reordered,
/// or duplicated.
#[derive(Debug, Default)]
struct SeenSet {
    /// Slots `0..next_contig` have all been absorbed.
    next_contig: u32,
    /// Absorbed slots `>= next_contig` (sorted ascending; small — only
    /// populated while deliveries are in flight out of order).
    ahead: Vec<u32>,
}

impl SeenSet {
    /// Records `slot`; returns whether it is fresh (first arrival).
    fn absorb(&mut self, slot: u32) -> bool {
        if slot < self.next_contig {
            return false;
        }
        if slot == self.next_contig {
            self.next_contig += 1;
            // Collapse the watermark over any contiguously absorbed run.
            while self.ahead.first() == Some(&self.next_contig) {
                self.ahead.remove(0);
                self.next_contig += 1;
            }
            return true;
        }
        match self.ahead.binary_search(&slot) {
            Ok(_) => false,
            Err(pos) => {
                self.ahead.insert(pos, slot);
                true
            }
        }
    }
}

/// One hosted logical block: its solver instance plus the per-edge send
/// and receive bookkeeping.
struct HostedBlock<A: RankAlgorithm> {
    /// The logical block id.
    block: usize,
    /// The block's solver instance.
    solver: A,
    /// Next slot per logical target, target-sorted.
    send_slot: Vec<(u32, u32)>,
    /// Seen-set per logical origin, origin-sorted.
    seen: Vec<(u32, SeenSet)>,
    /// Scratch: the reconciled logical inbox handed to the solver.
    inbox: Vec<Envelope<A::Msg>>,
}

impl<A: RankAlgorithm> HostedBlock<A> {
    fn next_slot(&mut self, target: u32) -> u32 {
        match self.send_slot.binary_search_by_key(&target, |e| e.0) {
            Ok(i) => {
                let s = self.send_slot[i].1;
                self.send_slot[i].1 += 1;
                s
            }
            Err(i) => {
                self.send_slot.insert(i, (target, 1));
                0
            }
        }
    }

    fn seen_mut(&mut self, origin: u32) -> &mut SeenSet {
        match self.seen.binary_search_by_key(&origin, |e| e.0) {
            Ok(i) => &mut self.seen[i].1,
            Err(i) => {
                self.seen.insert(i, (origin, SeenSet::default()));
                &mut self.seen[i].1
            }
        }
    }
}

/// One physical rank of a redundancy-coded run: hosts the solver instances
/// of every logical block the placement assigns it, fans logical puts out
/// to replica sets, and reconciles arrivals first-arrival-wins. Implements
/// [`RankAlgorithm`] over [`CodedMsg`] envelopes, so it runs unchanged on
/// both executors.
pub struct RedundantHost<A: RankAlgorithm> {
    /// This host's physical rank.
    rank: usize,
    /// Hosts per logical block (`replicas[b][0]` is the primary).
    replicas: Vec<Vec<u32>>,
    /// The hosted blocks, ascending block order.
    blocks: Vec<HostedBlock<A>>,
    /// Copies addressed to this same physical rank (a host serving both
    /// the origin and a target replica): buffered locally and made visible
    /// at the next phase, like any other delivery — but free on the wire
    /// and uncounted.
    self_next: Vec<Envelope<CodedMsg<A::Msg>>>,
    /// Duplicate copies discarded by reconciliation over the run.
    reconciled: u64,
    /// Phase calls executed: the host's progress clock. All hosted blocks
    /// advance together, so this orders replicas of a block by freshness
    /// (the driver picks the furthest-along host as the block's
    /// representative when reading global state).
    clock: u64,
}

impl<A: RankAlgorithm> RedundantHost<A> {
    /// Assembles the host for physical rank `rank`. `solvers` holds
    /// `(logical block, solver instance)` pairs for exactly the blocks the
    /// placement assigns this rank; `replicas` is the full placement
    /// (hosts per logical block, primary first).
    pub fn new(rank: usize, replicas: Vec<Vec<u32>>, solvers: Vec<(usize, A)>) -> Self {
        assert!(!solvers.is_empty(), "a host must host at least one block");
        let mut blocks: Vec<HostedBlock<A>> = solvers
            .into_iter()
            .map(|(block, solver)| {
                assert!(
                    replicas[block].contains(&(rank as u32)),
                    "rank {rank} is not a host of block {block}"
                );
                HostedBlock {
                    block,
                    solver,
                    send_slot: Vec::new(),
                    seen: Vec::new(),
                    inbox: Vec::new(),
                }
            })
            .collect();
        blocks.sort_by_key(|b| b.block);
        RedundantHost {
            rank,
            replicas,
            blocks,
            self_next: Vec::new(),
            reconciled: 0,
            clock: 0,
        }
    }

    /// The physical rank this host runs as.
    pub fn physical_rank(&self) -> usize {
        self.rank
    }

    /// The logical blocks hosted here, ascending.
    pub fn hosted_blocks(&self) -> Vec<usize> {
        self.blocks.iter().map(|b| b.block).collect()
    }

    /// The solver instance of hosted block `b`.
    pub fn solver_for(&self, b: usize) -> Option<&A> {
        self.blocks
            .binary_search_by_key(&b, |h| h.block)
            .ok()
            .map(|i| &self.blocks[i].solver)
    }

    /// Mutable access to the solver instance of hosted block `b`.
    pub fn solver_for_mut(&mut self, b: usize) -> Option<&mut A> {
        self.blocks
            .binary_search_by_key(&b, |h| h.block)
            .ok()
            .map(move |i| &mut self.blocks[i].solver)
    }

    /// Iterates over `(block, solver)` pairs, ascending block order.
    pub fn solvers(&self) -> impl Iterator<Item = (usize, &A)> {
        self.blocks.iter().map(|h| (h.block, &h.solver))
    }

    /// Mutable iteration over `(block, solver)` pairs (driver recovery
    /// hooks: nudging every hosted instance).
    pub fn solvers_mut(&mut self) -> impl Iterator<Item = (usize, &mut A)> {
        self.blocks.iter_mut().map(|h| (h.block, &mut h.solver))
    }

    /// Duplicate copies discarded by first-arrival reconciliation so far.
    pub fn reconciled(&self) -> u64 {
        self.reconciled
    }

    /// Phase calls executed so far (the host's progress clock).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Reconciles one arrived copy into the hosted blocks: fresh slots are
    /// rewritten to logical addressing and queued for the target block's
    /// solver; duplicates are discarded and counted.
    fn reconcile(&mut self, env: &Envelope<CodedMsg<A::Msg>>) {
        let t = env.payload.target as usize;
        let Ok(i) = self.blocks.binary_search_by_key(&t, |h| h.block) else {
            // Not hosted here: a stale copy routed before a placement
            // change could land here; there are none today (placements are
            // static), so this is unreachable — but dropping is the safe
            // fate either way.
            return;
        };
        let hb = &mut self.blocks[i];
        if hb.seen_mut(env.payload.origin).absorb(env.payload.slot) {
            hb.inbox.push(Envelope {
                src: env.payload.origin as usize,
                class: env.class,
                bytes: env.bytes,
                payload: env.payload.inner.clone(),
            });
        } else {
            self.reconciled += 1;
        }
    }
}

impl<A: RankAlgorithm> RankAlgorithm for RedundantHost<A> {
    type Msg = CodedMsg<A::Msg>;

    fn phases(&self) -> usize {
        self.blocks[0].solver.phases()
    }

    fn phase(
        &mut self,
        phase: usize,
        inbox: &[Envelope<Self::Msg>],
        ctx: &mut PhaseCtx<Self::Msg>,
    ) {
        self.clock += 1;
        // Copies this host addressed to itself last phase become visible
        // now — the same boundary an executor delivery would have.
        let self_in = std::mem::take(&mut self.self_next);
        for env in inbox {
            self.reconcile(env);
        }
        for env in &self_in {
            self.reconcile(env);
        }
        for hb in &mut self.blocks {
            // Restore the inner "ordered by origin rank" inbox contract in
            // logical space. The sort is stable: within one logical origin
            // the arrival order (which replica won each slot, how delays
            // scrambled copies) is preserved — exactly the uncoded
            // executor's contract.
            hb.inbox.sort_by_key(|e| e.src);
        }
        for i in 0..self.blocks.len() {
            let hb = &mut self.blocks[i];
            let mut ictx = PhaseCtx::new_for_async(hb.block);
            hb.solver.phase(phase, &hb.inbox, &mut ictx);
            hb.inbox.clear();
            let (outbox, totals) = ictx.into_outbox_and_totals();
            ctx.add_flops(totals.flops);
            if totals.active {
                ctx.record_relaxations(totals.relaxations);
            }
            for (logical_target, env) in outbox {
                let slot = self.blocks[i].next_slot(logical_target as u32);
                let coded = CodedMsg {
                    origin: self.blocks[i].block as u32,
                    target: logical_target as u32,
                    slot,
                    inner: env.payload,
                };
                // Fan out to every host of the logical target. The primary
                // copy keeps the solver's class (so per-class accounting at
                // r = 1 matches the uncoded run exactly); the extra copies
                // are the measurable redundancy overhead.
                for (j, &host) in self.replicas[logical_target].iter().enumerate() {
                    let class = if j == 0 {
                        env.class
                    } else {
                        CommClass::Redundancy
                    };
                    if host as usize == self.rank {
                        // Local replica: no wire traffic, visible next phase.
                        self.self_next.push(Envelope {
                            src: self.rank,
                            class,
                            bytes: env.bytes,
                            payload: coded.clone(),
                        });
                    } else {
                        ctx.put(host as usize, class, coded.clone(), env.bytes);
                    }
                }
            }
        }
    }

    fn put_targets(&self) -> Option<Vec<usize>> {
        let mut out = Vec::new();
        for hb in &self.blocks {
            for lt in hb.solver.put_targets()? {
                for &host in &self.replicas[lt] {
                    if host as usize != self.rank {
                        out.push(host as usize);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        Some(out)
    }

    fn maintained_norm_sq(&self) -> Option<f64> {
        // A physical sum over hosted blocks would count every logical
        // block r times across the run; the driver aggregates one
        // representative per logical block instead (see its replica view).
        None
    }

    fn undelivered_delta_sq(&self) -> f64 {
        self.blocks
            .iter()
            .map(|hb| hb.solver.undelivered_delta_sq())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{ExecMode, Executor};
    use crate::stats::CostModel;

    /// The ring accumulator from the executor tests, block-id addressed.
    struct Ring {
        id: usize,
        n: usize,
        value: u64,
        received: u64,
    }

    impl RankAlgorithm for Ring {
        type Msg = u64;
        fn phases(&self) -> usize {
            1
        }
        fn phase(&mut self, _phase: usize, inbox: &[Envelope<u64>], ctx: &mut PhaseCtx<u64>) {
            for e in inbox {
                self.value += e.payload;
                self.received += 1;
            }
            ctx.put((self.id + 1) % self.n, CommClass::Solve, self.value, 8);
            ctx.record_relaxations(1);
        }
        fn put_targets(&self) -> Option<Vec<usize>> {
            Some(vec![(self.id + 1) % self.n])
        }
    }

    fn identity_replicas(n: usize) -> Vec<Vec<u32>> {
        (0..n as u32).map(|b| vec![b]).collect()
    }

    /// Shift-by-one replica sets: block b hosted by ranks b and (b+1) % n.
    fn shifted_replicas(n: usize) -> Vec<Vec<u32>> {
        (0..n as u32).map(|b| vec![b, (b + 1) % n as u32]).collect()
    }

    fn hosts<const R: usize>(n: usize, replicas: &[Vec<u32>]) -> Vec<RedundantHost<Ring>> {
        (0..n)
            .map(|p| {
                let mine: Vec<(usize, Ring)> = (0..n)
                    .filter(|&b| replicas[b].contains(&(p as u32)))
                    .map(|b| {
                        (
                            b,
                            Ring {
                                id: b,
                                n,
                                value: 1,
                                received: 0,
                            },
                        )
                    })
                    .collect();
                assert_eq!(mine.len(), R);
                RedundantHost::new(p, replicas.to_vec(), mine)
            })
            .collect()
    }

    /// r = 1 wrapping is transparent: the inner solvers see exactly the
    /// uncoded run (same values, same per-class counters, no redundancy
    /// traffic, nothing reconciled).
    #[test]
    fn identity_placement_matches_uncoded_run() {
        let n = 6;
        let steps = 8;
        let mut plain = Executor::new(
            (0..n)
                .map(|id| Ring {
                    id,
                    n,
                    value: 1,
                    received: 0,
                })
                .collect::<Vec<_>>(),
            CostModel::default(),
            ExecMode::Sequential,
        );
        let mut coded = Executor::new(
            hosts::<1>(n, &identity_replicas(n)),
            CostModel::default(),
            ExecMode::Sequential,
        );
        for _ in 0..steps {
            plain.step();
            coded.step();
        }
        let pv: Vec<u64> = plain.ranks().iter().map(|r| r.value).collect();
        let cv: Vec<u64> = coded
            .ranks()
            .iter()
            .map(|h| h.solvers().next().unwrap().1.value)
            .collect();
        assert_eq!(pv, cv);
        assert_eq!(
            plain.stats.total_msgs_solve(),
            coded.stats.total_msgs_solve()
        );
        assert_eq!(coded.stats.total_msgs_redundancy(), 0);
        assert!(coded.ranks().iter().all(|h| h.reconciled() == 0));
        // Byte accounting rides through the wrapper unchanged.
        assert_eq!(plain.stats.total_bytes(), coded.stats.total_bytes());
    }

    /// r = 2 on a fault-free lock-step link: replicas of a block stay
    /// bit-identical, every extra copy is reconciled away exactly, and the
    /// overhead lands in the redundancy class.
    #[test]
    fn replicas_stay_identical_and_duplicates_reconcile_under_lockstep() {
        let n = 6;
        let replicas = shifted_replicas(n);
        let mut ex = Executor::new(
            hosts::<2>(n, &replicas),
            CostModel::default(),
            ExecMode::Sequential,
        );
        for _ in 0..8 {
            ex.step();
        }
        for (b, hosts) in replicas.iter().enumerate() {
            let states: Vec<u64> = hosts
                .iter()
                .map(|&h| ex.ranks()[h as usize].solver_for(b).unwrap().value)
                .collect();
            assert!(
                states.windows(2).all(|w| w[0] == w[1]),
                "replicas of block {b} diverged: {states:?}"
            );
        }
        // Each block absorbed each slot exactly once (ring: 1 message per
        // block per step, solver sees it one step later).
        let received: u64 = ex
            .ranks()
            .iter()
            .flat_map(|h| h.solvers().map(|(_, s)| s.received))
            .sum();
        // 2 replicas × n blocks × (steps − 1) absorbed messages.
        assert_eq!(received, 2 * (n as u64) * 7);
        // Every logical message generated one redundancy copy per extra
        // replica; some copies ride free on self-hosted targets.
        assert!(ex.stats.total_msgs_redundancy() > 0);
        let reconciled: u64 = ex.ranks().iter().map(|h| h.reconciled()).sum();
        assert!(
            reconciled > 0,
            "replica fan-out must produce reconciled duplicates"
        );
        // Both replicas of every origin send the same slots, so exactly
        // half of all absorbed-or-reconciled copies are discards.
        assert_eq!(reconciled, received);
    }

    /// The wrapper advertises the physical fan-out topology, so the
    /// bucketed (reverse-neighbor-indexed) close accepts every put.
    #[test]
    fn put_targets_cover_replica_fanout() {
        let n = 5;
        let replicas = shifted_replicas(n);
        let hs = hosts::<2>(n, &replicas);
        // Host 0 runs blocks 0 and 4 (replica of 4). Block 0 targets block
        // 1 (hosts 1, 2); block 4 targets block 0 (hosts 0, 1) — physical
        // targets {1, 2} ∪ {1} minus self.
        let t0 = hs[0].put_targets().unwrap();
        assert_eq!(t0, vec![1, 2]);
        let mut ex = Executor::new(hs, CostModel::default(), ExecMode::Sequential);
        assert!(ex.has_routing_index());
        for _ in 0..4 {
            ex.step();
        }
        assert!(ex.stats.total_msgs() > 0);
    }

    /// Out-of-order copies: the seen-set absorbs delayed slots that arrive
    /// behind newer ones, and discards the late duplicates of already-won
    /// slots — watermark-only reconciliation would wrongly drop the former.
    #[test]
    fn seen_set_absorbs_out_of_order_and_discards_duplicates() {
        let mut s = SeenSet::default();
        assert!(s.absorb(0));
        assert!(s.absorb(2), "a slot ahead of the watermark is fresh");
        assert!(!s.absorb(2), "its second copy is a duplicate");
        assert!(s.absorb(1), "the delayed slot is still fresh");
        assert!(!s.absorb(0));
        assert!(!s.absorb(1));
        assert_eq!(s.next_contig, 3);
        assert!(s.ahead.is_empty(), "watermark collapsed over the run");
        assert!(s.absorb(5));
        assert!(s.absorb(4));
        assert!(s.absorb(3));
        assert_eq!(s.next_contig, 6);
    }
}
