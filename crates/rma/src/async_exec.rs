//! Asynchronous execution: ranks progress at different rates.
//!
//! The paper's MPI implementation uses Casper ghost processes for
//! asynchronous one-sided progress, and its predecessor (ICCS'16) was an
//! explicitly asynchronous method. The lock-step [`crate::Executor`]
//! captures the *epoch semantics*; this module captures the *asynchrony*:
//! each scheduler tick advances a pseudo-random subset of ranks by one
//! phase, so some ranks race ahead while others lag (bounded by
//! `max_lag` phases, modelling a progress guarantee). Puts are delivered
//! when the *target* finishes its current phase — a rank never sees a
//! message mid-phase, preserving the window-consistency rule — but unlike
//! the superstep executor, messages from a fast neighbor can arrive
//! "early" and several at once.
//!
//! The Southwell protocols tolerate this by design (their neighbor data
//! are estimates); the `async_execution_still_converges` tests demonstrate
//! it.

use crate::executor::{Envelope, PhaseCtx, RankAlgorithm};
use crate::fault::{ChaosConfig, FaultInjector};
use crate::stats::{RunStats, StepStats};

/// Scheduling options for the asynchronous executor.
#[derive(Debug, Clone, Copy)]
pub struct AsyncOptions {
    /// Probability that a ready rank is advanced on a given tick.
    pub advance_probability: f64,
    /// Maximum phase lead any rank may have over the slowest rank
    /// (progress bound; prevents unbounded staleness).
    pub max_lag: usize,
    /// Scheduler seed.
    pub seed: u64,
}

impl Default for AsyncOptions {
    fn default() -> Self {
        AsyncOptions {
            advance_probability: 0.7,
            max_lag: 4,
            seed: 1,
        }
    }
}

/// Runs ranks with independent phase clocks.
pub struct AsyncExecutor<A: RankAlgorithm> {
    ranks: Vec<A>,
    /// Global phase counter per rank (`step * phases + phase`).
    clock: Vec<usize>,
    /// Messages awaiting the target's next phase boundary.
    pending: Vec<Vec<Envelope<A::Msg>>>,
    /// Messages visible to the target's next phase.
    inboxes: Vec<Vec<Envelope<A::Msg>>>,
    opts: AsyncOptions,
    rng_state: u64,
    /// Fault decisions for messages crossing tick boundaries.
    injector: FaultInjector,
    /// Messages deferred by delay injection: `(due_tick, target, env)`.
    delayed: Vec<(u64, usize, Envelope<A::Msg>)>,
    /// Per-(origin, target) message indices for the fate keys (scratch).
    fate_seq: Vec<u32>,
    /// Targets touched in `fate_seq` by the current origin (scratch).
    seq_touched: Vec<usize>,
    /// Completed scheduler ticks.
    ticks: u64,
    /// Aggregate statistics (time model is not meaningful here; only
    /// message counts are tracked).
    pub stats: RunStats,
}

impl<A: RankAlgorithm> AsyncExecutor<A> {
    /// Creates an asynchronous executor.
    pub fn new(ranks: Vec<A>, opts: AsyncOptions) -> Self {
        Self::with_chaos(ranks, opts, ChaosConfig::none())
            .expect("a no-fault config is always accepted")
    }

    /// As [`new`](Self::new), with message fault injection (drops,
    /// duplicates, delays — delays are measured in scheduler ticks here).
    ///
    /// Stall injection is rejected: stalls are defined in terms of the
    /// lock-step parallel step, which this executor does not have. Model
    /// stragglers with `advance_probability` / `max_lag` instead.
    pub fn with_chaos(
        ranks: Vec<A>,
        opts: AsyncOptions,
        chaos: ChaosConfig,
    ) -> Result<Self, String> {
        assert!(!ranks.is_empty(), "need at least one rank");
        assert!(
            (0.0..=1.0).contains(&opts.advance_probability),
            "advance_probability must be a probability"
        );
        assert!(opts.max_lag >= 1, "max_lag must be at least 1");
        chaos.validate()?;
        if chaos.stalls_active() {
            return Err(
                "AsyncExecutor does not support stall injection (stalls are defined per \
                 lock-step parallel step); set stall_rate = 0 and model stragglers with \
                 AsyncOptions::advance_probability / max_lag instead"
                    .to_string(),
            );
        }
        let n = ranks.len();
        Ok(AsyncExecutor {
            injector: FaultInjector::new(chaos, n),
            ranks,
            clock: vec![0; n],
            pending: (0..n).map(|_| Vec::new()).collect(),
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            opts,
            rng_state: opts.seed.wrapping_mul(0x9e3779b97f4a7c15) | 1,
            delayed: Vec::new(),
            fate_seq: vec![0; n],
            seq_touched: Vec::new(),
            ticks: 0,
            stats: RunStats::new(n),
        })
    }

    fn next_f64(&mut self) -> f64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Immutable access to the rank programs.
    pub fn ranks(&self) -> &[A] {
        &self.ranks
    }

    /// The per-rank phase clocks.
    pub fn clocks(&self) -> &[usize] {
        &self.clock
    }

    /// One scheduler tick: every rank that wins the coin flip — and is not
    /// too far ahead of the slowest rank — executes its next phase.
    /// Returns the number of ranks advanced.
    pub fn tick(&mut self) -> usize {
        let n = self.ranks.len();
        let nphases = self.ranks[0].phases();
        let min_clock = *self.clock.iter().min().unwrap();
        let mut advanced = 0;
        let t_tick = std::time::Instant::now();
        let mut step = StepStats::default();
        // Messages produced this tick are held back until the tick ends, so
        // a rank never sees a same-tick neighbor's output mid-flight (the
        // window rule: data lands between the target's phases).
        let mut tick_out: Vec<(usize, Envelope<A::Msg>)> = Vec::new();
        for i in 0..n {
            if self.clock[i] >= min_clock + self.opts.max_lag {
                continue; // progress bound: wait for stragglers
            }
            if self.next_f64() >= self.opts.advance_probability {
                continue;
            }
            // Phase boundary for rank i: absorb pending messages, run.
            let mut inbox = std::mem::take(&mut self.inboxes[i]);
            inbox.append(&mut self.pending[i]);
            // Deterministic order regardless of arrival interleaving.
            inbox.sort_by_key(|e| e.src);
            let phase = self.clock[i] % nphases;
            let mut ctx = PhaseCtx::new_for_async(i);
            let t0 = std::time::Instant::now();
            self.ranks[i].phase(phase, &inbox, &mut ctx);
            let wall_ns = t0.elapsed().as_nanos() as u64;
            let (outbox, totals) = ctx.into_outbox_and_totals();
            self.stats.msgs_per_rank[i] += totals.msgs;
            self.stats.rank_time_ns[i] += wall_ns;
            step.compute_ns += wall_ns;
            step.compute_ns_max_rank = step.compute_ns_max_rank.max(wall_ns);
            step.msgs += totals.msgs;
            step.msgs_solve += totals.msgs_solve;
            step.msgs_residual += totals.msgs_residual;
            step.msgs_recovery += totals.msgs_recovery;
            step.bytes += totals.bytes;
            step.bytes_solve += totals.bytes_solve;
            step.bytes_residual += totals.bytes_residual;
            step.bytes_recovery += totals.bytes_recovery;
            step.flops += totals.flops;
            step.relaxations += totals.relaxations;
            step.active_ranks += u64::from(totals.active);
            tick_out.extend(outbox);
            self.clock[i] += 1;
            advanced += 1;
        }
        // Fault injection at the tick boundary (the serialized delivery
        // point, analogous to the superstep executor's epoch close). Fates
        // are keyed on `(tick, origin, target, index, class)`; `tick_out`
        // is grouped by origin in rank order, so the per-(origin, target)
        // index scratch resets whenever the origin changes.
        let message_faults = self.injector.config().message_faults_active();
        let mut cur_origin = usize::MAX;
        for (target, env) in tick_out {
            let fate = if message_faults {
                if env.src != cur_origin {
                    for &t in &self.seq_touched {
                        self.fate_seq[t] = 0;
                    }
                    self.seq_touched.clear();
                    cur_origin = env.src;
                }
                let idx = self.fate_seq[target];
                self.fate_seq[target] += 1;
                if idx == 0 {
                    self.seq_touched.push(target);
                }
                self.injector
                    .fate_at(self.ticks, env.src as u32, target as u32, idx, env.class)
            } else {
                crate::fault::Fate::DELIVER
            };
            if fate.dropped {
                step.faults.dropped.add(env.class, 1);
                continue;
            }
            if fate.duplicated {
                step.faults.duplicated.add(env.class, 1);
                self.pending[target].push(env.clone());
            }
            if fate.delay > 0 {
                step.faults.delayed.add(env.class, 1);
                self.delayed
                    .push((self.ticks + fate.delay as u64, target, env));
            } else {
                self.pending[target].push(env);
            }
        }
        // Surface deferred messages whose delay expired this tick — one
        // order-preserving partition pass (deferral order is kept for both
        // the extracted and the retained messages).
        if !self.delayed.is_empty() {
            let due = self.ticks;
            for (_, target, env) in self.delayed.extract_if(.., |d| d.0 <= due) {
                self.pending[target].push(env);
            }
        }
        self.ticks += 1;
        // Record a pseudo-step for the counters. The tick runs on the
        // calling thread, so span == one worker's busy time.
        step.span_ns = t_tick.elapsed().as_nanos() as u64;
        step.workers = 1;
        self.stats.steps.push(step);
        advanced
    }

    /// Ticks until every rank has completed at least `steps` full parallel
    /// steps (all phases), or `max_ticks` elapses. Returns ticks used.
    pub fn run_steps(&mut self, steps: usize, max_ticks: usize) -> usize {
        let nphases = self.ranks[0].phases();
        let goal = steps * nphases;
        for t in 0..max_ticks {
            if self.clock.iter().all(|&c| c >= goal) {
                return t;
            }
            self.tick();
        }
        max_ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::RankAlgorithm;
    use crate::stats::CommClass;

    /// The ring test program from the superstep executor tests.
    struct Ring {
        id: usize,
        n: usize,
        value: u64,
    }

    impl RankAlgorithm for Ring {
        type Msg = u64;
        fn phases(&self) -> usize {
            1
        }
        fn phase(&mut self, _phase: usize, inbox: &[Envelope<u64>], ctx: &mut PhaseCtx<u64>) {
            for e in inbox {
                self.value += e.payload;
            }
            ctx.put((self.id + 1) % self.n, CommClass::Solve, self.value, 8);
        }
    }

    #[test]
    fn async_ring_makes_progress_under_lag_bound() {
        let ranks: Vec<Ring> = (0..5).map(|id| Ring { id, n: 5, value: 1 }).collect();
        let mut ex = AsyncExecutor::new(ranks, AsyncOptions::default());
        let ticks = ex.run_steps(10, 10_000);
        assert!(ticks < 10_000, "should reach 10 steps quickly");
        // Lag bound held throughout (final state check).
        let min = *ex.clocks().iter().min().unwrap();
        let max = *ex.clocks().iter().max().unwrap();
        assert!(max - min <= ex.opts.max_lag);
        // Values grew (messages flowed).
        assert!(ex.ranks().iter().all(|r| r.value > 1));
        assert!(ex.stats.total_msgs() > 0);
        // Timing observables populate here too.
        assert!(ex.stats.rank_time_ns.iter().all(|&ns| ns > 0));
        assert!(ex.stats.total_compute_ns() > 0);
        assert!(ex.stats.total_span_ns() >= ex.stats.total_compute_ns() / 2);
    }

    #[test]
    fn async_scheduling_is_deterministic_per_seed() {
        let mk = || {
            let ranks: Vec<Ring> = (0..4).map(|id| Ring { id, n: 4, value: 1 }).collect();
            AsyncExecutor::new(ranks, AsyncOptions::default())
        };
        let mut a = mk();
        let mut b = mk();
        a.run_steps(8, 1000);
        b.run_steps(8, 1000);
        let va: Vec<u64> = a.ranks().iter().map(|r| r.value).collect();
        let vb: Vec<u64> = b.ranks().iter().map(|r| r.value).collect();
        assert_eq!(va, vb);
        assert_eq!(a.clocks(), b.clocks());
    }

    #[test]
    fn zero_probability_never_advances() {
        let ranks: Vec<Ring> = (0..3).map(|id| Ring { id, n: 3, value: 1 }).collect();
        let mut ex = AsyncExecutor::new(
            ranks,
            AsyncOptions {
                advance_probability: 0.0,
                ..AsyncOptions::default()
            },
        );
        assert_eq!(ex.tick(), 0);
        assert_eq!(ex.clocks(), &[0, 0, 0]);
    }

    #[test]
    fn stall_config_rejected_with_clear_error() {
        let ranks: Vec<Ring> = (0..2).map(|id| Ring { id, n: 2, value: 1 }).collect();
        let chaos = ChaosConfig {
            stall_rate: 0.5,
            stall_steps: 2,
            ..ChaosConfig::none()
        };
        let err = AsyncExecutor::with_chaos(ranks, AsyncOptions::default(), chaos)
            .err()
            .expect("stall config must be rejected");
        assert!(
            err.contains("stall"),
            "error should name the problem: {err}"
        );
        assert!(
            err.contains("advance_probability"),
            "error should point at the supported alternative: {err}"
        );
    }

    #[test]
    fn async_message_faults_deterministic_and_counted() {
        let chaos = ChaosConfig {
            drop_rate: 0.2,
            duplicate_rate: 0.2,
            delay_rate: 0.2,
            max_delay_epochs: 3,
            seed: 9,
            ..ChaosConfig::none()
        };
        let mk = || {
            let ranks: Vec<Ring> = (0..4).map(|id| Ring { id, n: 4, value: 1 }).collect();
            AsyncExecutor::with_chaos(ranks, AsyncOptions::default(), chaos).unwrap()
        };
        let mut a = mk();
        let mut b = mk();
        a.run_steps(12, 1000);
        b.run_steps(12, 1000);
        let va: Vec<u64> = a.ranks().iter().map(|r| r.value).collect();
        let vb: Vec<u64> = b.ranks().iter().map(|r| r.value).collect();
        assert_eq!(va, vb, "fault pattern must be deterministic per seed");
        let faults = a.stats.total_faults();
        assert!(faults.dropped.total() > 0);
        assert!(faults.duplicated.total() > 0);
        assert!(faults.delayed.total() > 0);
        assert_eq!(faults.stalled_ranks, 0);
    }
}
