//! Asynchronous execution: ranks progress at different rates.
//!
//! The paper's MPI implementation uses Casper ghost processes for
//! asynchronous one-sided progress, and its predecessor (ICCS'16) was an
//! explicitly asynchronous method. The lock-step [`crate::Executor`]
//! captures the *epoch semantics*; this module captures the *asynchrony*:
//! each scheduler tick advances a pseudo-random subset of ranks by one
//! phase, so some ranks race ahead while others lag (bounded by
//! `max_lag` phases, modelling a progress guarantee). Puts are delivered
//! when the *target* finishes its current phase — a rank never sees a
//! message mid-phase, preserving the window-consistency rule — but unlike
//! the superstep executor, messages from a fast neighbor can arrive
//! "early" and several at once.
//!
//! The Southwell protocols tolerate this by design (their neighbor data
//! are estimates); the `async_execution_still_converges` tests demonstrate
//! it.

use crate::executor::{Envelope, PhaseCtx, RankAlgorithm};
use crate::fault::{ChaosConfig, FaultInjector};
use crate::stats::{RunStats, StepStats};

/// Scheduling options for the asynchronous executor.
#[derive(Debug, Clone, Copy)]
pub struct AsyncOptions {
    /// Probability that a ready rank is advanced on a given tick.
    pub advance_probability: f64,
    /// Maximum phase lead any rank may have over the slowest rank
    /// (progress bound; prevents unbounded staleness).
    pub max_lag: usize,
    /// Scheduler seed.
    pub seed: u64,
    /// Heterogeneity of rank speeds in `[0, 1]`: rank `i` advances with
    /// probability `advance_probability · (1 − straggler_skew · u_i)`,
    /// where `u_i ∈ [0, 1)` is a per-rank uniform drawn once from `seed`
    /// (deterministic per seed). `0.0` — the default — keeps every rank at
    /// `advance_probability` (the homogeneous model); values near `1.0`
    /// give some ranks nearly zero speed, the straggler regime of the
    /// asynchronous-solver literature.
    pub straggler_skew: f64,
}

impl Default for AsyncOptions {
    fn default() -> Self {
        AsyncOptions {
            advance_probability: 0.7,
            max_lag: 4,
            seed: 1,
            straggler_skew: 0.0,
        }
    }
}

/// SplitMix64 finalizer — the same mixer the fault injector uses; here it
/// turns `(seed, rank)` into the per-rank speed draw.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The outcome of [`AsyncExecutor::run_steps`]: how many ticks elapsed,
/// with `Err` marking a timeout (the goal was NOT reached within the
/// budget). A goal reached exactly on the final permitted tick is
/// `Ok(max_ticks)`, not a timeout.
pub type RunStepsResult = Result<usize, usize>;

/// Runs ranks with independent phase clocks.
pub struct AsyncExecutor<A: RankAlgorithm> {
    ranks: Vec<A>,
    /// Global phase counter per rank (`step * phases + phase`).
    clock: Vec<usize>,
    /// Messages awaiting the target's next phase boundary.
    pending: Vec<Vec<Envelope<A::Msg>>>,
    /// Messages visible to the target's next phase: at each phase boundary
    /// the rank's `pending` queue is drained into this buffer (the moment
    /// of visibility under the window rule), the phase reads it, and it is
    /// cleared — retaining its capacity across ticks.
    inboxes: Vec<Vec<Envelope<A::Msg>>>,
    opts: AsyncOptions,
    /// Per-rank advance probability (the straggler model): uniform at
    /// `advance_probability` when `straggler_skew` is zero, skewed
    /// downward per rank otherwise. Drawn once at construction.
    advance_p: Vec<f64>,
    rng_state: u64,
    /// Fault decisions for messages crossing tick boundaries.
    injector: FaultInjector,
    /// Messages deferred by delay injection: `(due_tick, target, env)`.
    delayed: Vec<(u64, usize, Envelope<A::Msg>)>,
    /// Stall decisions for the current tick window (redrawn every
    /// `phases()` ticks; all `false` without stall injection).
    stall_window: Vec<bool>,
    /// Logical lag groups (see [`AsyncExecutor::set_lag_groups`]): the
    /// progress bound gates on the slowest *group* (a group progresses at
    /// its fastest member), not the slowest rank. `None` = every rank is
    /// its own group — the classic per-rank bound.
    lag_groups: Option<Vec<Vec<u32>>>,
    /// Per-(origin, target) message indices for the fate keys (scratch).
    fate_seq: Vec<u32>,
    /// Targets touched in `fate_seq` by the current origin (scratch).
    seq_touched: Vec<usize>,
    /// Completed scheduler ticks.
    ticks: u64,
    /// Aggregate statistics (time model is not meaningful here; only
    /// message counts are tracked).
    pub stats: RunStats,
}

impl<A: RankAlgorithm> AsyncExecutor<A> {
    /// Creates an asynchronous executor.
    pub fn new(ranks: Vec<A>, opts: AsyncOptions) -> Self {
        Self::with_chaos(ranks, opts, ChaosConfig::none())
            .expect("a no-fault config is always accepted")
    }

    /// As [`new`](Self::new), with message fault injection (drops,
    /// duplicates, delays — delays are measured in scheduler ticks here)
    /// and stall injection at tick-window granularity: stall decisions are
    /// redrawn once every `phases()` ticks (one parallel step's worth of
    /// phases, mirroring the superstep executor's per-step draws), and a
    /// stalled rank executes no phase for the whole window while its
    /// pending messages keep accumulating.
    pub fn with_chaos(
        ranks: Vec<A>,
        opts: AsyncOptions,
        chaos: ChaosConfig,
    ) -> Result<Self, String> {
        assert!(!ranks.is_empty(), "need at least one rank");
        assert!(
            (0.0..=1.0).contains(&opts.advance_probability),
            "advance_probability must be a probability"
        );
        assert!(
            (0.0..=1.0).contains(&opts.straggler_skew),
            "straggler_skew must be in [0, 1]"
        );
        assert!(opts.max_lag >= 1, "max_lag must be at least 1");
        chaos.validate()?;
        let n = ranks.len();
        // The per-rank speed draw is independent of the scheduler's
        // coin-flip stream, so turning skew on or off never perturbs the
        // flips themselves.
        let advance_p: Vec<f64> = (0..n)
            .map(|i| {
                let u = if opts.straggler_skew > 0.0 {
                    let h = mix64(opts.seed ^ (i as u64).wrapping_mul(0xd1342543de82ef95));
                    (h >> 11) as f64 / (1u64 << 53) as f64
                } else {
                    0.0
                };
                opts.advance_probability * (1.0 - opts.straggler_skew * u)
            })
            .collect();
        Ok(AsyncExecutor {
            injector: FaultInjector::new(chaos, n),
            ranks,
            clock: vec![0; n],
            pending: (0..n).map(|_| Vec::new()).collect(),
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            opts,
            advance_p,
            rng_state: opts.seed.wrapping_mul(0x9e3779b97f4a7c15) | 1,
            delayed: Vec::new(),
            stall_window: vec![false; n],
            lag_groups: None,
            fate_seq: vec![0; n],
            seq_touched: Vec::new(),
            ticks: 0,
            stats: RunStats::new(n),
        })
    }

    fn next_f64(&mut self) -> f64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Immutable access to the rank programs.
    pub fn ranks(&self) -> &[A] {
        &self.ranks
    }

    /// Mutable access to the rank programs (the driver's freeze watchdog
    /// nudges through this).
    pub fn ranks_mut(&mut self) -> &mut [A] {
        &mut self.ranks
    }

    /// The per-rank phase clocks.
    pub fn clocks(&self) -> &[usize] {
        &self.clock
    }

    /// Declares logical lag groups for the progress bound, e.g. the
    /// replica sets of a redundancy-coded placement: a logical block has
    /// made progress once its *fastest* host has, so the `max_lag` bound
    /// gates on the slowest group maximum instead of the slowest rank.
    /// With singleton groups this is exactly the per-rank bound. Groups
    /// may overlap (a rank hosting `r` blocks sits in `r` groups); every
    /// rank must appear in at least one group.
    pub fn set_lag_groups(&mut self, groups: Vec<Vec<u32>>) {
        let n = self.ranks.len();
        assert!(!groups.is_empty(), "need at least one lag group");
        let mut covered = vec![false; n];
        for g in &groups {
            assert!(!g.is_empty(), "lag groups must be non-empty");
            for &m in g {
                assert!((m as usize) < n, "lag group member {m} out of range");
                covered[m as usize] = true;
            }
        }
        assert!(
            covered.iter().all(|&c| c),
            "every rank must appear in at least one lag group"
        );
        self.lag_groups = Some(groups);
    }

    /// The progress gate: the slowest logical group's best clock (per-rank
    /// minimum when no groups are declared).
    fn lag_gate(&self) -> usize {
        match &self.lag_groups {
            None => *self
                .clock
                .iter()
                .min()
                .expect("an executor has at least one rank"),
            Some(groups) => groups
                .iter()
                .map(|g| {
                    g.iter()
                        .map(|&m| self.clock[m as usize])
                        .max()
                        .expect("lag groups are validated non-empty")
                })
                .min()
                .expect("lag groups are validated non-empty"),
        }
    }

    /// Per-group best clocks (the logical progress observable): one entry
    /// per lag group, or the per-rank clocks when no groups are declared.
    pub fn logical_clocks(&self) -> Vec<usize> {
        match &self.lag_groups {
            None => self.clock.clone(),
            Some(groups) => groups
                .iter()
                .map(|g| {
                    g.iter()
                        .map(|&m| self.clock[m as usize])
                        .max()
                        .expect("lag groups are validated non-empty")
                })
                .collect(),
        }
    }

    /// The pace the run is gated on: the slowest group's fastest member's
    /// advance probability (slowest rank when no groups are declared) —
    /// what a tick budget should divide by.
    pub fn pacing_probability(&self) -> f64 {
        match &self.lag_groups {
            None => self.advance_p.iter().cloned().fold(f64::INFINITY, f64::min),
            Some(groups) => groups
                .iter()
                .map(|g| {
                    g.iter()
                        .map(|&m| self.advance_p[m as usize])
                        .fold(0.0, f64::max)
                })
                .fold(f64::INFINITY, f64::min),
        }
    }

    /// Direct access to the fault injector, e.g. to force targeted
    /// stragglers with [`FaultInjector::inject_stall`].
    pub fn injector_mut(&mut self) -> &mut FaultInjector {
        &mut self.injector
    }

    /// Completed scheduler ticks.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The realized per-rank advance probabilities (the straggler model's
    /// speed draws; all equal to `advance_probability` at zero skew).
    pub fn advance_probabilities(&self) -> &[f64] {
        &self.advance_p
    }

    /// Messages currently in flight: queued for a future phase boundary or
    /// parked by delay injection. Zero means nothing undelivered remains,
    /// so a globally idle window cannot be woken by the substrate.
    pub fn in_flight(&self) -> usize {
        self.pending.iter().map(Vec::len).sum::<usize>() + self.delayed.len()
    }

    /// One scheduler tick: every rank that wins the coin flip — and is not
    /// too far ahead of the progress gate, and not stalled this window —
    /// executes its next phase. Returns the number of ranks advanced.
    pub fn tick(&mut self) -> usize {
        let n = self.ranks.len();
        let nphases = self.ranks[0].phases();
        let mut advanced = 0;
        let t_tick = std::time::Instant::now();
        let mut step = StepStats::default();
        // Stall window: decisions are redrawn once every `nphases` ticks
        // (one parallel step's worth of phases), mirroring the superstep
        // executor's per-step draws; a stalled rank sits out the window.
        if self.ticks.is_multiple_of(nphases as u64) {
            self.stall_window = self.injector.step_stalls();
            step.faults.stalled_ranks += self.stall_window.iter().filter(|&&s| s).count() as u64;
        }
        let gate = self.lag_gate();
        // Messages produced this tick are held back until the tick ends, so
        // a rank never sees a same-tick neighbor's output mid-flight (the
        // window rule: data lands between the target's phases).
        let mut tick_out: Vec<(usize, Envelope<A::Msg>)> = Vec::new();
        for i in 0..n {
            if self.stall_window[i] {
                continue; // injected stall: no phase, inbox accumulates
            }
            if self.clock[i] >= gate + self.opts.max_lag {
                continue; // progress bound: wait for stragglers
            }
            if self.next_f64() >= self.advance_p[i] {
                continue;
            }
            // Phase boundary for rank i: pending puts become visible by
            // moving into the rank's inbox (cleared after the phase, so
            // each message is seen exactly once; capacity is retained).
            self.inboxes[i].append(&mut self.pending[i]);
            // Deterministic order regardless of arrival interleaving.
            self.inboxes[i].sort_by_key(|e| e.src);
            let phase = self.clock[i] % nphases;
            let mut ctx = PhaseCtx::new_for_async(i);
            let t0 = std::time::Instant::now();
            self.ranks[i].phase(phase, &self.inboxes[i], &mut ctx);
            self.inboxes[i].clear();
            let wall_ns = t0.elapsed().as_nanos() as u64;
            let (outbox, totals) = ctx.into_outbox_and_totals();
            self.stats.msgs_per_rank[i] += totals.msgs;
            self.stats.rank_time_ns[i] += wall_ns;
            step.compute_ns += wall_ns;
            step.compute_ns_max_rank = step.compute_ns_max_rank.max(wall_ns);
            step.msgs += totals.msgs;
            step.msgs_solve += totals.msgs_solve;
            step.msgs_residual += totals.msgs_residual;
            step.msgs_recovery += totals.msgs_recovery;
            step.msgs_redundancy += totals.msgs_redundancy;
            step.bytes += totals.bytes;
            step.bytes_solve += totals.bytes_solve;
            step.bytes_residual += totals.bytes_residual;
            step.bytes_recovery += totals.bytes_recovery;
            step.bytes_redundancy += totals.bytes_redundancy;
            step.flops += totals.flops;
            step.relaxations += totals.relaxations;
            step.active_ranks += u64::from(totals.active);
            tick_out.extend(outbox);
            self.clock[i] += 1;
            advanced += 1;
        }
        // Fault injection at the tick boundary (the serialized delivery
        // point, analogous to the superstep executor's epoch close). Fates
        // are keyed on `(tick, origin, target, index, class)`; `tick_out`
        // is grouped by origin in rank order, so the per-(origin, target)
        // index scratch resets whenever the origin changes.
        let message_faults = self.injector.config().message_faults_active();
        let mut cur_origin = usize::MAX;
        for (target, env) in tick_out {
            let fate = if message_faults {
                if env.src != cur_origin {
                    for &t in &self.seq_touched {
                        self.fate_seq[t] = 0;
                    }
                    self.seq_touched.clear();
                    cur_origin = env.src;
                }
                let idx = self.fate_seq[target];
                self.fate_seq[target] += 1;
                if idx == 0 {
                    self.seq_touched.push(target);
                }
                self.injector
                    .fate_at(self.ticks, env.src as u32, target as u32, idx, env.class)
            } else {
                crate::fault::Fate::DELIVER
            };
            if fate.dropped {
                step.faults.dropped.add(env.class, 1);
                continue;
            }
            if fate.duplicated {
                step.faults.duplicated.add(env.class, 1);
                self.pending[target].push(env.clone());
            }
            if fate.delay > 0 {
                step.faults.delayed.add(env.class, 1);
                self.delayed
                    .push((self.ticks + fate.delay as u64, target, env));
            } else {
                self.pending[target].push(env);
            }
        }
        // Surface deferred messages whose delay expired this tick — one
        // order-preserving partition pass (deferral order is kept for both
        // the extracted and the retained messages).
        if !self.delayed.is_empty() {
            let due = self.ticks;
            for (_, target, env) in self.delayed.extract_if(.., |d| d.0 <= due) {
                self.pending[target].push(env);
            }
        }
        self.ticks += 1;
        // Record a pseudo-step for the counters. The tick runs on the
        // calling thread, so span == one worker's busy time.
        step.span_ns = t_tick.elapsed().as_nanos() as u64;
        step.workers = 1;
        self.stats.steps.push(step);
        advanced
    }

    /// Ticks until every *logical* clock — per-rank clocks, or the group
    /// maxima when lag groups are declared — has completed at least
    /// `steps` full parallel steps (all phases), or `max_ticks` elapses.
    ///
    /// `Ok(ticks)` when the goal was reached — including when the final
    /// permitted tick is the one that gets every clock there — and
    /// `Err(max_ticks)` on a genuine timeout. (An earlier version returned
    /// a bare tick count, which made a goal reached exactly on the last
    /// tick indistinguishable from running out of budget.)
    pub fn run_steps(&mut self, steps: usize, max_ticks: usize) -> RunStepsResult {
        let nphases = self.ranks[0].phases();
        let goal = steps * nphases;
        let done = |ex: &Self| ex.logical_clocks().iter().all(|&c| c >= goal);
        for t in 0..max_ticks {
            if done(self) {
                return Ok(t);
            }
            self.tick();
        }
        if done(self) {
            Ok(max_ticks)
        } else {
            Err(max_ticks)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::RankAlgorithm;
    use crate::stats::CommClass;

    /// The ring test program from the superstep executor tests.
    struct Ring {
        id: usize,
        n: usize,
        value: u64,
    }

    impl RankAlgorithm for Ring {
        type Msg = u64;
        fn phases(&self) -> usize {
            1
        }
        fn phase(&mut self, _phase: usize, inbox: &[Envelope<u64>], ctx: &mut PhaseCtx<u64>) {
            for e in inbox {
                self.value += e.payload;
            }
            ctx.put((self.id + 1) % self.n, CommClass::Solve, self.value, 8);
        }
    }

    #[test]
    fn async_ring_makes_progress_under_lag_bound() {
        let ranks: Vec<Ring> = (0..5).map(|id| Ring { id, n: 5, value: 1 }).collect();
        let mut ex = AsyncExecutor::new(ranks, AsyncOptions::default());
        let ticks = ex
            .run_steps(10, 10_000)
            .expect("should reach 10 steps within budget");
        assert!(ticks < 10_000, "should reach 10 steps quickly");
        // Lag bound held throughout (final state check).
        let min = *ex.clocks().iter().min().unwrap();
        let max = *ex.clocks().iter().max().unwrap();
        assert!(max - min <= ex.opts.max_lag);
        // Values grew (messages flowed).
        assert!(ex.ranks().iter().all(|r| r.value > 1));
        assert!(ex.stats.total_msgs() > 0);
        // Timing observables populate here too.
        assert!(ex.stats.rank_time_ns.iter().all(|&ns| ns > 0));
        assert!(ex.stats.total_compute_ns() > 0);
        assert!(ex.stats.total_span_ns() >= ex.stats.total_compute_ns() / 2);
    }

    #[test]
    fn async_scheduling_is_deterministic_per_seed() {
        let mk = || {
            let ranks: Vec<Ring> = (0..4).map(|id| Ring { id, n: 4, value: 1 }).collect();
            AsyncExecutor::new(ranks, AsyncOptions::default())
        };
        let mut a = mk();
        let mut b = mk();
        a.run_steps(8, 1000).unwrap();
        b.run_steps(8, 1000).unwrap();
        let va: Vec<u64> = a.ranks().iter().map(|r| r.value).collect();
        let vb: Vec<u64> = b.ranks().iter().map(|r| r.value).collect();
        assert_eq!(va, vb);
        assert_eq!(a.clocks(), b.clocks());
    }

    /// Regression for the timeout/success conflation: a goal reached
    /// exactly on the final permitted tick must be `Ok`, and only a budget
    /// that genuinely falls short is `Err`.
    #[test]
    fn run_steps_distinguishes_goal_on_final_tick_from_timeout() {
        let mk = || {
            let ranks: Vec<Ring> = (0..4).map(|id| Ring { id, n: 4, value: 1 }).collect();
            AsyncExecutor::new(ranks, AsyncOptions::default())
        };
        // Find the exact tick count this seed needs for 6 full steps.
        let needed = mk().run_steps(6, 10_000).expect("ample budget");
        assert!(needed > 0);
        // A budget of exactly `needed` ticks reaches the goal on its final
        // tick: success, reported as such.
        assert_eq!(mk().run_steps(6, needed), Ok(needed));
        // One tick less genuinely times out.
        assert_eq!(mk().run_steps(6, needed - 1), Err(needed - 1));
        // Zero-work goal needs zero ticks regardless of budget.
        assert_eq!(mk().run_steps(0, 0), Ok(0));
    }

    /// A rank that counts every message it absorbs: conservation proves the
    /// inbox buffer delivers each pending put exactly once.
    struct Counter {
        id: usize,
        n: usize,
        received: u64,
        sent: u64,
    }

    impl RankAlgorithm for Counter {
        type Msg = u64;
        fn phases(&self) -> usize {
            1
        }
        fn phase(&mut self, _phase: usize, inbox: &[Envelope<u64>], ctx: &mut PhaseCtx<u64>) {
            self.received += inbox.len() as u64;
            ctx.put((self.id + 1) % self.n, CommClass::Solve, 1, 8);
            self.sent += 1;
        }
    }

    /// Message flow through the absorb buffer: on a reliable link every
    /// put is seen by its target exactly once — total received equals
    /// total sent minus what is still in flight at the end.
    #[test]
    fn absorb_buffer_delivers_each_message_exactly_once() {
        let ranks: Vec<Counter> = (0..5)
            .map(|id| Counter {
                id,
                n: 5,
                received: 0,
                sent: 0,
            })
            .collect();
        let mut ex = AsyncExecutor::new(ranks, AsyncOptions::default());
        ex.run_steps(20, 10_000).unwrap();
        let sent: u64 = ex.ranks().iter().map(|r| r.sent).sum();
        let received: u64 = ex.ranks().iter().map(|r| r.received).sum();
        assert_eq!(
            received + ex.in_flight() as u64,
            sent,
            "each message must be absorbed exactly once (sent {sent}, received {received}, \
             in flight {})",
            ex.in_flight()
        );
        assert_eq!(ex.stats.total_msgs(), sent);
    }

    #[test]
    fn straggler_skew_slows_some_ranks_deterministically() {
        let opts = AsyncOptions {
            straggler_skew: 0.9,
            seed: 7,
            ..AsyncOptions::default()
        };
        let mk = || {
            let ranks: Vec<Ring> = (0..8).map(|id| Ring { id, n: 8, value: 1 }).collect();
            AsyncExecutor::new(ranks, opts)
        };
        let ex = mk();
        let ps = ex.advance_probabilities();
        let lo = ps.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ps.iter().cloned().fold(0.0, f64::max);
        assert!(hi - lo > 0.1, "skew 0.9 should spread rank speeds: {ps:?}");
        assert!(ps.iter().all(|&p| p <= opts.advance_probability + 1e-15));
        // Deterministic per seed: same draws, same run.
        let mut a = mk();
        let mut b = mk();
        a.run_steps(8, 100_000).unwrap();
        b.run_steps(8, 100_000).unwrap();
        let va: Vec<u64> = a.ranks().iter().map(|r| r.value).collect();
        let vb: Vec<u64> = b.ranks().iter().map(|r| r.value).collect();
        assert_eq!(va, vb);
        assert_eq!(a.clocks(), b.clocks());
        // Zero skew keeps the homogeneous model exactly.
        let ranks: Vec<Ring> = (0..3).map(|id| Ring { id, n: 3, value: 1 }).collect();
        let flat = AsyncExecutor::new(ranks, AsyncOptions::default());
        assert!(flat
            .advance_probabilities()
            .iter()
            .all(|&p| p == AsyncOptions::default().advance_probability));
    }

    #[test]
    fn zero_probability_never_advances() {
        let ranks: Vec<Ring> = (0..3).map(|id| Ring { id, n: 3, value: 1 }).collect();
        let mut ex = AsyncExecutor::new(
            ranks,
            AsyncOptions {
                advance_probability: 0.0,
                ..AsyncOptions::default()
            },
        );
        assert_eq!(ex.tick(), 0);
        assert_eq!(ex.clocks(), &[0, 0, 0]);
    }

    /// Stall injection runs at tick-window granularity: the config is
    /// accepted, stalled rank-windows are counted, the run is
    /// deterministic per seed, and message conservation still holds
    /// (a stalled rank's pending puts accumulate until it resumes).
    #[test]
    fn stall_config_accepted_and_deterministic() {
        let chaos = ChaosConfig {
            stall_rate: 0.4,
            stall_steps: 2,
            seed: 5,
            ..ChaosConfig::none()
        };
        let mk = || {
            let ranks: Vec<Counter> = (0..5)
                .map(|id| Counter {
                    id,
                    n: 5,
                    received: 0,
                    sent: 0,
                })
                .collect();
            AsyncExecutor::with_chaos(ranks, AsyncOptions::default(), chaos)
                .expect("stall configs are supported at tick-window granularity")
        };
        let mut a = mk();
        let mut b = mk();
        a.run_steps(20, 10_000).unwrap();
        b.run_steps(20, 10_000).unwrap();
        let obs = |ex: &AsyncExecutor<Counter>| {
            (
                ex.ranks()
                    .iter()
                    .map(|r| (r.sent, r.received))
                    .collect::<Vec<_>>(),
                ex.clocks().to_vec(),
                ex.ticks(),
            )
        };
        assert_eq!(obs(&a), obs(&b), "stall pattern must be deterministic");
        assert!(
            a.stats.total_faults().stalled_ranks > 0,
            "rate 0.4 over many windows must stall someone"
        );
        let sent: u64 = a.ranks().iter().map(|r| r.sent).sum();
        let received: u64 = a.ranks().iter().map(|r| r.received).sum();
        assert_eq!(received + a.in_flight() as u64, sent);
    }

    /// A targeted stall via `injector_mut` holds the rank still for whole
    /// tick windows while the rest keep moving up to the lag bound.
    #[test]
    fn targeted_stall_freezes_rank_for_windows() {
        let ranks: Vec<Ring> = (0..4).map(|id| Ring { id, n: 4, value: 1 }).collect();
        let mut ex = AsyncExecutor::new(
            ranks,
            AsyncOptions {
                advance_probability: 1.0,
                ..AsyncOptions::default()
            },
        );
        ex.injector_mut().inject_stall(2, 3);
        // 3 stalled windows × 1 phase per window = 3 ticks frozen.
        for _ in 0..3 {
            ex.tick();
        }
        assert_eq!(ex.clocks()[2], 0, "stalled rank must not advance");
        assert!(ex.clocks().iter().any(|&c| c > 0), "others keep moving");
        assert_eq!(ex.stats.total_faults().stalled_ranks, 3);
        for _ in 0..10 {
            ex.tick();
        }
        assert!(ex.clocks()[2] > 0, "rank resumes after the stall expires");
    }

    /// Lag groups relax the progress bound to logical blocks: with rank 0
    /// never advancing but covered by a two-member group, the others may
    /// run arbitrarily far ahead; with singleton groups they are fenced at
    /// `max_lag`.
    #[test]
    fn lag_groups_ungate_covered_stragglers() {
        let mk = || {
            let ranks: Vec<Ring> = (0..4).map(|id| Ring { id, n: 4, value: 1 }).collect();
            let mut ex = AsyncExecutor::new(
                ranks,
                AsyncOptions {
                    advance_probability: 1.0,
                    max_lag: 3,
                    ..AsyncOptions::default()
                },
            );
            // Rank 0 is a dead straggler.
            ex.injector_mut().inject_stall(0, 1_000_000);
            ex
        };
        // Singleton groups (the default): everyone is fenced at max_lag.
        let mut fenced = mk();
        for _ in 0..50 {
            fenced.tick();
        }
        assert!(fenced.clocks().iter().all(|&c| c <= 3));
        // Rank 0's block is replicated on rank 1: the gate follows the
        // group maxima and the live ranks run ahead.
        let mut coded = mk();
        coded.set_lag_groups(vec![vec![0, 1], vec![1], vec![2], vec![3]]);
        for _ in 0..50 {
            coded.tick();
        }
        assert_eq!(coded.clocks()[0], 0);
        assert!(
            coded.clocks()[1..].iter().all(|&c| c > 10),
            "covered straggler must stop gating the rest: {:?}",
            coded.clocks()
        );
        assert_eq!(coded.logical_clocks().len(), 4);
        assert!(coded.logical_clocks().iter().all(|&c| c > 10));
        assert!((coded.pacing_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn async_message_faults_deterministic_and_counted() {
        let chaos = ChaosConfig {
            drop_rate: 0.2,
            duplicate_rate: 0.2,
            delay_rate: 0.2,
            max_delay_epochs: 3,
            seed: 9,
            ..ChaosConfig::none()
        };
        let mk = || {
            let ranks: Vec<Ring> = (0..4).map(|id| Ring { id, n: 4, value: 1 }).collect();
            AsyncExecutor::with_chaos(ranks, AsyncOptions::default(), chaos).unwrap()
        };
        let mut a = mk();
        let mut b = mk();
        a.run_steps(12, 1000).unwrap();
        b.run_steps(12, 1000).unwrap();
        let va: Vec<u64> = a.ranks().iter().map(|r| r.value).collect();
        let vb: Vec<u64> = b.ranks().iter().map(|r| r.value).collect();
        assert_eq!(va, vb, "fault pattern must be deterministic per seed");
        let faults = a.stats.total_faults();
        assert!(faults.dropped.total() > 0);
        assert!(faults.duplicated.total() > 0);
        assert!(faults.delayed.total() > 0);
        assert_eq!(faults.stalled_ranks, 0);
    }
}
