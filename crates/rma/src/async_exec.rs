//! Asynchronous execution: ranks progress at different rates.
//!
//! The paper's MPI implementation uses Casper ghost processes for
//! asynchronous one-sided progress, and its predecessor (ICCS'16) was an
//! explicitly asynchronous method. The lock-step [`crate::Executor`]
//! captures the *epoch semantics*; this module captures the *asynchrony*:
//! each scheduler tick advances a pseudo-random subset of ranks by one
//! phase, so some ranks race ahead while others lag (bounded by
//! `max_lag` phases, modelling a progress guarantee). Puts are delivered
//! when the *target* finishes its current phase — a rank never sees a
//! message mid-phase, preserving the window-consistency rule — but unlike
//! the superstep executor, messages from a fast neighbor can arrive
//! "early" and several at once.
//!
//! The Southwell protocols tolerate this by design (their neighbor data
//! are estimates); the `async_execution_still_converges` tests demonstrate
//! it.

use crate::executor::{Envelope, PhaseCtx, RankAlgorithm};
use crate::stats::RunStats;

/// Scheduling options for the asynchronous executor.
#[derive(Debug, Clone, Copy)]
pub struct AsyncOptions {
    /// Probability that a ready rank is advanced on a given tick.
    pub advance_probability: f64,
    /// Maximum phase lead any rank may have over the slowest rank
    /// (progress bound; prevents unbounded staleness).
    pub max_lag: usize,
    /// Scheduler seed.
    pub seed: u64,
}

impl Default for AsyncOptions {
    fn default() -> Self {
        AsyncOptions {
            advance_probability: 0.7,
            max_lag: 4,
            seed: 1,
        }
    }
}

/// Runs ranks with independent phase clocks.
pub struct AsyncExecutor<A: RankAlgorithm> {
    ranks: Vec<A>,
    /// Global phase counter per rank (`step * phases + phase`).
    clock: Vec<usize>,
    /// Messages awaiting the target's next phase boundary.
    pending: Vec<Vec<Envelope<A::Msg>>>,
    /// Messages visible to the target's next phase.
    inboxes: Vec<Vec<Envelope<A::Msg>>>,
    opts: AsyncOptions,
    rng_state: u64,
    /// Aggregate statistics (time model is not meaningful here; only
    /// message counts are tracked).
    pub stats: RunStats,
}

impl<A: RankAlgorithm> AsyncExecutor<A> {
    /// Creates an asynchronous executor.
    pub fn new(ranks: Vec<A>, opts: AsyncOptions) -> Self {
        assert!(!ranks.is_empty(), "need at least one rank");
        assert!(
            (0.0..=1.0).contains(&opts.advance_probability),
            "advance_probability must be a probability"
        );
        assert!(opts.max_lag >= 1, "max_lag must be at least 1");
        let n = ranks.len();
        AsyncExecutor {
            ranks,
            clock: vec![0; n],
            pending: (0..n).map(|_| Vec::new()).collect(),
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            opts,
            rng_state: opts.seed.wrapping_mul(0x9e3779b97f4a7c15) | 1,
            stats: RunStats::new(n),
        }
    }

    fn next_f64(&mut self) -> f64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Immutable access to the rank programs.
    pub fn ranks(&self) -> &[A] {
        &self.ranks
    }

    /// The per-rank phase clocks.
    pub fn clocks(&self) -> &[usize] {
        &self.clock
    }

    /// One scheduler tick: every rank that wins the coin flip — and is not
    /// too far ahead of the slowest rank — executes its next phase.
    /// Returns the number of ranks advanced.
    pub fn tick(&mut self) -> usize {
        let n = self.ranks.len();
        let nphases = self.ranks[0].phases();
        let min_clock = *self.clock.iter().min().unwrap();
        let mut advanced = 0;
        let mut total_msgs = 0u64;
        // Messages produced this tick are held back until the tick ends, so
        // a rank never sees a same-tick neighbor's output mid-flight (the
        // window rule: data lands between the target's phases).
        let mut tick_out: Vec<(usize, Envelope<A::Msg>)> = Vec::new();
        for i in 0..n {
            if self.clock[i] >= min_clock + self.opts.max_lag {
                continue; // progress bound: wait for stragglers
            }
            if self.next_f64() >= self.opts.advance_probability {
                continue;
            }
            // Phase boundary for rank i: absorb pending messages, run.
            let mut inbox = std::mem::take(&mut self.inboxes[i]);
            inbox.extend(self.pending[i].drain(..));
            // Deterministic order regardless of arrival interleaving.
            inbox.sort_by_key(|e| e.src);
            let phase = self.clock[i] % nphases;
            let mut ctx = PhaseCtx::new_for_async(i);
            self.ranks[i].phase(phase, &inbox, &mut ctx);
            let (outbox, msgs) = ctx.into_outbox_and_count();
            self.stats.msgs_per_rank[i] += msgs;
            total_msgs += msgs;
            tick_out.extend(outbox);
            self.clock[i] += 1;
            advanced += 1;
        }
        for (target, env) in tick_out {
            self.pending[target].push(env);
        }
        // Record a pseudo-step for the counters.
        self.stats.steps.push(crate::stats::StepStats {
            msgs: total_msgs,
            ..Default::default()
        });
        advanced
    }

    /// Ticks until every rank has completed at least `steps` full parallel
    /// steps (all phases), or `max_ticks` elapses. Returns ticks used.
    pub fn run_steps(&mut self, steps: usize, max_ticks: usize) -> usize {
        let nphases = self.ranks[0].phases();
        let goal = steps * nphases;
        for t in 0..max_ticks {
            if self.clock.iter().all(|&c| c >= goal) {
                return t;
            }
            self.tick();
        }
        max_ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::RankAlgorithm;
    use crate::stats::CommClass;

    /// The ring test program from the superstep executor tests.
    struct Ring {
        id: usize,
        n: usize,
        value: u64,
    }

    impl RankAlgorithm for Ring {
        type Msg = u64;
        fn phases(&self) -> usize {
            1
        }
        fn phase(
            &mut self,
            _phase: usize,
            inbox: &[Envelope<u64>],
            ctx: &mut PhaseCtx<u64>,
        ) {
            for e in inbox {
                self.value += e.payload;
            }
            ctx.put((self.id + 1) % self.n, CommClass::Solve, self.value, 8);
        }
    }

    #[test]
    fn async_ring_makes_progress_under_lag_bound() {
        let ranks: Vec<Ring> = (0..5)
            .map(|id| Ring {
                id,
                n: 5,
                value: 1,
            })
            .collect();
        let mut ex = AsyncExecutor::new(ranks, AsyncOptions::default());
        let ticks = ex.run_steps(10, 10_000);
        assert!(ticks < 10_000, "should reach 10 steps quickly");
        // Lag bound held throughout (final state check).
        let min = *ex.clocks().iter().min().unwrap();
        let max = *ex.clocks().iter().max().unwrap();
        assert!(max - min <= ex.opts.max_lag);
        // Values grew (messages flowed).
        assert!(ex.ranks().iter().all(|r| r.value > 1));
        assert!(ex.stats.total_msgs() > 0);
    }

    #[test]
    fn async_scheduling_is_deterministic_per_seed() {
        let mk = || {
            let ranks: Vec<Ring> = (0..4)
                .map(|id| Ring {
                    id,
                    n: 4,
                    value: 1,
                })
                .collect();
            AsyncExecutor::new(ranks, AsyncOptions::default())
        };
        let mut a = mk();
        let mut b = mk();
        a.run_steps(8, 1000);
        b.run_steps(8, 1000);
        let va: Vec<u64> = a.ranks().iter().map(|r| r.value).collect();
        let vb: Vec<u64> = b.ranks().iter().map(|r| r.value).collect();
        assert_eq!(va, vb);
        assert_eq!(a.clocks(), b.clocks());
    }

    #[test]
    fn zero_probability_never_advances() {
        let ranks: Vec<Ring> = (0..3)
            .map(|id| Ring {
                id,
                n: 3,
                value: 1,
            })
            .collect();
        let mut ex = AsyncExecutor::new(
            ranks,
            AsyncOptions {
                advance_probability: 0.0,
                ..AsyncOptions::default()
            },
        );
        assert_eq!(ex.tick(), 0);
        assert_eq!(ex.clocks(), &[0, 0, 0]);
    }
}
