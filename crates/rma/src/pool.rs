//! A persistent work-stealing worker pool for the superstep executor.
//!
//! The original `ExecMode::Threaded` scheduler spawned a fresh
//! `crossbeam::thread::scope` for every phase of every parallel step and
//! statically chunked ranks contiguously. That has two costs the paper's
//! workload makes visible: thread spawn/join overhead dominates small
//! steps (Distributed Southwell runs two short phases per step, most of
//! which relax only a handful of "winning" ranks), and contiguous chunking
//! clusters the hot ranks of an imbalanced step onto one thread.
//!
//! This pool fixes both. Workers are created **once per executor** and
//! parked on a condvar between dispatches. A dispatch publishes a
//! type-erased task closure plus a task count; workers self-schedule
//! batches of `grain` consecutive task indices from a shared atomic cursor
//! (chunked self-scheduling — the lock-free equivalent of a work-stealing
//! deque for an indexed task list: whichever worker finishes early steals
//! the next batch). Hot ranks therefore spread across workers no matter
//! where they sit in rank order, and a tiny grain amortizes the cursor
//! traffic when subdomains are small.
//!
//! Determinism is unaffected by construction: a task index is claimed by
//! exactly one worker (`fetch_add`), every task writes only to its own
//! preallocated result slot, and the dispatch does not return until every
//! worker has quiesced — scheduling order can change *when* a rank runs,
//! never *what* it computes or where the result lands.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Type-erased pointer to the dispatch closure. The pointee is guaranteed
/// by [`WorkerPool::run`] to outlive the dispatch (the call blocks until
/// all workers have finished with it).
struct TaskPtr(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is Sync and `run` fences its lifetime.
unsafe impl Send for TaskPtr {}

/// Dispatch state guarded by the pool mutex.
struct Dispatch {
    /// Monotone dispatch counter; a worker runs one dispatch per increment.
    generation: u64,
    /// The current task closure (`None` between dispatches).
    task: Option<TaskPtr>,
    /// Number of task indices in the current dispatch.
    ntasks: usize,
    /// Batch size workers claim from the cursor.
    grain: usize,
    /// Workers that have finished the current dispatch.
    done: usize,
    /// Pool is shutting down (drop).
    shutdown: bool,
}

struct Shared {
    state: Mutex<Dispatch>,
    /// Workers wait here for a new generation.
    work_cv: Condvar,
    /// The dispatcher waits here for `done == nworkers`.
    done_cv: Condvar,
    /// Next unclaimed task index of the current dispatch.
    cursor: AtomicUsize,
    /// Cumulative busy wall-time per worker, nanoseconds.
    busy_ns: Vec<AtomicU64>,
}

/// Persistent worker pool. Created once, reused for every phase dispatch,
/// joined on drop.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `nworkers` parked worker threads (`nworkers >= 1`).
    pub(crate) fn new(nworkers: usize) -> Self {
        assert!(nworkers >= 1, "a pool needs at least one worker");
        let shared = Arc::new(Shared {
            state: Mutex::new(Dispatch {
                generation: 0,
                task: None,
                ntasks: 0,
                grain: 1,
                done: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cursor: AtomicUsize::new(0),
            busy_ns: (0..nworkers).map(|_| AtomicU64::new(0)).collect(),
        });
        let handles = (0..nworkers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dsw-rma-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of workers.
    pub(crate) fn nworkers(&self) -> usize {
        self.handles.len()
    }

    /// Cumulative busy wall-time of worker `w` in nanoseconds.
    pub(crate) fn busy_ns(&self, w: usize) -> u64 {
        self.shared.busy_ns[w].load(Ordering::Relaxed)
    }

    /// Runs `task(i)` for every `i in 0..ntasks` across the pool, claiming
    /// batches of `grain` indices at a time. Blocks until all indices have
    /// been executed and every worker has quiesced.
    pub(crate) fn run(&self, ntasks: usize, grain: usize, task: &(dyn Fn(usize) + Sync)) {
        if ntasks == 0 {
            return;
        }
        let shared = &*self.shared;
        {
            let mut st = shared
                .state
                .lock()
                .expect("a pool worker panicked while holding the state lock");
            shared.cursor.store(0, Ordering::Relaxed);
            // SAFETY: we erase the lifetime, then block below until every
            // worker reports done, which happens-after its last use of the
            // pointer (the `done` increment is made under the same mutex).
            let ptr: *const (dyn Fn(usize) + Sync) = task;
            st.task = Some(TaskPtr(unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(ptr)
            }));
            st.ntasks = ntasks;
            st.grain = grain.max(1);
            st.done = 0;
            st.generation += 1;
            shared.work_cv.notify_all();
        }
        let mut st = shared
            .state
            .lock()
            .expect("a pool worker panicked while holding the state lock");
        while st.done < self.handles.len() {
            st = shared
                .done_cv
                .wait(st)
                .expect("a pool worker panicked while holding the state lock");
        }
        st.task = None;
    }
}

/// A worker pool shared by many executors — the serving-layer substrate.
///
/// The original design creates one [`WorkerPool`] per
/// [`Executor`](crate::Executor) ([`ExecMode::Threaded`](crate::ExecMode)),
/// which is right for a single long solve but wrong for a service
/// multiplexing hundreds of tenants: P tenants would spawn P pools of N
/// threads each, oversubscribing the host N-fold. A `SharedPool` is one
/// pool handed to every executor via
/// [`Executor::with_shared_pool`](crate::Executor::with_shared_pool); the
/// executors take turns dispatching onto it (one dispatch at a time — the
/// service scheduler interleaves whole supersteps, never phases), and the
/// pool's workers stay parked between dispatches exactly as in the
/// single-executor case.
///
/// Cloning is shallow (an [`Arc`] bump): clones dispatch onto the same
/// workers. The threads join when the last clone drops.
#[derive(Clone)]
pub struct SharedPool {
    pool: Arc<WorkerPool>,
}

impl SharedPool {
    /// Spawns a pool of `nworkers` parked workers (`nworkers >= 1`).
    pub fn new(nworkers: usize) -> Self {
        SharedPool {
            pool: Arc::new(WorkerPool::new(nworkers)),
        }
    }

    /// Number of workers.
    pub fn nworkers(&self) -> usize {
        self.pool.nworkers()
    }

    /// The underlying pool handle (crate-internal: executors store it).
    pub(crate) fn inner(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Opens a per-epoch accounting view positioned at *now*: the returned
    /// [`PoolStats`] reports busy time accumulated **after** this call, so
    /// a reused pool never smears one run's busy time into the next.
    pub fn stats(&self) -> PoolStats {
        let base = (0..self.pool.nworkers())
            .map(|w| self.pool.busy_ns(w))
            .collect();
        PoolStats {
            pool: Arc::clone(&self.pool),
            base,
        }
    }
}

/// Per-epoch busy accounting of a [`SharedPool`].
///
/// The pool's raw `busy_ns` counters are cumulative over its lifetime;
/// utilization quoted from them after the pool served several runs would
/// blend every tenant's work (and can exceed 1.0 for the last run). A
/// `PoolStats` carries an epoch baseline: [`PoolStats::busy_ns`] reports
/// only the busy time since the baseline, and [`PoolStats::take_epoch`]
/// harvests it and resets the baseline to *now* — one call per solve gives
/// exact per-solve attribution on a pool of any age.
pub struct PoolStats {
    pool: Arc<WorkerPool>,
    /// Cumulative busy-ns snapshot at the epoch start, per worker.
    base: Vec<u64>,
}

impl PoolStats {
    /// Busy nanoseconds per worker since the epoch baseline.
    pub fn busy_ns(&self) -> Vec<u64> {
        self.base
            .iter()
            .enumerate()
            .map(|(w, &b)| self.pool.busy_ns(w).saturating_sub(b))
            .collect()
    }

    /// Total busy nanoseconds across workers since the epoch baseline.
    pub fn total_busy_ns(&self) -> u64 {
        self.busy_ns().iter().sum()
    }

    /// Harvests the epoch: returns per-worker busy-ns since the baseline
    /// and resets the baseline to *now*, so the next epoch starts at zero.
    pub fn take_epoch(&mut self) -> Vec<u64> {
        let snapshot: Vec<u64> = (0..self.base.len()).map(|w| self.pool.busy_ns(w)).collect();
        let epoch = snapshot
            .iter()
            .zip(&self.base)
            .map(|(&now, &b)| now.saturating_sub(b))
            .collect();
        self.base = snapshot;
        epoch
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self
                .shared
                .state
                .lock()
                .expect("a pool worker panicked while holding the state lock");
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, w: usize) {
    let mut seen = 0u64;
    loop {
        let (task, ntasks, grain) = {
            let mut st = shared
                .state
                .lock()
                .expect("a pool worker panicked while holding the state lock");
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    seen = st.generation;
                    let TaskPtr(ptr) = *st.task.as_ref().expect("dispatch has a task");
                    break (ptr, st.ntasks, st.grain);
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .expect("dispatch panicked while holding the state lock");
            }
        };
        let t0 = Instant::now();
        // SAFETY: `run` keeps the closure alive until we report done below.
        let task = unsafe { &*task };
        loop {
            let start = shared.cursor.fetch_add(grain, Ordering::Relaxed);
            if start >= ntasks {
                break;
            }
            for i in start..(start + grain).min(ntasks) {
                task(i);
            }
        }
        shared.busy_ns[w].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let mut st = shared
            .state
            .lock()
            .expect("a pool worker panicked while holding the state lock");
        st.done += 1;
        if st.done == shared.busy_ns.len() {
            shared.done_cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn every_index_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        for grain in [1usize, 3, 16, 1000] {
            let hits: Vec<AtomicU32> = (0..257).map(|_| AtomicU32::new(0)).collect();
            pool.run(hits.len(), grain, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "grain {grain}"
            );
        }
    }

    #[test]
    fn pool_is_reusable_across_many_dispatches() {
        let pool = WorkerPool::new(2);
        let sum = AtomicU64::new(0);
        for _ in 0..100 {
            pool.run(10, 2, &|i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(sum.load(Ordering::Relaxed), 45 * 100);
    }

    #[test]
    fn zero_tasks_is_a_noop() {
        let pool = WorkerPool::new(3);
        pool.run(0, 1, &|_| panic!("no task should run"));
    }

    #[test]
    fn pool_stats_take_epoch_resets_the_baseline() {
        // Two back-to-back "runs" on one pool: each epoch must see only
        // its own busy time, not the pool-lifetime accumulation.
        let shared = SharedPool::new(2);
        let mut stats = shared.stats();
        let spin = |_: usize| {
            std::hint::black_box((0..20_000).sum::<u64>());
        };
        shared.inner().run(64, 4, &spin);
        let first = stats.take_epoch();
        assert!(first.iter().sum::<u64>() > 0, "first epoch measured");
        // A fresh epoch starts at zero even though the pool counters do not.
        assert_eq!(stats.total_busy_ns(), 0);
        shared.inner().run(64, 4, &spin);
        let second = stats.take_epoch();
        let lifetime: u64 = (0..shared.nworkers())
            .map(|w| shared.inner().busy_ns(w))
            .sum();
        assert!(second.iter().sum::<u64>() > 0, "second epoch measured");
        assert_eq!(
            first.iter().sum::<u64>() + second.iter().sum::<u64>(),
            lifetime,
            "epochs partition the pool-lifetime busy time"
        );
    }

    #[test]
    fn busy_time_accumulates() {
        let pool = WorkerPool::new(1);
        pool.run(64, 4, &|_| {
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert!(pool.busy_ns(0) > 0);
    }
}
