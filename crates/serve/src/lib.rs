//! Solver as a service: many independent tenants multiplexed over one
//! shared worker pool.
//!
//! The paper optimizes the communication cost of *one* solve; the
//! ROADMAP's north star is heavy traffic — millions of users issuing
//! mostly-repeated solves. The serving layer combines three pieces from
//! the lower crates:
//!
//! * a [`dsw_rma::SharedPool`], so `T` tenants cost one set of worker
//!   threads instead of `T` sets (and per-solve utilization stays honest
//!   via epoch-based busy accounting);
//! * a [`dsw_core::dist::TenantSession`] per tenant — partition, routed
//!   topology, per-rank solver state, and monitor scratch all survive
//!   across solves, so an evolving right-hand side warm-starts from the
//!   previous solution and only re-seeds residuals;
//! * a fair-share scheduler that interleaves superstep batches from
//!   runnable tenants with per-tenant quanta, deterministic given
//!   `(seed, arrival order)`, with backpressure through a bounded
//!   admission queue.
//!
//! Per-tenant [`DistReport`]s are fully isolated: each tenant owns its
//! executor and stats epoch, and the pool's busy time is re-baselined at
//! every superstep, so interleaving never bleeds one tenant's work into
//! another's report. `tests/serve_determinism.rs` pins both properties.

// `unwrap()` is banned in non-test code (clippy `disallowed-methods`, see
// clippy.toml): use `expect` naming the invariant, or propagate the error.
#![cfg_attr(not(test), deny(clippy::disallowed_methods))]

use dsw_core::dist::{DistOptions, DistReport, Method, TenantSession};
use dsw_partition::Partition;
use dsw_rma::{PoolStats, SharedPool};
use dsw_sparse::CsrMatrix;
use std::collections::VecDeque;
use std::time::Instant;

/// Handle to a tenant registered with a [`SolveService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(usize);

impl TenantId {
    /// The tenant's index in registration order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Service configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads in the shared pool (all tenants share them).
    pub workers: usize,
    /// Supersteps a runnable tenant advances per scheduler visit. Larger
    /// quanta amortize visit overhead; smaller quanta tighten fairness.
    pub quantum: usize,
    /// Bound on the total number of queued (admitted but unfinished)
    /// jobs across all tenants; [`SolveService::submit`] returns
    /// [`SubmitError::QueueFull`] beyond it — the backpressure signal.
    pub queue_capacity: usize,
    /// Rotates the round-robin visit order. The schedule — and therefore
    /// every per-tenant report — is deterministic given
    /// `(seed, tenant set, arrival order)`.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            quantum: 4,
            queue_capacity: 1024,
            seed: 0,
        }
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded admission queue is at capacity: apply backpressure.
    QueueFull,
    /// No tenant with this id is registered.
    UnknownTenant,
    /// The right-hand side has the wrong dimension for the tenant's
    /// system.
    BadRhs {
        /// The tenant's system dimension.
        expected: usize,
        /// The submitted vector's length.
        got: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "admission queue full"),
            SubmitError::UnknownTenant => write!(f, "unknown tenant"),
            SubmitError::BadRhs { expected, got } => {
                write!(f, "rhs dimension {got}, tenant system is {expected}")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// An admitted, not-yet-started job.
struct Job {
    b: Vec<f64>,
    submitted_at: Instant,
}

/// One tenant: the persistent session plus its job queue and finished
/// reports.
struct TenantSlot {
    session: TenantSession,
    n: usize,
    /// Admitted jobs waiting to start (FIFO).
    pending: VecDeque<Job>,
    /// The in-progress job's admission time, if a solve is active.
    active_since: Option<Instant>,
    /// Finished per-tenant reports, in completion order.
    reports: Vec<DistReport>,
}

impl TenantSlot {
    fn runnable(&self) -> bool {
        self.active_since.is_some() || !self.pending.is_empty()
    }
}

/// Service-level observables for one [`SolveService::run_until_idle`]
/// window.
#[derive(Debug, Clone, Copy)]
pub struct ServiceStats {
    /// Solves completed in the window.
    pub solves: u64,
    /// Wall-clock span of the window, seconds.
    pub wall_s: f64,
    /// Sustained throughput: `solves / wall_s`.
    pub solves_per_sec: f64,
    /// Median solve latency (admission to completion), milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile solve latency, milliseconds.
    pub p99_ms: f64,
    /// Peak queued-job count observed since the previous window.
    pub max_queue_depth: usize,
    /// Shared-pool busy fraction over the window:
    /// `Σ worker busy / (wall × workers)`.
    pub pool_utilization: f64,
}

/// Multiplexes many tenants' solves over one shared worker pool.
pub struct SolveService {
    cfg: ServeConfig,
    pool: SharedPool,
    pool_stats: PoolStats,
    tenants: Vec<TenantSlot>,
    /// Total admitted-but-unfinished jobs (the bounded queue occupancy).
    queued: usize,
    max_queue_depth: usize,
    /// Scheduler PRNG state (an LCG stepped once per round).
    rng: u64,
}

impl SolveService {
    /// Creates a service with its own shared pool.
    pub fn new(cfg: ServeConfig) -> Self {
        assert!(cfg.workers > 0, "the shared pool needs at least 1 worker");
        assert!(cfg.quantum > 0, "a zero quantum cannot make progress");
        let pool = SharedPool::new(cfg.workers);
        let pool_stats = pool.stats();
        SolveService {
            cfg,
            pool,
            pool_stats,
            tenants: Vec::new(),
            queued: 0,
            max_queue_depth: 0,
            rng: cfg.seed,
        }
    }

    /// Registers a tenant: distributes its system, builds the per-rank
    /// solver state on the shared pool, and returns the handle. This is
    /// the cold-start cost — paid once, amortized over every subsequent
    /// solve.
    pub fn add_tenant(
        &mut self,
        method: Method,
        a: CsrMatrix,
        b: &[f64],
        x0: &[f64],
        partition: &Partition,
        opts: &DistOptions,
    ) -> TenantId {
        let n = a.nrows();
        let session = TenantSession::build(method, a, b, x0, partition, opts, Some(&self.pool));
        self.tenants.push(TenantSlot {
            session,
            n,
            pending: VecDeque::new(),
            active_since: None,
            reports: Vec::new(),
        });
        TenantId(self.tenants.len() - 1)
    }

    /// Submits one right-hand side for `tenant`. Fails with
    /// [`SubmitError::QueueFull`] when the bounded admission queue is at
    /// capacity — callers should drain ([`run_until_idle`]) and retry.
    ///
    /// [`run_until_idle`]: SolveService::run_until_idle
    pub fn submit(&mut self, tenant: TenantId, b: Vec<f64>) -> Result<(), SubmitError> {
        let slot = self
            .tenants
            .get_mut(tenant.0)
            .ok_or(SubmitError::UnknownTenant)?;
        if b.len() != slot.n {
            return Err(SubmitError::BadRhs {
                expected: slot.n,
                got: b.len(),
            });
        }
        if self.queued >= self.cfg.queue_capacity {
            return Err(SubmitError::QueueFull);
        }
        slot.pending.push_back(Job {
            b,
            submitted_at: Instant::now(),
        });
        self.queued += 1;
        self.max_queue_depth = self.max_queue_depth.max(self.queued);
        Ok(())
    }

    /// Submits a batch of right-hand sides for one tenant (the
    /// `solve_many` path): the k solves run as one fused sweep over the
    /// tenant's topology, each warm-starting from its predecessor.
    /// Stops at the first rejected job, returning how many were admitted.
    pub fn submit_many(
        &mut self,
        tenant: TenantId,
        bs: Vec<Vec<f64>>,
    ) -> Result<usize, (usize, SubmitError)> {
        for (i, b) in bs.into_iter().enumerate() {
            if let Err(e) = self.submit(tenant, b) {
                return Err((i, e));
            }
        }
        Ok(self.queue_len())
    }

    /// Jobs currently admitted and unfinished.
    pub fn queue_len(&self) -> usize {
        self.queued
    }

    /// Registered tenants.
    pub fn ntenants(&self) -> usize {
        self.tenants.len()
    }

    /// Workers in the shared pool.
    pub fn workers(&self) -> usize {
        self.cfg.workers
    }

    /// Runs the fair-share scheduler until every admitted job has
    /// completed, then returns the window's service stats.
    ///
    /// Each round visits every runnable tenant once, in registration
    /// order rotated by a seeded offset; a visited tenant starts its next
    /// pending job if idle and then advances up to `quantum` supersteps.
    /// Tenants never share solver state, so the per-tenant reports are
    /// independent of the interleaving — the schedule only shapes
    /// latency.
    pub fn run_until_idle(&mut self) -> ServiceStats {
        let t0 = Instant::now();
        let mut latencies_ms: Vec<f64> = Vec::new();
        let mut solves = 0u64;
        // Harvest pool busy time accumulated outside this window (tenant
        // cold builds, previous windows), so utilization is per-window.
        let _ = self.pool_stats.take_epoch();

        loop {
            let runnable: Vec<usize> = (0..self.tenants.len())
                .filter(|&t| self.tenants[t].runnable())
                .collect();
            if runnable.is_empty() {
                break;
            }
            // Seeded rotation of the visit order: fairness does not favor
            // low tenant ids, yet the schedule stays a pure function of
            // (seed, round) — nothing about timing feeds back into it.
            self.rng = self
                .rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let rot = (self.rng >> 33) as usize % runnable.len();
            for i in 0..runnable.len() {
                let t = runnable[(i + rot) % runnable.len()];
                let slot = &mut self.tenants[t];
                if slot.active_since.is_none() {
                    let Some(job) = slot.pending.pop_front() else {
                        continue; // became idle this round (was runnable at selection)
                    };
                    slot.session.begin_solve(&job.b);
                    slot.active_since = Some(job.submitted_at);
                }
                if slot.session.step_batch(self.cfg.quantum) {
                    let report = slot.session.finish();
                    slot.reports.push(report);
                    let since = slot
                        .active_since
                        .take()
                        .expect("active solve has an admission time");
                    latencies_ms.push(since.elapsed().as_secs_f64() * 1e3);
                    self.queued -= 1;
                    solves += 1;
                }
            }
        }

        let wall_s = t0.elapsed().as_secs_f64();
        let busy: u64 = self.pool_stats.take_epoch().iter().sum();
        let denom = wall_s * 1e9 * self.cfg.workers as f64;
        let max_queue_depth = self.max_queue_depth;
        self.max_queue_depth = self.queued;
        latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let pct = |p: f64| -> f64 {
            if latencies_ms.is_empty() {
                return 0.0;
            }
            let idx = ((latencies_ms.len() - 1) as f64 * p).round() as usize;
            latencies_ms[idx]
        };
        ServiceStats {
            solves,
            wall_s,
            solves_per_sec: if wall_s > 0.0 {
                solves as f64 / wall_s
            } else {
                0.0
            },
            p50_ms: pct(0.50),
            p99_ms: pct(0.99),
            max_queue_depth,
            pool_utilization: if denom > 0.0 {
                (busy as f64 / denom).min(1.0)
            } else {
                0.0
            },
        }
    }

    /// Drains the finished reports for one tenant (completion order).
    pub fn take_reports(&mut self, tenant: TenantId) -> Vec<DistReport> {
        self.tenants
            .get_mut(tenant.0)
            .map(|s| std::mem::take(&mut s.reports))
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsw_core::dist::{DistOptions, ExecBackend, Method};
    use dsw_partition::Partition;
    use dsw_rma::ExecMode;
    use dsw_sparse::CsrMatrix;

    fn poisson(side: usize) -> CsrMatrix {
        dsw_sparse::gen::grid2d_poisson(side, side)
    }

    fn block_partition(n: usize, p: usize) -> Partition {
        Partition::new(p, (0..n).map(|i| i * p / n).collect())
    }

    fn opts() -> DistOptions {
        DistOptions {
            backend: ExecBackend::Superstep(ExecMode::Sequential),
            target_residual: Some(1e-3),
            max_steps: 400,
            ..DistOptions::default()
        }
    }

    fn service_with_tenants(k: usize, seed: u64) -> (SolveService, Vec<TenantId>) {
        let a = poisson(12);
        let n = a.nrows();
        let part = block_partition(n, 4);
        let mut svc = SolveService::new(ServeConfig {
            workers: 2,
            quantum: 4,
            queue_capacity: 64,
            seed,
        });
        let ids = (0..k)
            .map(|i| {
                let b: Vec<f64> = (0..n).map(|j| ((i + j) % 7) as f64 * 0.1).collect();
                let x0 = vec![0.0; n];
                svc.add_tenant(
                    Method::DistributedSouthwell,
                    a.clone(),
                    &b,
                    &x0,
                    &part,
                    &opts(),
                )
            })
            .collect();
        (svc, ids)
    }

    #[test]
    fn solves_complete_and_reports_are_isolated() {
        let (mut svc, ids) = service_with_tenants(3, 7);
        let n = 144;
        for (i, &id) in ids.iter().enumerate() {
            let b: Vec<f64> = (0..n).map(|j| ((i * 3 + j) % 5) as f64 * 0.2).collect();
            svc.submit(id, b).expect("queue has room");
        }
        let stats = svc.run_until_idle();
        assert_eq!(stats.solves, 3);
        assert_eq!(svc.queue_len(), 0);
        assert!(stats.solves_per_sec > 0.0);
        assert!(stats.pool_utilization <= 1.0);
        for &id in &ids {
            let reports = svc.take_reports(id);
            assert_eq!(reports.len(), 1);
            let r = &reports[0];
            assert!(r.converged_at.is_some(), "tenant {id:?} converged");
            // Isolation: each report's step records cover only this
            // tenant's own solve.
            assert!(r.stats.nsteps() > 0);
            assert_eq!(r.records.len(), r.stats.nsteps() + 1);
        }
    }

    #[test]
    fn queue_backpressure() {
        let a = poisson(8);
        let n = a.nrows();
        let part = block_partition(n, 4);
        let mut svc = SolveService::new(ServeConfig {
            workers: 1,
            quantum: 2,
            queue_capacity: 2,
            seed: 0,
        });
        let b = vec![0.5; n];
        let id = svc.add_tenant(Method::BlockJacobi, a, &b, &vec![0.0; n], &part, &opts());
        svc.submit(id, vec![0.1; n]).expect("1st fits");
        svc.submit(id, vec![0.2; n]).expect("2nd fits");
        assert_eq!(svc.submit(id, vec![0.3; n]), Err(SubmitError::QueueFull));
        assert_eq!(
            svc.submit(id, vec![0.1; 3]),
            Err(SubmitError::BadRhs {
                expected: n,
                got: 3
            })
        );
        assert_eq!(
            svc.submit(TenantId(99), vec![0.1; n]),
            Err(SubmitError::UnknownTenant)
        );
        let stats = svc.run_until_idle();
        assert_eq!(stats.solves, 2);
        assert_eq!(stats.max_queue_depth, 2);
        svc.submit(id, vec![0.3; n])
            .expect("drained queue has room");
    }

    #[test]
    fn repeated_solves_warm_start() {
        let (mut svc, ids) = service_with_tenants(1, 1);
        let id = ids[0];
        let n = 144;
        let b1: Vec<f64> = (0..n).map(|j| (j % 5) as f64 * 0.2).collect();
        svc.submit(id, b1.clone()).expect("room");
        svc.run_until_idle();
        let cold = svc.take_reports(id).remove(0);

        // Tiny perturbation: the warm re-solve starts near the solution
        // and must converge in (far) fewer steps than the cold solve.
        let b2: Vec<f64> = b1.iter().map(|v| v + 1e-5).collect();
        svc.submit(id, b2).expect("room");
        svc.run_until_idle();
        let warm = svc.take_reports(id).remove(0);
        let cold_steps = cold.converged_at.expect("cold solve converged");
        let warm_steps = warm.converged_at.expect("warm solve converged");
        assert!(
            warm_steps < cold_steps,
            "warm start ({warm_steps} steps) beats cold ({cold_steps} steps)"
        );
    }
}
