//! Facade crate for the Distributed Southwell (SC'17) reproduction.
//!
//! Re-exports the public API of every workspace crate under one roof:
//!
//! ```
//! use distributed_southwell::prelude::*;
//!
//! let mut a = gen::grid2d_poisson(16, 16);
//! a.scale_unit_diagonal().unwrap();
//! ```
//!
//! See the individual crates for the full documentation:
//! [`sparse`], [`partition`], [`rma`], [`core`], [`serve`], [`multigrid`].

pub use dsw_core as core;
pub use dsw_multigrid as multigrid;
pub use dsw_partition as partition;
pub use dsw_rma as rma;
pub use dsw_serve as serve;
pub use dsw_sparse as sparse;

/// Convenient glob-import surface.
pub mod prelude {
    pub use dsw_sparse::gen;
    pub use dsw_sparse::vecops;
    pub use dsw_sparse::{CooBuilder, CsrMatrix, DenseMatrix};
}
