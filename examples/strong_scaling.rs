//! Strong-scaling sketch (Figures 8 and 9 in miniature): sweep the rank
//! count on one matrix and watch Block Jacobi fall over while Distributed
//! Southwell degrades gracefully.
//!
//! ```text
//! cargo run --release --example strong_scaling
//! ```

use distributed_southwell::core::dist::{run_method, DistOptions, Method};
use distributed_southwell::partition::{partition_multilevel, Graph, MultilevelOptions};
use distributed_southwell::sparse::suite::by_name;
use distributed_southwell::sparse::{gen, vecops};

fn main() {
    let entry = by_name("ldoor").unwrap();
    let a = entry.build_small(0.5);
    let n = a.nrows();
    let b = vec![0.0; n];
    let mut x0 = gen::random_guess(n, 5);
    let s = 1.0 / vecops::norm2(&a.residual(&b, &x0));
    x0.iter_mut().for_each(|v| *v *= s);
    println!(
        "ldoor stand-in, {} rows — residual after 50 parallel steps:",
        n
    );
    println!(
        "{:>6} {:>14} {:>14} {:>14}",
        "ranks", "Block Jacobi", "Par Southwell", "Dist Southwell"
    );

    for p in [4usize, 8, 16, 32, 64, 128] {
        let part = partition_multilevel(&Graph::from_matrix(&a), p, MultilevelOptions::default());
        let opts = DistOptions {
            max_steps: 50,
            target_residual: None,
            divergence_cutoff: None,
            ..DistOptions::default()
        };
        let mut row = format!("{p:>6}");
        for m in [
            Method::BlockJacobi,
            Method::ParallelSouthwell,
            Method::DistributedSouthwell,
        ] {
            let rep = run_method(m, &a, &b, &x0, &part, &opts);
            row.push_str(&format!(" {:>14.4e}", rep.final_residual()));
        }
        println!("{row}");
    }
    println!("\nValues above 1 mean the method diverged (‖r⁰‖ = 1). Block Jacobi");
    println!("degrades as the blocks shrink; the Southwell methods do not.");
}
