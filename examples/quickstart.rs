//! Quickstart: solve a small SPD system with Distributed Southwell and
//! compare it against Block Jacobi and Parallel Southwell.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use distributed_southwell::core::dist::{run_method, DistOptions, Method};
use distributed_southwell::partition::{partition_multilevel, Graph, MultilevelOptions};
use distributed_southwell::sparse::{gen, vecops};

fn main() {
    // 1. Build a test problem: 2D Poisson, symmetrically scaled to unit
    //    diagonal (the paper's normalization), b = 0, and a random initial
    //    guess scaled so that the initial residual norm is exactly 1.
    let mut a = gen::grid2d_poisson(64, 64);
    a.scale_unit_diagonal().expect("SPD matrix");
    let n = a.nrows();
    let b = vec![0.0; n];
    let mut x0 = gen::random_guess(n, 42);
    let scale = 1.0 / vecops::norm2(&a.residual(&b, &x0));
    x0.iter_mut().for_each(|v| *v *= scale);

    // 2. Partition the rows over 64 simulated ranks (multilevel, the METIS
    //    stand-in).
    let graph = Graph::from_matrix(&a);
    let part = partition_multilevel(&graph, 64, MultilevelOptions::default());

    // 3. Run each method for at most 50 parallel steps, stopping at
    //    ‖r‖₂ = 0.01.
    let opts = DistOptions {
        max_steps: 200,
        target_residual: Some(0.01),
        ..DistOptions::default()
    };
    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>12}",
        "method", "steps", "msgs/rank", "relax/n", "final ‖r‖"
    );
    for m in [
        Method::BlockJacobi,
        Method::ParallelSouthwell,
        Method::DistributedSouthwell,
    ] {
        let rep = run_method(m, &a, &b, &x0, &part, &opts);
        println!(
            "{:<22} {:>8} {:>12.1} {:>12.2} {:>12.4e}",
            format!("{m:?}"),
            rep.records.len() - 1,
            rep.comm_cost(),
            rep.records.last().unwrap().relaxations as f64 / n as f64,
            rep.final_residual(),
        );
    }
    println!("\nDistributed Southwell reaches the target with far fewer messages");
    println!("per rank than Parallel Southwell — the headline of the SC'17 paper.");
}
