//! The preconditioning context the paper positions Distributed Southwell
//! in: stationary methods like Block Jacobi and the Southwell family are
//! used as multigrid smoothers and preconditioner building blocks because
//! a few cheap parallel steps knock the residual down fast, after which a
//! Krylov method (or multigrid) takes over.
//!
//! This example shows that division of labour: reach a coarse residual
//! with each stationary method, then count the conjugate gradient
//! iterations needed to finish the solve from that point.
//!
//! ```text
//! cargo run --release --example preconditioning
//! ```

use distributed_southwell::core::dist::{run_method, DistOptions, Method};
use distributed_southwell::partition::{partition_multilevel, Graph, MultilevelOptions};
use distributed_southwell::sparse::krylov::{conjugate_gradient, CgOptions};
use distributed_southwell::sparse::{gen, vecops};

fn main() {
    let mut a = gen::grid2d_poisson(48, 48);
    a.scale_unit_diagonal().unwrap();
    let n = a.nrows();
    // A nonzero b so the finishing solve is nontrivial.
    let b = gen::random_rhs(n, 21);
    let x0 = vec![0.0; n];
    let part = partition_multilevel(&Graph::from_matrix(&a), 32, MultilevelOptions::default());

    // Pure CG from zero, for reference.
    let pure = conjugate_gradient(
        &a,
        &b,
        &x0,
        &CgOptions {
            max_iters: 2000,
            rel_tolerance: 1e-10,
        },
    );
    println!("{:<34} {:>10} {:>12}", "stage", "CG iters", "msgs/rank");
    println!(
        "{:<34} {:>10} {:>12}",
        "CG alone",
        pure.residual_history.len() - 1,
        "-"
    );

    // Stationary warm start to ‖r‖ = 0.05 of ‖b‖, then CG.
    for m in [
        Method::BlockJacobi,
        Method::ParallelSouthwell,
        Method::DistributedSouthwell,
    ] {
        let opts = DistOptions {
            max_steps: 100,
            target_residual: Some(0.05 * vecops::norm2(&b)),
            ..DistOptions::default()
        };
        let rep = run_method(m, &a, &b, &x0, &part, &opts);
        let finish = conjugate_gradient(
            &a,
            &b,
            &rep.x,
            &CgOptions {
                max_iters: 2000,
                rel_tolerance: 1e-10,
            },
        );
        println!(
            "{:<34} {:>10} {:>12.1}",
            format!("{} warm start + CG", rep.method.label()),
            finish.residual_history.len() - 1,
            rep.comm_cost(),
        );
    }
    println!("\nThe Southwell warm starts buy the same CG savings as Block Jacobi");
    println!("at a fraction of the message cost — and they keep working at rank");
    println!("counts where Block Jacobi diverges (see the strong_scaling example).");
}
