//! Deadlock demo: why Distributed Southwell exists.
//!
//! The authors' earlier ICCS'16 scheme piggybacks residual norms only on
//! relaxation messages. With stale norms, every process can come to
//! believe a neighbor holds the largest residual — and the whole
//! computation freezes. Distributed Southwell tracks what each neighbor
//! believes (`Γ̃`) and sends one explicit update exactly when a neighbor
//! overestimates it, so it can never freeze.
//!
//! ```text
//! cargo run --release --example deadlock_demo
//! ```

use distributed_southwell::core::dist::{run_method, DistOptions, Method};
use distributed_southwell::partition::{partition_multilevel, Graph, MultilevelOptions};
use distributed_southwell::sparse::{gen, vecops};

fn main() {
    let mut a = gen::grid2d_poisson(32, 32);
    a.scale_unit_diagonal().unwrap();
    let n = a.nrows();
    let b = vec![0.0; n];
    let mut x0 = gen::random_guess(n, 11);
    let s = 1.0 / vecops::norm2(&a.residual(&b, &x0));
    x0.iter_mut().for_each(|v| *v *= s);
    let part = partition_multilevel(&Graph::from_matrix(&a), 16, MultilevelOptions::default());
    let opts = DistOptions {
        max_steps: 300,
        target_residual: Some(1e-4),
        ..DistOptions::default()
    };

    for (label, m) in [
        (
            "piggyback-only (ICCS'16)",
            Method::ParallelSouthwellPiggybackOnly,
        ),
        ("Parallel Southwell", Method::ParallelSouthwell),
        ("Distributed Southwell", Method::DistributedSouthwell),
    ] {
        let rep = run_method(m, &a, &b, &x0, &part, &opts);
        let verdict = if rep.deadlocked {
            format!(
                "DEADLOCKED after {} steps at ‖r‖ = {:.3}",
                rep.records.len() - 1,
                rep.final_residual()
            )
        } else if let Some(k) = rep.converged_at {
            format!(
                "converged in {k} steps, {:.1} msgs/rank ({:.0}% explicit updates)",
                rep.comm_cost(),
                100.0 * rep.records.last().unwrap().msgs_residual as f64
                    / rep.records.last().unwrap().msgs.max(1) as f64,
            )
        } else {
            format!("stopped at ‖r‖ = {:.3e}", rep.final_residual())
        };
        println!("{label:<28} {verdict}");
    }
}
