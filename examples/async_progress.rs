//! Asynchronous progress demo: run Distributed Southwell with ranks
//! advancing at different speeds (the regime the paper's Casper-based RMA
//! implementation actually executes in) and compare against lock-step
//! supersteps.
//!
//! ```text
//! cargo run --release --example async_progress
//! ```

use distributed_southwell::core::dist::{distribute, DistributedSouthwellRank};
use distributed_southwell::partition::{partition_multilevel, Graph, MultilevelOptions};
use distributed_southwell::rma::{AsyncExecutor, AsyncOptions, CostModel, ExecMode, Executor};
use distributed_southwell::sparse::{gen, vecops};

fn main() {
    let mut a = gen::grid2d_poisson(32, 32);
    a.scale_unit_diagonal().unwrap();
    let n = a.nrows();
    let b = vec![0.0; n];
    let mut x0 = gen::random_guess(n, 17);
    let s = 1.0 / vecops::norm2(&a.residual(&b, &x0));
    x0.iter_mut().for_each(|v| *v *= s);
    let part = partition_multilevel(&Graph::from_matrix(&a), 16, MultilevelOptions::default());
    let locals = distribute(&a, &b, &x0, &part).unwrap();
    let norms: Vec<f64> = locals.iter().map(|l| l.residual_norm_sq()).collect();
    let r0 = a.residual(&b, &x0);

    let residual = |xs: Vec<f64>| vecops::norm2(&a.residual(&b, &xs));
    let gather = |ranks: &[DistributedSouthwellRank]| {
        let mut x = vec![0.0; n];
        for r in ranks {
            for (li, &g) in r.ls.rows.iter().enumerate() {
                x[g] = r.ls.x[li];
            }
        }
        x
    };

    // Lock-step supersteps: 60 parallel steps.
    let mut sync_ex = Executor::new(
        DistributedSouthwellRank::build(locals.clone(), &norms, &r0),
        CostModel::default(),
        ExecMode::Sequential,
    );
    for _ in 0..60 {
        sync_ex.step();
    }
    println!(
        "lock-step: 60 steps, ‖r‖ = {:.4e}, {:.1} msgs/rank",
        residual(gather(sync_ex.ranks())),
        sync_ex.stats.comm_cost()
    );

    // Asynchronous: ranks advance with probability 0.6 per tick, at most
    // 6 phases apart. Run until everyone completed 60 logical steps.
    for (prob, lag) in [(0.9, 2), (0.6, 6), (0.3, 10)] {
        let mut ex = AsyncExecutor::new(
            DistributedSouthwellRank::build(locals.clone(), &norms, &r0),
            AsyncOptions {
                advance_probability: prob,
                max_lag: lag,
                seed: 3,
                ..AsyncOptions::default()
            },
        );
        let ticks = ex.run_steps(60, 100_000).expect("budget is ample");
        println!(
            "async p={prob:.1} lag≤{lag:<2}: {ticks} ticks, ‖r‖ = {:.4e}, {:.1} msgs/rank",
            residual(gather(ex.ranks())),
            ex.stats.comm_cost()
        );
    }

    // Heterogeneous speeds (the straggler regime): skew 0.8 spreads the
    // per-rank advance probabilities over [0.14, 0.7].
    let mut ex = AsyncExecutor::new(
        DistributedSouthwellRank::build(locals.clone(), &norms, &r0),
        AsyncOptions {
            advance_probability: 0.7,
            max_lag: 8,
            seed: 3,
            straggler_skew: 0.8,
        },
    );
    let ticks = ex.run_steps(60, 400_000).expect("budget is ample");
    println!(
        "async skew=0.8   : {ticks} ticks, ‖r‖ = {:.4e}, {:.1} msgs/rank",
        residual(gather(ex.ranks())),
        ex.stats.comm_cost()
    );
    println!("\nThe method's neighbor data are estimates by design, so staleness");
    println!("from uneven progress degrades convergence only mildly — the property");
    println!("that lets the paper run it on asynchronous one-sided MPI.");
}
