//! Run the three distributed methods on one of the synthetic SuiteSparse
//! stand-ins and print the per-step convergence trace — a single panel of
//! the paper's Figure 7.
//!
//! ```text
//! cargo run --release --example suite_comparison [matrix] [ranks]
//! # e.g.
//! cargo run --release --example suite_comparison bone010 128
//! ```

use distributed_southwell::core::dist::{run_method, DistOptions, Method};
use distributed_southwell::partition::{partition_multilevel, Graph, MultilevelOptions};
use distributed_southwell::sparse::suite::by_name;
use distributed_southwell::sparse::{gen, vecops};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("bone010");
    let ranks: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(128);

    let entry = by_name(name).unwrap_or_else(|| {
        eprintln!("unknown matrix {name}; see `table1` for the list");
        std::process::exit(2);
    });
    // Scaled-down build so the example runs in seconds.
    let a = entry.build_small(0.5);
    let n = a.nrows();
    println!(
        "{name} stand-in: {} rows, {} nonzeros, {ranks} ranks",
        n,
        a.nnz()
    );

    let b = vec![0.0; n];
    let mut x0 = gen::random_guess(n, 1);
    let s = 1.0 / vecops::norm2(&a.residual(&b, &x0));
    x0.iter_mut().for_each(|v| *v *= s);
    let part = partition_multilevel(&Graph::from_matrix(&a), ranks, MultilevelOptions::default());

    let opts = DistOptions {
        max_steps: 50,
        target_residual: None,
        divergence_cutoff: None,
        ..DistOptions::default()
    };
    let reports: Vec<_> = [
        Method::BlockJacobi,
        Method::ParallelSouthwell,
        Method::DistributedSouthwell,
    ]
    .iter()
    .map(|&m| run_method(m, &a, &b, &x0, &part, &opts))
    .collect();

    println!(
        "\n{:>4} {:>14} {:>14} {:>14}",
        "step", "BJ ‖r‖", "PS ‖r‖", "DS ‖r‖"
    );
    let steps = reports.iter().map(|r| r.records.len()).max().unwrap();
    for k in 0..steps {
        let cell = |i: usize| {
            reports[i]
                .records
                .get(k)
                .map(|rec| format!("{:.4e}", rec.residual_norm))
                .unwrap_or_default()
        };
        println!("{k:>4} {:>14} {:>14} {:>14}", cell(0), cell(1), cell(2));
    }
    for rep in &reports {
        println!(
            "{:<4} comm cost {:>8.1} msgs/rank, active {:>5.1}%, reached 0.1: {}",
            rep.method.label(),
            rep.comm_cost(),
            100.0 * rep.active_fraction(),
            rep.steps_to_reach(0.1)
                .map(|v| format!("step {v:.1}"))
                .unwrap_or("no".into()),
        );
    }
}
