//! Multigrid smoothing demo (the experiment behind Figure 6): V-cycles on
//! the 2D Poisson problem with Gauss–Seidel and Distributed Southwell
//! smoothers, showing grid-size-independent convergence and the
//! per-relaxation efficiency of the Southwell smoother — even at half a
//! sweep.
//!
//! ```text
//! cargo run --release --example multigrid_smoothing
//! ```

use distributed_southwell::multigrid::{Multigrid, Smoother};
use distributed_southwell::sparse::gen;

fn main() {
    println!("relative residual after 9 V(1,1)-cycles, 2D Poisson:");
    println!(
        "{:<10} {:>16} {:>20} {:>18}",
        "grid", "GS 1 sweep", "DistSW 1/2 sweep", "DistSW 1 sweep"
    );
    for dim in [15usize, 31, 63, 127] {
        let n = dim * dim;
        let b = gen::random_rhs(n, 7 + dim as u64);
        let mut row = format!("{:<10}", format!("{dim}x{dim}"));
        for sm in [
            Smoother::gauss_seidel(1.0),
            Smoother::distributed_southwell(0.5, 3),
            Smoother::distributed_southwell(1.0, 3),
        ] {
            let mut mg = Multigrid::new(dim, sm);
            let (_, hist) = mg.solve(&b, 9);
            row.push_str(&format!(" {:>18.3e}", hist[8]));
        }
        println!("{row}");
    }
    println!("\nAll three columns are flat in the grid size (grid-independent");
    println!("convergence), and the Southwell smoother does more per relaxation");
    println!("than lexicographic Gauss–Seidel because it always attacks the");
    println!("largest residuals first.");
}
