//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no network access and no cargo registry cache,
//! so the real `rand` cannot be fetched. This crate implements exactly the
//! surface the workspace uses — `StdRng::seed_from_u64`, `Rng::gen_range`
//! over integer and float ranges, `Rng::gen_bool`, and
//! `SliceRandom::shuffle` — on top of a deterministic xoshiro256**
//! generator seeded via SplitMix64.
//!
//! Determinism is the only property the workspace relies on (every
//! experiment fixes its seeds); the exact stream differs from upstream
//! `StdRng` (ChaCha12), so generated matrices and guesses differ from runs
//! against the real crate, but remain bit-reproducible per seed.

use std::ops::{Range, RangeInclusive};

/// Core generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform-sampleable range of `T` (stand-in for `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng() as u128 % span) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, i64, i32);

/// Unit-interval double from 53 random bits, as upstream does.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng())
    }
}

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(&mut || self.next_u64())
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element (`None` on an empty slice).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..7);
            assert!((3..7).contains(&v));
            let f = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
